"""Table 4 — occupied tiles with and without the tile-shared scheme.

Regenerates the occupied-tile counts: the +Hy strategy allocated with the
conventional tile-based scheme versus the same strategy after Algorithm 1
remapping (All), for all three models.

Expected shape (paper §4.3): All occupies fewer tiles (paper: -6.1%,
-10%, -5.7% for AlexNet, VGG16, ResNet152).
"""

from conftest import run_once

from repro.bench import print_table4, table4_tiles


def test_table4_tiles(benchmark):
    data = run_once(benchmark, table4_tiles)
    print_table4(data)
    for model, row in data.items():
        assert row["All"] <= row["+Hy"], model
    # At least one model genuinely releases tiles.
    assert any(row["All"] < row["+Hy"] for row in data.values())
