"""The conventional tile-based allocation baseline (§2.2.2).

Existing accelerators use the tile as the minimum allocation unit and allow
each tile to hold kernels of a *single* DNN layer only.  A layer needing
``n`` crossbars therefore receives ``ceil(n / capacity)`` whole tiles, and
every slot beyond ``n`` in those tiles is wasted — the crossbar wastage
Fig. 4 quantifies and the tile-shared scheme (§3.4) removes.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from ...arch.config import CrossbarShape
from ...arch.mapping import LayerMapping
from .tiles import Allocation, Tile


def allocate_tile_based(
    mappings: Sequence[LayerMapping], tile_capacity: int
) -> Allocation:
    """Allocate whole tiles per layer, one layer per tile.

    Parameters
    ----------
    mappings:
        One :class:`LayerMapping` per network layer, in layer order.
    tile_capacity:
        Logical crossbar slots per tile
        (:attr:`HardwareConfig.logical_xbars_per_tile`).
    """
    if tile_capacity <= 0:
        raise ValueError("tile_capacity must be positive")
    tiles: list[Tile] = []
    next_id = 0
    for mapping in mappings:
        remaining = mapping.num_crossbars
        while remaining > 0:
            take = min(remaining, tile_capacity)
            tile = Tile(
                tile_id=next_id, shape=mapping.shape, capacity=tile_capacity
            )
            tile.add(mapping.layer.index, take)
            tiles.append(tile)
            next_id += 1
            remaining -= take
    allocation = Allocation(
        mappings=tuple(mappings), tiles=tuple(tiles), tile_capacity=tile_capacity
    )
    allocation.validate()
    return allocation


def layer_tiles_needed(mapping: LayerMapping, tile_capacity: int) -> int:
    """Whole tiles the baseline hands to one layer (round-up rule)."""
    return math.ceil(mapping.num_crossbars / tile_capacity)


def layer_empty_fraction(mapping: LayerMapping, tile_capacity: int) -> float:
    """Fraction of a layer's allocated crossbar slots left empty (Fig. 4)."""
    slots = layer_tiles_needed(mapping, tile_capacity) * tile_capacity
    return (slots - mapping.num_crossbars) / slots
