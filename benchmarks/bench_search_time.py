"""§4.5 — RL search time, its decision/simulator split, and the
evaluation-cache speedup.

Regenerates the search-time discussion: total wall-clock for the VGG16
search and the share spent waiting for simulator feedback versus making
decisions and learning — measured on the *uncached* reference simulator,
where the paper's claim lives.

Expected shape (paper §4.5): the simulator dominates the search time (the
paper reports 97% on MNSIM; our analytic simulator is far cheaper than
MNSIM, so the measured share is lower — see EXPERIMENTS.md).

The second benchmark measures what the caching stack recovers: annealing
and coordinate-ascent searches on the cached simulator must run >= 10x
faster than on the cold reference at paper scale (>= 2x on the tiny CI
smoke model) while reproducing its results bit-for-bit
(docs/performance.md).  ``REPRO_BENCH_MODEL`` selects the workload
(default ``vgg16``; CI's smoke job uses ``lenet``).
"""

from conftest import run_once

from repro.bench import (
    print_search_cache,
    print_search_time,
    search_cache_profile,
    search_time_profile,
)


def test_search_time_profile(benchmark):
    result = run_once(benchmark, search_time_profile)
    print_search_time(result)
    assert result.total_seconds > 0
    # On the uncached reference simulator, feedback remains the single
    # largest phase of the search loop.
    assert result.simulator_seconds > result.decision_seconds
    assert result.cache_stats is None
    assert len(result.reward_history) == result.rounds + result.seed_episodes


def test_search_cache_speedup(benchmark):
    comparisons = run_once(benchmark, search_cache_profile)
    print_search_cache(comparisons)
    for comp in comparisons:
        benchmark.extra_info[f"{comp.label}_speedup"] = round(comp.speedup, 2)
        benchmark.extra_info[f"{comp.label}_hit_rate"] = round(
            comp.cache_stats.hit_rate, 4
        )
        benchmark.extra_info[f"{comp.label}_infeasible"] = comp.infeasible
        # The cache may never change results — only how fast they arrive.
        assert comp.identical, f"{comp.label}: cached result differs from cold"
        # The strategy-level cache must actually be exercised.
        assert comp.cache_stats.hits > 0, f"{comp.label}: no cache hits"
        assert comp.cache_stats.hit_rate > 0.0
        # On the paper-scale workload the caching + vectorized-kernel
        # stack must recover an order of magnitude (measured ~60-90x);
        # the CI smoke model (lenet) is too cheap per evaluation to
        # amortise the batch overheads that far, so it keeps the
        # original 2x floor.
        floor = 10.0 if comp.model == "vgg16" else 2.0
        assert comp.speedup >= floor, (
            f"{comp.label}: only {comp.speedup:.2f}x with cache enabled "
            f"(floor {floor}x on {comp.model})"
        )
