"""Workload zoo: the paper's three DNNs (Table 2) plus small test nets.

The structures follow paper Table 2 exactly:

* **AlexNet**  — ``C3-64, C3-192, C3-384, 2C3-256, F4096, F4096, F10``
  evaluated on MNIST.
* **VGG16**    — ``2C3-64, 2C3-128, 3C3-256, 6C3-512, F4096, F1000, F10``
  evaluated on CIFAR-10 (13 CONV + 3 FC = 16 weight layers).
* **ResNet152** — ``C7-64, 3C1-64, 8C1-128, 40C1-256, 12C1-512, 37C1-1024,
  4C1-2048, 3C3-64, 8C3-128, 36C3-256, 3C3-512, F1000`` evaluated on
  ImageNet.  We generate the standard bottleneck sequence (including the
  four projection shortcuts), which reproduces those per-type counts —
  a pinned unit test checks every count against Table 2.

Residual additions own no weights and therefore no crossbars; for mapping
purposes ResNet152 is the ordered list of its weight layers, each annotated
with the feature-map size it sees (``Network.from_layers``).
"""

from __future__ import annotations

from typing import Callable, Sequence

from .datasets import CIFAR10, IMAGENET, MNIST, DatasetSpec, get_dataset
from .graph import Network
from .layers import LayerSpec, LayerType, PoolSpec, Stage


def _from_layers(
    name: str, dataset: DatasetSpec, layers: Sequence[LayerSpec]
) -> Network:
    """Build a Network from pre-sized layers without sequential chaining.

    Used for topologies with parallel branches (ResNet shortcuts) where the
    strict channel-chaining of :meth:`Network.build` does not apply.  Input
    sizes must already be set on each layer.
    """
    indexed = tuple(
        Stage(layer=layer.with_index(i)) for i, layer in enumerate(layers)
    )
    return Network(name=name, dataset=dataset, stages=indexed)


# ----------------------------------------------------------------------
# AlexNet on MNIST (Table 2 row 1)
# ----------------------------------------------------------------------
def alexnet(dataset: DatasetSpec = MNIST) -> Network:
    """AlexNet with Table 2's all-3x3 structure."""
    conv = LayerSpec.conv
    fc = LayerSpec.fc
    pool = PoolSpec("max", 2, 2)
    # Spatial flow on 28x28: 28 -> pool 14 -> pool 7 -> pool 3.  The
    # same-padding convolutions preserve size, so the flatten width is
    # the input size through three pools.
    flat = dataset.image_size
    for _ in range(3):
        flat = pool.output_size(flat)
    items = [
        conv(dataset.channels, 64, 3, padding=1, name="conv1"),
        pool,
        conv(64, 192, 3, padding=1, name="conv2"),
        pool,
        conv(192, 384, 3, padding=1, name="conv3"),
        conv(384, 256, 3, padding=1, name="conv4"),
        conv(256, 256, 3, padding=1, name="conv5"),
        pool,
        fc(256 * flat * flat, 4096, name="fc1"),
        fc(4096, 4096, name="fc2"),
        fc(4096, dataset.num_classes, name="fc3"),
    ]
    return Network.build("AlexNet", dataset, items)


# ----------------------------------------------------------------------
# VGG16 on CIFAR-10 (Table 2 row 2)
# ----------------------------------------------------------------------
def vgg16(dataset: DatasetSpec = CIFAR10) -> Network:
    """VGG16 with Table 2's classifier head (F4096, F1000, F10)."""
    conv = LayerSpec.conv
    fc = LayerSpec.fc
    pool = PoolSpec("max", 2, 2)
    cfg = [
        (2, 64),
        (2, 128),
        (3, 256),
        (3, 512),
        (3, 512),
    ]
    items: list[LayerSpec | PoolSpec] = []
    channels = dataset.channels
    block_idx = 0
    for repeats, width in cfg:
        block_idx += 1
        for r in range(repeats):
            items.append(
                conv(channels, width, 3, padding=1, name=f"conv{block_idx}_{r + 1}")
            )
            channels = width
        items.append(pool)
    # 32 -> 16 -> 8 -> 4 -> 2 -> 1 spatial, so the flatten is 512*1*1.
    final_spatial = dataset.image_size // 2 ** len(cfg)
    items.append(fc(512 * final_spatial * final_spatial, 4096, name="fc1"))
    items.append(fc(4096, 1000, name="fc2"))
    items.append(fc(1000, dataset.num_classes, name="fc3"))
    return Network.build("VGG16", dataset, items)


# ----------------------------------------------------------------------
# ResNet152 on ImageNet (Table 2 row 3)
# ----------------------------------------------------------------------
def resnet152(dataset: DatasetSpec = IMAGENET) -> Network:
    """ResNet-152 bottleneck sequence, including projection shortcuts."""
    conv = LayerSpec.conv
    layers: list[LayerSpec] = []
    size = dataset.image_size
    # Stem: C7-64 stride 2, then 3x3/2 max pool.
    stem = conv(dataset.channels, 64, 7, stride=2, padding=3, input_size=size, name="conv1")
    layers.append(stem)
    size = stem.output_size  # 112
    size = PoolSpec("max", 3, 2).output_size(size)  # 56

    stage_cfg = [
        # (blocks, bottleneck width, stage stride)
        (3, 64, 1),
        (8, 128, 2),
        (36, 256, 2),
        (3, 512, 2),
    ]
    in_ch = 64
    for stage_idx, (blocks, width, stage_stride) in enumerate(stage_cfg, start=2):
        out_ch = width * 4
        for block in range(blocks):
            stride = stage_stride if block == 0 else 1
            prefix = f"conv{stage_idx}_{block + 1}"
            layers.append(
                conv(in_ch, width, 1, input_size=size, name=f"{prefix}_a")
            )
            mid = conv(
                width, width, 3, stride=stride, padding=1, input_size=size,
                name=f"{prefix}_b",
            )
            layers.append(mid)
            post = mid.output_size
            layers.append(
                conv(width, out_ch, 1, input_size=post, name=f"{prefix}_c")
            )
            if block == 0:
                # Projection shortcut on the stage's first block.
                layers.append(
                    conv(
                        in_ch, out_ch, 1, stride=stride, input_size=size,
                        name=f"{prefix}_down",
                    )
                )
            in_ch = out_ch
            size = post
    layers.append(LayerSpec.fc(2048, dataset.num_classes, name="fc"))
    return _from_layers("ResNet152", dataset, layers)


# ----------------------------------------------------------------------
# Small networks for tests, examples, and fast searches
# ----------------------------------------------------------------------
def lenet(dataset: DatasetSpec = MNIST) -> Network:
    """A LeNet-5-style network: small enough for exhaustive-search tests."""
    conv = LayerSpec.conv
    fc = LayerSpec.fc
    pool = PoolSpec("avg", 2, 2)
    # conv1 (pad 2) preserves the input size; conv2 (no pad) shrinks by 4.
    flat = ((dataset.image_size // 2) - 4) // 2
    items = [
        conv(dataset.channels, 6, 5, padding=2, name="conv1"),
        pool,
        conv(6, 16, 5, name="conv2"),
        pool,
        fc(16 * flat * flat, 120, name="fc1"),
        fc(120, 84, name="fc2"),
        fc(84, dataset.num_classes, name="fc3"),
    ]
    return Network.build("LeNet", dataset, items)


def tiny_cnn(dataset: DatasetSpec = CIFAR10) -> Network:
    """A 4-layer CNN used by unit tests and the quickstart example."""
    conv = LayerSpec.conv
    fc = LayerSpec.fc
    pool = PoolSpec("max", 2, 2)
    items = [
        conv(dataset.channels, 16, 3, padding=1, name="conv1"),
        pool,
        conv(16, 32, 3, padding=1, name="conv2"),
        pool,
        fc(32 * (dataset.image_size // 4) ** 2, 64, name="fc1"),
        fc(64, dataset.num_classes, name="fc2"),
    ]
    return Network.build("TinyCNN", dataset, items)


def _transformer_builder(dataset: DatasetSpec | None = None) -> Network:
    """Registry adapter: the transformer workload ignores image datasets."""
    from .transformer import transformer_lm

    return transformer_lm()


_MODEL_BUILDERS: dict[str, Callable[[], Network]] = {
    "alexnet": alexnet,
    "vgg16": vgg16,
    "resnet152": resnet152,
    "lenet": lenet,
    "tinycnn": tiny_cnn,
    "transformer": _transformer_builder,
}

#: The (model, dataset) pairings evaluated in the paper (§4.1).
PAPER_WORKLOADS: tuple[tuple[str, str], ...] = (
    ("alexnet", "mnist"),
    ("vgg16", "cifar-10"),
    ("resnet152", "imagenet"),
)


def get_model(name: str, dataset: str | DatasetSpec | None = None) -> Network:
    """Look up a workload by name, optionally rebinding its dataset."""
    key = name.lower().replace("-", "").replace("_", "")
    if key not in _MODEL_BUILDERS:
        raise KeyError(f"unknown model {name!r}; known: {sorted(_MODEL_BUILDERS)}")
    builder = _MODEL_BUILDERS[key]
    if dataset is None:
        return builder()
    spec = dataset if isinstance(dataset, DatasetSpec) else get_dataset(dataset)
    return builder(spec)  # type: ignore[call-arg]


def paper_workloads() -> tuple[Network, ...]:
    """The three (model, dataset) pairs of §4.1, in paper order."""
    return tuple(get_model(m, d) for m, d in PAPER_WORKLOADS)
