"""Metamorphic tests: how metrics must transform under workload changes.

Rather than pinning absolute values, these tests assert relations the
cost model must satisfy when the *input* is transformed in a known way —
doubling channels, splitting networks, scaling bit widths — which catches
unit errors and double-counting that point checks miss.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.config import CrossbarShape, HardwareConfig
from repro.arch.mapping import map_layer
from repro.models import CIFAR10, MNIST, Network
from repro.models.layers import LayerSpec
from repro.sim import Simulator
from repro.sim.energy import layer_dynamic_energy

SHAPE = CrossbarShape(72, 64)
CFG = HardwareConfig()


def single_layer_net(layer, dataset=CIFAR10, name="one"):
    return Network.build(name, dataset, [layer])


class TestChannelScaling:
    def test_doubling_cout_doubles_weight_cells(self):
        a = map_layer(LayerSpec.conv(16, 32, 3), SHAPE)
        b = map_layer(LayerSpec.conv(16, 64, 3), SHAPE)
        assert b.weight_cells == 2 * a.weight_cells

    def test_doubling_cout_at_column_boundary_doubles_adc(self):
        """With Cout a multiple of the column width, ADC activations are
        exactly proportional."""
        a = map_layer(LayerSpec.conv(16, 64, 3, input_size=8), SHAPE)
        b = map_layer(LayerSpec.conv(16, 128, 3, input_size=8), SHAPE)
        assert b.used_columns_total == 2 * a.used_columns_total
        ea = layer_dynamic_energy(a, CFG)
        eb = layer_dynamic_energy(b, CFG)
        assert eb.adc == pytest.approx(2 * ea.adc)

    def test_doubling_cin_at_slice_boundary_doubles_row_groups(self):
        # 72 rows / 9 = 8 slices per crossbar.
        a = map_layer(LayerSpec.conv(8, 64, 3), SHAPE)
        b = map_layer(LayerSpec.conv(16, 64, 3), SHAPE)
        assert b.row_groups == 2 * a.row_groups


class TestNetworkComposition:
    def test_dynamic_energy_is_layerwise_additive(self):
        """A two-layer network's dynamic energy equals the sum of its
        layers evaluated in isolation (leakage/pooling aside)."""
        l1 = LayerSpec.conv(3, 16, 3, padding=1, input_size=32)
        l2 = LayerSpec.conv(16, 32, 3, padding=1, input_size=32)
        net = Network.build("two", CIFAR10, [l1, l2])
        sim = Simulator()
        strategy = (SHAPE, SHAPE)
        combined = sim.evaluate(net, strategy, tile_shared=False)
        e1 = layer_dynamic_energy(map_layer(net.layers[0], SHAPE), CFG).total
        e2 = layer_dynamic_energy(map_layer(net.layers[1], SHAPE), CFG).total
        non_layer = (
            combined.energy_breakdown.pooling
            + combined.energy_breakdown.leakage
        )
        assert combined.energy_nj == pytest.approx(e1 + e2 + non_layer)

    def test_weight_cells_additive_across_layers(self):
        l1 = LayerSpec.conv(3, 16, 3, padding=1, input_size=32)
        l2 = LayerSpec.conv(16, 32, 3, padding=1, input_size=32)
        net = Network.build("two", CIFAR10, [l1, l2])
        sim = Simulator()
        mappings = sim.map_network(net, (SHAPE, SHAPE))
        allocation = sim.allocate(mappings, tile_shared=False)
        assert allocation.weight_cells == net.total_weights

    def test_latency_additive_across_layers(self):
        from repro.sim.latency import layer_latency_ns

        l1 = LayerSpec.conv(3, 16, 3, padding=1, input_size=32)
        l2 = LayerSpec.conv(16, 32, 3, padding=1, input_size=32)
        net = Network.build("two", CIFAR10, [l1, l2])
        sim = Simulator()
        m = sim.evaluate(net, (SHAPE, SHAPE), tile_shared=False)
        t1 = layer_latency_ns(map_layer(net.layers[0], SHAPE), CFG)
        t2 = layer_latency_ns(map_layer(net.layers[1], SHAPE), CFG)
        assert m.latency_ns == pytest.approx(t1 + t2)


class TestBitWidthScaling:
    def test_dynamic_energy_scales_with_cycles_times_slices(self):
        """Halving both widths quarters the (cycles x slices) product and
        the phase-proportional components with it."""
        layer = LayerSpec.conv(16, 64, 3, input_size=8)
        full = layer_dynamic_energy(
            map_layer(layer, SHAPE), HardwareConfig(weight_bits=8, input_bits=8)
        )
        half = layer_dynamic_energy(
            map_layer(layer, SHAPE), HardwareConfig(weight_bits=4, input_bits=4)
        )
        assert half.adc == pytest.approx(full.adc / 4)
        assert half.dac == pytest.approx(full.dac / 4)
        # Buffer traffic is byte-level, unaffected by bit organisation.
        assert half.buffer == pytest.approx(full.buffer)

    def test_adc_resolution_scales_only_adc(self):
        layer = LayerSpec.conv(16, 64, 3, input_size=8)
        lo = layer_dynamic_energy(
            map_layer(layer, SHAPE), HardwareConfig(adc_bits=8)
        )
        hi = layer_dynamic_energy(
            map_layer(layer, SHAPE), HardwareConfig(adc_bits=10)
        )
        assert hi.adc == pytest.approx(4 * lo.adc)
        assert hi.dac == pytest.approx(lo.dac)
        assert hi.crossbar == pytest.approx(lo.crossbar)


class TestStrategyTransforms:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(1, 48), st.integers(1, 96)),
            min_size=2,
            max_size=6,
        ),
        st.randoms(use_true_random=False),
    )
    def test_tile_sharing_invariant_to_layer_order(self, dims, rnd):
        """Permuting the layer list changes tile ids, never the occupied
        count: each layer contributes the same multiset of partial-tile
        empties regardless of position, and Algorithm 1's plan depends
        only on that multiset."""
        from repro.core.allocation import allocate_tile_based, apply_tile_sharing

        layers = [
            LayerSpec.conv(cin, cout, 3, input_size=8).with_index(i)
            for i, (cin, cout) in enumerate(dims)
        ]
        mappings = [map_layer(l, SHAPE) for l in layers]
        shuffled = list(mappings)
        rnd.shuffle(shuffled)
        a = apply_tile_sharing(allocate_tile_based(mappings, 4))
        b = apply_tile_sharing(allocate_tile_based(shuffled, 4))
        assert a.occupied_tiles == b.occupied_tiles
        assert a.utilization == pytest.approx(b.utilization)

    def test_uniform_strategy_equals_homogeneous_eval(self, simulator):
        from repro.models import lenet

        net = lenet()
        uniform = tuple(SHAPE for _ in net.layers)
        a = simulator.evaluate(net, uniform, tile_shared=False, detailed=False)
        b = simulator.evaluate_homogeneous(net, SHAPE)
        assert a.energy_nj == b.energy_nj
        assert a.utilization == b.utilization
