"""Serialization: strategies, search results, and hardware configs.

A searched crossbar configuration is the *product* of AutoHet — the RL
training runs once offline, "but the decision result is used many times"
(§4.5).  This module gives that product a durable form:

* strategies <-> compact string lists (``["576x512", ...]``) / JSON;
* :class:`~repro.core.autohet.SearchResult` -> a JSON document capturing
  the strategy, metrics, convergence curve, and timing split;
* :class:`~repro.arch.config.HardwareConfig` <-> plain dicts / JSON, so a
  platform description can live in a versioned file.

Everything round-trips: ``load_*(dump_*(x))`` reproduces ``x`` (for
configs and strategies exactly; for results, every recorded field).
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Sequence

from .arch.config import CrossbarShape, HardwareConfig
from .core.allocation.tiles import Allocation
from .core.autohet import SearchResult
from .sim.metrics import SystemMetrics

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
def strategy_to_list(strategy: Sequence[CrossbarShape]) -> list[str]:
    """``(CrossbarShape(576, 512), ...)`` -> ``["576x512", ...]``."""
    return [str(s) for s in strategy]


def strategy_from_list(items: Sequence[str]) -> tuple[CrossbarShape, ...]:
    """Inverse of :func:`strategy_to_list`."""
    return tuple(CrossbarShape.parse(s) for s in items)


def save_strategy(strategy: Sequence[CrossbarShape], path: str | Path) -> None:
    Path(path).write_text(json.dumps(strategy_to_list(strategy), indent=2))


def load_strategy(path: str | Path) -> tuple[CrossbarShape, ...]:
    return strategy_from_list(json.loads(Path(path).read_text()))


# ----------------------------------------------------------------------
# Hardware configs
# ----------------------------------------------------------------------
def config_to_dict(config: HardwareConfig) -> dict[str, Any]:
    """All fields of a :class:`HardwareConfig` as a plain dict."""
    return dataclasses.asdict(config)


def config_from_dict(data: dict[str, Any]) -> HardwareConfig:
    """Build a config from a (possibly partial) dict; unknown keys fail."""
    valid = {f.name for f in dataclasses.fields(HardwareConfig)}
    unknown = set(data) - valid
    if unknown:
        raise ValueError(f"unknown HardwareConfig fields: {sorted(unknown)}")
    return HardwareConfig(**data)


def save_config(config: HardwareConfig, path: str | Path) -> None:
    Path(path).write_text(json.dumps(config_to_dict(config), indent=2))


def load_config(path: str | Path) -> HardwareConfig:
    return config_from_dict(json.loads(Path(path).read_text()))


# ----------------------------------------------------------------------
# Allocation plans
# ----------------------------------------------------------------------
def plan_to_dict(allocation: Allocation) -> dict[str, Any]:
    """An :class:`Allocation` as the JSON plan document ``repro check
    --plan`` verifies (see
    :func:`repro.analysis.checkers.check_plan_dict` for the schema)."""
    return {
        "tile_capacity": allocation.tile_capacity,
        "layers": [
            {
                "index": m.layer.index,
                "shape": str(m.shape),
                "num_crossbars": m.num_crossbars,
            }
            for m in allocation.mappings
        ],
        "tiles": [
            {
                "tile_id": t.tile_id,
                "shape": str(t.shape),
                "capacity": t.capacity,
                "occupants": {str(k): v for k, v in sorted(t.occupants.items())},
                "absorbed": list(t.absorbed),
            }
            for t in allocation.tiles
        ],
        "comb_map": {
            str(head): list(tails)
            for head, tails in sorted(allocation.comb_map.items())
        },
    }


def save_plan(allocation: Allocation, path: str | Path) -> None:
    Path(path).write_text(json.dumps(plan_to_dict(allocation), indent=2))


def load_plan_dict(path: str | Path) -> dict[str, Any]:
    """Load a plan document as a plain dict (validation is the checker's
    job — a broken plan must be *reportable*, not un-loadable)."""
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict):
        raise ValueError(f"plan file {path} does not hold a JSON object")
    return data


# ----------------------------------------------------------------------
# Metrics and search results
# ----------------------------------------------------------------------
def metrics_to_dict(metrics: SystemMetrics) -> dict[str, Any]:
    """The headline fields of a :class:`SystemMetrics` (no per-layer
    detail — that is recomputable from the strategy)."""
    return {
        "network": metrics.network_name,
        "strategy": list(metrics.strategy),
        "utilization": metrics.utilization,
        "energy_nj": metrics.energy_nj,
        "latency_ns": metrics.latency_ns,
        "area_um2": metrics.area_um2,
        "rue": metrics.rue,
        "occupied_tiles": metrics.occupied_tiles,
        "occupied_crossbars": metrics.occupied_crossbars,
        "empty_crossbars": metrics.empty_crossbars,
        "tile_shared": metrics.tile_shared,
    }


def result_to_dict(result: SearchResult) -> dict[str, Any]:
    """A :class:`SearchResult` as a JSON-ready document."""
    doc: dict[str, Any] = {
        "network": result.network_name,
        "rounds": result.rounds,
        "seed_episodes": result.seed_episodes,
        "infeasible_episodes": result.infeasible_episodes,
        "best_strategy": strategy_to_list(result.best_strategy),
        "best_metrics": metrics_to_dict(result.best_metrics),
        "reward_history": list(result.reward_history),
        "best_reward_history": list(result.best_reward_history),
        "timing": {
            "decision_seconds": result.decision_seconds,
            "simulator_seconds": result.simulator_seconds,
            "learning_seconds": result.learning_seconds,
        },
    }
    if result.cache_stats is not None:
        stats = result.cache_stats
        doc["cache"] = {
            "hits": stats.hits,
            "misses": stats.misses,
            "evictions": stats.evictions,
            "size": stats.size,
            "max_size": stats.max_size,
            "hit_rate": stats.hit_rate,
        }
    return doc


def save_result(result: SearchResult, path: str | Path) -> None:
    Path(path).write_text(json.dumps(result_to_dict(result), indent=2))


def load_result_strategy(path: str | Path) -> tuple[CrossbarShape, ...]:
    """Recover just the deployable strategy from a saved result."""
    data = json.loads(Path(path).read_text())
    return strategy_from_list(data["best_strategy"])
