"""Byte-identity of the infeasible verdict message across every path.

An infeasible strategy surfaces in four ways: the scalar loop raises
:class:`~repro.sim.simulator.CapacityError`; the batch kernel returns
:class:`~repro.sim.kernels.InfeasibleScore`; the batched ``evaluate_many``
fast path caches an ``_Infeasible`` sentinel; and a process-pool worker
ships an ``_Infeasible`` sentinel back for merge-in.  All four carry the
same message *string*, and it must stay byte-identical — cached
sentinels are shared between paths, so a reworded message on one path
would surface from the cache on another.  ``repro check --kernel-parity``
(PAR003) pins the two f-string formats statically; this is the runtime
witness.
"""

from __future__ import annotations

import pytest

from repro.arch.config import CrossbarShape, HardwareConfig
from repro.models.zoo import lenet
from repro.sim import kernels
from repro.sim.cache import EvaluationCache, _Infeasible
from repro.sim.simulator import (
    CapacityError,
    Simulator,
    _evaluate_one_remote,
)

#: one bank of one tile — any real workload overflows it
TINY = HardwareConfig(tiles_per_bank=1)


@pytest.fixture()
def case():
    network = lenet()
    strategy = tuple(CrossbarShape(32, 32) for _ in network.layers)
    return network, strategy


def scalar_message(network, strategy) -> str:
    sim = Simulator(config=TINY, cache=None, vectorize=False)
    with pytest.raises(CapacityError) as excinfo:
        sim.evaluate(network, strategy)
    return str(excinfo.value)


class TestMessageByteIdentity:
    def test_vectorized_kernel_matches_scalar(self, case):
        network, strategy = case
        (outcome,) = kernels.score_strategy_batch(
            network, [strategy], TINY, tile_shared=True, enforce_capacity=True
        )
        assert isinstance(outcome, kernels.InfeasibleScore)
        assert outcome.message == scalar_message(network, strategy)

    def test_batched_cache_sentinel_matches_scalar(self, case):
        network, strategy = case
        cache = EvaluationCache()
        sim = Simulator(config=TINY, cache=cache)
        results = sim.evaluate_many(network, [strategy, strategy])
        assert results == [None, None]
        key = EvaluationCache.make_key(
            TINY, network, strategy,
            tile_shared=True, detailed=False, enforce_capacity=True,
        )
        sentinel = cache.get(key)
        assert isinstance(sentinel, _Infeasible)
        assert sentinel.message == scalar_message(network, strategy)

    def test_process_pool_sentinel_matches_scalar(self, case):
        # The worker-side half of the merge-back protocol, called in
        # process (the pickling round trip is tests/sim/test_process_pool's
        # business; the message contract is this test's).
        network, strategy = case
        worker = Simulator(config=TINY, cache=None)
        outcome = _evaluate_one_remote(
            (worker, network, strategy, True, False, True)
        )
        assert isinstance(outcome, _Infeasible)
        assert outcome.message == scalar_message(network, strategy)

    def test_pool_merge_back_caches_scalar_message(self, case):
        network, strategy = case
        cache = EvaluationCache()
        sim = Simulator(config=TINY, cache=cache)
        results = sim.evaluate_many(
            network, [strategy], max_workers=2, executor="process"
        )
        assert results == [None]
        key = EvaluationCache.make_key(
            TINY, network, strategy,
            tile_shared=True, detailed=False, enforce_capacity=True,
        )
        sentinel = cache.get(key)
        assert isinstance(sentinel, _Infeasible)
        assert sentinel.message == scalar_message(network, strategy)

    def test_message_format_is_the_pinned_one(self, case):
        # The exact format PAR003 pins between Simulator._capacity_check
        # and kernels.score_strategy_batch.
        network, strategy = case
        message = scalar_message(network, strategy)
        assert "tiles; one bank holds 1" in message
        assert message.startswith("strategy needs ")
