"""AutoHet core: RL search, allocation schemes, and strategy producers."""

from .autohet import AutoHet, SearchResult, autohet_multi_seed, autohet_search

__all__ = ["AutoHet", "SearchResult", "autohet_multi_seed", "autohet_search"]
