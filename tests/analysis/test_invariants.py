"""Tests for the rule registry, Diagnostic/Report plumbing, and the
shared scalar rule implementations."""

import pytest

from repro.analysis.invariants import (
    RULES,
    Diagnostic,
    InvariantViolation,
    Report,
    Severity,
    adc_resolution_diagnostics,
    bit_divisibility_diagnostics,
    config_value_diagnostics,
    is_power_of_two,
    positive_count_diagnostics,
    required_adc_bits,
    rule,
    shape_dim_diagnostics,
    shape_discipline_diagnostics,
)


class TestRegistry:
    def test_every_rule_has_anchor_and_description(self):
        assert RULES, "registry must not be empty"
        for r in RULES.values():
            assert r.anchor
            assert r.description
            assert r.rule_id == r.rule_id.upper()

    def test_rule_families_present(self):
        families = {rid[:3] for rid in RULES}
        assert families == {
            "CFG", "SHP", "MAP", "NET", "ALC", "LNT", "CAC", "PUR", "CON",
            "NUM", "PAR", "UNI",
        }

    def test_lookup(self):
        assert rule("MAP001").anchor == "Eq. 4"
        assert rule("ALC006").anchor == "Algorithm 1"
        assert rule("SHP002").anchor == "§3.3"

    def test_diag_carries_rule_metadata(self):
        d = rule("CFG001").diag("here", "broken", hint="fix it")
        assert d.rule_id == "CFG001"
        assert d.severity is Severity.ERROR
        assert "fix it" in d.format()
        assert "CFG001" in d.format()


class TestReport:
    def test_empty_report_is_ok(self):
        r = Report()
        assert r.ok and r.exit_code == 0
        assert r.format() == "no findings"

    def test_error_report_fails(self):
        r = Report()
        r.add(rule("ALC001").diag("tile 0", "overfull"))
        r.add(
            Diagnostic("XINFO", Severity.INFO, "x", "just saying")
        )
        assert not r.ok and r.exit_code == 1
        assert len(r.errors) == 1 and len(r) == 2

    def test_raise_if_errors(self):
        r = Report()
        r.add(rule("ALC002").diag("layer 3", "double-booked"))
        with pytest.raises(InvariantViolation) as exc:
            r.raise_if_errors("ctx")
        assert exc.value.rule_ids == ("ALC002",)
        assert "ctx" in str(exc.value)

    def test_warnings_do_not_raise(self):
        r = Report()
        r.add(Diagnostic("W1", Severity.WARNING, "x", "meh"))
        r.raise_if_errors()
        assert r.ok

    def test_format_orders_errors_first(self):
        r = Report()
        r.add(Diagnostic("W1", Severity.WARNING, "x", "warn"))
        r.add(Diagnostic("E1", Severity.ERROR, "x", "err"))
        text = r.format()
        assert text.index("E1") < text.index("W1")
        assert "1 error(s), 1 warning(s)" in text


class TestInvariantViolation:
    def test_is_value_error(self):
        assert issubclass(InvariantViolation, ValueError)

    def test_requires_diagnostics(self):
        with pytest.raises(ValueError):
            raise InvariantViolation([])

    def test_message_includes_every_rule_id(self):
        diags = [
            rule("ALC001").diag("tile 1", "a"),
            rule("ALC004").diag("tile 2", "b"),
        ]
        exc = InvariantViolation(diags)
        assert "ALC001" in str(exc) and "ALC004" in str(exc)


class TestScalarRules:
    def test_is_power_of_two(self):
        assert all(is_power_of_two(n) for n in (1, 2, 64, 512))
        assert not any(is_power_of_two(n) for n in (0, -4, 3, 36, 576))

    def test_required_adc_bits_matches_paper_sizing(self):
        # §4.1: 10-bit ADC "to support all heterogeneous sizes" (576 rows).
        assert required_adc_bits(576, 1) == 10
        assert required_adc_bits(512, 1) == 10  # 512 sums need 0..512
        assert required_adc_bits(32, 1) == 6
        assert required_adc_bits(32, 2) == 7    # 3x larger max sum

    def test_positive_counts(self):
        assert positive_count_diagnostics({"a": 1, "b": 2}, "loc") == []
        diags = positive_count_diagnostics({"a": 0, "b": -3}, "loc")
        assert [d.rule_id for d in diags] == ["CFG001", "CFG001"]

    def test_bit_divisibility_valid(self):
        assert bit_divisibility_diagnostics(8, 1, 8, 1, "loc") == []
        assert bit_divisibility_diagnostics(8, 2, 8, 4, "loc") == []

    def test_bit_divisibility_violations(self):
        diags = bit_divisibility_diagnostics(7, 2, 8, 3, "loc")
        assert sorted(d.rule_id for d in diags) == ["CFG002", "CFG003"]

    def test_adc_resolution(self):
        assert adc_resolution_diagnostics(10, 576, 1, "loc") == []
        diags = adc_resolution_diagnostics(8, 576, 1, "loc")
        assert [d.rule_id for d in diags] == ["CFG004"]

    def test_shape_dims(self):
        assert shape_dim_diagnostics(64, 64, "loc") == []
        assert [d.rule_id for d in shape_dim_diagnostics(0, 64, "loc")] == ["SHP001"]

    def test_shape_discipline_valid_candidates(self):
        for rows, cols in ((32, 32), (36, 32), (72, 64), (288, 256), (576, 512)):
            assert shape_discipline_diagnostics(rows, cols, "loc") == []

    def test_shape_discipline_violations(self):
        # 35-row RXB: the acceptance-criteria fixture.
        assert [
            d.rule_id for d in shape_discipline_diagnostics(35, 32, "loc")
        ] == ["SHP002"]
        assert [
            d.rule_id for d in shape_discipline_diagnostics(31, 31, "loc")
        ] == ["SHP003"]
        # RXB with non-power-of-two width.
        assert [
            d.rule_id for d in shape_discipline_diagnostics(36, 33, "loc")
        ] == ["SHP003"]

    def test_config_value_diagnostics_roundup(self):
        assert (
            config_value_diagnostics(
                weight_bits=8, input_bits=8, cell_bits=1, dac_bits=1,
                adc_bits=10, pes_per_tile=4, tiles_per_bank=65536,
                adc_sharing=1,
            )
            == []
        )
        diags = config_value_diagnostics(
            weight_bits=7, input_bits=8, cell_bits=2, dac_bits=1,
            adc_bits=0, pes_per_tile=4, tiles_per_bank=65536, adc_sharing=1,
        )
        assert sorted({d.rule_id for d in diags}) == ["CFG001", "CFG002"]
