"""Tests for dataset specs and synthetic generators."""

import numpy as np
import pytest

from repro.models import CIFAR10, IMAGENET, MNIST, DatasetSpec, get_dataset


class TestSpecs:
    def test_paper_shapes(self):
        assert MNIST.input_shape == (1, 28, 28)
        assert CIFAR10.input_shape == (3, 32, 32)
        assert IMAGENET.input_shape == (3, 224, 224)

    def test_num_classes(self):
        assert MNIST.num_classes == 10
        assert CIFAR10.num_classes == 10
        assert IMAGENET.num_classes == 1000

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            DatasetSpec("bad", 0, 3, 10)
        with pytest.raises(ValueError):
            DatasetSpec("bad", 28, 3, 0)


class TestSyntheticData:
    def test_batch_shape(self):
        batch = CIFAR10.synthetic_batch(5)
        assert batch.shape == (5, 3, 32, 32)

    def test_values_in_unit_range(self):
        batch = MNIST.synthetic_batch(3, seed=1)
        assert batch.min() >= 0.0 and batch.max() <= 1.0

    def test_deterministic_by_seed(self):
        a = CIFAR10.synthetic_batch(2, seed=7)
        b = CIFAR10.synthetic_batch(2, seed=7)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = CIFAR10.synthetic_batch(2, seed=7)
        b = CIFAR10.synthetic_batch(2, seed=8)
        assert not np.array_equal(a, b)

    def test_rejects_nonpositive_batch(self):
        with pytest.raises(ValueError):
            CIFAR10.synthetic_batch(0)

    def test_labels_in_range(self):
        labels = IMAGENET.synthetic_labels(100, seed=3)
        assert labels.shape == (100,)
        assert labels.min() >= 0 and labels.max() < 1000

    def test_images_have_structure(self):
        # Not pure noise: spatial autocorrelation should be positive.
        img = CIFAR10.synthetic_batch(1, seed=0)[0, 0]
        shifted = np.roll(img, 1, axis=0)
        corr = np.corrcoef(img.ravel(), shifted.ravel())[0, 1]
        assert corr > 0.05


class TestRegistry:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("mnist", "MNIST"),
            ("MNIST", "MNIST"),
            ("cifar10", "CIFAR-10"),
            ("cifar-10", "CIFAR-10"),
            ("CIFAR_10", "CIFAR-10"),
            ("imagenet", "ImageNet"),
        ],
    )
    def test_lookup(self, name, expected):
        assert get_dataset(name).name == expected

    def test_unknown(self):
        with pytest.raises(KeyError):
            get_dataset("svhn")
