"""Integration tests: the subsystems must agree with each other.

The repository has three views of the same hardware: the analytic
simulator (fast counters), the vectorised functional engine, and the
per-crossbar object model.  These tests pin their cross-consistency —
same MVM results, same utilization, same activity counts where the
abstractions overlap — plus end-to-end pipelines that touch everything.
"""

import numpy as np
import pytest

from repro.arch.accelerator import HeterogeneousAccelerator
from repro.arch.config import CrossbarShape, DEFAULT_CANDIDATES, HardwareConfig
from repro.arch.controller import GlobalController, Opcode
from repro.core import autohet_search
from repro.models import lenet, tiny_cnn
from repro.sim import Simulator
from repro.sim.energy import layer_adc_conversions
from repro.sim.functional import (
    FunctionalLayerEngine,
    FunctionalNetworkEngine,
    random_weights,
    unfold_weights,
)
from repro.sim.quantization import quantize


@pytest.fixture(scope="module")
def setup():
    net = lenet()
    cfg = HardwareConfig()
    sim = Simulator(cfg)
    strategy = (
        CrossbarShape(36, 32),
        CrossbarShape(72, 64),
        CrossbarShape(288, 256),
        CrossbarShape(72, 64),
        CrossbarShape(72, 64),
    )
    mappings = sim.map_network(net, strategy)
    allocation = sim.allocate(mappings, tile_shared=True)
    weights = random_weights(net, seed=21)
    wq = {
        l.index: quantize(
            unfold_weights(l, weights[l.index]), cfg.weight_bits, signed=True
        ).values
        for l in net.layers
    }
    return net, cfg, sim, strategy, mappings, allocation, wq


class TestEngineVsAccelerator:
    def test_same_mvm_results(self, setup):
        """Vectorised engine == per-crossbar object model, layer by layer."""
        net, cfg, _, strategy, _, allocation, wq = setup
        accelerator = HeterogeneousAccelerator(allocation, wq, cfg)
        rng = np.random.default_rng(4)
        for layer, shape in zip(net.layers, strategy):
            engine = FunctionalLayerEngine(layer, shape, wq[layer.index], cfg)
            x = rng.integers(0, 256, size=layer.in_channels * layer.kernel_elems)
            assert np.array_equal(
                engine.mvm(x), accelerator.layer_mvm(layer.index, x)
            )

    def test_same_utilization_as_allocation(self, setup):
        net, cfg, _, _, _, allocation, wq = setup
        accelerator = HeterogeneousAccelerator(allocation, wq, cfg)
        assert accelerator.utilization() == pytest.approx(allocation.utilization)
        assert accelerator.occupied_tiles == allocation.occupied_tiles


class TestEngineVsAnalyticCounters:
    def test_adc_conversions_match_prediction(self, setup):
        """The functional engine performs exactly the conversions the
        analytic energy model bills for (active-line counting) when
        every allocated column holds weights."""
        net, cfg, _, _, _, _, _ = setup
        # A layer filling its columns exactly: Cout == cols.
        from repro.models.layers import LayerSpec

        layer = LayerSpec.conv(14, 64, 3, input_size=8)
        shape = CrossbarShape(72, 64)
        wq = quantize(
            np.random.default_rng(0).normal(size=(126, 64)), 8, signed=True
        ).values
        engine = FunctionalLayerEngine(layer, shape, wq, cfg)
        n = 7
        engine.mvm_batch(np.zeros((n, 126), dtype=np.int64))
        from repro.arch.mapping import map_layer

        mapping = map_layer(layer, shape)
        predicted_per_pass = layer_adc_conversions(mapping, cfg)
        # layer_adc_conversions is per full inference (mvm_ops positions);
        # we ran n positions instead.
        assert engine.counters.adc_conversions == (
            predicted_per_pass // layer.mvm_ops * n
        )


class TestControllerVsLatencyDrivers:
    def test_instruction_counts_scale_with_mvm_ops(self, setup):
        net, cfg, sim, strategy, mappings, allocation, _ = setup
        program = GlobalController(allocation, net).inference_program()
        hist = GlobalController.histogram(program)
        total_mvm_positions = sum(l.mvm_ops for l in net.layers)
        assert hist[Opcode.FETCH_INPUT] == total_mvm_positions
        total_block_fires = sum(
            m.layer.mvm_ops * m.num_crossbars for m in mappings
        )
        assert hist[Opcode.MVM] == total_block_fires


class TestSearchToSiliconPipeline:
    def test_searched_strategy_runs_functionally(self):
        """RL search -> allocation -> programmed crossbars -> inference."""
        net = tiny_cnn()
        result = autohet_search(net, DEFAULT_CANDIDATES, rounds=20, seed=3)
        engine = FunctionalNetworkEngine(net, result.best_strategy, seed=5)
        image = net.dataset.synthetic_batch(1, seed=6)[0]
        q = engine.forward(image)
        ref = engine.reference_forward(image)
        assert q.shape == ref.shape
        rel = np.abs(q - ref).max() / (np.abs(ref).max() + 1e-12)
        assert rel < 0.1
        assert engine.counters().adc_saturations == 0

    def test_search_metrics_reproducible_from_strategy(self):
        """Re-evaluating the searched strategy gives identical metrics."""
        net = tiny_cnn()
        sim = Simulator()
        result = autohet_search(
            net, DEFAULT_CANDIDATES, rounds=15, simulator=sim, seed=7
        )
        again = sim.evaluate(
            net, result.best_strategy, tile_shared=True, detailed=False
        )
        assert again.energy_nj == pytest.approx(result.best_metrics.energy_nj)
        assert again.utilization == pytest.approx(result.best_metrics.utilization)
        assert again.rue == pytest.approx(result.best_metrics.rue)


class TestPipelineVsSimulatorLatency:
    def test_fill_latency_close_to_sequential(self):
        """With no replication, the pipeline's fill time equals the
        simulator's sequential single-image latency (same per-layer
        model, same pooling charge)."""
        from repro.sim.pipeline import pipeline_report

        net = lenet()
        sim = Simulator()
        strategy = tuple(CrossbarShape(72, 64) for _ in net.layers)
        sequential = sim.evaluate(net, strategy, detailed=False).latency_ns
        report = pipeline_report(net, strategy)
        assert report.fill_ns == pytest.approx(sequential, rel=1e-9)
