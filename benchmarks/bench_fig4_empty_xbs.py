"""Figure 4 — empty-crossbar proportion vs crossbars per tile.

Regenerates the tile-wastage motivation: for the first four VGG16 layers
on 64x64 crossbars, the share of allocated crossbar slots left empty
under the conventional tile-based scheme, as the tile size grows from 4
to 32 crossbars.

Expected shape (paper §2.2.2): waste grows with tile size — roughly 24%
on average at 4 crossbars/tile rising toward 60% at 32.
"""

from conftest import run_once

from repro.bench import fig4_empty_crossbars, print_fig4


def test_fig4_empty_crossbars(benchmark):
    data = run_once(benchmark, fig4_empty_crossbars)
    print_fig4(data)
    for series in data.values():
        values = [series[ts] for ts in sorted(series)]
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))
    avg4 = sum(series[4] for series in data.values()) / len(data)
    avg32 = sum(series[32] for series in data.values()) / len(data)
    assert avg32 > avg4
