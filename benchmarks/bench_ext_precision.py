"""Extension: weight/activation precision sweep.

§4.1 fixes 8-bit weights on 1-bit cells (eight bit-slice crossbars per
PE).  This extension sweeps the quantization width and, independently,
the per-cell bit capacity (multi-level cells), reporting the energy and
area of the best homogeneous VGG16 accelerator at each point.

Expected shapes: energy and area scale with the number of physical
bit-slice crossbars (weight_bits / cell_bits); multi-level cells trade
that cost for tighter analog margins (not modelled — MLC rows simply
shrink the group).
"""

from conftest import run_once

from repro.arch.config import CrossbarShape, HardwareConfig
from repro.bench.reporting import print_table
from repro.models import vgg16
from repro.sim import Simulator


def run_precision_sweep():
    net = vgg16()
    shape = CrossbarShape(512, 512)
    out = {}
    for weight_bits, cell_bits in ((4, 1), (8, 1), (16, 1), (8, 2), (8, 4)):
        cfg = HardwareConfig(
            weight_bits=weight_bits, input_bits=weight_bits, cell_bits=cell_bits
        )
        sim = Simulator(cfg)
        m = sim.evaluate_homogeneous(net, shape)
        out[(weight_bits, cell_bits)] = {
            "group": cfg.xbars_per_group,
            "cycles": cfg.input_cycles,
            "energy_nj": m.energy_nj,
            "area_um2": m.area_um2,
            "utilization": m.utilization_percent,
        }
    return out


def test_precision_sweep(benchmark):
    data = run_once(benchmark, run_precision_sweep)
    print_table(
        ["w bits", "cell bits", "XBs/group", "in cycles",
         "energy_nJ", "area_um2", "util_%"],
        [
            (w, c, row["group"], row["cycles"], row["energy_nj"],
             row["area_um2"], row["utilization"])
            for (w, c), row in data.items()
        ],
        title="Extension — precision sweep (VGG16, 512x512 homogeneous)",
    )
    # Energy/area scale with the bit-slice group and input cycles.
    assert data[(8, 1)]["energy_nj"] > data[(4, 1)]["energy_nj"]
    assert data[(16, 1)]["energy_nj"] > data[(8, 1)]["energy_nj"]
    assert data[(16, 1)]["area_um2"] > data[(8, 1)]["area_um2"]
    # Multi-level cells shrink the group and with it energy and area.
    assert data[(8, 2)]["group"] == 4
    assert data[(8, 2)]["energy_nj"] < data[(8, 1)]["energy_nj"]
    assert data[(8, 4)]["area_um2"] < data[(8, 2)]["area_um2"]
    # Utilization is precision-independent (same logical mapping).
    utils = {round(row["utilization"], 6) for row in data.values()}
    assert len(utils) == 1
