#!/usr/bin/env python3
"""Quickstart: search a heterogeneous crossbar configuration for a small CNN.

This walks the full AutoHet loop on a four-layer CNN in a few seconds:

1. describe the workload (a ``Network`` of ``LayerSpec``s bound to a dataset);
2. score the homogeneous baselines on the behavioral simulator;
3. run the DDPG search over the hybrid square+rectangle candidate set;
4. compare the learned heterogeneous strategy to the baselines.

Run:  python examples/quickstart.py
"""

from repro import (
    DEFAULT_CANDIDATES,
    SQUARE_CANDIDATES,
    Simulator,
    autohet_search,
    tiny_cnn,
)

def main() -> None:
    network = tiny_cnn()
    print(network.describe())
    print()

    simulator = Simulator()

    print("Homogeneous baselines (tile-based allocation):")
    best_homo_rue = 0.0
    for shape in SQUARE_CANDIDATES:
        metrics = simulator.evaluate_homogeneous(network, shape)
        best_homo_rue = max(best_homo_rue, metrics.rue)
        print(
            f"  {shape!s:>9}: U={metrics.utilization_percent:5.1f}%  "
            f"E={metrics.energy_nj:10.1f} nJ  RUE={metrics.rue:.3e}"
        )

    print("\nRunning the AutoHet RL search (100 rounds)...")
    result = autohet_search(
        network, DEFAULT_CANDIDATES, rounds=100, simulator=simulator, seed=0
    )
    best = result.best_metrics
    print(f"\n{result.summary()}")
    print(
        f"\nAutoHet vs best homogeneous RUE: {best.rue / best_homo_rue:.2f}x  "
        f"(search took {result.total_seconds:.1f}s, "
        f"{result.simulator_fraction:.0%} in the simulator)"
    )


if __name__ == "__main__":
    main()
