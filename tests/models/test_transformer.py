"""Tests for the transformer-LM extension workload."""

import pytest

from repro.models.layers import LayerType
from repro.models.transformer import transformer_lm


class TestStructure:
    def test_layers_per_block(self):
        net = transformer_lm(num_blocks=3, d_model=256, vocab_size=1000)
        # 4 attention projections + 2 MLP projections per block + LM head.
        assert net.num_layers == 3 * 6 + 1

    def test_all_layers_are_fc(self):
        net = transformer_lm(num_blocks=2)
        assert all(l.layer_type is LayerType.FC for l in net.layers)

    def test_projection_shapes(self):
        net = transformer_lm(num_blocks=1, d_model=128, mlp_ratio=4, vocab_size=512)
        dims = [(l.in_channels, l.out_channels) for l in net.layers]
        assert dims[:4] == [(128, 128)] * 4          # q, k, v, o
        assert dims[4] == (128, 512)                 # mlp up
        assert dims[5] == (512, 128)                 # mlp down
        assert dims[6] == (128, 512)                 # lm head

    def test_weight_count(self):
        net = transformer_lm(num_blocks=1, d_model=64, mlp_ratio=2, vocab_size=100)
        expected = 4 * 64 * 64 + 64 * 128 + 128 * 64 + 64 * 100
        assert net.total_weights == expected

    def test_indices_sequential(self):
        net = transformer_lm(num_blocks=2)
        assert [l.index for l in net.layers] == list(range(net.num_layers))

    def test_rejects_invalid_dims(self):
        with pytest.raises(ValueError):
            transformer_lm(num_blocks=0)
        with pytest.raises(ValueError):
            transformer_lm(d_model=0)

    def test_custom_name(self):
        assert transformer_lm(name="MyLM").name == "MyLM"


class TestSearchCompatibility:
    def test_mappable_and_searchable(self):
        from repro.core import autohet_search

        net = transformer_lm(num_blocks=1, d_model=128, vocab_size=256)
        result = autohet_search(net, rounds=10, seed=0)
        assert result.best_metrics.utilization > 0
        assert len(result.best_strategy) == net.num_layers
