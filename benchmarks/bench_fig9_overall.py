"""Figure 9 — overall performance: RUE, utilization, energy.

Regenerates the main result: the five homogeneous square accelerators and
AutoHet's RL-searched heterogeneous configuration, for AlexNet/MNIST,
VGG16/CIFAR-10, and ResNet152/ImageNet.

Expected shapes (paper §4.2): AutoHet has the highest RUE on every model
(paper: 1.3x / 2.2x / 1.4x over the best homogeneous for AlexNet / VGG16 /
ResNet152; 5.1x the homogeneous average); small squares win utilization
and lose energy, 512x512 the reverse; normalized energy spans ~12.5x for
VGG16.
"""

from conftest import run_once

from repro.bench import fig9_overall, print_fig9


def test_fig9_overall(benchmark):
    results = run_once(benchmark, fig9_overall)
    print_fig9(results)
    for res in results:
        # AutoHet wins RUE on every model.
        assert res.autohet.rue == max(r.rue for r in res.rows)
        assert res.rue_speedup >= 1.0
        # The homogeneous trade-off: the utilization champion is a small
        # square; the energy champion is the biggest one.
        homo = res.rows[:-1]
        best_u = max(homo, key=lambda r: r.utilization_percent)
        best_e = min(homo, key=lambda r: r.energy_nj)
        assert best_u.label in ("32x32", "64x64")
        assert best_e.label in ("256x256", "512x512")
