"""Property-based tests: Eq. 4 invariants over the full candidate space.

These are the guarantees the static checker (MAP001-MAP003) is built on;
hypothesis sweeps layer shapes far beyond the paper's Table 2 workloads.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.checkers import check_mapping
from repro.arch.config import (
    RECTANGLE_CANDIDATES,
    SQUARE_CANDIDATES,
    CrossbarShape,
)
from repro.arch.mapping import map_layer
from repro.models.layers import LayerSpec

ALL_CANDIDATES = SQUARE_CANDIDATES + RECTANGLE_CANDIDATES

conv_layers = st.builds(
    lambda cin, cout, k: LayerSpec.conv(cin, cout, k, input_size=max(k, 8)),
    cin=st.integers(min_value=1, max_value=512),
    cout=st.integers(min_value=1, max_value=1024),
    k=st.sampled_from([1, 2, 3, 5, 7, 11]),
)
fc_layers = st.builds(
    LayerSpec.fc,
    st.integers(min_value=1, max_value=8192),
    st.integers(min_value=1, max_value=4096),
)
layers = st.one_of(conv_layers, fc_layers)
shapes = st.sampled_from(ALL_CANDIDATES)


@settings(max_examples=300, deadline=None)
@given(layer=layers, shape=shapes)
def test_eq4_utilization_in_unit_interval(layer, shape):
    """Eq. 4 (and its kernel-split generalisation) stays in (0, 1]."""
    mapping = map_layer(layer, shape)
    assert 0.0 < mapping.utilization <= 1.0


@settings(max_examples=300, deadline=None)
@given(layer=layers, shape=shapes)
def test_num_crossbars_consistency(layer, shape):
    """The occupied array always offers enough cells for the weights, and
    the group counts are exactly Eq. 4's ceilings."""
    mapping = map_layer(layer, shape)
    assert mapping.num_crossbars == mapping.row_groups * mapping.col_groups
    assert mapping.num_crossbars >= 1
    assert mapping.total_cells >= mapping.weight_cells
    # Column groups cover Cout; row groups cover Cin*k^2.
    assert mapping.col_groups * shape.cols >= layer.out_channels
    assert mapping.row_groups * shape.rows >= layer.in_channels * layer.kernel_elems


@settings(max_examples=300, deadline=None)
@given(layer=layers, shape=shapes)
def test_checker_accepts_every_real_mapping(layer, shape):
    """map_layer's output must never trip MAP001-MAP003 — the checker
    flags corruption, not valid mappings."""
    assert check_mapping(map_layer(layer, shape)) == []


@settings(max_examples=200, deadline=None)
@given(
    layer=layers,
    rows=st.integers(min_value=1, max_value=700),
    cols=st.integers(min_value=1, max_value=700),
)
def test_eq4_bounds_hold_off_candidate_shapes(layer, rows, cols):
    """The bounds are properties of the packing math, not of the §3.3
    candidate discipline — arbitrary positive geometries obey them too."""
    mapping = map_layer(layer, CrossbarShape(rows, cols))
    assert 0.0 < mapping.utilization <= 1.0
    assert check_mapping(mapping) == []
