#!/usr/bin/env python3
"""Extension: layer-pipelined batch throughput with weight replication.

The paper evaluates single-image latency; deployed ReRAM accelerators
(PipeLayer, ISAAC) pipeline a batch through the layers and replicate the
weight arrays of heavy early layers to balance the stages.  This example:

1. builds the pipeline timing for VGG16 on the AutoHet-searched strategy;
2. shows the early-conv bottleneck and per-stage utilisation;
3. sweeps the crossbar budget, watching the water-filling replicator
   flatten the pipeline and multiply throughput.

Run:  python examples/pipeline_throughput.py
"""

from repro import (
    DEFAULT_CANDIDATES,
    Simulator,
    autohet_search,
    balance_replication,
    pipeline_report,
    vgg16,
)
from repro.sim.pipeline import replication_crossbar_cost


def main() -> None:
    network = vgg16()
    simulator = Simulator()
    print("Searching a strategy for VGG16 (120 rounds)...")
    result = autohet_search(
        network, DEFAULT_CANDIDATES, rounds=120, simulator=simulator, seed=0
    )
    strategy = result.best_strategy

    base = pipeline_report(network, strategy)
    print(f"\nUnreplicated pipeline ({network.name}):")
    print(f"  fill latency:  {base.fill_ns:.3e} ns")
    print(f"  bottleneck:    L{base.bottleneck_stage.layer_index + 1} "
          f"({base.bottleneck_stage.shape_str}) at "
          f"{base.bottleneck_ns:.3e} ns/image")
    print(f"  throughput:    {base.throughput_img_per_s:,.0f} img/s")
    print(f"  balance:       {base.balance:.1%} mean stage utilisation")

    base_cost = replication_crossbar_cost(
        network, strategy, [1] * network.num_layers
    )
    print(f"\nBase mapping uses {base_cost} logical crossbars.")
    print("Replication sweep (greedy water-filling):")
    print(f"  {'budget':>8}  {'replicas (L1..L4)':>18}  "
          f"{'bottleneck ns':>14}  {'img/s':>10}  {'speedup':>8}")
    for headroom in (0, 16, 64, 256, 1024):
        budget = base_cost + headroom
        reps, report = balance_replication(
            network, strategy, crossbar_budget=budget
        )
        speedup = report.throughput_img_per_s / base.throughput_img_per_s
        head = ",".join(str(r) for r in reps[:4])
        print(
            f"  {budget:>8}  {head:>18}  {report.bottleneck_ns:>14.3e}  "
            f"{report.throughput_img_per_s:>10,.0f}  {speedup:>7.2f}x"
        )

    print("\nBatch latency (budget = base + 256):")
    _, balanced = balance_replication(
        network, strategy, crossbar_budget=base_cost + 256
    )
    for batch in (1, 8, 64):
        print(
            f"  batch {batch:>3}: sequential {batch * base.fill_ns:.3e} ns  "
            f"pipelined {balanced.batch_latency_ns(batch):.3e} ns"
        )


if __name__ == "__main__":
    main()
