"""Dimensional scaling laws of the cost model.

The unit declarations (``UNIT_TABLE``, the ``*_nj``/``*_nw`` suffixes)
are only honest if the model *behaves* dimensionally: scaling every
energy-dimension constant by a factor must scale reported energy by
exactly that factor and leave every other dimension untouched.  Doubling
is IEEE-exact (multiplying a float by 2.0 never rounds, and scaling by a
power of two commutes with addition's rounding), so the laws hold
bit-for-bit — on the scalar and the vectorized path alike.

Leakage makes the field set subtle: it is ``power_nw * latency_ns *
NW_NS_TO_NJ``, so the energy *output* dimension is reached through the
``_nw`` fields too.  The scaled config therefore doubles every ``_nj``,
``_nj_per_byte``, and ``_nw`` field; latency and area fields stay put.
"""

from __future__ import annotations

from dataclasses import fields

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.config import DEFAULT_CANDIDATES, DEFAULT_CONFIG, HardwareConfig
from repro.models import lenet
from repro.sim.simulator import CapacityError, Simulator

NETWORK = lenet()

ENERGY_SUFFIXES = ("_nj", "_nj_per_byte", "_nw")

ENERGY_COMPONENTS = (
    "adc", "dac", "crossbar", "shift_add", "adder_tree",
    "buffer", "bus", "pooling", "leakage", "total",
)


def doubled_energy_config(base: HardwareConfig = DEFAULT_CONFIG) -> HardwareConfig:
    scaled = {
        f.name: getattr(base, f.name) * 2.0
        for f in fields(base)
        if f.name.endswith(ENERGY_SUFFIXES)
    }
    assert scaled, "no energy-dimension fields found on HardwareConfig"
    return base.with_(**scaled)


strategies_for_network = st.lists(
    st.sampled_from(DEFAULT_CANDIDATES),
    min_size=NETWORK.num_layers,
    max_size=NETWORK.num_layers,
).map(tuple)


@pytest.mark.parametrize("vectorize", [False, True], ids=["scalar", "vectorized"])
@settings(max_examples=15, deadline=None)
@given(strategy=strategies_for_network)
def test_doubling_energy_constants_exactly_doubles_energy(vectorize, strategy):
    base = Simulator(config=DEFAULT_CONFIG, vectorize=vectorize)
    doubled = Simulator(config=doubled_energy_config(), vectorize=vectorize)
    m1 = base.evaluate(NETWORK, strategy)
    m2 = doubled.evaluate(NETWORK, strategy)
    assert m2.energy_nj == 2.0 * m1.energy_nj
    for name in ENERGY_COMPONENTS:
        assert getattr(m2.energy_breakdown, name) == 2.0 * getattr(
            m1.energy_breakdown, name
        ), name


@pytest.mark.parametrize("vectorize", [False, True], ids=["scalar", "vectorized"])
@settings(max_examples=15, deadline=None)
@given(strategy=strategies_for_network)
def test_doubling_energy_constants_leaves_other_dimensions_bit_identical(
    vectorize, strategy
):
    base = Simulator(config=DEFAULT_CONFIG, vectorize=vectorize)
    doubled = Simulator(config=doubled_energy_config(), vectorize=vectorize)
    m1 = base.evaluate(NETWORK, strategy)
    m2 = doubled.evaluate(NETWORK, strategy)
    assert m2.latency_ns == m1.latency_ns
    assert m2.area_um2 == m1.area_um2
    assert m2.utilization == m1.utilization
    assert m2.occupied_tiles == m1.occupied_tiles
    for lc1, lc2 in zip(m1.layer_costs, m2.layer_costs):
        assert lc2.latency_ns == lc1.latency_ns
        assert lc2.intra_utilization == lc1.intra_utilization
        assert lc2.num_crossbars == lc1.num_crossbars


@pytest.mark.parametrize("vectorize", [False, True], ids=["scalar", "vectorized"])
def test_scaling_law_survives_infeasibility(vectorize):
    """An infeasible pair stays infeasible — with the *same* message —
    under the scaled config: capacity is a count, not an energy."""
    strategy = tuple([DEFAULT_CANDIDATES[0]] * NETWORK.num_layers)
    tiny = DEFAULT_CONFIG.with_(tiles_per_bank=1)
    base = Simulator(config=tiny, vectorize=vectorize)
    doubled = Simulator(config=doubled_energy_config(tiny), vectorize=vectorize)
    with pytest.raises(CapacityError) as exc1:
        base.evaluate(NETWORK, strategy)
    with pytest.raises(CapacityError) as exc2:
        doubled.evaluate(NETWORK, strategy)
    assert str(exc1.value) == str(exc2.value)


@pytest.mark.parametrize("vectorize", [False, True], ids=["scalar", "vectorized"])
def test_scalar_and_vectorized_agree_on_the_scaled_config(vectorize):
    """The doubled config is an ordinary config: both evaluation paths
    must still agree bit-for-bit on it (vectorize is the outer compare)."""
    strategy = tuple([DEFAULT_CANDIDATES[1]] * NETWORK.num_layers)
    cfg = doubled_energy_config()
    m_this = Simulator(config=cfg, vectorize=vectorize).evaluate(NETWORK, strategy)
    m_other = Simulator(config=cfg, vectorize=not vectorize).evaluate(
        NETWORK, strategy
    )
    assert m_this.energy_nj == m_other.energy_nj
    assert m_this.latency_ns == m_other.latency_ns
    assert m_this.area_um2 == m_other.area_um2
