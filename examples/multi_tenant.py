#!/usr/bin/env python3
"""Extension: multi-model co-residency on one accelerator.

§3.4 notes that tiles released by the tile-shared scheme "become available
for other layers in the DNN model or other models."  This example takes
the hint twice.  First it searches per-model heterogeneous strategies for
AlexNet and VGG16, then co-locates both on one accelerator, letting
Algorithm 1 merge sparsely-filled tiles *across* model boundaries.  Then
it puts the co-located pair *online*: the ``repro.serve`` discrete-event
simulator drives Poisson request traffic at both tenants, batches them
through their layer pipelines, and — when the traffic mix inverts
mid-run — re-packs the accelerator with an extra weight copy for the hot
tenant (docs/serving.md).

Run:  python examples/multi_tenant.py [search_rounds]
"""

import sys

from repro import DEFAULT_CANDIDATES, Simulator, autohet_search, alexnet, vgg16
from repro.core.allocation import allocate_multi_network
from repro.serve import build_report, simulate, two_tenant_scenario


def main(rounds: int = 120) -> None:
    simulator = Simulator()
    capacity = simulator.config.logical_xbars_per_tile

    workloads = []
    for network in (alexnet(), vgg16()):
        print(f"Searching a strategy for {network.name}...")
        result = autohet_search(
            network, DEFAULT_CANDIDATES, rounds=rounds, simulator=simulator,
            seed=0,
        )
        m = result.best_metrics
        print(
            f"  {network.name}: U={m.utilization_percent:.1f}%  "
            f"RUE={m.rue:.3e}  tiles={m.occupied_tiles}"
        )
        workloads.append((network, result.best_strategy))

    print("\nCo-locating both models on one accelerator...")
    combined = allocate_multi_network(workloads, capacity, tile_shared=True)
    print(f"  separate accelerators: {combined.separate_tiles} tiles")
    print(f"  co-located:            {combined.occupied_tiles} tiles "
          f"({combined.tiles_saved} saved, "
          f"{combined.tiles_saved / combined.separate_tiles:.1%})")
    print(f"  combined utilization:  {combined.utilization:.1%}")

    shared = combined.shared_tiles()
    print(f"  tiles hosting layers from BOTH models: {len(shared)}")
    for tile in shared[:5]:
        owners = {}
        for idx, n in tile.occupants.items():
            name = next(s.name for s in combined.slices if s.owns(idx))
            owners[name] = owners.get(name, 0) + n
        mix = ", ".join(f"{k}: {v} XBs" for k, v in owners.items())
        print(f"    tile {tile.tile_id} ({tile.shape}): {mix}")

    print("\nServing the co-located pair online (repro.serve)...")
    scenario = two_tenant_scenario()
    result = simulate(scenario)
    report = build_report(result)
    requests = report["requests"]
    print(
        f"  {requests['arrivals']} requests over "
        f"{scenario.duration_ns / 1e9:.2f} simulated seconds: "
        f"{requests['completed']} completed, "
        f"{requests['rejected']} rejected"
    )
    for event in report["realloc_events"]:
        print(
            f"  t={event['t'] / 1e6:.1f}ms: traffic drift {event['drift']:.2f}"
            f" -> re-packed to replication {event['replication']} "
            f"({event['tiles']} tiles)"
        )
    for name, entry in report["tenants"].items():
        print(
            f"  {name:>5} ({entry['model']}): p50 "
            f"{entry['p50_ns'] / 1e6:.2f}ms  p99 "
            f"{entry['p99_ns'] / 1e6:.2f}ms  SLO "
            f"{entry['slo_attainment']:.1%}"
        )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 120)
