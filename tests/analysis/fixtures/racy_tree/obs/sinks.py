"""Fixture sink with a declared lock discipline — and one violation.

No fan-out reaches ``RecordSink``; the CON005 finding on ``drop_all``
proves the whole-class syntactic discipline pass runs even for code the
worker traversal never visits.  ``emit`` (write under the lock) and
``_append_locked`` (``# holds-lock:`` precondition) are the negative
twins.
"""

import threading


class RecordSink:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records = []  # guarded-by: _lock
        self.emitted = 0    # guarded-by: _lock

    def emit(self, record) -> None:
        with self._lock:
            self._records.append(record)
            self.emitted += 1

    def drop_all(self) -> None:
        self._records.clear()  # CON005: declared guard, lock not held

    def _append_locked(self, record) -> None:  # holds-lock: _lock
        self._records.append(record)

    def snapshot(self):
        with self._lock:
            return list(self._records)
