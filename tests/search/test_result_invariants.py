"""SearchResult bookkeeping invariants: the reward history covers the
seeding probes *and* the RL rounds, infeasible episodes are counted, and
the simulator's cache statistics ride along."""

import pytest

from repro.arch.config import DEFAULT_CANDIDATES
from repro.core.autohet import AutoHet, autohet_multi_seed, autohet_search
from repro.serialize import result_to_dict
from repro.sim.simulator import Simulator


@pytest.fixture(scope="module")
def tiny_result(request):
    tiny_net = request.getfixturevalue("tiny_net")
    return autohet_search(tiny_net, rounds=8, seed=0)


def test_reward_history_covers_seeds_and_rounds(tiny_result):
    assert tiny_result.seed_episodes == len(DEFAULT_CANDIDATES)
    assert tiny_result.rounds == 8
    assert (
        len(tiny_result.reward_history)
        == tiny_result.rounds + tiny_result.seed_episodes
    )
    assert len(tiny_result.best_reward_history) == len(
        tiny_result.reward_history
    )
    assert tiny_result.infeasible_episodes == 0  # default bank is huge


def test_unseeded_search_has_zero_seed_episodes(tiny_net):
    engine = AutoHet(tiny_net, seed=0)
    result = engine.search(4, seed_homogeneous=False)
    assert result.seed_episodes == 0
    assert len(result.reward_history) == 4


def test_cache_stats_follow_the_simulator(tiny_result, tiny_net):
    # Default simulator carries a cache -> stats come back with the result.
    stats = tiny_result.cache_stats
    assert stats is not None
    assert stats.lookups == len(tiny_result.reward_history)
    # An explicitly uncached simulator -> no stats, same invariants.
    bare = autohet_search(
        tiny_net, rounds=4, simulator=Simulator(cache=None), seed=0
    )
    assert bare.cache_stats is None


def test_result_serialization_records_new_fields(tiny_result):
    doc = result_to_dict(tiny_result)
    assert doc["seed_episodes"] == tiny_result.seed_episodes
    assert doc["infeasible_episodes"] == 0
    assert doc["cache"]["hits"] == tiny_result.cache_stats.hits
    assert doc["cache"]["hit_rate"] == tiny_result.cache_stats.hit_rate


def test_multi_seed_shares_one_cache(tiny_net):
    best, results = autohet_multi_seed(tiny_net, seeds=(0, 1), rounds=4)
    assert len(results) == 2
    assert best in results
    assert best.best_metrics.reward == max(
        r.best_metrics.reward for r in results
    )
    # Seed 1 re-probes seed 0's five uniform strategies: guaranteed hits.
    assert results[1].cache_stats.hits >= len(DEFAULT_CANDIDATES)
    for result in results:
        assert (
            len(result.reward_history)
            == result.rounds + result.seed_episodes
        )
