"""Layer specifications for DNN workloads.

The AutoHet search (paper §3.2) never looks at weight *values*; every
decision is a function of layer *shapes*.  ``LayerSpec`` therefore captures
exactly the static features that feed the RL state vector (paper Table 1):

====  ========  =====================================================
No.   Symbol    Meaning
====  ========  =====================================================
1     ``k``     layer index (assigned by the network container)
2     ``t``     layer type: CONV -> 1, FC -> 0
3     ``inc``   number of channels in the input feature map
4     ``outc``  number of channels produced by the layer
5     ``ks``    number of elements of a convolution kernel (k*k)
6     ``s``     stride of the convolution
7     ``w``     number of weights in the layer
8     ``ins``   linear size of the (square) input feature map
====  ========  =====================================================

Fully-connected layers are treated as a special case of convolution with
``kernel_size == 1`` and ``stride == 1`` whose "channels" are the neuron
counts — exactly the convention of §3.2 ("we consider the FC layer as a
special kind of CONV layer").
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field, replace


class LayerType(enum.Enum):
    """The two weight-bearing layer kinds the paper maps onto crossbars."""

    CONV = "conv"
    FC = "fc"

    @property
    def state_code(self) -> int:
        """Numeric code used in the RL state vector (CONV: 1, FC: 0)."""
        return 1 if self is LayerType.CONV else 0


@dataclass(frozen=True)
class LayerSpec:
    """Shape description of one weight-bearing DNN layer.

    Parameters
    ----------
    layer_type:
        ``LayerType.CONV`` or ``LayerType.FC``.
    in_channels:
        Input channels (``Cin``); for FC layers the number of input neurons.
    out_channels:
        Output channels (``Cout``); for FC layers the number of output
        neurons.
    kernel_size:
        Side length of the (square) convolution kernel.  Forced to 1 for FC
        layers.
    stride:
        Convolution stride.  Forced to 1 for FC layers.
    padding:
        Spatial zero padding applied on each border before convolving.
    input_size:
        Side length of the (square) input feature map this layer sees when
        run on its dataset.  ``1`` for FC layers.
    name:
        Optional human-readable name (e.g. ``"conv3_2"``).
    index:
        Position of the layer within its network (``k`` in Table 1);
        assigned by :class:`~repro.models.graph.Network`.
    """

    layer_type: LayerType
    in_channels: int
    out_channels: int
    kernel_size: int = 1
    stride: int = 1
    padding: int = 0
    input_size: int = 1
    name: str = ""
    index: int = 0

    def __post_init__(self) -> None:
        if self.in_channels <= 0 or self.out_channels <= 0:
            raise ValueError(
                f"channel counts must be positive, got "
                f"in={self.in_channels}, out={self.out_channels}"
            )
        if self.kernel_size <= 0:
            raise ValueError(f"kernel_size must be positive, got {self.kernel_size}")
        if self.stride <= 0:
            raise ValueError(f"stride must be positive, got {self.stride}")
        if self.padding < 0:
            raise ValueError(f"padding must be non-negative, got {self.padding}")
        if self.input_size <= 0:
            raise ValueError(f"input_size must be positive, got {self.input_size}")
        if self.layer_type is LayerType.FC:
            if self.kernel_size != 1 or self.stride != 1:
                raise ValueError("FC layers must have kernel_size == stride == 1")

    # ------------------------------------------------------------------
    # Derived shape quantities
    # ------------------------------------------------------------------
    @property
    def kernel_elems(self) -> int:
        """``ks`` in Table 1: elements of one 2-D kernel slice (k*k)."""
        return self.kernel_size * self.kernel_size

    @property
    def weight_count(self) -> int:
        """``w`` in Table 1: total scalar weights in the layer."""
        return self.in_channels * self.out_channels * self.kernel_elems

    @property
    def weight_matrix_shape(self) -> tuple[int, int]:
        """Shape of the unfolded weight matrix mapped onto crossbars.

        Per Fig. 7 the layer unfolds to ``Cin * k^2`` rows by ``Cout``
        columns: each kernel becomes one column.
        """
        return (self.in_channels * self.kernel_elems, self.out_channels)

    @property
    def output_size(self) -> int:
        """Side length of the (square) output feature map."""
        if self.layer_type is LayerType.FC:
            return 1
        out = (self.input_size + 2 * self.padding - self.kernel_size) // self.stride + 1
        return max(out, 1)

    @property
    def mvm_ops(self) -> int:
        """Matrix-vector multiplications needed for one inference pass.

        One MVM per output spatial position for CONV layers; a single MVM
        for FC layers.  This count scales the per-layer dynamic energy and
        latency in :mod:`repro.sim`.
        """
        if self.layer_type is LayerType.FC:
            return 1
        return self.output_size * self.output_size

    @property
    def macs(self) -> int:
        """Multiply-accumulate operations for one inference pass."""
        return self.mvm_ops * self.weight_count

    # ------------------------------------------------------------------
    # Constructors and transforms
    # ------------------------------------------------------------------
    @staticmethod
    def conv(
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        *,
        stride: int = 1,
        padding: int = 0,
        input_size: int = 1,
        name: str = "",
    ) -> "LayerSpec":
        """Build a convolutional layer spec."""
        return LayerSpec(
            LayerType.CONV,
            in_channels,
            out_channels,
            kernel_size=kernel_size,
            stride=stride,
            padding=padding,
            input_size=input_size,
            name=name,
        )

    @staticmethod
    def fc(in_features: int, out_features: int, *, name: str = "") -> "LayerSpec":
        """Build a fully-connected layer spec (k = s = 1 per §3.2)."""
        return LayerSpec(
            LayerType.FC,
            in_features,
            out_features,
            kernel_size=1,
            stride=1,
            padding=0,
            input_size=1,
            name=name,
        )

    def with_index(self, index: int) -> "LayerSpec":
        """Return a copy carrying its position within the network."""
        return replace(self, index=index)

    def with_input_size(self, input_size: int) -> "LayerSpec":
        """Return a copy seeing a different input feature-map size."""
        if self.layer_type is LayerType.FC:
            return self
        return replace(self, input_size=input_size)

    def state_features(self) -> tuple[int, int, int, int, int, int, int, int]:
        """The eight *static* Table-1 features ``(k, t, inc, outc, ks, s, w, ins)``."""
        return (
            self.index,
            self.layer_type.state_code,
            self.in_channels,
            self.out_channels,
            self.kernel_elems,
            self.stride,
            self.weight_count,
            self.input_size,
        )

    def describe(self) -> str:
        """One-line human-readable summary, e.g. ``C3-64 @32 (s1)``."""
        if self.layer_type is LayerType.FC:
            return f"F{self.out_channels} (in {self.in_channels})"
        return (
            f"C{self.kernel_size}-{self.out_channels} "
            f"(in {self.in_channels}, s{self.stride}, p{self.padding}, @{self.input_size})"
        )


@dataclass(frozen=True)
class PoolSpec:
    """A pooling stage between weight-bearing layers.

    Pooling layers own no weights and occupy no crossbars; they exist so
    the network container can propagate feature-map sizes correctly and so
    the latency/energy models can charge the pooling module (Fig. 1).
    """

    kind: str = "max"  # "max" or "avg"
    window: int = 2
    stride: int = 2

    def __post_init__(self) -> None:
        if self.kind not in ("max", "avg"):
            raise ValueError(f"pool kind must be 'max' or 'avg', got {self.kind!r}")
        if self.window <= 0 or self.stride <= 0:
            raise ValueError("pool window and stride must be positive")

    def output_size(self, input_size: int) -> int:
        """Feature-map side length after pooling."""
        return max(math.ceil((input_size - self.window + 1) / self.stride), 1)


@dataclass(frozen=True)
class Stage:
    """One step of a sequential network: a weight layer or a pooling op."""

    layer: LayerSpec | None = None
    pool: PoolSpec | None = None

    def __post_init__(self) -> None:
        if (self.layer is None) == (self.pool is None):
            raise ValueError("a Stage holds exactly one of layer / pool")
