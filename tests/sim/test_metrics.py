"""Tests for SystemMetrics / LayerCost bookkeeping details."""

import pytest

from repro.arch.config import CrossbarShape
from repro.models import lenet
from repro.sim import Simulator
from repro.sim.metrics import EnergyBreakdown, LayerCost, SystemMetrics


@pytest.fixture(scope="module")
def detailed_metrics():
    net = lenet()
    strategy = tuple(CrossbarShape(72, 64) for _ in net.layers)
    return net, Simulator().evaluate(net, strategy, detailed=True)


class TestLayerCosts:
    def test_layer_energy_sums_to_dynamic_total(self, detailed_metrics):
        _, m = detailed_metrics
        per_layer = sum(c.energy.total for c in m.layer_costs)
        overhead = m.energy_breakdown.pooling + m.energy_breakdown.leakage
        assert per_layer + overhead == pytest.approx(m.energy_nj)

    def test_layer_latency_below_total(self, detailed_metrics):
        _, m = detailed_metrics
        per_layer = sum(c.latency_ns for c in m.layer_costs)
        assert per_layer <= m.latency_ns  # pooling adds the rest
        assert per_layer > 0.9 * m.latency_ns

    def test_layer_cost_fields(self, detailed_metrics):
        net, m = detailed_metrics
        for cost, layer in zip(m.layer_costs, net.layers):
            assert cost.layer_index == layer.index
            assert cost.mvm_ops == layer.mvm_ops
            assert cost.shape_str == "72x64"
            assert cost.adc_conversions > 0
            assert cost.dac_conversions > 0
            assert 0 < cost.intra_utilization <= 1

    def test_occupied_crossbars_sum(self, detailed_metrics):
        _, m = detailed_metrics
        assert m.occupied_crossbars == sum(
            c.num_crossbars for c in m.layer_costs
        )


class TestMetricsConsistency:
    def test_strategy_strings(self, detailed_metrics):
        net, m = detailed_metrics
        assert m.strategy == tuple("72x64" for _ in net.layers)

    def test_empty_crossbars_nonnegative(self, detailed_metrics):
        _, m = detailed_metrics
        assert m.empty_crossbars >= 0
        slots = m.occupied_crossbars + m.empty_crossbars
        assert slots % Simulator().config.logical_xbars_per_tile == 0

    def test_rue_percent_vs_reward_factor(self, detailed_metrics):
        _, m = detailed_metrics
        assert m.rue == pytest.approx(100 * m.reward)


class TestEnergyBreakdownAlgebra:
    def test_identity_addition(self):
        e = EnergyBreakdown(adc=1.0)
        assert (e + EnergyBreakdown()).total == e.total

    def test_total_covers_all_fields(self):
        e = EnergyBreakdown(
            adc=1, dac=2, crossbar=3, shift_add=4, adder_tree=5,
            buffer=6, bus=7, pooling=8, leakage=9,
        )
        assert e.total == 45

    def test_scaled_zero(self):
        e = EnergyBreakdown(adc=3.0).scaled(0.0)
        assert e.total == 0.0
