"""Tests for the Global Controller instruction generator."""

import pytest

from repro.arch.config import CrossbarShape
from repro.arch.controller import GlobalController, Instruction, Opcode
from repro.sim import Simulator


@pytest.fixture
def gc(lenet_net):
    sim = Simulator()
    strategy = tuple(CrossbarShape(72, 64) for _ in lenet_net.layers)
    mappings = sim.map_network(lenet_net, strategy)
    allocation = sim.allocate(mappings, tile_shared=True)
    return GlobalController(allocation, lenet_net), allocation


class TestMappingProgram:
    def test_one_load_per_block(self, gc):
        controller, allocation = gc
        loads = [
            i for i in controller.mapping_program()
            if i.opcode is Opcode.LOAD_WEIGHTS
        ]
        expected = sum(m.num_crossbars for m in allocation.mappings)
        assert len(loads) == expected

    def test_load_payload_is_crossbar_bytes(self, gc):
        controller, allocation = gc
        load = controller.mapping_program()[0]
        shape = allocation.mappings[0].shape
        assert load.size == shape.cells  # 8-bit weights -> 1 byte per cell

    def test_moves_match_comb_map(self, gc):
        controller, allocation = gc
        moves = [
            i for i in controller.mapping_program() if i.opcode is Opcode.MOVE
        ]
        expected = sum(len(v) for v in allocation.comb_map.values())
        assert len(moves) == expected


class TestInferenceProgram:
    def test_mvm_count_is_blocks_times_positions(self, gc):
        controller, allocation = gc
        program = controller.inference_program()
        mvms = sum(1 for i in program if i.opcode is Opcode.MVM)
        expected = sum(
            m.layer.mvm_ops * m.num_crossbars for m in allocation.mappings
        )
        assert mvms == expected

    def test_fetch_count_is_total_mvm_ops(self, gc):
        controller, allocation = gc
        program = controller.inference_program()
        fetches = sum(1 for i in program if i.opcode is Opcode.FETCH_INPUT)
        assert fetches == sum(m.layer.mvm_ops for m in allocation.mappings)

    def test_stores_match_fetches(self, gc):
        controller, _ = gc
        hist = GlobalController.histogram(controller.inference_program())
        assert hist[Opcode.STORE_OUTPUT] == hist[Opcode.FETCH_INPUT]

    def test_merge_only_for_multi_row_group_layers(self, gc):
        controller, allocation = gc
        program = controller.inference_program()
        merges = sum(1 for i in program if i.opcode is Opcode.MERGE)
        expected = sum(
            m.layer.mvm_ops for m in allocation.mappings if m.row_groups > 1
        )
        assert merges == expected

    def test_pool_instructions_for_pooled_layers(self, gc, lenet_net):
        controller, _ = gc
        program = controller.inference_program()
        pools = [i for i in program if i.opcode is Opcode.POOL]
        pooled_layers = sum(
            1 for i in range(lenet_net.num_layers)
            if lenet_net.pool_after(i) is not None
        )
        assert len(pools) == pooled_layers

    def test_instruction_str_readable(self):
        ins = Instruction(Opcode.MVM, layer_index=0, tile_id=3, pe_id=1)
        text = str(ins)
        assert "mvm" in text and "L1" in text and "tile3" in text
