"""Tests for the dimensional-analysis pass (UNI rules)."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.units import (
    analyze_units,
    format_unit,
    parse_unit,
    suffix_unit,
    unit_div,
    unit_mul,
    units_findings,
)

FIXTURE_TREE = Path(__file__).parent / "fixtures" / "mixed_units_tree"
REPRO_SRC = Path(__file__).parents[2] / "src" / "repro"


def ids(source, rel="sim/mod.py"):
    return sorted(d.rule_id for d in units_findings(source, rel))


class TestUnitAlgebra:
    def test_parse_is_canonical(self):
        assert parse_unit("nJ") == (("nJ", 1),)
        assert parse_unit("count") == ()
        assert parse_unit("1") == ()
        assert parse_unit("nJ/(nW*ns)") == (("nJ", 1), ("nW", -1), ("ns", -1))
        assert parse_unit("nJ/byte") == (("byte", -1), ("nJ", 1))

    def test_mul_composes_and_cancels(self):
        nw_ns = unit_mul(parse_unit("nW"), parse_unit("ns"))
        assert unit_mul(nw_ns, parse_unit("nJ/(nW*ns)")) == parse_unit("nJ")

    def test_div_inverts(self):
        assert unit_div(parse_unit("nJ"), parse_unit("ns")) == parse_unit("nJ/ns")
        assert unit_div(parse_unit("nJ"), parse_unit("nJ")) == ()

    def test_unknown_propagation_is_optimistic(self):
        # unknown * dimensioned passes the dimension through; unknown
        # meeting dimensionless stays unknown (claiming () would later
        # conflict with real units downstream).
        assert unit_mul(None, parse_unit("nJ")) == parse_unit("nJ")
        assert unit_mul(None, ()) is None
        assert unit_mul(None, None) is None

    def test_format_round_trips_readably(self):
        assert format_unit(None) == "?"
        assert format_unit(()) == "1"
        assert format_unit(parse_unit("nJ/(nW*ns)")) == "nJ/(nW*ns)"

    def test_suffix_table_longest_first(self):
        assert suffix_unit("energy_buffer_nj_per_byte") == parse_unit("nJ/byte")
        assert suffix_unit("energy_adc_nj") == parse_unit("nJ")
        assert suffix_unit("idle_line_energy_fraction") == ()
        assert suffix_unit("mvm_ops") is None


class TestUNI001MixedAddition:
    def test_energy_plus_latency(self):
        src = "def f(c):\n    return c.energy_adc_nj + c.latency_adc_ns\n"
        assert ids(src) == ["UNI001"]

    def test_comparison_mixing_units(self):
        src = "def f(c):\n    return c.energy_adc_nj < c.latency_adc_ns\n"
        assert ids(src) == ["UNI001"]

    def test_min_mixing_units(self):
        src = "def f(c):\n    return min(c.energy_adc_nj, c.latency_adc_ns)\n"
        assert ids(src) == ["UNI001"]

    def test_same_unit_addition_is_clean(self):
        src = "def f(c):\n    return c.energy_adc_nj + c.energy_dac_nj\n"
        assert ids(src) == []

    def test_literal_accumulator_is_polymorphic(self):
        src = (
            "def f(xs):\n"
            "    total = 0.0\n"
            "    for x_ns in xs:\n"
            "        total += x_ns\n"
            "    return total\n"
        )
        assert ids(src) == []

    def test_count_scaling_is_polymorphic(self):
        src = "def f(c, mvm_ops):\n    return mvm_ops * c.energy_adc_nj\n"
        assert ids(src) == []

    def test_waiver_suppresses(self):
        src = (
            "def f(c):\n"
            "    return c.energy_adc_nj + c.latency_adc_ns"
            "  # unit-ok: UNI001 (test)\n"
        )
        assert ids(src) == []


class TestUNI002FieldCoverage:
    def test_unsuffixed_numeric_field_flagged(self):
        src = (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class C:\n"
            "    energy_x_nj: float = 1.0\n"
            "    gain: float = 2.0\n"
        )
        assert ids(src) == ["UNI002"]

    def test_fully_suffixed_class_is_clean(self):
        src = (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class C:\n"
            "    energy_x_nj: float = 1.0\n"
            "    gain_fraction: float = 2.0\n"
        )
        assert ids(src) == []

    def test_class_outside_the_contract_is_ignored(self):
        # No suffixed field and no UNIT_TABLE entry: not unit-bearing.
        src = (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class Packed:\n"
            "    floats: int = 0\n"
            "    ints: int = 0\n"
        )
        assert ids(src) == []

    def test_dangling_table_entry_flagged(self):
        # The real HardwareConfig table covers pes_per_tile; a source
        # where the field was renamed must flag the stale entry.
        real = (REPRO_SRC / "arch" / "config.py").read_text()
        tampered = real.replace("pes_per_tile: int", "pes_per_tile_x: int", 1)
        found = ids(tampered, "arch/config.py")
        assert "UNI002" in found

    def test_waiver_suppresses(self):
        src = (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class C:\n"
            "    energy_x_nj: float = 1.0\n"
            "    gain: float = 2.0  # unit-ok: UNI002 (test)\n"
        )
        assert ids(src) == []


class TestUNI003BareConversion:
    def test_power_of_ten_scaling_a_unit(self):
        src = "def f(c):\n    return c.energy_adc_nj * 1e-9\n"
        assert ids(src) == ["UNI003"]

    def test_division_by_power_of_ten(self):
        src = "def f(c):\n    return c.latency_adc_ns / 1000\n"
        assert ids(src) == ["UNI003"]

    def test_small_literals_are_not_conversions(self):
        src = "def f(c):\n    return c.energy_adc_nj * 100.0\n"
        assert ids(src) == []

    def test_non_power_of_ten_is_not_a_conversion(self):
        src = "def f(c):\n    return c.energy_adc_nj * 8192.0\n"
        assert ids(src) == []

    def test_scaling_a_dimensionless_value_is_clean(self):
        src = "def f(c):\n    return c.pes_per_tile * 1e6\n"
        assert ids(src) == []

    def test_named_constant_is_the_sanctioned_spelling(self):
        src = (
            "from repro.sim.units_constants import NW_NS_TO_NJ\n"
            "def f(power_nw, latency_ns):\n"
            "    return power_nw * latency_ns * NW_NS_TO_NJ\n"
        )
        assert ids(src) == []

    def test_waiver_suppresses(self):
        src = (
            "def f(c):\n"
            "    return c.energy_adc_nj * 1e-9  # unit-ok: UNI003 (test)\n"
        )
        assert ids(src) == []


class TestUNI004DeclaredVsInferred:
    def test_suffixed_function_returning_wrong_unit(self):
        src = "def cost_ns(c):\n    return c.energy_adc_nj\n"
        assert ids(src) == ["UNI004"]

    def test_suffixed_binding_of_wrong_unit(self):
        src = "def f(c):\n    total_nj = c.latency_adc_ns\n    return total_nj\n"
        assert ids(src) == ["UNI004"]

    def test_constructor_keyword_mismatch(self):
        src = (
            "def f(c, EnergyBreakdown):\n"
            "    return EnergyBreakdown(adc=c.latency_adc_ns)\n"
        )
        assert ids(src) == ["UNI004"]

    def test_conversion_fixes_the_unit(self):
        src = (
            "from repro.sim.units_constants import NW_NS_TO_NJ\n"
            "def f(c, t_ns):\n"
            "    total_nj = c.leak_tile_nw * t_ns * NW_NS_TO_NJ\n"
            "    return total_nj\n"
        )
        assert ids(src) == []

    def test_dimensionless_into_declared_slot_is_polymorphic(self):
        # A count may fill any declared slot: counts scale dimensions.
        src = "def f(c):\n    total_nj = c.pes_per_tile * 2\n    return total_nj\n"
        assert ids(src) == []

    def test_finding_carries_inferred_and_declared(self):
        src = "def cost_ns(c):\n    return c.energy_adc_nj\n"
        (diag,) = units_findings(src, "sim/mod.py")
        assert dict(diag.data) == {"inferred": "nJ", "declared": "ns"}

    def test_waiver_suppresses(self):
        src = "def cost_ns(c):\n    return c.energy_adc_nj  # unit-ok: UNI004 (test)\n"
        assert ids(src) == []


class TestUNI005TracerStreams:
    def test_wrong_unit_to_stream_constant(self):
        src = (
            'ENERGY = "sim.energy_nj"\n'
            "def f(tracer, latency_ns):\n"
            "    tracer.counter(ENERGY, latency_ns)\n"
        )
        assert ids(src, "obs/metrics.py") == ["UNI005"]

    def test_literal_stream_name_resolves_too(self):
        src = (
            "def f(tracer, latency_ns):\n"
            '    tracer.counter("sim.energy_nj", latency_ns)\n'
        )
        assert ids(src, "obs/metrics.py") == ["UNI005"]

    def test_matching_unit_is_clean(self):
        src = (
            "def f(tracer, energy_nj):\n"
            '    tracer.counter("sim.energy_nj", energy_nj)\n'
        )
        assert ids(src, "obs/metrics.py") == []

    def test_unregistered_stream_is_silent(self):
        src = (
            "def f(tracer, latency_ns):\n"
            '    tracer.counter("debug.scratch", latency_ns)\n'
        )
        assert ids(src, "obs/metrics.py") == []

    def test_waiver_suppresses(self):
        src = (
            "def f(tracer, latency_ns):\n"
            '    tracer.counter("sim.energy_nj", latency_ns)'
            "  # unit-ok: UNI005 (test)\n"
        )
        assert ids(src, "obs/metrics.py") == []


class TestTamperedRealSources:
    """Every rule must fire on a minimally corrupted *real* module —
    the analyzer has to see through real-code idioms, not just toys."""

    def test_uni001_leakage_mixing_nw_with_ns(self):
        real = (REPRO_SRC / "sim" / "energy.py").read_text()
        assert "occupied_tiles * config.leak_tile_nw" in real
        tampered = real.replace(
            "occupied_tiles * config.leak_tile_nw",
            "occupied_tiles * config.latency_control_ns",
        )
        assert "UNI001" in ids(tampered, "sim/energy.py")

    def test_uni002_new_unsuffixed_config_field(self):
        real = (REPRO_SRC / "arch" / "config.py").read_text()
        assert "weight_bits: int = 8" in real
        tampered = real.replace(
            "weight_bits: int = 8",
            "adc_gain: float = 1.0\n    weight_bits: int = 8",
            1,
        )
        assert ids(tampered, "arch/config.py") == ["UNI002"]

    def test_uni003_inlined_leakage_conversion(self):
        real = (REPRO_SRC / "sim" / "energy.py").read_text()
        assert "power_nw * latency_ns * NW_NS_TO_NJ" in real
        tampered = real.replace(
            "power_nw * latency_ns * NW_NS_TO_NJ",
            "power_nw * latency_ns * 1e-9",
        )
        assert ids(tampered, "sim/energy.py") == ["UNI003"]

    def test_uni004_energy_slot_fed_latency(self):
        # The adc term picks up nanoseconds instead of nanojoules; the
        # divergence surfaces at the EnergyBreakdown(adc=...) keyword.
        real = (REPRO_SRC / "sim" / "energy.py").read_text()
        assert "config.energy_adc_nj()" in real
        tampered = real.replace(
            "config.energy_adc_nj()", "config.latency_adc_ns"
        )
        assert "UNI004" in ids(tampered, "sim/energy.py")

    def test_uni005_latency_emitted_to_energy_stream(self):
        real = (REPRO_SRC / "obs" / "metrics.py").read_text()
        needle = "tracer.counter(ENERGY_NJ, metrics.energy_nj, network=network)"
        assert needle in real
        tampered = real.replace(
            needle,
            "tracer.counter(ENERGY_NJ, metrics.latency_ns, network=network)",
        )
        assert ids(tampered, "obs/metrics.py") == ["UNI005"]


class TestEntryPoints:
    def test_fixture_tree_has_exactly_one_finding_per_rule(self):
        diags = analyze_units(FIXTURE_TREE)
        assert [d.rule_id for d in diags] == [
            "UNI001", "UNI002", "UNI003", "UNI004", "UNI005",
        ]
        assert all(d.severity.value == "error" for d in diags)

    def test_real_tree_is_dimensionally_clean(self):
        assert analyze_units() == []

    def test_empty_tree_raises(self, tmp_path):
        with pytest.raises(ValueError, match="no cost-model modules"):
            analyze_units(tmp_path)

    def test_findings_are_locatable(self):
        diags = analyze_units(FIXTURE_TREE)
        for d in diags:
            path, _, lineno = d.location.rpartition(":")
            assert (FIXTURE_TREE / path).is_file()
            assert int(lineno) > 0
