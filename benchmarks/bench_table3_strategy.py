"""Table 3 — the chosen crossbar size for each VGG16 layer.

Regenerates the per-layer strategy table for Base (best homogeneous),
+He (RL over squares), and +Hy (RL over the hybrid set).

Expected shapes (paper §4.3): Base is uniform 512x512; +He keeps large
squares with some 256x256 layers; +Hy moves (nearly) all layers onto the
large rectangles (576x512 / 288x256).
"""

from conftest import run_once

from repro.bench import print_table3, table3_strategies


def test_table3_strategies(benchmark):
    data = run_once(benchmark, table3_strategies)
    print_table3(data)
    assert set(data["Base"]) == {"512x512"}
    # +He stays within the square family.
    assert all("x" in s and s.split("x")[0] == s.split("x")[1] for s in data["+He"])
    # +Hy prefers the big rectangles for most VGG16 layers.
    large_rect = sum(1 for s in data["+Hy"] if s in ("576x512", "288x256"))
    assert large_rect >= 12
