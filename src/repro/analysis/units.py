"""Dimensional analysis of the cost model (UNI rules).

The cost path mixes nanojoules, nanoseconds, nanowatts, square microns,
bytes, and plain counts in ordinary Python floats; nothing at runtime
stops ``energy_nj + latency_ns`` from producing a well-formed number
with no meaning.  This pass runs a small abstract interpreter over the
cost-model modules, tracking *physical units* instead of values, and
flags dimensional nonsense statically.

Unit facts come from three sources, in priority order per name:

1. **Conversion constants** — module constants declared in
   ``repro.sim.units_constants.CONVERSION_UNITS`` (``NW_NS_TO_NJ`` is
   ``nJ/(nW*ns)``); multiplying by one *changes* the unit, checkably.
2. **Naming convention** — suffixes on variables, parameters, fields,
   attributes, and function names: ``*_nj``, ``*_ns``, ``*_nw``,
   ``*_um2``, ``*_bytes``, ``*_nj_per_byte``, ``*_fraction``.
3. **The UNIT_TABLE** — ``repro.arch.config.UNIT_TABLE`` declares the
   unit of every unsuffixed numeric field of the config/result classes,
   the kernel batch columns, and the ``repro.obs`` metric streams.

Units propagate through arithmetic: add/sub/compare/min/max require
equal units (UNI001), mul/div compose exponents, ``sum``/``cumsum``/
``float()`` preserve.  Dimensionless quantities (counts, fractions,
bits, flags) are *unit-polymorphic*: a count may scale or join any
dimension without a finding, because ``mvm_ops * energy_per_op`` is the
whole point of a count.  The interpreter is likewise optimistic about
unknowns — values it cannot type produce no findings, so the real tree
stays clean and findings come only from positive evidence.

========  =============================================================
UNI001    add/sub/compare/min/max mixing two *known, different* units
UNI002    numeric field with neither suffix nor UNIT_TABLE entry, or a
          table entry naming a member that no longer exists
UNI003    bare power-of-ten literal scaling a unit-bearing value — an
          undeclared conversion; name it in repro.sim.units_constants
UNI004    value flowing into a declared slot (suffix-named binding or
          return, constructor keyword) with a different inferred unit
UNI005    value emitted to a repro.obs counter stream whose declared
          unit (UNIT_TABLE["obs.streams"]) disagrees
========  =============================================================

Deliberate exceptions are waived in place with ``# unit-ok: UNIxxx
(reason)`` on the offending line.  Entry points:
:func:`units_findings` (one source text) and :func:`analyze_units`
(the cost-model module set, wired into ``repro check --units``).
"""

from __future__ import annotations

import ast
import math
import re
from dataclasses import dataclass
from pathlib import Path

from .callgraph import ModuleIndex, ModuleInfo
from .invariants import UNI001, UNI002, UNI003, UNI004, UNI005, Diagnostic

_SUPPRESS_RE = re.compile(r"#\s*unit-ok:\s*(UNI\d{3})")

#: A unit is a sorted tuple of (dimension, exponent) pairs; ``()`` is
#: dimensionless and ``None`` is unknown.
Unit = "tuple[tuple[str, int], ...]"

#: Spec atoms that mean "dimensionless" — interchangeable with each
#: other and polymorphic against every real dimension.
DIMENSIONLESS_TOKENS = frozenset({"", "1", "count", "fraction", "percent",
                                  "bit", "flag"})

#: Name-suffix convention, longest suffix first so ``_nj_per_byte``
#: wins over ``_nj``.
SUFFIX_UNITS: tuple[tuple[str, str], ...] = (
    ("_nj_per_byte", "nJ/byte"),
    ("_ns_per_byte", "ns/byte"),
    ("_nj", "nJ"),
    ("_ns", "ns"),
    ("_nw", "nW"),
    ("_um2", "um2"),
    ("_bytes", "byte"),
    ("_fraction", "1"),
)

#: The modules the cost path flows through — the analysis scope.
SCOPE_MODULES: tuple[tuple[str, str], ...] = (
    ("repro.arch.config", "arch/config.py"),
    ("repro.core.allocation.summary", "core/allocation/summary.py"),
    ("repro.obs.metrics", "obs/metrics.py"),
    ("repro.sim.area", "sim/area.py"),
    ("repro.sim.energy", "sim/energy.py"),
    ("repro.sim.kernels", "sim/kernels.py"),
    ("repro.sim.latency", "sim/latency.py"),
    ("repro.sim.metrics", "sim/metrics.py"),
    ("repro.sim.simulator", "sim/simulator.py"),
    ("repro.sim.units_constants", "sim/units_constants.py"),
)


# ----------------------------------------------------------------------
# Unit algebra
# ----------------------------------------------------------------------
def parse_unit(spec: str) -> tuple:
    """Parse a unit spec (``"nJ"``, ``"nJ/(nW*ns)"``, ``"count"``).

    ``*`` composes, the first ``/`` divides (everything after any ``/``
    lands in the denominator), parentheses group, and dimensionless
    tokens vanish.  The result is canonical: sorted, zero exponents
    dropped, so equal units compare equal as tuples.
    """
    exps: dict[str, int] = {}
    for slot, part in enumerate(spec.split("/")):
        sign = 1 if slot == 0 else -1
        for atom in part.strip().strip("()").split("*"):
            atom = atom.strip()
            if atom in DIMENSIONLESS_TOKENS:
                continue
            exps[atom] = exps.get(atom, 0) + sign
    return tuple(sorted((d, e) for d, e in exps.items() if e))


def format_unit(unit: tuple | None) -> str:
    """Human-readable form: ``None`` -> ``"?"``, ``()`` -> ``"1"``."""
    if unit is None:
        return "?"
    if not unit:
        return "1"
    num = [d if e == 1 else f"{d}^{e}" for d, e in unit if e > 0]
    den = [d if e == -1 else f"{d}^{-e}" for d, e in unit if e < 0]
    head = "*".join(num) if num else "1"
    if not den:
        return head
    tail = den[0] if len(den) == 1 else "(" + "*".join(den) + ")"
    return f"{head}/{tail}"


def unit_mul(a: tuple | None, b: tuple | None) -> tuple | None:
    """Compose units under multiplication.

    One unknown operand passes the *known, dimensioned* side through
    (``count * x_nj`` is nJ even when the count is untyped); an unknown
    meeting a dimensionless value stays unknown — claiming
    dimensionless there would later flag against real units.
    """
    if a is None or b is None:
        known = a if b is None else b
        return known if known else None
    exps = dict(a)
    for d, e in b:
        exps[d] = exps.get(d, 0) + e
    return tuple(sorted((d, e) for d, e in exps.items() if e))


def unit_inv(a: tuple | None) -> tuple | None:
    if a is None:
        return None
    return tuple(sorted((d, -e) for d, e in a))


def unit_div(a: tuple | None, b: tuple | None) -> tuple | None:
    return unit_mul(a, unit_inv(b))


def unit_pow(a: tuple | None, n: int) -> tuple | None:
    if a is None:
        return None
    exps = {d: e * n for d, e in a}
    return tuple(sorted((d, e) for d, e in exps.items() if e))


def units_conflict(a: tuple | None, b: tuple | None) -> bool:
    """Two *known, dimensioned, different* units — the only combination
    that is positive evidence of nonsense.  Unknown (``None``) and
    dimensionless (``()``) are polymorphic and never conflict."""
    return bool(a) and bool(b) and a != b


def suffix_unit(name: str) -> tuple | None:
    """Unit declared by a name's suffix, or ``None``."""
    low = name.lower()
    for suffix, spec in SUFFIX_UNITS:
        if low.endswith(suffix):
            return parse_unit(spec)
    return None


# ----------------------------------------------------------------------
# Declared-unit tables
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class UnitTables:
    """Parsed unit declarations the interpreter resolves names against."""

    #: class name -> field/property name -> unit (from UNIT_TABLE)
    classes: dict[str, dict[str, tuple]]
    #: attribute-name fallback: the union over all classes, with names
    #: whose declared units disagree across classes dropped entirely
    attrs: dict[str, tuple]
    #: conversion-constant name -> unit (from CONVERSION_UNITS)
    conversions: dict[str, tuple]
    #: obs counter stream name -> unit (from UNIT_TABLE["obs.streams"])
    streams: dict[str, tuple]


def load_tables() -> UnitTables:
    """Build :class:`UnitTables` from the *real* installed declarations.

    Like the kernel-parity contract, the tables always come from the
    importable ``repro`` package even under ``--source`` — the contract
    is the real one; only the scanned sources vary.
    """
    from ..arch.config import UNIT_TABLE
    from ..sim.units_constants import CONVERSION_UNITS

    classes: dict[str, dict[str, tuple]] = {}
    streams: dict[str, tuple] = {}
    for cls_name, fields_map in UNIT_TABLE.items():
        parsed = {f: parse_unit(u) for f, u in fields_map.items()}
        if cls_name == "obs.streams":
            streams = parsed
        else:
            classes[cls_name] = parsed
    attrs: dict[str, tuple] = {}
    conflicted: set[str] = set()
    for fields_map in classes.values():
        for name, unit in fields_map.items():
            if name in attrs and attrs[name] != unit:
                conflicted.add(name)
            attrs.setdefault(name, unit)
    for name in conflicted:
        attrs.pop(name, None)
    conversions = {n: parse_unit(u) for n, u in CONVERSION_UNITS.items()}
    return UnitTables(
        classes=classes, attrs=attrs, conversions=conversions, streams=streams
    )


# ----------------------------------------------------------------------
# The abstract interpreter
# ----------------------------------------------------------------------
#: builtins / helpers that return their first argument's unit unchanged
_PRESERVE_BUILTINS = frozenset({"float", "int", "abs", "round", "left_fold"})
#: numpy functions that preserve the unit of their first argument
_NP_PRESERVE = frozenset(
    {"sum", "cumsum", "abs", "ceil", "floor", "rint", "repeat", "asarray",
     "ascontiguousarray", "broadcast_to", "ravel", "reshape", "copy",
     "concatenate", "maximum_sctype"}
)
#: method names that preserve their receiver's unit
_METHOD_PRESERVE = frozenset(
    {"sum", "cumsum", "astype", "copy", "item", "tolist", "reshape",
     "max", "min", "clip"}
)
#: annotation texts that mark a field as carrying a number
_NUMERIC_ANN = ("int", "float")


def _is_numeric_annotation(ann: ast.expr | None) -> bool:
    if ann is None:
        return False
    text = ast.unparse(ann)
    if text in _NUMERIC_ANN:
        return True
    if "ndarray" in text:
        return True
    return text.startswith("tuple[int") or text.startswith("tuple[float")


class _Checker:
    """One module's dimensional walk."""

    def __init__(self, source: str, rel_path: str, tables: UnitTables) -> None:
        self.rel_path = rel_path
        self.tables = tables
        self.tree = ast.parse(source, filename=rel_path)
        self.diags: list[Diagnostic] = []
        self.suppressed: dict[int, set[str]] = {}
        for lineno, line in enumerate(source.splitlines(), start=1):
            rules = set(_SUPPRESS_RE.findall(line))
            if rules:
                self.suppressed[lineno] = rules
        #: local names bound to the numpy module
        self.np_names: set[str] = set()
        #: module-level string constants (stream-name resolution, UNI005)
        self.str_constants: dict[str, str] = {}
        for node in self.tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numpy":
                        self.np_names.add(alias.asname or "numpy")
            elif (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, str)
            ):
                self.str_constants[node.targets[0].id] = node.value.value
            elif (
                isinstance(node, ast.AnnAssign)
                and isinstance(node.target, ast.Name)
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, str)
            ):
                self.str_constants[node.target.id] = node.value.value
        #: class currently being walked (for self.<field> resolution)
        self.cls_name: str | None = None

    # -- driver --------------------------------------------------------
    def run(self) -> list[Diagnostic]:
        self._check_classes()
        module_env: dict[str, tuple] = {}
        for stmt in self.tree.body:
            self._stmt(stmt, module_env)
        self.diags.sort(key=lambda d: (d.rule_id, d.location, d.message))
        return self.diags

    def _flag(
        self,
        rule,
        lineno: int,
        message: str,
        hint: str = "",
        data: tuple[tuple[str, str], ...] = (),
    ) -> None:
        if rule.rule_id in self.suppressed.get(lineno, set()):
            return
        self.diags.append(
            rule.diag(f"{self.rel_path}:{lineno}", message, hint=hint, data=data)
        )

    # -- UNI002: class field coverage ----------------------------------
    def _check_classes(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.ClassDef):
                self._check_one_class(node)

    def _check_one_class(self, node: ast.ClassDef) -> None:
        entry = self.tables.classes.get(node.name)
        ann_fields: list[tuple[str, ast.expr | None, int]] = []
        members: set[str] = set()
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                ann_fields.append((stmt.target.id, stmt.annotation, stmt.lineno))
                members.add(stmt.target.id)
            elif isinstance(stmt, ast.Assign):
                for t in stmt.targets:
                    if isinstance(t, ast.Name):
                        members.add(t.id)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                members.add(stmt.name)
        numeric = [
            (name, ann, lineno)
            for name, ann, lineno in ann_fields
            if _is_numeric_annotation(ann)
        ]
        suffixed = any(suffix_unit(name) is not None for name, _, _ in numeric)
        # A class participates in the units contract when the table names
        # it or when at least one field opted in via suffix; classes with
        # neither (e.g. ShapeTable's packed rows) are out of scope.
        if entry is None and not suffixed:
            return
        covered = entry or {}
        for name, _, lineno in numeric:
            if suffix_unit(name) is not None or name in covered:
                continue
            self._flag(
                UNI002,
                lineno,
                f"numeric field '{node.name}.{name}' has no unit suffix and "
                f"no UNIT_TABLE entry",
                hint=f"rename with a unit suffix or add "
                f"UNIT_TABLE[{node.name!r}][{name!r}]",
            )
        for name in sorted(covered):
            if name not in members:
                self._flag(
                    UNI002,
                    node.lineno,
                    f"UNIT_TABLE[{node.name!r}] covers '{name}' but the class "
                    f"has no such member",
                    hint="drop the stale entry or restore the field",
                )

    # -- statements ----------------------------------------------------
    def _stmt(self, node: ast.stmt, env: dict[str, tuple]) -> None:
        if isinstance(node, ast.Assign):
            self._assign(node, env)
        elif isinstance(node, ast.AnnAssign):
            unit = self._infer(node.value, env) if node.value else None
            if isinstance(node.target, ast.Name):
                self._bind_name(node.target.id, unit, env, node.lineno)
        elif isinstance(node, ast.AugAssign):
            self._augassign(node, env)
        elif isinstance(node, ast.Return):
            self._return(node, env)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._check_function(node)
        elif isinstance(node, ast.ClassDef):
            outer = self.cls_name
            self.cls_name = node.name
            for stmt in node.body:
                self._stmt(stmt, {})
            self.cls_name = outer
        elif isinstance(node, (ast.If, ast.While)):
            self._infer(node.test, env)
            for stmt in node.body + node.orelse:
                self._stmt(stmt, env)
        elif isinstance(node, ast.For):
            self._infer(node.iter, env)
            for name in _target_names(node.target):
                env.pop(name, None)
            for stmt in node.body + node.orelse:
                self._stmt(stmt, env)
        elif isinstance(node, ast.With):
            for item in node.items:
                self._infer(item.context_expr, env)
            for stmt in node.body:
                self._stmt(stmt, env)
        elif isinstance(node, ast.Try):
            for stmt in node.body + node.orelse + node.finalbody:
                self._stmt(stmt, env)
            for handler in node.handlers:
                for stmt in handler.body:
                    self._stmt(stmt, env)
        elif isinstance(node, ast.Expr):
            self._infer(node.value, env)
        elif isinstance(node, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._infer(child, env)

    def _assign(self, node: ast.Assign, env: dict[str, tuple]) -> None:
        # Elementwise tuple-assign keeps alias bindings precise:
        # ``energy_fn, latency_fn = cached_..., cached_..._ns``.
        if (
            len(node.targets) == 1
            and isinstance(node.targets[0], ast.Tuple)
            and isinstance(node.value, ast.Tuple)
            and len(node.targets[0].elts) == len(node.value.elts)
        ):
            for tgt, val in zip(node.targets[0].elts, node.value.elts):
                unit = self._infer(val, env)
                if isinstance(tgt, ast.Name):
                    self._bind_name(tgt.id, unit, env, node.lineno)
                else:
                    for name in _target_names(tgt):
                        env.pop(name, None)
            return
        unit = self._infer(node.value, env)
        for target in node.targets:
            if isinstance(target, ast.Name):
                self._bind_name(target.id, unit, env, node.lineno)
            else:
                for name in _target_names(target):
                    env.pop(name, None)

    def _augassign(self, node: ast.AugAssign, env: dict[str, tuple]) -> None:
        value = self._infer(node.value, env)
        current = (
            self._name_unit(node.target.id, env)
            if isinstance(node.target, ast.Name)
            else self._infer(node.target, env)
        )
        if isinstance(node.op, (ast.Add, ast.Sub)):
            result = self._merge_add(current, value, node.lineno,
                                     "augmented add/sub")
        elif isinstance(node.op, ast.Mult):
            result = unit_mul(current, value)
        elif isinstance(node.op, (ast.Div, ast.FloorDiv)):
            result = unit_div(current, value)
        else:
            result = None
        if isinstance(node.target, ast.Name):
            self._bind_name(node.target.id, result, env, node.lineno)

    def _bind_name(
        self, name: str, unit: tuple | None, env: dict[str, tuple], lineno: int
    ) -> None:
        declared = self._declared_for_name(name)
        if declared is not None:
            if units_conflict(declared, unit):
                self._flag(
                    UNI004,
                    lineno,
                    f"'{name}' declares unit {format_unit(declared)} but is "
                    f"bound to a value of unit {format_unit(unit)}",
                    hint="convert the value or rename the variable",
                    data=(
                        ("inferred", format_unit(unit)),
                        ("declared", format_unit(declared)),
                    ),
                )
            env[name] = declared  # the declaration wins downstream
        elif unit is not None:
            env[name] = unit
        else:
            env.pop(name, None)

    def _return(self, node: ast.Return, env: dict[str, tuple]) -> None:
        inferred = self._infer(node.value, env) if node.value else None
        declared = self._current_return_unit
        if units_conflict(declared, inferred):
            self._flag(
                UNI004,
                node.lineno,
                f"'{self._current_func}' declares return unit "
                f"{format_unit(declared)} but returns "
                f"{format_unit(inferred)}",
                hint="convert the value or rename the function",
                data=(
                    ("inferred", format_unit(inferred)),
                    ("declared", format_unit(declared)),
                ),
            )

    _current_return_unit: tuple | None = None
    _current_func: str = ""

    def _check_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        env: dict[str, tuple] = {}
        args = node.args
        for arg in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        ):
            declared = self._declared_for_name(arg.arg)
            if declared is not None:
                env[arg.arg] = declared
        outer_ret = self._current_return_unit
        outer_func = self._current_func
        declared_ret = suffix_unit(node.name)
        if declared_ret is None and self.cls_name is not None:
            declared_ret = self.tables.classes.get(self.cls_name, {}).get(node.name)
        self._current_return_unit = declared_ret
        self._current_func = node.name
        outer_cls = self.cls_name
        for stmt in node.body:
            self._stmt(stmt, env)
        self.cls_name = outer_cls
        self._current_return_unit = outer_ret
        self._current_func = outer_func

    # -- name / attribute resolution -----------------------------------
    def _declared_for_name(self, name: str) -> tuple | None:
        declared = self.tables.conversions.get(name)
        if declared is None:
            declared = suffix_unit(name)
        return declared

    def _name_unit(self, name: str, env: dict[str, tuple]) -> tuple | None:
        if name in env:
            return env[name]
        return self._declared_for_name(name)

    def _attr_unit(self, node: ast.Attribute) -> tuple | None:
        unit = suffix_unit(node.attr)
        if (
            unit is None
            and self.cls_name is not None
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            unit = self.tables.classes.get(self.cls_name, {}).get(node.attr)
        if unit is None:
            unit = self.tables.attrs.get(node.attr)
        return unit

    # -- expressions ---------------------------------------------------
    def _merge_add(
        self, a: tuple | None, b: tuple | None, lineno: int, kind: str
    ) -> tuple | None:
        if units_conflict(a, b):
            self._flag(
                UNI001,
                lineno,
                f"{kind} mixes units {format_unit(a)} and {format_unit(b)}",
                hint="convert one operand via a named constant in "
                "repro.sim.units_constants",
            )
            return None
        if a is None or b is None:
            known = a if b is None else b
            return known if known else None
        if not a:
            return b
        return a

    def _bare_conversion(
        self, node: ast.expr, other: tuple | None, lineno: int
    ) -> None:
        if not isinstance(node, ast.Constant):
            return
        value = node.value
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return
        if value <= 0 or math.isinf(value) or math.isnan(value):
            return
        exponent = math.log10(value)
        if abs(exponent - round(exponent)) > 1e-9 or abs(round(exponent)) < 3:
            return
        if not other:  # unknown or dimensionless partner: no conversion
            return
        self._flag(
            UNI003,
            lineno,
            f"bare literal {value!r} scales a value of unit "
            f"{format_unit(other)} — an undeclared unit conversion",
            hint="name the factor in repro.sim.units_constants and declare "
            "it in CONVERSION_UNITS",
        )

    def _infer(self, node: ast.expr | None, env: dict[str, tuple]) -> tuple | None:
        if node is None:
            return None
        if isinstance(node, ast.Constant):
            return None  # literals are unit-polymorphic
        if isinstance(node, ast.Name):
            return self._name_unit(node.id, env)
        if isinstance(node, ast.Attribute):
            self._infer(node.value, env)
            return self._attr_unit(node)
        if isinstance(node, ast.BinOp):
            return self._binop(node, env)
        if isinstance(node, ast.UnaryOp):
            inner = self._infer(node.operand, env)
            if isinstance(node.op, ast.Not):
                return ()
            return inner
        if isinstance(node, ast.Compare):
            running = self._infer(node.left, env)
            for op, comparator in zip(node.ops, node.comparators):
                other = self._infer(comparator, env)
                if isinstance(
                    op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)
                ):
                    running = self._merge_add(
                        running, other, node.lineno, "comparison"
                    )
                else:
                    running = None
            return ()
        if isinstance(node, ast.BoolOp):
            units = [self._infer(v, env) for v in node.values]
            first = units[0]
            return first if all(u == first for u in units) else None
        if isinstance(node, ast.IfExp):
            self._infer(node.test, env)
            body = self._infer(node.body, env)
            orelse = self._infer(node.orelse, env)
            if body == orelse:
                return body
            if body is None or orelse is None:
                known = body if orelse is None else orelse
                return known if known else None
            return None
        if isinstance(node, ast.Call):
            return self._call(node, env)
        if isinstance(node, ast.Subscript):
            # Indexing an array/sequence of X yields X.
            unit = self._infer(node.value, env)
            self._infer(node.slice, env)
            return unit
        if isinstance(node, ast.Starred):
            return self._infer(node.value, env)
        if isinstance(node, ast.JoinedStr):
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    self._infer(value.value, env)
            return None
        if isinstance(node, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
            self._comp_elt_unit(node, env)
            return None
        if isinstance(node, ast.DictComp):
            child = self._comp_env(node.generators, env)
            self._infer(node.key, child)
            self._infer(node.value, child)
            return None
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for elt in node.elts:
                self._infer(elt, env)
            return None
        if isinstance(node, ast.Dict):
            for value in node.values:
                self._infer(value, env)
            return None
        return None

    def _binop(self, node: ast.BinOp, env: dict[str, tuple]) -> tuple | None:
        left = self._infer(node.left, env)
        right = self._infer(node.right, env)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            return self._merge_add(
                left, right, node.lineno,
                "addition" if isinstance(node.op, ast.Add) else "subtraction",
            )
        if isinstance(node.op, ast.Mult):
            self._bare_conversion(node.left, right, node.lineno)
            self._bare_conversion(node.right, left, node.lineno)
            return unit_mul(left, right)
        if isinstance(node.op, (ast.Div, ast.FloorDiv)):
            self._bare_conversion(node.right, left, node.lineno)
            return unit_div(left, right)
        if isinstance(node.op, ast.Mod):
            if left == right:
                return left
            return left if right is None else None
        if isinstance(node.op, ast.Pow):
            if isinstance(node.right, ast.Constant) and isinstance(
                node.right.value, int
            ):
                return unit_pow(left, node.right.value)
            return () if left == () else None
        if isinstance(node.op, ast.MatMult):
            return unit_mul(left, right)
        return None

    def _comp_env(
        self, generators: list[ast.comprehension], env: dict[str, tuple]
    ) -> dict[str, tuple]:
        child = dict(env)
        for gen in generators:
            self._infer(gen.iter, env)
            for name in _target_names(gen.target):
                child.pop(name, None)
        return child

    def _comp_elt_unit(
        self,
        node: "ast.GeneratorExp | ast.ListComp | ast.SetComp",
        env: dict[str, tuple],
    ) -> tuple | None:
        child = self._comp_env(node.generators, env)
        return self._infer(node.elt, child)

    def _call(self, node: ast.Call, env: dict[str, tuple]) -> tuple | None:
        func = node.func
        # --- UNI005: tracer stream emission -------------------------------
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "counter"
            and len(node.args) >= 2
        ):
            self._infer(func.value, env)
            self._infer(node.args[0], env)
            for extra in node.args[2:]:
                self._infer(extra, env)
            for kw in node.keywords:
                self._infer(kw.value, env)
            self._counter_call(node, env)
            return None
        # --- min/max/np.minimum/np.maximum/np.where: unit merge -----------
        if isinstance(func, ast.Name) and func.id in ("min", "max"):
            return self._merge_args(node.args, env, node.lineno, func.id)
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in self.np_names
        ):
            return self._np_call(func.attr, node, env)
        arg_units = [self._infer(a, env) for a in node.args]
        self._keyword_check(node, env)
        if isinstance(func, ast.Name):
            name = func.id
            if name in _PRESERVE_BUILTINS:
                return arg_units[0] if arg_units else None
            if name == "sum" and node.args:
                first = node.args[0]
                if isinstance(first, (ast.GeneratorExp, ast.ListComp)):
                    return self._comp_elt_unit(first, env)
                return arg_units[0]
            if name in self.tables.classes:
                return None  # composite result object
            return self._name_unit(name, env)
        if isinstance(func, ast.Attribute):
            receiver = self._infer(func.value, env)
            if func.attr in _METHOD_PRESERVE:
                return receiver
            return self._attr_unit(func)
        return None

    def _np_call(
        self, attr: str, node: ast.Call, env: dict[str, tuple]
    ) -> tuple | None:
        arg_units = [self._infer(a, env) for a in node.args]
        self._keyword_check(node, env)
        if attr in ("minimum", "maximum"):
            return self._merge_args(node.args, env, node.lineno, f"np.{attr}",
                                    precomputed=arg_units)
        if attr == "where":
            return self._merge_args(
                node.args[1:], env, node.lineno, "np.where",
                precomputed=arg_units[1:],
            )
        if attr == "dot":
            if len(arg_units) >= 2:
                return unit_mul(arg_units[0], arg_units[1])
            return None
        if attr in _NP_PRESERVE:
            return arg_units[0] if arg_units else None
        return None

    def _merge_args(
        self,
        args: list[ast.expr],
        env: dict[str, tuple],
        lineno: int,
        kind: str,
        precomputed: "list[tuple | None] | None" = None,
    ) -> tuple | None:
        units = (
            precomputed
            if precomputed is not None
            else [self._infer(a, env) for a in args]
        )
        running: tuple | None = None
        for unit in units:
            running = self._merge_add(running, unit, lineno, kind)
        return running

    def _keyword_check(self, node: ast.Call, env: dict[str, tuple]) -> None:
        """UNI004 on constructor/call keywords with declared units."""
        callee = None
        if isinstance(node.func, ast.Name):
            callee = node.func.id
        elif isinstance(node.func, ast.Attribute):
            callee = node.func.attr
        table = self.tables.classes.get(callee or "", {})
        for kw in node.keywords:
            inferred = self._infer(kw.value, env)
            if kw.arg is None:
                continue
            declared = table.get(kw.arg)
            if declared is None:
                declared = suffix_unit(kw.arg)
            if units_conflict(declared, inferred):
                self._flag(
                    UNI004,
                    node.lineno,
                    f"keyword '{kw.arg}' of {callee or 'call'} declares unit "
                    f"{format_unit(declared)} but receives "
                    f"{format_unit(inferred)}",
                    hint="convert the value before passing it",
                    data=(
                        ("inferred", format_unit(inferred)),
                        ("declared", format_unit(declared)),
                    ),
                )

    def _counter_call(self, node: ast.Call, env: dict[str, tuple]) -> None:
        stream_node = node.args[0]
        stream: str | None = None
        if isinstance(stream_node, ast.Constant) and isinstance(
            stream_node.value, str
        ):
            stream = stream_node.value
        elif isinstance(stream_node, ast.Name):
            stream = self.str_constants.get(stream_node.id)
        if stream is None:
            return
        declared = self.tables.streams.get(stream)
        inferred = self._infer(node.args[1], env)
        if units_conflict(declared, inferred):
            self._flag(
                UNI005,
                node.lineno,
                f"stream '{stream}' declares unit {format_unit(declared)} "
                f"but the emitted value has unit {format_unit(inferred)}",
                hint="emit the declared dimension or register a new stream "
                "in UNIT_TABLE['obs.streams']",
                data=(
                    ("inferred", format_unit(inferred)),
                    ("declared", format_unit(declared)),
                ),
            )


def _target_names(node: ast.expr) -> list[str]:
    if isinstance(node, ast.Name):
        return [node.id]
    if isinstance(node, (ast.Tuple, ast.List)):
        names: list[str] = []
        for elt in node.elts:
            names.extend(_target_names(elt))
        return names
    if isinstance(node, ast.Starred):
        return _target_names(node.value)
    return []


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def units_findings(
    source: str, rel_path: str, *, tables: UnitTables | None = None
) -> list[Diagnostic]:
    """Run the dimensional walk over one module's source text."""
    if tables is None:
        tables = load_tables()
    return _Checker(source, rel_path, tables).run()


def _conversion_drift(mod: ModuleInfo, rel: str, tables: UnitTables) -> list[Diagnostic]:
    """UNI002 both ways between CONVERSION_UNITS and the module's
    numeric constants — an undeclared conversion factor is exactly as
    unverifiable as a bare literal."""
    present: dict[str, int] = {}
    table_lineno = 1
    for node in mod.node.body:
        target = None
        value = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign):
            target, value = node.target, node.value
        if not isinstance(target, ast.Name):
            continue
        if target.id == "CONVERSION_UNITS":
            table_lineno = node.lineno
        if (
            isinstance(value, ast.Constant)
            and isinstance(value.value, (int, float))
            and not isinstance(value.value, bool)
        ):
            present[target.id] = node.lineno
    out: list[Diagnostic] = []
    for name, lineno in sorted(present.items()):
        if name not in tables.conversions:
            out.append(
                UNI002.diag(
                    f"{rel}:{lineno}",
                    f"conversion constant '{name}' has no CONVERSION_UNITS "
                    f"entry",
                    hint="declare its unit in CONVERSION_UNITS",
                )
            )
    for name in sorted(set(tables.conversions) - set(present)):
        out.append(
            UNI002.diag(
                f"{rel}:{table_lineno}",
                f"CONVERSION_UNITS declares '{name}' which is not a module "
                f"constant",
                hint="drop the stale entry or restore the constant",
            )
        )
    return out


def analyze_units(root: Path | None = None) -> list[Diagnostic]:
    """Run the dimensional-analysis pass over the cost-model modules.

    ``root`` defaults to the installed ``repro`` package directory; pass
    a fixture tree (or ``repro check --units --source <dir>``) to scan
    another layout with the same module paths.  The unit *declarations*
    (UNIT_TABLE, CONVERSION_UNITS) always come from the installed
    package — the contract is fixed; only the scanned sources vary.
    Raises :class:`ValueError` when none of the scope modules exist
    under ``root`` — a silent no-op would report a clean bill it never
    earned.
    """
    base = root if root is not None else Path(__file__).resolve().parent.parent
    tables = load_tables()
    index = ModuleIndex.from_package(Path(base), "repro")
    diagnostics: list[Diagnostic] = []
    found = False
    for dotted, rel in SCOPE_MODULES:
        module = index.modules.get(dotted)
        if module is None:
            continue
        found = True
        diagnostics.extend(units_findings(module.source, rel, tables=tables))
        if dotted == "repro.sim.units_constants":
            diagnostics.extend(_conversion_drift(module, rel, tables))
    if not found:
        raise ValueError(f"no cost-model modules to analyze under {base}")
    diagnostics.sort(key=lambda d: (d.rule_id, d.location, d.message))
    return diagnostics
