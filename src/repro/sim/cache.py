"""Evaluation caching for the behavioral simulator (the §4.5 hot path).

The paper measures ~97% of AutoHet's search time waiting on simulator
feedback, and every search strategy in this repo — DDPG, annealing,
coordinate ascent, random, exhaustive — revisits whole strategies and
per-layer shapes constantly.  Since :meth:`Simulator.evaluate
<repro.sim.simulator.Simulator.evaluate>` is pure and deterministic, its
results can be memoised outright:

* :class:`EvaluationCache` — a bounded, thread-safe LRU over full
  ``(config, network, strategy, tile_shared, detailed)`` evaluations,
  with hit / miss / eviction counters.  Infeasible strategies (those that
  raise :class:`~repro.sim.simulator.CapacityError`) are cached too, so a
  search random-walking near a capacity cliff does not re-pay the failed
  allocation every round.
* stable content fingerprints for :class:`HardwareConfig` and
  :class:`Network` so cache keys survive object identity churn.

See ``docs/performance.md`` for the keying rules and usage guidance.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from functools import lru_cache
from typing import Hashable

from ..arch.config import CrossbarShape, HardwareConfig
from ..models.graph import Network

#: A cache key: every component pre-reduced to a compact hashable value.
CacheKey = Hashable


@lru_cache(maxsize=1024)
def config_fingerprint(config: HardwareConfig) -> int:
    """Stable content fingerprint of a hardware configuration.

    Two configs with equal fields share a fingerprint even when they are
    distinct objects (e.g. round-tripped through JSON).
    """
    return hash(config)


@lru_cache(maxsize=1024)
def network_fingerprint(network: Network) -> int:
    """Stable content fingerprint of a network's search-relevant identity.

    Keyed on the name plus every layer's mapping-relevant structure; two
    structurally identical builds of the same model share a fingerprint.
    """
    return hash(
        (
            network.name,
            tuple(
                (
                    layer.index,
                    layer.layer_type,
                    layer.in_channels,
                    layer.out_channels,
                    layer.kernel_elems,
                    layer.weight_count,
                    layer.mvm_ops,
                )
                for layer in network.layers
            ),
        )
    )


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time snapshot of one cache's counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    size: int = 0
    max_size: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over lookups; 0.0 before the first lookup."""
        return self.hits / self.lookups if self.lookups else 0.0

    def summary(self) -> str:
        return (
            f"cache: {self.hits} hits / {self.lookups} lookups "
            f"({self.hit_rate:.1%}), {self.size}/{self.max_size} entries, "
            f"{self.evictions} evictions"
        )


class _Infeasible:
    """Cached outcome of a strategy that overflows the bank."""

    __slots__ = ("message",)

    def __init__(self, message: str) -> None:
        self.message = message


class EvaluationCache:
    """Bounded LRU cache over pure simulator evaluations.

    Thread-safe: :meth:`get` / :meth:`put` hold an internal lock, so one
    cache can back :meth:`Simulator.evaluate_many
    <repro.sim.simulator.Simulator.evaluate_many>`'s thread pool or a
    multi-seed search fan-out.  Values are immutable
    (:class:`~repro.sim.metrics.SystemMetrics` is frozen), so cached
    objects are shared, never copied.
    """

    def __init__(self, max_size: int = 100_000) -> None:
        if max_size <= 0:
            raise ValueError("max_size must be positive")
        self.max_size = max_size
        self._entries: OrderedDict[CacheKey, object] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # ------------------------------------------------------------------
    @staticmethod
    def make_key(
        config: HardwareConfig,
        network: Network,
        strategy: tuple[CrossbarShape, ...],
        *,
        tile_shared: bool,
        detailed: bool,
        enforce_capacity: bool,
    ) -> CacheKey:
        """The canonical key of one evaluation.

        Everything :meth:`Simulator.evaluate` reads goes in: the config
        and network content fingerprints, the per-layer shapes, and the
        flags that change the result (``tile_shared``, ``detailed``) or
        the feasibility verdict (``enforce_capacity``).
        """
        return (
            config_fingerprint(config),
            network_fingerprint(network),
            tuple((s.rows, s.cols) for s in strategy),
            tile_shared,
            detailed,
            enforce_capacity,
        )

    # ------------------------------------------------------------------
    def get(self, key: CacheKey) -> object | None:
        """The cached value, or ``None`` on a miss (counts either way)."""
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: CacheKey, value: object) -> None:
        """Insert (or refresh) an entry, evicting the LRU tail if full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = value
                return
            if len(self._entries) >= self.max_size:
                self._entries.popitem(last=False)
                self._evictions += 1
            self._entries[key] = value

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        with self._lock:
            return key in self._entries

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        with self._lock:
            self._entries.clear()
            self._hits = self._misses = self._evictions = 0

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                max_size=self.max_size,
            )
