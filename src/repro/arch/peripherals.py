"""Peripheral circuit models: DAC, ADC, shift-and-add, adder tree, pooling.

These are *functional* models with event counters.  The analytic
energy/latency models in :mod:`repro.sim` predict how many conversions each
component performs; the counters here let tests verify those predictions
against an actual execution (the functional engine increments them as it
computes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass  # stateful: counts conversion activity for the energy model
class DACArray:
    """A bank of 1-bit (by default) wordline drivers.

    With ``bits == 1`` the input bit-plane is the voltage vector directly;
    higher resolutions would emit multi-level voltages.
    """

    lanes: int
    bits: int = 1
    conversions: int = 0

    def drive(self, bit_plane: np.ndarray) -> np.ndarray:
        """Convert one digital input bit-plane to wordline voltages."""
        plane = np.asarray(bit_plane)
        if plane.shape[-1] > self.lanes:
            raise ValueError(
                f"{plane.shape[-1]} inputs exceed {self.lanes} DAC lanes"
            )
        if self.bits == 1 and not np.isin(plane, (0, 1)).all():
            raise ValueError("1-bit DAC requires binary input")
        self.conversions += int(np.count_nonzero(plane >= 0)) if plane.size else 0
        return plane.astype(np.float64)


@dataclass  # stateful: counts conversion activity for the energy model
class ADCArray:
    """A bank of saturating analog-to-digital converters.

    An ``bits``-resolution ADC reports integer codes in ``[0, 2^bits - 1]``
    and *clips* anything beyond — the source of accuracy loss when a
    crossbar is taller than the ADC range covers.  The paper sets 10 bits
    so that every candidate height (<= 576 < 1024) converts losslessly.
    """

    lanes: int
    bits: int = 10
    conversions: int = 0
    saturations: int = 0

    @property
    def max_code(self) -> int:
        return 2**self.bits - 1

    def sample(self, currents: np.ndarray) -> np.ndarray:
        """Quantize bitline currents (integer unit-current model)."""
        c = np.asarray(currents)
        if c.shape[-1] > self.lanes:
            raise ValueError(
                f"{c.shape[-1]} bitlines exceed {self.lanes} ADC lanes"
            )
        codes = np.rint(c).astype(np.int64)
        over = codes > self.max_code
        under = codes < 0
        self.saturations += int(over.sum() + under.sum())
        self.conversions += int(c.size)
        return np.clip(codes, 0, self.max_code)


@dataclass  # stateful: accumulates shifted partial sums
class ShiftAdder:
    """Shift-and-add accumulator merging bit-serial / bit-sliced samples.

    Reconstructs ``sum_{ib, wb} 2^(ib + wb) * sample[ib][wb]`` across the
    input-bit cycles (``ib``) and weight bit-slices (``wb``).
    """

    operations: int = 0
    _acc: np.ndarray | None = None

    def reset(self, width: int) -> None:
        self._acc = np.zeros(width, dtype=np.int64)

    def accumulate(self, samples: np.ndarray, shift: int) -> None:
        if self._acc is None:
            raise RuntimeError("call reset() before accumulate()")
        self._acc += np.asarray(samples, dtype=np.int64) << shift
        self.operations += int(np.asarray(samples).size)

    @property
    def value(self) -> np.ndarray:
        if self._acc is None:
            raise RuntimeError("no accumulation in progress")
        return self._acc.copy()


@dataclass  # stateful: accumulates partial-sum merge activity
class AdderTree:
    """Merges partial sums from multiple crossbar row-groups."""

    additions: int = 0

    def reduce(self, partials: np.ndarray) -> np.ndarray:
        """Sum partial results along axis 0, counting additions."""
        p = np.asarray(partials, dtype=np.int64)
        if p.ndim < 2:
            return p
        self.additions += (p.shape[0] - 1) * int(np.prod(p.shape[1:]))
        return p.sum(axis=0)


@dataclass  # stateful: accumulates pooling activity
class PoolingModule:
    """The tile's pooling unit (max / average)."""

    operations: int = 0

    def pool(self, fmap: np.ndarray, kind: str, window: int, stride: int) -> np.ndarray:
        """Pool a (C, H, W) feature map."""
        if kind not in ("max", "avg"):
            raise ValueError(f"unsupported pooling kind {kind!r}")
        c, h, w = fmap.shape
        oh = max((h - window) // stride + 1, 1)
        ow = max((w - window) // stride + 1, 1)
        out = np.empty((c, oh, ow), dtype=fmap.dtype if kind == "max" else np.float64)
        for i in range(oh):
            for j in range(ow):
                patch = fmap[:, i * stride : i * stride + window, j * stride : j * stride + window]
                out[:, i, j] = patch.max(axis=(1, 2)) if kind == "max" else patch.mean(axis=(1, 2))
        self.operations += c * oh * ow
        return out
