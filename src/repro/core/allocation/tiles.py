"""Tile data structures shared by the allocation schemes.

A *tile* integrates a fixed number of PEs; each PE hosts one logical
crossbar (a bit-slice group), so a tile offers
``HardwareConfig.logical_xbars_per_tile`` crossbar slots.  All crossbars
inside one tile share a single geometry (``CrossbarShape``) — heterogeneity
exists *between* tiles, never within one (§3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...analysis.invariants import ALC001, ALC005, InvariantViolation
from ...arch.config import CrossbarShape
from ...arch.mapping import LayerMapping


@dataclass
class Tile:
    """One allocated tile and the crossbar slots inside it.

    ``occupants`` maps layer index -> number of crossbar slots that layer
    occupies in this tile.  Multiple occupants only appear after the
    tile-shared remapping pass.
    """

    tile_id: int
    shape: CrossbarShape
    capacity: int
    occupants: dict[int, int] = field(default_factory=dict)
    #: tiles whose contents were merged into this one (Algorithm 1 output)
    absorbed: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError("tile capacity must be positive")
        if self.occupied > self.capacity:
            raise InvariantViolation(
                [
                    ALC001.diag(
                        f"tile {self.tile_id}",
                        f"over capacity: {self.occupied} > {self.capacity}",
                        hint="re-run the allocator; this tile was overfilled",
                    )
                ],
                "Tile",
            )

    @property
    def occupied(self) -> int:
        """Crossbar slots in use."""
        return sum(self.occupants.values())

    @property
    def empty(self) -> int:
        """Free crossbar slots ("emptyXBNum" in Algorithm 1)."""
        return self.capacity - self.occupied

    @property
    def layers(self) -> tuple[int, ...]:
        """Indices of the layers mapped (at least partially) onto this tile."""
        return tuple(sorted(self.occupants))

    def add(self, layer_index: int, count: int) -> None:
        """Place ``count`` crossbars of ``layer_index`` into this tile.

        Raises :class:`InvariantViolation` (ALC005 / ALC001) *before*
        mutating, so a failed placement can never corrupt the occupancy
        counters.
        """
        if count <= 0:
            raise InvariantViolation(
                [
                    ALC005.diag(
                        f"tile {self.tile_id}",
                        f"count must be positive, got {count}",
                        hint="never record empty occupant entries",
                    )
                ],
                "Tile.add",
            )
        if count > self.empty:
            raise InvariantViolation(
                [
                    ALC001.diag(
                        f"tile {self.tile_id}",
                        f"cannot absorb {count} crossbars "
                        f"(only {self.empty} free)",
                        hint="Algorithm 1 only merges when "
                        "head.empty + tail.empty >= capacity",
                    )
                ],
                "Tile.add",
            )
        self.occupants[layer_index] = self.occupants.get(layer_index, 0) + count

    def clone(self) -> "Tile":
        return Tile(
            tile_id=self.tile_id,
            shape=self.shape,
            capacity=self.capacity,
            occupants=dict(self.occupants),
            absorbed=list(self.absorbed),
        )


@dataclass(frozen=True)
class Allocation:
    """The full crossbar allocation of one network onto the accelerator."""

    mappings: tuple[LayerMapping, ...]
    tiles: tuple[Tile, ...]
    tile_capacity: int
    #: Algorithm 1's combMap: absorbing tile id -> absorbed tile ids
    comb_map: dict[int, tuple[int, ...]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def occupied_tiles(self) -> int:
        """Tiles holding at least one crossbar (Table 4's metric)."""
        return sum(1 for t in self.tiles if t.occupied > 0)

    @property
    def weight_cells(self) -> int:
        """Cells storing weights, over the whole network."""
        return sum(m.weight_cells for m in self.mappings)

    @property
    def allocated_cells(self) -> int:
        """All cells inside occupied tiles — including empty crossbars."""
        return sum(
            t.capacity * t.shape.cells for t in self.tiles if t.occupied > 0
        )

    @property
    def utilization(self) -> float:
        """Overall crossbar utilization — weight cells over allocated cells.

        This is the metric of Fig. 5's "Utilization" row: intra-array
        wastage (Eq. 4) *and* tile-level wastage combined.  The pinned
        example: 128 kernels of 3x3x12 on 4-crossbar tiles gives 27/32 on
        64x64 crossbars and 27/128 on 128x128.
        """
        allocated = self.allocated_cells
        return self.weight_cells / allocated if allocated else 0.0

    @property
    def empty_crossbars(self) -> int:
        """Unused crossbar slots inside occupied tiles."""
        return sum(t.empty for t in self.tiles if t.occupied > 0)

    @property
    def total_crossbar_slots(self) -> int:
        """All crossbar slots inside occupied tiles."""
        return sum(t.capacity for t in self.tiles if t.occupied > 0)

    @property
    def empty_crossbar_fraction(self) -> float:
        """Share of allocated crossbar slots left empty (Fig. 4's metric)."""
        total = self.total_crossbar_slots
        return self.empty_crossbars / total if total else 0.0

    def tiles_of_layer(self, layer_index: int) -> tuple[Tile, ...]:
        """All tiles holding crossbars of the given layer."""
        return tuple(t for t in self.tiles if layer_index in t.occupants)

    def tiles_by_shape(self) -> dict[CrossbarShape, list[Tile]]:
        """Group occupied tiles by their crossbar geometry."""
        groups: dict[CrossbarShape, list[Tile]] = {}
        for tile in self.tiles:
            if tile.occupied > 0:
                groups.setdefault(tile.shape, []).append(tile)
        return groups

    def validate(self) -> None:
        """Check every structural invariant of the plan.

        Delegates to the rule implementations in
        :func:`repro.analysis.checkers.check_allocation` (ALC001-ALC007)
        and raises :class:`~repro.analysis.invariants.InvariantViolation`
        carrying the full diagnostic list — rule ids, locations, and fix
        hints — instead of a bare assert.
        """
        self.check().raise_if_errors("Allocation")

    def check(self):
        """All plan diagnostics as a :class:`~repro.analysis.invariants.Report`
        (non-raising form of :meth:`validate`)."""
        # Imported lazily: checkers imports this module for type context.
        from ...analysis.checkers import check_allocation
        from ...analysis.invariants import Report

        report = Report()
        report.extend(check_allocation(self))
        return report
