"""Tests for Tile and Allocation data structures."""

import pytest

from repro.analysis import InvariantViolation
from repro.arch.config import CrossbarShape
from repro.arch.mapping import map_layer
from repro.core.allocation import Allocation, Tile, allocate_tile_based
from repro.models.layers import LayerSpec


class TestTile:
    def test_empty_and_occupied(self):
        t = Tile(0, CrossbarShape(64, 64), 4)
        assert t.empty == 4 and t.occupied == 0
        t.add(3, 2)
        assert t.empty == 2 and t.occupied == 2

    def test_add_accumulates_per_layer(self):
        t = Tile(0, CrossbarShape(64, 64), 4)
        t.add(1, 1)
        t.add(1, 2)
        assert t.occupants == {1: 3}

    def test_add_rejects_over_capacity(self):
        t = Tile(0, CrossbarShape(64, 64), 4)
        t.add(0, 4)
        with pytest.raises(ValueError, match="absorb"):
            t.add(1, 1)

    def test_add_rejects_nonpositive(self):
        t = Tile(0, CrossbarShape(64, 64), 4)
        with pytest.raises(ValueError):
            t.add(0, 0)

    def test_constructor_rejects_overfull(self):
        with pytest.raises(ValueError, match="over capacity"):
            Tile(0, CrossbarShape(64, 64), 2, occupants={0: 3})

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            Tile(0, CrossbarShape(64, 64), 0)

    def test_layers_sorted(self):
        t = Tile(0, CrossbarShape(64, 64), 4)
        t.add(5, 1)
        t.add(2, 1)
        assert t.layers == (2, 5)

    def test_clone_is_independent(self):
        t = Tile(0, CrossbarShape(64, 64), 4, occupants={1: 2})
        c = t.clone()
        c.add(3, 1)
        assert t.occupied == 2 and c.occupied == 3


def small_allocation():
    layers = [
        LayerSpec.conv(3, 4, 3, input_size=8).with_index(0),
        LayerSpec.conv(4, 40, 3, input_size=8).with_index(1),
        LayerSpec.fc(160, 10).with_index(2),
    ]
    mappings = [map_layer(l, CrossbarShape(32, 32)) for l in layers]
    return allocate_tile_based(mappings, 4)


class TestAllocation:
    def test_weight_cells_sums_layers(self):
        alloc = small_allocation()
        assert alloc.weight_cells == sum(m.weight_cells for m in alloc.mappings)

    def test_utilization_in_unit_interval(self):
        alloc = small_allocation()
        assert 0.0 < alloc.utilization <= 1.0

    def test_allocated_cells_counts_whole_tiles(self):
        alloc = small_allocation()
        assert alloc.allocated_cells == alloc.occupied_tiles * 4 * 32 * 32

    def test_empty_plus_occupied_is_total(self):
        alloc = small_allocation()
        occupied = sum(t.occupied for t in alloc.tiles)
        assert occupied + alloc.empty_crossbars == alloc.total_crossbar_slots

    def test_tiles_of_layer(self):
        alloc = small_allocation()
        for m in alloc.mappings:
            tiles = alloc.tiles_of_layer(m.layer.index)
            placed = sum(t.occupants[m.layer.index] for t in tiles)
            assert placed == m.num_crossbars

    def test_tiles_by_shape_groups(self):
        alloc = small_allocation()
        groups = alloc.tiles_by_shape()
        assert set(groups) == {CrossbarShape(32, 32)}
        assert sum(len(v) for v in groups.values()) == alloc.occupied_tiles

    def test_validate_passes_on_consistent_allocation(self):
        small_allocation().validate()

    def test_validate_detects_missing_blocks(self):
        alloc = small_allocation()
        broken = Allocation(
            mappings=alloc.mappings,
            tiles=alloc.tiles[:-1],
            tile_capacity=alloc.tile_capacity,
        )
        with pytest.raises(InvariantViolation) as exc:
            broken.validate()
        assert "ALC003" in exc.value.rule_ids

    def test_validate_detects_shape_mismatch(self):
        alloc = small_allocation()
        rogue = Tile(99, CrossbarShape(64, 64), 4)
        rogue.add(0, 1)
        broken = Allocation(
            mappings=alloc.mappings,
            tiles=alloc.tiles + (rogue,),
            tile_capacity=4,
        )
        with pytest.raises(InvariantViolation) as exc:
            broken.validate()
        assert "ALC004" in exc.value.rule_ids
