"""On-chip interconnect model: the Global Controller's bus and tile H-tree.

The paper's architecture (§3.1) connects the GC, the I/O buffers, and the
tiles through a bus; deeper ReRAM proposals (ISAAC's H-tree, ReGraphX's
NoC) make the interconnect a first-class citizen.  This module models the
traffic a strategy generates and what it costs on two topologies:

* a **shared bus** — every transfer serialises; latency is total bytes
  over bandwidth plus per-transfer arbitration;
* an **H-tree** — tiles sit at the leaves of a balanced binary tree;
  a transfer to a tile crosses ``ceil(log2(#tiles))`` hops, and disjoint
  subtrees move data concurrently (modelled as a per-level capacity).

Traffic per layer and image: the input vector (``Cin * k^2`` bytes)
broadcast once per MVM to every tile holding that layer, plus the output
activations returned to the buffer.  Weight-loading traffic is a one-off
and reported separately.

The analytic latency/energy models in :mod:`repro.sim` already charge a
flat per-byte bus cost; this module is the refinement for interconnect-
focused studies (see ``examples``/tests), not part of the default RUE
pipeline — keeping the default calibration untouched.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..core.allocation.tiles import Allocation
from ..models.graph import Network


@dataclass(frozen=True)
class InterconnectConfig:
    """Bandwidths and per-event costs of the on-chip fabric."""

    bus_bytes_per_ns: float = 32.0      #: shared-bus bandwidth
    bus_arbitration_ns: float = 4.0     #: per-transfer arbitration overhead
    hop_latency_ns: float = 1.0         #: one H-tree hop
    hop_bytes_per_ns: float = 64.0      #: per-link bandwidth
    energy_per_byte_hop_nj: float = 1.2e-6
    energy_per_bus_byte_nj: float = 4.0e-6

    def __post_init__(self) -> None:
        if min(
            self.bus_bytes_per_ns,
            self.hop_bytes_per_ns,
        ) <= 0:
            raise ValueError("bandwidths must be positive")
        if min(self.bus_arbitration_ns, self.hop_latency_ns) < 0:
            raise ValueError("latencies must be non-negative")


@dataclass(frozen=True)
class LayerTraffic:
    """Bytes a layer moves per inference pass."""

    layer_index: int
    input_bytes: int        #: buffer -> tiles (with per-tile broadcast fan-out)
    output_bytes: int       #: tiles -> buffer
    tiles_touched: int
    transfers: int          #: discrete transfer events

    @property
    def total_bytes(self) -> int:
        return self.input_bytes + self.output_bytes


@dataclass(frozen=True)
class TrafficReport:
    """Whole-network interconnect traffic and projected costs."""

    layers: tuple[LayerTraffic, ...]
    weight_load_bytes: int
    tile_count: int

    @property
    def total_bytes(self) -> int:
        return sum(l.total_bytes for l in self.layers)

    @property
    def total_transfers(self) -> int:
        return sum(l.transfers for l in self.layers)

    # ------------------------------------------------------------------
    def bus_latency_ns(self, cfg: InterconnectConfig) -> float:
        """Fully-serialised shared-bus latency for one inference pass."""
        return (
            self.total_bytes / cfg.bus_bytes_per_ns
            + self.total_transfers * cfg.bus_arbitration_ns
        )

    def htree_depth(self) -> int:
        return max(math.ceil(math.log2(max(self.tile_count, 1))), 1)

    def htree_latency_ns(self, cfg: InterconnectConfig) -> float:
        """H-tree latency: root link is the shared resource; leaf links
        run concurrently.  Per layer, the root moves the input vector
        once plus the outputs; fan-out duplication happens below the
        root, overlapped, adding hop latency but not root bandwidth."""
        depth = self.htree_depth()
        total = 0.0
        for layer in self.layers:
            root_bytes = (
                layer.input_bytes / max(layer.tiles_touched, 1)
                + layer.output_bytes
            )
            total += root_bytes / cfg.hop_bytes_per_ns
            total += depth * cfg.hop_latency_ns * layer.transfers / max(
                layer.tiles_touched, 1
            )
        return total

    def bus_energy_nj(self, cfg: InterconnectConfig) -> float:
        return self.total_bytes * cfg.energy_per_bus_byte_nj

    def htree_energy_nj(self, cfg: InterconnectConfig) -> float:
        depth = self.htree_depth()
        return self.total_bytes * depth * cfg.energy_per_byte_hop_nj


def traffic_report(network: Network, allocation: Allocation) -> TrafficReport:
    """Compute per-layer interconnect traffic for a mapped network."""
    layers = []
    weight_bytes = 0
    mappings = {m.layer.index: m for m in allocation.mappings}
    for mapping in allocation.mappings:
        layer = mapping.layer
        tiles = allocation.tiles_of_layer(layer.index)
        n_tiles = max(len(tiles), 1)
        in_vec = layer.in_channels * layer.kernel_elems
        input_bytes = layer.mvm_ops * in_vec * n_tiles
        output_bytes = layer.mvm_ops * layer.out_channels
        transfers = layer.mvm_ops * (n_tiles + 1)  # broadcasts + writeback
        layers.append(
            LayerTraffic(
                layer_index=layer.index,
                input_bytes=input_bytes,
                output_bytes=output_bytes,
                tiles_touched=n_tiles,
                transfers=transfers,
            )
        )
        weight_bytes += mapping.weight_cells  # 8-bit weights: 1 byte each
    return TrafficReport(
        layers=tuple(layers),
        weight_load_bytes=weight_bytes,
        tile_count=allocation.occupied_tiles,
    )
