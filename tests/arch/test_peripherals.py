"""Tests for ADC/DAC/shift-add/adder-tree/pooling peripheral models."""

import numpy as np
import pytest

from repro.arch.peripherals import (
    ADCArray,
    AdderTree,
    DACArray,
    PoolingModule,
    ShiftAdder,
)


class TestADC:
    def test_lossless_within_range(self):
        adc = ADCArray(lanes=8, bits=10)
        out = adc.sample(np.array([0, 1, 576, 1023]))
        assert np.array_equal(out, [0, 1, 576, 1023])
        assert adc.saturations == 0

    def test_saturates_above_range(self):
        adc = ADCArray(lanes=8, bits=4)
        out = adc.sample(np.array([14, 15, 16, 100]))
        assert np.array_equal(out, [14, 15, 15, 15])
        assert adc.saturations == 2

    def test_clips_negative(self):
        adc = ADCArray(lanes=4, bits=4)
        assert adc.sample(np.array([-3]))[0] == 0
        assert adc.saturations == 1

    def test_conversion_counter(self):
        adc = ADCArray(lanes=8, bits=10)
        adc.sample(np.arange(5))
        adc.sample(np.arange(3))
        assert adc.conversions == 8

    def test_rejects_too_many_lanes(self):
        with pytest.raises(ValueError):
            ADCArray(lanes=2, bits=10).sample(np.arange(3))

    def test_max_code(self):
        assert ADCArray(lanes=1, bits=10).max_code == 1023


class TestDAC:
    def test_binary_passthrough(self):
        dac = DACArray(lanes=4, bits=1)
        out = dac.drive(np.array([1, 0, 1, 1]))
        assert np.array_equal(out, [1.0, 0.0, 1.0, 1.0])

    def test_rejects_non_binary_for_1bit(self):
        with pytest.raises(ValueError):
            DACArray(lanes=4, bits=1).drive(np.array([2, 0]))

    def test_rejects_too_many_lanes(self):
        with pytest.raises(ValueError):
            DACArray(lanes=2).drive(np.array([1, 0, 1]))


class TestShiftAdder:
    def test_reconstructs_weighted_sum(self):
        sa = ShiftAdder()
        sa.reset(3)
        sa.accumulate(np.array([1, 2, 3]), shift=0)
        sa.accumulate(np.array([1, 0, 1]), shift=2)
        assert np.array_equal(sa.value, [5, 2, 7])

    def test_requires_reset(self):
        with pytest.raises(RuntimeError):
            ShiftAdder().accumulate(np.array([1]), 0)
        with pytest.raises(RuntimeError):
            _ = ShiftAdder().value

    def test_operation_counter(self):
        sa = ShiftAdder()
        sa.reset(4)
        sa.accumulate(np.zeros(4, dtype=int), 0)
        assert sa.operations == 4

    def test_value_is_a_copy(self):
        sa = ShiftAdder()
        sa.reset(2)
        sa.accumulate(np.array([1, 1]), 0)
        v = sa.value
        v[0] = 99
        assert sa.value[0] == 1


class TestAdderTree:
    def test_reduces_along_axis0(self):
        tree = AdderTree()
        out = tree.reduce(np.array([[1, 2], [3, 4], [5, 6]]))
        assert np.array_equal(out, [9, 12])

    def test_addition_count(self):
        tree = AdderTree()
        tree.reduce(np.ones((4, 10), dtype=int))
        assert tree.additions == 3 * 10

    def test_single_row_passthrough(self):
        tree = AdderTree()
        out = tree.reduce(np.array([7, 8]))
        assert np.array_equal(out, [7, 8])
        assert tree.additions == 0


class TestPooling:
    def test_max_pool(self):
        pm = PoolingModule()
        fmap = np.arange(16, dtype=float).reshape(1, 4, 4)
        out = pm.pool(fmap, "max", 2, 2)
        assert out.shape == (1, 2, 2)
        assert np.array_equal(out[0], [[5, 7], [13, 15]])

    def test_avg_pool(self):
        pm = PoolingModule()
        fmap = np.ones((2, 4, 4))
        out = pm.pool(fmap, "avg", 2, 2)
        assert np.allclose(out, 1.0)

    def test_operation_counter(self):
        pm = PoolingModule()
        pm.pool(np.ones((3, 4, 4)), "max", 2, 2)
        assert pm.operations == 3 * 2 * 2

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            PoolingModule().pool(np.ones((1, 2, 2)), "median", 2, 2)
