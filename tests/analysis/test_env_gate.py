"""The RL search environment rejects invalid inputs statically — before
any simulator episode runs (the point of the whole analysis subsystem)."""

import pytest

from repro.analysis.invariants import InvariantViolation
from repro.arch.config import DEFAULT_CANDIDATES, HardwareConfig
from repro.core.rl.environment import CrossbarSearchEnv
from repro.models.datasets import CIFAR10
from repro.models.graph import Network
from repro.models.layers import LayerSpec, Stage
from repro.models.zoo import lenet
from repro.sim.simulator import Simulator


class TestEnvironmentStaticGate:
    def test_valid_setup_constructs(self):
        CrossbarSearchEnv(lenet(), DEFAULT_CANDIDATES, Simulator())

    def test_under_resolved_adc_rejected_at_construction(self):
        sim = Simulator(config=HardwareConfig(adc_bits=6))
        with pytest.raises(InvariantViolation) as exc:
            CrossbarSearchEnv(lenet(), DEFAULT_CANDIDATES, sim)
        assert "CFG004" in exc.value.rule_ids

    def test_dangling_network_rejected_at_construction(self):
        layers = [
            LayerSpec.conv(3, 16, 3, input_size=32).with_index(0),
            LayerSpec.conv(57, 16, 3, input_size=32).with_index(1),
        ]
        broken = Network(
            name="Dangling",
            dataset=CIFAR10,
            stages=tuple(Stage(layer=l) for l in layers),
        )
        with pytest.raises(InvariantViolation) as exc:
            CrossbarSearchEnv(broken, DEFAULT_CANDIDATES, Simulator())
        assert "NET002" in exc.value.rule_ids

    def test_valid_episode_still_runs(self):
        env = CrossbarSearchEnv(lenet(), DEFAULT_CANDIDATES, Simulator())
        result = env.evaluate_indices([0] * env.num_layers)
        assert result.metrics.utilization > 0
