"""Tests for the EvaluationCache audit mode (the runtime CAC004 check)."""

from dataclasses import replace

import pytest

from repro.arch.config import CrossbarShape
from repro.models.zoo import lenet
from repro.sim.cache import CacheStats, EvaluationCache
from repro.sim.simulator import Simulator


def audited_simulator(interval=1):
    return Simulator(cache=EvaluationCache(audit_interval=interval))


def strategy_for(network):
    return tuple(CrossbarShape(64, 64) for _ in network.layers)


class TestAuditSampling:
    def test_interval_zero_never_audits(self):
        sim = Simulator(cache=EvaluationCache())
        net = lenet()
        for _ in range(3):
            sim.evaluate(net, strategy_for(net))
        assert sim.cache.stats().audited == 0

    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError, match="audit_interval"):
            EvaluationCache(audit_interval=-1)

    def test_every_hit_audited_at_interval_one(self):
        sim = audited_simulator(1)
        net = lenet()
        sim.evaluate(net, strategy_for(net))  # miss
        sim.evaluate(net, strategy_for(net))  # hit -> audit
        sim.evaluate(net, strategy_for(net))  # hit -> audit
        stats = sim.cache.stats()
        assert stats.hits == 2
        assert stats.audited == 2
        assert stats.audit_failures == 0
        assert sim.cache.audit_findings == ()

    def test_interval_two_audits_every_other_hit(self):
        sim = audited_simulator(2)
        net = lenet()
        sim.evaluate(net, strategy_for(net))
        for _ in range(4):
            sim.evaluate(net, strategy_for(net))
        assert sim.cache.stats().audited == 2

    def test_clean_audit_returns_identical_metrics(self):
        sim = audited_simulator(1)
        net = lenet()
        first = sim.evaluate(net, strategy_for(net))
        second = sim.evaluate(net, strategy_for(net))
        assert first == second


class TestAuditMismatch:
    def corrupt(self, sim, net):
        """Evaluate once, then silently corrupt the cached entry."""
        strategy = strategy_for(net)
        good = sim.evaluate(net, strategy)
        key = EvaluationCache.make_key(
            sim.config,
            net,
            strategy,
            tile_shared=True,
            detailed=True,
            enforce_capacity=sim.enforce_capacity,
        )
        corrupted = replace(good, energy_nj=good.energy_nj + 123.0)
        sim.cache.put(key, corrupted)
        return good, key

    def test_mismatch_detected_and_reported_not_raised(self):
        sim = audited_simulator(1)
        net = lenet()
        good, _key = self.corrupt(sim, net)
        result = sim.evaluate(net, strategy_for(net))
        # The caller gets the fresh (correct) value, never the stale one.
        assert result == good
        stats = sim.cache.stats()
        assert stats.audited == 1
        assert stats.audit_failures == 1

    def test_mismatch_produces_cac004_diagnostic(self):
        sim = audited_simulator(1)
        net = lenet()
        self.corrupt(sim, net)
        sim.evaluate(net, strategy_for(net))
        (finding,) = sim.cache.audit_findings
        assert finding.rule_id == "CAC004"
        assert finding.severity.name == "ERROR"
        assert "mismatch" in finding.message

    def test_stale_entry_is_repaired(self):
        sim = audited_simulator(1)
        net = lenet()
        good, key = self.corrupt(sim, net)
        sim.evaluate(net, strategy_for(net))
        # The corrupted entry was replaced; a non-audited simulator
        # sharing the cache now reads the fresh value.
        assert sim.cache.get(key) == good

    def test_stats_summary_mentions_audits(self):
        sim = audited_simulator(1)
        net = lenet()
        self.corrupt(sim, net)
        sim.evaluate(net, strategy_for(net))
        summary = sim.cache.stats().summary()
        assert "audited" in summary
        assert "1 mismatches" in summary


class TestAuditLifecycle:
    def test_clear_resets_audit_state(self):
        cache = EvaluationCache(max_size=4, audit_interval=1)
        sim = Simulator(cache=cache)
        net = lenet()
        sim.evaluate(net, strategy_for(net))
        sim.evaluate(net, strategy_for(net))
        cache.clear()
        assert cache.stats() == CacheStats(max_size=4)
        assert cache.audit_findings == ()
