"""One-call runner for the complete paper evaluation.

``run_full_suite`` executes every §4 experiment at a chosen search budget
and returns a single JSON-ready document — the machine-readable
counterpart of EXPERIMENTS.md.  The CLI exposes it as
``python -m repro experiment all --export results.json``.
"""

from __future__ import annotations

import time
from typing import Any

from .experiments import (
    default_rounds,
    fig3_motivation,
    fig4_empty_crossbars,
    fig5_tradeoff,
    fig9_overall,
    fig10_ablation,
    fig11a_sxb_rxb_ratio,
    fig11b_candidate_count,
    fig11c_pes_per_tile,
    search_time_profile,
    table3_strategies,
    table4_tiles,
    table5_area_latency,
)
from .export import (
    ablation_to_records,
    fig4_to_records,
    fig5_to_records,
    overall_to_records,
    rows_to_records,
    sensitivity_to_records,
    table3_to_records,
    table4_to_records,
)


def run_full_suite(
    *, rounds: int | None = None, seed: int = 0, verbose: bool = False
) -> dict[str, Any]:
    """Run every figure/table experiment; returns one results document.

    The document maps experiment ids to flat record lists plus a ``meta``
    block (rounds, seed, wall-clock per experiment).
    """
    rounds = rounds if rounds is not None else default_rounds()
    doc: dict[str, Any] = {"meta": {"rounds": rounds, "seed": seed, "timing_s": {}}}

    def run(name, fn, to_records):
        t0 = time.perf_counter()
        data = fn()
        doc[name] = to_records(data)
        doc["meta"]["timing_s"][name] = round(time.perf_counter() - t0, 3)
        if verbose:
            print(f"  {name}: {doc['meta']['timing_s'][name]:.1f}s")

    run("fig3", fig3_motivation, rows_to_records)
    run("fig4", fig4_empty_crossbars, fig4_to_records)
    run("fig5", fig5_tradeoff, fig5_to_records)
    run("fig9", lambda: fig9_overall(rounds=rounds, seed=seed), overall_to_records)
    run(
        "fig10",
        lambda: fig10_ablation(rounds=rounds, seed=seed),
        ablation_to_records,
    )
    run(
        "fig11a",
        lambda: fig11a_sxb_rxb_ratio(rounds=rounds, seed=seed),
        lambda p: sensitivity_to_records(p, x_label="sxb_rxb_ratio"),
    )
    run(
        "fig11b",
        lambda: fig11b_candidate_count(rounds=rounds, seed=seed),
        lambda p: sensitivity_to_records(p, x_label="candidate_count"),
    )
    run(
        "fig11c",
        lambda: fig11c_pes_per_tile(rounds=rounds, seed=seed),
        lambda p: sensitivity_to_records(p, x_label="pes_per_tile"),
    )
    run(
        "table3",
        lambda: table3_strategies(rounds=rounds, seed=seed),
        table3_to_records,
    )
    run(
        "table4",
        lambda: table4_tiles(rounds=rounds, seed=seed),
        table4_to_records,
    )
    run(
        "table5",
        lambda: table5_area_latency(rounds=rounds, seed=seed),
        rows_to_records,
    )

    profile = search_time_profile(rounds=rounds, seed=seed)
    doc["search_time"] = [
        {
            "rounds": profile.rounds,
            "decision_seconds": profile.decision_seconds,
            "simulator_seconds": profile.simulator_seconds,
            "learning_seconds": profile.learning_seconds,
            "simulator_fraction": profile.simulator_fraction,
        }
    ]
    return doc


def summarize_suite(doc: dict[str, Any]) -> str:
    """A terse human summary of a suite document's headline numbers."""
    lines = [
        f"Full-suite results (rounds={doc['meta']['rounds']}, "
        f"seed={doc['meta']['seed']}):"
    ]
    by_model: dict[str, dict[str, float]] = {}
    for record in doc.get("fig9", []):
        by_model.setdefault(record["model"], {})[record["accelerator"]] = (
            record["rue"]
        )
    for model, rues in by_model.items():
        autohet = rues.get("AutoHet", 0.0)
        best_homo = max(v for k, v in rues.items() if k != "AutoHet")
        lines.append(
            f"  {model}: AutoHet RUE {autohet:.3e} "
            f"({autohet / best_homo:.2f}x best homogeneous)"
        )
    total = sum(doc["meta"]["timing_s"].values())
    lines.append(f"  total experiment time: {total:.1f}s")
    return "\n".join(lines)
