#!/usr/bin/env python3
"""ResNet152 on ImageNet shapes: the paper's hardest search.

ResNet152 has 156 weight layers spanning 1x1 bottleneck projections,
3x3 spatial convolutions, a 7x7 stem, and an FC head — the widest variety
of weight-matrix shapes in the paper's workload set, and the one where
per-layer heterogeneity matters most (uniform 576x512 strands half the
cells of the narrow 1x1 layers).

This example searches the configuration, then breaks the chosen crossbar
sizes down by layer kind to show *why* heterogeneity wins.

Run:  python examples/resnet_search.py [rounds]
"""

import sys
from collections import Counter, defaultdict

from repro import (
    DEFAULT_CANDIDATES,
    SQUARE_CANDIDATES,
    Simulator,
    autohet_search,
    best_homogeneous,
    resnet152,
)

ROUNDS = int(sys.argv[1]) if len(sys.argv) > 1 else 150


def main() -> None:
    network = resnet152()
    simulator = Simulator()
    print(
        f"{network.name}: {network.num_layers} weight layers, "
        f"{network.total_weights / 1e6:.1f}M weights"
    )

    shape, base = best_homogeneous(network, SQUARE_CANDIDATES, simulator)
    print(f"\nBest homogeneous: {shape} -> {base.summary()}")

    print(f"\nSearching ({ROUNDS} rounds)...")
    result = autohet_search(
        network, DEFAULT_CANDIDATES, rounds=ROUNDS, simulator=simulator,
        seed=0, verbose=True,
    )
    m = result.best_metrics
    print(f"\nAutoHet: {m.summary()}")
    print(f"RUE speedup vs best homogeneous: {m.rue / base.rue:.2f}x")

    print("\nChosen crossbar sizes by layer kind:")
    by_kind: dict[str, Counter] = defaultdict(Counter)
    for layer, chosen in zip(network.layers, result.best_strategy):
        if layer.layer_type.name == "FC":
            kind = "FC"
        else:
            kind = f"conv {layer.kernel_size}x{layer.kernel_size}"
        by_kind[kind][str(chosen)] += 1
    for kind in sorted(by_kind):
        counts = ", ".join(
            f"{s} x{n}" for s, n in by_kind[kind].most_common()
        )
        print(f"  {kind:>9}: {counts}")


if __name__ == "__main__":
    main()
