"""Figure 3 — homogeneous vs manual-heterogeneous crossbars (VGG16).

Regenerates the motivation figure: utilization, energy, and RUE for the
five homogeneous square sizes and the hand-tuned heterogeneous split
(512x512 for the first ten layers, 256x256 for the last six).

Expected shape (paper §2.2): homogeneous accelerators achieve either high
utilization (32x32) or low energy (512x512) but never the best RUE; the
manual heterogeneous configuration has the highest RUE.
"""

from conftest import run_once

from repro.bench import fig3_motivation, print_fig3


def test_fig3_motivation(benchmark):
    rows = run_once(benchmark, fig3_motivation)
    print_fig3(rows)
    # The paper's headline shape: Manual-Hetero wins RUE.
    assert rows[-1].label == "Manual-Hetero"
    assert rows[-1].rue == max(r.rue for r in rows)
    # Energy decreases monotonically with crossbar size.
    energies = [r.energy_nj for r in rows[:5]]
    assert all(a > b for a, b in zip(energies, energies[1:]))
