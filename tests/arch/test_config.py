"""Tests for CrossbarShape and HardwareConfig."""

import pytest
from hypothesis import given, strategies as st

from repro.arch.config import (
    DEFAULT_CANDIDATES,
    DEFAULT_CONFIG,
    RECTANGLE_CANDIDATES,
    SQUARE_CANDIDATES,
    CrossbarShape,
    HardwareConfig,
)


class TestCrossbarShape:
    def test_cells(self):
        assert CrossbarShape(36, 32).cells == 1152

    def test_square_and_rectangle_flags(self):
        assert CrossbarShape(64, 64).is_square
        assert not CrossbarShape(64, 64).is_rectangle
        assert CrossbarShape(72, 64).is_rectangle

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            CrossbarShape(0, 32)
        with pytest.raises(ValueError):
            CrossbarShape(32, -1)

    def test_str(self):
        assert str(CrossbarShape(288, 256)) == "288x256"

    @pytest.mark.parametrize(
        "text,rows,cols",
        [("64x64", 64, 64), ("36X32", 36, 32), (" 576×512 ", 576, 512)],
    )
    def test_parse(self, text, rows, cols):
        assert CrossbarShape.parse(text) == CrossbarShape(rows, cols)

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            CrossbarShape.parse("big")
        with pytest.raises(ValueError):
            CrossbarShape.parse("64")

    def test_ordering_and_hashing(self):
        shapes = {CrossbarShape(32, 32), CrossbarShape(32, 32), CrossbarShape(64, 64)}
        assert len(shapes) == 2
        assert CrossbarShape(32, 32) < CrossbarShape(64, 64)

    @given(st.integers(1, 1024), st.integers(1, 1024))
    def test_parse_roundtrip(self, r, c):
        shape = CrossbarShape(r, c)
        assert CrossbarShape.parse(str(shape)) == shape


class TestCandidateSets:
    def test_square_candidates_are_paper_sizes(self):
        assert [s.rows for s in SQUARE_CANDIDATES] == [32, 64, 128, 256, 512]
        assert all(s.is_square for s in SQUARE_CANDIDATES)

    def test_rectangle_heights_are_multiples_of_nine(self):
        assert all(s.rows % 9 == 0 for s in RECTANGLE_CANDIDATES)
        assert [s.cols for s in RECTANGLE_CANDIDATES] == [32, 64, 128, 256, 512]

    def test_default_hybrid_set_matches_section_3_3(self):
        assert [str(s) for s in DEFAULT_CANDIDATES] == [
            "32x32", "36x32", "72x64", "288x256", "576x512",
        ]


class TestHardwareConfig:
    def test_paper_defaults(self):
        cfg = DEFAULT_CONFIG
        assert cfg.weight_bits == 8
        assert cfg.cell_bits == 1
        assert cfg.dac_bits == 1
        assert cfg.adc_bits == 10
        assert cfg.pes_per_tile == 4
        assert cfg.tiles_per_bank == 256 * 256

    def test_derived_group_and_cycles(self):
        cfg = DEFAULT_CONFIG
        assert cfg.xbars_per_group == 8
        assert cfg.input_cycles == 8
        assert cfg.logical_xbars_per_tile == 4

    def test_adc_energy_scales_exponentially(self):
        cfg = DEFAULT_CONFIG
        assert cfg.energy_adc_nj(10) == pytest.approx(4 * cfg.energy_adc_nj(8))
        assert cfg.energy_adc_nj() == pytest.approx(cfg.energy_adc_nj(10))

    def test_adc_area_scales_exponentially(self):
        cfg = DEFAULT_CONFIG
        assert cfg.area_adc_um2(9) == pytest.approx(2 * cfg.area_adc_um2(8))

    def test_ten_bit_adc_covers_all_candidate_heights(self):
        # The paper's stated reason for 10-bit ADCs (§4.1).
        max_rows = max(s.rows for s in DEFAULT_CANDIDATES)
        assert max_rows < 2**DEFAULT_CONFIG.adc_bits

    def test_rejects_indivisible_weight_bits(self):
        with pytest.raises(ValueError):
            HardwareConfig(weight_bits=7, cell_bits=2)

    def test_rejects_indivisible_input_bits(self):
        with pytest.raises(ValueError):
            HardwareConfig(input_bits=8, dac_bits=3)

    def test_rejects_nonpositive_hierarchy(self):
        with pytest.raises(ValueError):
            HardwareConfig(pes_per_tile=0)
        with pytest.raises(ValueError):
            HardwareConfig(adc_sharing=0)

    def test_with_replaces_fields(self):
        cfg = DEFAULT_CONFIG.with_(pes_per_tile=16)
        assert cfg.pes_per_tile == 16
        assert cfg.weight_bits == DEFAULT_CONFIG.weight_bits
        assert DEFAULT_CONFIG.pes_per_tile == 4  # original untouched

    def test_multibit_cells_shrink_group(self):
        cfg = HardwareConfig(weight_bits=8, cell_bits=2)
        assert cfg.xbars_per_group == 4
