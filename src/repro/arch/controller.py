"""The Global Controller (GC) and its instruction stream (§3.1).

The GC decodes CPU-side decisions (the RL strategy and the tile-shared
remap plan) into tile-level operations: weight loads, input broadcasts,
MVM triggers, partial-sum merges, pooling, and inter-tile moves.  The
paper keeps the GC abstract ("receives instructions and signals the
input/output buffer and tiles through the bus"); we realise it as an
instruction-trace generator whose counts the tests check against the
analytic model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable

from ..core.allocation.tiles import Allocation
from ..models.graph import Network
from .config import DEFAULT_CONFIG, HardwareConfig
from .mapping import LayerMapping


class Opcode(enum.Enum):
    """GC instruction set."""

    LOAD_WEIGHTS = "load_weights"   #: program one weight block into a PE
    FETCH_INPUT = "fetch_input"     #: read an input vector from the buffer
    BROADCAST = "broadcast"         #: drive an input segment to a tile
    MVM = "mvm"                     #: trigger one PE's analog evaluation
    MERGE = "merge"                 #: adder-tree merge of row-group partials
    POOL = "pool"                   #: pooling-module pass
    STORE_OUTPUT = "store_output"   #: write results to the output buffer
    MOVE = "move"                   #: tile-shared remap: move a block


@dataclass(frozen=True)
class Instruction:
    """One decoded GC instruction."""

    opcode: Opcode
    layer_index: int = -1
    tile_id: int = -1
    pe_id: int = -1
    size: int = 0       #: payload size (bytes or elements, per opcode)

    def __str__(self) -> str:
        parts = [self.opcode.value]
        if self.layer_index >= 0:
            parts.append(f"L{self.layer_index + 1}")
        if self.tile_id >= 0:
            parts.append(f"tile{self.tile_id}")
        if self.pe_id >= 0:
            parts.append(f"pe{self.pe_id}")
        if self.size:
            parts.append(f"[{self.size}]")
        return " ".join(parts)


@dataclass  # stateful: accumulates the emitted instruction stream
class GlobalController:
    """Generates the instruction stream for mapping and inference."""

    allocation: Allocation
    network: Network
    config: HardwareConfig = DEFAULT_CONFIG

    def _layer_blocks(self) -> dict[int, list[tuple[int, int]]]:
        """(tile_id, pe_slot) per block, in programming order per layer."""
        blocks: dict[int, list[tuple[int, int]]] = {
            m.layer.index: [] for m in self.allocation.mappings
        }
        for tile in self.allocation.tiles:
            next_pe = 0
            for layer_index in sorted(tile.occupants):
                for _ in range(tile.occupants[layer_index]):
                    blocks[layer_index].append((tile.tile_id, next_pe))
                    next_pe += 1
        return blocks

    # ------------------------------------------------------------------
    def mapping_program(self) -> list[Instruction]:
        """The LOAD phase: one weight-load instruction per physical block,
        plus one MOVE per tile absorbed by the tile-shared remap."""
        instructions: list[Instruction] = []
        mappings = {m.layer.index: m for m in self.allocation.mappings}
        for layer_index, blocks in self._layer_blocks().items():
            cells = mappings[layer_index].shape.cells
            for tile_id, pe_id in blocks:
                instructions.append(
                    Instruction(
                        Opcode.LOAD_WEIGHTS,
                        layer_index=layer_index,
                        tile_id=tile_id,
                        pe_id=pe_id,
                        size=cells * self.config.weight_bits // 8,
                    )
                )
        for head_id, absorbed in self.allocation.comb_map.items():
            for tail_id in absorbed:
                instructions.append(
                    Instruction(Opcode.MOVE, tile_id=head_id, size=len(absorbed))
                )
        return instructions

    def inference_program(self) -> list[Instruction]:
        """The per-inference instruction stream, layer by layer.

        Per layer: fetch + broadcast the input vector to every occupied
        tile once per MVM, trigger each block, merge row groups, store;
        pooled layers add a POOL pass.
        """
        instructions: list[Instruction] = []
        blocks = self._layer_blocks()
        for mapping in self.allocation.mappings:
            layer = mapping.layer
            idx = layer.index
            in_bytes = layer.in_channels * layer.kernel_elems
            tiles_of_layer = sorted({t for t, _ in blocks[idx]})
            for _ in range(layer.mvm_ops):
                instructions.append(
                    Instruction(Opcode.FETCH_INPUT, layer_index=idx, size=in_bytes)
                )
                for tile_id in tiles_of_layer:
                    instructions.append(
                        Instruction(
                            Opcode.BROADCAST, layer_index=idx,
                            tile_id=tile_id, size=in_bytes,
                        )
                    )
                for tile_id, pe_id in blocks[idx]:
                    instructions.append(
                        Instruction(
                            Opcode.MVM, layer_index=idx,
                            tile_id=tile_id, pe_id=pe_id,
                        )
                    )
                if mapping.row_groups > 1:
                    instructions.append(
                        Instruction(
                            Opcode.MERGE, layer_index=idx,
                            size=mapping.partial_sum_adds,
                        )
                    )
                instructions.append(
                    Instruction(
                        Opcode.STORE_OUTPUT, layer_index=idx,
                        size=layer.out_channels,
                    )
                )
            pool = self.network.pool_after_or_none(idx)
            if pool is not None:
                pooled = pool.output_size(layer.output_size) ** 2 * layer.out_channels
                instructions.append(
                    Instruction(Opcode.POOL, layer_index=idx, size=pooled)
                )
        return instructions

    # ------------------------------------------------------------------
    @staticmethod
    def histogram(instructions: Iterable[Instruction]) -> dict[Opcode, int]:
        counts: dict[Opcode, int] = {}
        for ins in instructions:
            counts[ins.opcode] = counts.get(ins.opcode, 0) + 1
        return counts
