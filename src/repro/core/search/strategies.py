"""Non-RL strategy producers: homogeneous, manual-hetero, greedy, random,
exhaustive (oracle).

These are the comparison points of the paper's evaluation:

* homogeneous accelerators — the §4.1 baselines;
* the hand-crafted heterogeneous split of Fig. 3 (512x512 for the first
  ten VGG16 layers, 256x256 for the last six);
* the greedy per-layer picker in the spirit of Zhu et al. [29] (maximise
  each layer's own utilization, ignoring energy);
* random search — a sanity floor for the RL agent;
* exhaustive search — the oracle, feasible only for small models, used by
  tests to bound the RL optimality gap.
"""

from __future__ import annotations

import itertools
import math
from typing import Callable, Sequence

import numpy as np

from ...arch.config import CrossbarShape
from ...arch.mapping import map_layer
from ...models.graph import Network
from ...obs import metrics as obs_metrics
from ...obs.trace import Tracer
from ...sim.metrics import SystemMetrics
from ...sim.simulator import CapacityError, Simulator, Strategy


def _search_tracer(tracer: Tracer | None, sim: Simulator) -> Tracer:
    """Explicit tracer, else the simulator's (explicit or ambient)."""
    return tracer if tracer is not None else sim.effective_tracer


class SearchOutcome(tuple):
    """A ``(strategy, metrics)`` pair with search statistics attached.

    Subclasses ``tuple`` so existing ``strategy, metrics = search(...)``
    unpacking keeps working, while callers that care can read how much
    work the search did and how much of the space was infeasible
    (strategies that overflow the bank raise
    :class:`~repro.sim.simulator.CapacityError` inside the simulator; the
    searches below skip them instead of crashing, and count them here).
    """

    def __new__(
        cls,
        strategy,
        metrics: SystemMetrics,
        *,
        evaluations: int = 0,
        infeasible: int = 0,
    ) -> "SearchOutcome":
        self = super().__new__(cls, (strategy, metrics))
        return self

    def __init__(
        self,
        strategy,
        metrics: SystemMetrics,
        *,
        evaluations: int = 0,
        infeasible: int = 0,
    ) -> None:
        self._evaluations = evaluations
        self._infeasible = infeasible

    @property
    def strategy(self):
        return self[0]

    @property
    def metrics(self) -> SystemMetrics:
        return self[1]

    @property
    def evaluations(self) -> int:
        """Strategies submitted to the simulator (cache hits included)."""
        return self._evaluations

    @property
    def infeasible(self) -> int:
        """Evaluations rejected for overflowing the bank's tile budget."""
        return self._infeasible


def homogeneous_strategy(network: Network, shape: CrossbarShape) -> Strategy:
    """Every layer on the same crossbar type."""
    return tuple(shape for _ in network.layers)


def manual_hetero_strategy(
    network: Network,
    head_shape: CrossbarShape = CrossbarShape(512, 512),
    tail_shape: CrossbarShape = CrossbarShape(256, 256),
    split: int = 10,
) -> Strategy:
    """The Fig. 3 hand-tuned heterogeneous configuration.

    The paper sets 512x512 for the first ten VGG16 layers and 256x256 for
    the remaining six.
    """
    if not 0 <= split <= network.num_layers:
        raise ValueError(f"split {split} out of range")
    return tuple(
        head_shape if i < split else tail_shape
        for i in range(network.num_layers)
    )


def greedy_utilization_strategy(
    network: Network, candidates: Sequence[CrossbarShape]
) -> Strategy:
    """Per-layer greedy: the shape maximising that layer's Eq. 4 utilization.

    Ties break toward the larger crossbar (fewer peripheral sets).  This is
    the utilization-first local heuristic of the mixed-size-crossbar line
    of work [29] that AutoHet's global, energy-aware search improves on.
    """
    if not candidates:
        raise ValueError("need at least one candidate")
    strategy = []
    for layer in network.layers:
        best = max(
            candidates,
            key=lambda s: (map_layer(layer, s).utilization, s.cells),
        )
        strategy.append(best)
    return tuple(strategy)


def greedy_reward_strategy(
    network: Network,
    candidates: Sequence[CrossbarShape],
    simulator: Simulator | None = None,
    *,
    tile_shared: bool = True,
    stats: dict[str, int] | None = None,
    tracer: Tracer | None = None,
) -> Strategy:
    """Coordinate-ascent greedy on the global reward.

    Starts from the per-layer utilization greedy and sweeps layers once,
    replacing each layer's shape with the candidate that maximises the
    whole-model ``R = u / e``.  A cheap, strong non-RL baseline.

    Candidates that overflow the bank are skipped as infeasible (a layer
    keeps its current shape if every alternative overflows).  Pass a
    ``stats`` dict to receive ``evaluations`` / ``infeasible`` counts.
    """
    sim = simulator if simulator is not None else Simulator()
    tr = _search_tracer(tracer, sim)
    strategy = list(greedy_utilization_strategy(network, candidates))
    evaluations = infeasible = 0
    with tr.span(obs_metrics.SPAN_SEARCH, search="greedy", network=network.name):
        for i in range(network.num_layers):
            best_shape = strategy[i]
            best_reward = -math.inf
            # Each layer sweep scores |candidates| one-shape-changed
            # variants — a natural (S, L) batch for the kernel scorer.
            # With a live tracer the per-candidate loop is kept so the
            # EVENT_CANDIDATE stream interleaves exactly as before;
            # either way the winner is the first strict maximum in
            # candidate order, and the counters are identical.
            if tr.enabled:
                for shape in candidates:
                    trial = list(strategy)
                    trial[i] = shape
                    evaluations += 1
                    metrics = sim.try_evaluate(
                        network,
                        tuple(trial),
                        tile_shared=tile_shared,
                        detailed=False,
                    )
                    tr.event(
                        obs_metrics.EVENT_CANDIDATE,
                        search="greedy",
                        layer=i,
                        shape=str(shape),
                        feasible=metrics is not None,
                        reward=None if metrics is None else metrics.reward,
                    )
                    if metrics is None:
                        infeasible += 1
                        continue
                    if metrics.reward > best_reward:
                        best_reward = metrics.reward
                        best_shape = shape
            else:
                trials = []
                for shape in candidates:
                    trial = list(strategy)
                    trial[i] = shape
                    trials.append(tuple(trial))
                evaluations += len(trials)
                scored = sim.evaluate_many(
                    network, trials, tile_shared=tile_shared, detailed=False
                )
                for shape, metrics in zip(candidates, scored):
                    if metrics is None:
                        infeasible += 1
                        continue
                    if metrics.reward > best_reward:
                        best_reward = metrics.reward
                        best_shape = shape
            strategy[i] = best_shape
    if tr.enabled:
        tr.event(
            obs_metrics.EVENT_SEARCH_RESULT,
            search="greedy",
            network=network.name,
            evaluations=evaluations,
            infeasible=infeasible,
        )
    if stats is not None:
        stats["evaluations"] = evaluations
        stats["infeasible"] = infeasible
    return tuple(strategy)


def random_search(
    network: Network,
    candidates: Sequence[CrossbarShape],
    simulator: Simulator | None = None,
    *,
    rounds: int = 100,
    tile_shared: bool = True,
    seed: int = 0,
    tracer: Tracer | None = None,
) -> SearchOutcome:
    """Uniform random strategies; returns the best *feasible* one found.

    Strategies that overflow the bank are counted as infeasible and
    skipped; only when every sampled strategy overflows does the search
    re-raise :class:`~repro.sim.simulator.CapacityError`.
    """
    if rounds <= 0:
        raise ValueError("rounds must be positive")
    sim = simulator if simulator is not None else Simulator()
    tr = _search_tracer(tracer, sim)
    rng = np.random.default_rng(seed)
    best: tuple[Strategy, SystemMetrics] | None = None
    infeasible = 0
    with tr.span(obs_metrics.SPAN_SEARCH, search="random", network=network.name):
        # Draw every round upfront — one rng.integers call per round, in
        # round order, so the sample sequence is identical to the old
        # per-round loop — then score the whole batch at once (the
        # kernel scorer collapses duplicates to cache hits exactly like
        # serial evaluation would).
        samples = [
            tuple(
                candidates[i]
                for i in rng.integers(0, len(candidates), size=network.num_layers)
            )
            for _ in range(rounds)
        ]
        if tr.enabled:
            scored = []
            for round_index, strategy in enumerate(samples):
                metrics = sim.try_evaluate(
                    network, strategy, tile_shared=tile_shared, detailed=False
                )
                tr.event(
                    obs_metrics.EVENT_CANDIDATE,
                    search="random",
                    round=round_index,
                    feasible=metrics is not None,
                    reward=None if metrics is None else metrics.reward,
                )
                scored.append(metrics)
        else:
            scored = sim.evaluate_many(
                network, samples, tile_shared=tile_shared, detailed=False
            )
        for strategy, metrics in zip(samples, scored):
            if metrics is None:
                infeasible += 1
                continue
            if best is None or metrics.reward > best[1].reward:
                best = (strategy, metrics)
    if tr.enabled and best is not None:
        tr.event(
            obs_metrics.EVENT_SEARCH_RESULT,
            search="random",
            network=network.name,
            evaluations=rounds,
            infeasible=infeasible,
            best_reward=best[1].reward,
        )
    if best is None:
        raise CapacityError(
            f"all {rounds} sampled strategies overflow the bank "
            f"({sim.config.tiles_per_bank} tiles)"
        )
    return SearchOutcome(
        best[0], best[1], evaluations=rounds, infeasible=infeasible
    )


def exhaustive_search(
    network: Network,
    candidates: Sequence[CrossbarShape],
    simulator: Simulator | None = None,
    *,
    tile_shared: bool = True,
    limit: int = 2_000_000,
    tracer: Tracer | None = None,
) -> SearchOutcome:
    """Brute-force oracle over the full C^N space (small models only).

    Infeasible combinations (bank overflow) are skipped and counted;
    :class:`~repro.sim.simulator.CapacityError` propagates only when the
    *entire* space is infeasible.
    """
    space = len(candidates) ** network.num_layers
    if space > limit:
        raise ValueError(
            f"search space {space} exceeds limit {limit}; "
            "exhaustive search is for small models"
        )
    sim = simulator if simulator is not None else Simulator()
    tr = _search_tracer(tracer, sim)
    best: tuple[Strategy, SystemMetrics] | None = None
    infeasible = 0
    # One span and a result event only — per-candidate events over a C^N
    # space would dominate the trace.
    with tr.span(
        obs_metrics.SPAN_SEARCH,
        search="exhaustive",
        network=network.name,
        space=space,
    ):
        for combo in itertools.product(candidates, repeat=network.num_layers):
            metrics = sim.try_evaluate(
                network, combo, tile_shared=tile_shared, detailed=False
            )
            if metrics is None:
                infeasible += 1
                continue
            if best is None or metrics.reward > best[1].reward:
                best = (combo, metrics)
    if tr.enabled and best is not None:
        tr.event(
            obs_metrics.EVENT_SEARCH_RESULT,
            search="exhaustive",
            network=network.name,
            evaluations=space,
            infeasible=infeasible,
            best_reward=best[1].reward,
        )
    if best is None:
        raise CapacityError(
            f"all {space} strategies overflow the bank "
            f"({sim.config.tiles_per_bank} tiles)"
        )
    return SearchOutcome(
        best[0], best[1], evaluations=space, infeasible=infeasible
    )


def best_homogeneous(
    network: Network,
    shapes: Sequence[CrossbarShape],
    simulator: Simulator | None = None,
    *,
    tile_shared: bool = False,
    tracer: Tracer | None = None,
) -> SearchOutcome:
    """The highest-RUE homogeneous accelerator ("Best-Homo", §4.4).

    Shapes whose uniform strategy overflows the bank are skipped.
    """
    sim = simulator if simulator is not None else Simulator()
    tr = _search_tracer(tracer, sim)
    scored: list[tuple[CrossbarShape, SystemMetrics]] = []
    infeasible = 0
    for shape in shapes:
        metrics = sim.try_evaluate(
            network, homogeneous_strategy(network, shape), tile_shared=tile_shared
        )
        if tr.enabled:
            tr.event(
                obs_metrics.EVENT_CANDIDATE,
                search="best_homogeneous",
                shape=str(shape),
                feasible=metrics is not None,
                reward=None if metrics is None else metrics.reward,
            )
        if metrics is None:
            infeasible += 1
            continue
        scored.append((shape, metrics))
    if not scored:
        raise CapacityError(
            f"every homogeneous strategy overflows the bank "
            f"({sim.config.tiles_per_bank} tiles)"
        )
    shape, metrics = max(scored, key=lambda pair: pair[1].rue)
    return SearchOutcome(
        shape, metrics, evaluations=len(shapes), infeasible=infeasible
    )
