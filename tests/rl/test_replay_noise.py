"""Tests for the experience pool and exploration noise."""

import numpy as np
import pytest

from repro.core.rl.noise import OrnsteinUhlenbeckNoise, TruncatedNormalNoise
from repro.core.rl.replay import ExperiencePool, Transition


def make_transition(i, reward=1.0, done=False):
    return Transition(
        state=np.full(4, float(i)),
        next_state=np.full(4, float(i + 1)),
        action=i / 10.0,
        reward=reward,
        done=done,
    )


class TestExperiencePool:
    def test_add_and_len(self):
        pool = ExperiencePool(10)
        pool.add(make_transition(0))
        assert len(pool) == 1
        assert not pool.full

    def test_ring_buffer_overwrites_oldest(self):
        pool = ExperiencePool(3)
        pool.extend(make_transition(i) for i in range(5))
        assert len(pool) == 3
        assert pool.full
        states = {int(t.state[0]) for t in pool._buffer}
        assert states == {2, 3, 4}

    def test_sample_shapes(self):
        pool = ExperiencePool(10)
        pool.extend(make_transition(i, done=(i == 4)) for i in range(5))
        s, ns, a, r, d = pool.sample(8)
        assert s.shape == (8, 4)
        assert ns.shape == (8, 4)
        assert a.shape == (8, 1)
        assert r.shape == (8, 1)
        assert d.shape == (8, 1)

    def test_sample_from_empty_raises(self):
        with pytest.raises(ValueError):
            ExperiencePool(4).sample(1)

    def test_sample_rejects_nonpositive_batch(self):
        pool = ExperiencePool(4)
        pool.add(make_transition(0))
        with pytest.raises(ValueError):
            pool.sample(0)

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            ExperiencePool(0)

    def test_sampling_deterministic_by_seed(self):
        a = ExperiencePool(10, seed=3)
        b = ExperiencePool(10, seed=3)
        for pool in (a, b):
            pool.extend(make_transition(i) for i in range(10))
        sa = a.sample(5)
        sb = b.sample(5)
        assert np.array_equal(sa[0], sb[0])

    def test_done_flag_roundtrip(self):
        pool = ExperiencePool(2)
        pool.add(make_transition(0, done=True))
        _, _, _, _, d = pool.sample(4)
        assert np.all(d == 1.0)


class TestTruncatedNormalNoise:
    def test_stays_in_bounds(self):
        noise = TruncatedNormalNoise(sigma=2.0, seed=0)
        for _ in range(200):
            assert 0.0 <= noise.perturb(0.5) <= 1.0

    def test_decay(self):
        noise = TruncatedNormalNoise(sigma=1.0, decay=0.5)
        noise.end_episode()
        noise.end_episode()
        assert noise.sigma == pytest.approx(0.25)

    def test_zero_sigma_is_identity(self):
        noise = TruncatedNormalNoise(sigma=0.0)
        assert noise.perturb(0.3) == pytest.approx(0.3)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            TruncatedNormalNoise(sigma=-1.0)
        with pytest.raises(ValueError):
            TruncatedNormalNoise(decay=0.0)

    def test_deterministic_by_seed(self):
        a = TruncatedNormalNoise(seed=5)
        b = TruncatedNormalNoise(seed=5)
        assert a.perturb(0.5) == b.perturb(0.5)


class TestOUNoise:
    def test_stays_in_bounds(self):
        noise = OrnsteinUhlenbeckNoise(sigma=1.0, seed=0)
        for _ in range(200):
            assert 0.0 <= noise.perturb(0.5) <= 1.0

    def test_reset_returns_to_mean(self):
        noise = OrnsteinUhlenbeckNoise(sigma=1.0, seed=0)
        for _ in range(10):
            noise.perturb(0.5)
        noise.reset()
        assert noise._x == noise.mu

    def test_temporal_correlation(self):
        """Successive OU samples are correlated, unlike white noise."""
        noise = OrnsteinUhlenbeckNoise(sigma=0.3, theta=0.05, seed=1)
        xs = []
        for _ in range(500):
            noise.perturb(0.0)
            xs.append(noise._x)
        xs = np.array(xs)
        corr = np.corrcoef(xs[:-1], xs[1:])[0, 1]
        assert corr > 0.5
