"""Differential test: the serving engine vs. the closed-form pipeline.

The engine's service model *is* :mod:`repro.sim.pipeline` — a saturated
single-tenant run must reproduce the closed-form numbers to float
tolerance, not merely approximately:

* the j-th completion lands exactly ``fill_ns + j * bottleneck_ns``
  after dispatch (the ``fill + (N-1) * bottleneck`` batch law of
  :class:`repro.sim.pipeline.PipelineReport`),
* steady-state throughput equals ``throughput_img_per_s``,
* after a forced re-pack to two weight copies the same laws hold with
  the replicated report's timings.

Any drift here means the engine grew its own latency model.
"""

import math
from dataclasses import dataclass
from typing import Sequence

import pytest

from repro.arch.config import CrossbarShape
from repro.core.allocation.multi_model import allocate_multi_network
from repro.models.graph import Network
from repro.models.zoo import get_model
from repro.serve import (
    ReallocConfig,
    ReallocDecision,
    Scenario,
    TenantSpec,
    simulate,
)
from repro.sim.pipeline import pipeline_report
from repro.sim.units_constants import NS_PER_S

REL = 1e-9
N_REQUESTS = 64


def saturated_scenario(model, shape, n, *, realloc=None, lead_ns=()):
    """One tenant, ``n`` simultaneous arrivals, pipeline never starved."""
    trace = tuple(lead_ns) + tuple(1e7 for _ in range(n))
    return Scenario(
        name="parity",
        tenants=(
            TenantSpec(
                name="solo", model=model, shape=shape,
                trace_ns=trace, slo_ns=1e12,
            ),
        ),
        duration_ns=2e7,
        max_batch=n,
        queue_cap=0,
        drain=True,
        realloc=realloc or ReallocConfig(enabled=False),
    )


@pytest.mark.parametrize(
    "model,shape", [("lenet", "64x64"), ("vgg16", "64x64")]
)
class TestClosedFormParity:
    def test_batch_law_and_steady_state_throughput(self, model, shape):
        network = get_model(model)
        strategy = tuple(
            [CrossbarShape.parse(shape)] * network.num_layers
        )
        report = pipeline_report(network, strategy)
        result = simulate(saturated_scenario(model, shape, N_REQUESTS))
        tenant = result.tenants[0]
        assert tenant.completed == N_REQUESTS

        # All arrivals share one timestamp, so each latency is the
        # completion offset from the single dispatch instant.
        latencies = tenant.latencies_ns
        for j, latency in enumerate(latencies):
            want = report.fill_ns + j * report.bottleneck_ns
            assert math.isclose(latency, want, rel_tol=REL), (
                f"request {j}: {latency} != closed-form {want}"
            )
        assert math.isclose(
            latencies[-1],
            report.batch_latency_ns(N_REQUESTS),
            rel_tol=REL,
        )

        # Steady state: (N-1) completions over the span between the
        # first and last completion is exactly the pipeline bandwidth.
        span_s = (latencies[-1] - latencies[0]) / NS_PER_S
        steady_rps = (N_REQUESTS - 1) / span_s
        assert math.isclose(
            steady_rps, report.throughput_img_per_s, rel_tol=REL
        )


@dataclass(frozen=True)
class ForceReplication:
    """Test policy: re-pack to a fixed replication vector once."""

    target: tuple[int, ...]

    def decide(
        self,
        *,
        now_ns: float,
        observed_share: Sequence[float],
        provisioned_share: Sequence[float],
        current_replication: Sequence[int],
        workloads: Sequence[tuple[Network, Sequence[CrossbarShape]]],
        tile_capacity: int,
        tile_budget: int,
        last_realloc_ns: float,
    ) -> ReallocDecision | None:
        if tuple(current_replication) == self.target:
            return None
        return ReallocDecision(
            replication=self.target,
            allocation=allocate_multi_network(
                workloads, tile_capacity, replication=list(self.target)
            ),
            drift=1.0,
            observed_share=tuple(observed_share),
        )


class TestReplicatedParity:
    def test_replication_two_matches_replicated_report(self):
        network = get_model("lenet")
        strategy = tuple(
            [CrossbarShape.parse("64x64")] * network.num_layers
        )
        rep2 = pipeline_report(
            network, strategy, replication=[2] * network.num_layers
        )
        rep1 = pipeline_report(network, strategy)
        assert rep2.bottleneck_ns < rep1.bottleneck_ns

        # A lone lead arrival at t=0 triggers the forced re-pack
        # (window=1, no stall); the saturating wave then runs entirely
        # on two weight copies.
        scenario = saturated_scenario(
            "lenet", "64x64", N_REQUESTS,
            lead_ns=(0.0,),
            realloc=ReallocConfig(
                enabled=True, threshold=0.5, window=1, check_every=1,
                stall_ns=0.0, cooldown_ns=0.0, headroom=4.0,
            ),
        )
        result = simulate(
            scenario, policy=ForceReplication(target=(2,))
        )
        tenant = result.tenants[0]
        assert tenant.replication == 2
        assert len(result.realloc_events) == 1
        assert result.realloc_events[0]["replication"] == [2]
        assert tenant.completed == N_REQUESTS + 1

        wave = tenant.latencies_ns[1:]
        for j, latency in enumerate(wave):
            want = rep2.fill_ns + j * rep2.bottleneck_ns
            assert math.isclose(latency, want, rel_tol=REL), (
                f"request {j}: {latency} != replicated {want}"
            )
        span_s = (wave[-1] - wave[0]) / NS_PER_S
        assert math.isclose(
            (N_REQUESTS - 1) / span_s,
            rep2.throughput_img_per_s,
            rel_tol=REL,
        )
