"""Pinned reproduction of the paper's qualitative claims.

Each test corresponds to a statement in the paper's evaluation (§2.2,
§4.2-§4.5).  Absolute numbers are not asserted — our cost-model constants
differ from the authors' MNSIM checkout — but every *shape* (who wins, in
which direction, roughly by how much) is.

These tests use reduced RL round counts to stay fast; the benchmark
harness regenerates the full tables.
"""

import pytest

from repro.arch.config import (
    CrossbarShape,
    DEFAULT_CANDIDATES,
    SQUARE_CANDIDATES,
)
from repro.core import autohet_search
from repro.core.search import best_homogeneous, manual_hetero_strategy
from repro.models import alexnet, vgg16
from repro.sim import Simulator

ROUNDS = 80


@pytest.fixture(scope="module")
def sim():
    return Simulator()


@pytest.fixture(scope="module")
def vgg():
    return vgg16()


@pytest.fixture(scope="module")
def vgg_search(vgg, sim):
    return autohet_search(
        vgg, DEFAULT_CANDIDATES, rounds=ROUNDS, simulator=sim, seed=0
    )


@pytest.fixture(scope="module")
def homo_metrics(vgg, sim):
    return {
        shape: sim.evaluate_homogeneous(vgg, shape)
        for shape in SQUARE_CANDIDATES
    }


class TestMotivation:
    def test_fig3_homogeneous_tradeoff(self, homo_metrics):
        """§2.2: homogeneous gives either high utilization (32x32) or low
        energy (512x512), never both."""
        best_util = max(homo_metrics.values(), key=lambda m: m.utilization)
        best_energy = min(homo_metrics.values(), key=lambda m: m.energy_nj)
        assert best_util.strategy != best_energy.strategy

    def test_fig3_energy_monotone_in_size(self, homo_metrics):
        energies = [homo_metrics[s].energy_nj for s in SQUARE_CANDIDATES]
        assert all(a > b for a, b in zip(energies, energies[1:]))

    def test_fig3_manual_hetero_has_highest_rue(self, vgg, sim, homo_metrics):
        manual = sim.evaluate(
            vgg, manual_hetero_strategy(vgg), tile_shared=False, detailed=False
        )
        assert manual.rue > max(m.rue for m in homo_metrics.values())

    def test_fig9c_energy_spread_matches_paper(self, homo_metrics):
        """Paper: worst homo burns ~12.5x the energy of the best (VGG16)."""
        energies = [m.energy_nj for m in homo_metrics.values()]
        ratio = max(energies) / min(energies)
        assert 6 < ratio < 25


class TestOverallPerformance:
    def test_autohet_beats_best_homogeneous_rue(self, vgg_search, homo_metrics):
        """Fig. 9a: AutoHet has the highest RUE (paper: 2.2x for VGG16)."""
        best_homo_rue = max(m.rue for m in homo_metrics.values())
        assert vgg_search.best_metrics.rue > 1.2 * best_homo_rue

    def test_autohet_energy_reduction_vs_worst(self, vgg_search, homo_metrics):
        """Abstract: energy reduced by up to ~94.6% vs homogeneous."""
        worst = max(m.energy_nj for m in homo_metrics.values())
        reduction = 1 - vgg_search.best_metrics.energy_nj / worst
        assert reduction > 0.85

    def test_autohet_prefers_large_rectangles_for_vgg(self, vgg_search):
        """Table 3 (+Hy): most VGG16 layers land on 576x512/288x256."""
        large = sum(
            1 for s in vgg_search.best_strategy
            if s in (CrossbarShape(576, 512), CrossbarShape(288, 256))
        )
        assert large >= 12

    def test_base_is_512_for_vgg16(self, vgg, sim):
        """§4.3: Base (best homogeneous) for VGG16 is 512x512."""
        shape, _ = best_homogeneous(vgg, SQUARE_CANDIDATES, sim)
        assert shape == CrossbarShape(512, 512)


class TestIndividualTechniques:
    def test_rectangles_beat_squares_of_same_width(self, vgg, sim):
        """§4.3: heights that are multiples of 9 suit 3x3-kernel layers."""
        square = sim.evaluate_homogeneous(vgg, CrossbarShape(512, 512))
        rect = sim.evaluate(
            vgg,
            tuple(CrossbarShape(576, 512) for _ in vgg.layers),
            tile_shared=False,
            detailed=False,
        )
        assert rect.utilization > square.utilization
        assert rect.rue > square.rue

    def test_tile_shared_reduces_occupied_tiles(self, vgg, sim, vgg_search):
        """Table 4: All occupies fewer tiles than +Hy (paper: -10% VGG16)."""
        strategy = vgg_search.best_strategy
        unshared = sim.evaluate(vgg, strategy, tile_shared=False, detailed=False)
        shared = sim.evaluate(vgg, strategy, tile_shared=True, detailed=False)
        assert shared.occupied_tiles <= unshared.occupied_tiles
        assert shared.utilization >= unshared.utilization

    def test_ablation_rue_monotone(self, vgg, sim):
        """Fig. 10: Base -> +He -> +Hy -> All never hurts RUE (VGG16)."""
        _, base = best_homogeneous(vgg, SQUARE_CANDIDATES, sim)
        he = autohet_search(
            vgg, SQUARE_CANDIDATES, rounds=ROUNDS, simulator=sim,
            tile_shared=False, seed=0,
        ).best_metrics
        hy = autohet_search(
            vgg, DEFAULT_CANDIDATES, rounds=ROUNDS, simulator=sim,
            tile_shared=False, seed=0,
        ).best_metrics
        all_ = autohet_search(
            vgg, DEFAULT_CANDIDATES, rounds=ROUNDS, simulator=sim,
            tile_shared=True, seed=0,
        ).best_metrics
        assert he.rue >= 0.98 * base.rue
        assert hy.rue >= he.rue
        assert all_.rue >= 0.98 * hy.rue


class TestAreaLatency:
    def test_table5_autohet_smallest_area(self, vgg, sim, vgg_search):
        """Table 5: AutoHet occupies the least area."""
        areas = [
            sim.evaluate_homogeneous(vgg, s).area_um2 for s in SQUARE_CANDIDATES
        ]
        assert vgg_search.best_metrics.area_um2 < min(areas)

    def test_table5_area_shrinks_with_crossbar_size(self, homo_metrics):
        areas = [homo_metrics[s].area_um2 for s in SQUARE_CANDIDATES]
        assert all(a > b for a, b in zip(areas, areas[1:]))
        assert 5 < areas[0] / areas[-1] < 20  # paper: ~10.8x

    def test_table5_autohet_latency_not_significantly_higher(
        self, vgg_search, homo_metrics
    ):
        """§4.5: AutoHet's latency is within a few percent of the best."""
        best = min(m.latency_ns for m in homo_metrics.values())
        assert vgg_search.best_metrics.latency_ns < 1.25 * best


class TestSearchTime:
    def test_search_time_split_reported(self, vgg_search):
        """§4.5: the harness reports the decision/simulator time split."""
        assert vgg_search.total_seconds > 0
        assert 0 < vgg_search.simulator_fraction < 1


class TestAlexNet:
    def test_autohet_wins_on_alexnet_too(self, sim):
        """Fig. 9: AutoHet outperforms the best homo by ~1.3x (AlexNet)."""
        net = alexnet()
        _, base = best_homogeneous(net, SQUARE_CANDIDATES, sim)
        result = autohet_search(
            net, DEFAULT_CANDIDATES, rounds=ROUNDS, simulator=sim, seed=0
        )
        assert result.best_metrics.rue > base.rue
