"""Tests for the non-RL strategy producers and search baselines."""

import pytest

from repro.arch.config import CrossbarShape, DEFAULT_CANDIDATES, SQUARE_CANDIDATES
from repro.arch.mapping import map_layer
from repro.core.search import (
    best_homogeneous,
    exhaustive_search,
    greedy_reward_strategy,
    greedy_utilization_strategy,
    homogeneous_strategy,
    manual_hetero_strategy,
    random_search,
)
from repro.models import lenet, tiny_cnn, vgg16
from repro.sim import Simulator

SMALL_CANDIDATES = (CrossbarShape(36, 32), CrossbarShape(288, 256))


class TestSimpleStrategies:
    def test_homogeneous(self, vgg_net):
        s = homogeneous_strategy(vgg_net, CrossbarShape(64, 64))
        assert len(s) == 16 and set(s) == {CrossbarShape(64, 64)}

    def test_manual_hetero_default_split(self, vgg_net):
        s = manual_hetero_strategy(vgg_net)
        assert s[:10] == tuple([CrossbarShape(512, 512)] * 10)
        assert s[10:] == tuple([CrossbarShape(256, 256)] * 6)

    def test_manual_hetero_custom_split(self, vgg_net):
        s = manual_hetero_strategy(vgg_net, split=0)
        assert set(s) == {CrossbarShape(256, 256)}

    def test_manual_hetero_rejects_bad_split(self, vgg_net):
        with pytest.raises(ValueError):
            manual_hetero_strategy(vgg_net, split=99)


class TestGreedy:
    def test_utilization_greedy_maximises_locally(self, lenet_net):
        strategy = greedy_utilization_strategy(lenet_net, DEFAULT_CANDIDATES)
        for layer, choice in zip(lenet_net.layers, strategy):
            best_u = max(
                map_layer(layer, c).utilization for c in DEFAULT_CANDIDATES
            )
            assert map_layer(layer, choice).utilization == pytest.approx(best_u)

    def test_utilization_greedy_breaks_ties_to_larger(self):
        from repro.models import Network, MNIST
        from repro.models.layers import LayerSpec

        net = Network.build("one", MNIST, [LayerSpec.conv(1, 4, 3, input_size=8)])
        # Candidates with identical utilization for this layer.
        cands = (CrossbarShape(36, 32), CrossbarShape(72, 64))
        strategy = greedy_utilization_strategy(net, cands)
        u0 = map_layer(net.layers[0], cands[0]).utilization
        u1 = map_layer(net.layers[0], cands[1]).utilization
        if u0 == u1:
            assert strategy[0] == cands[1]

    def test_rejects_empty_candidates(self, lenet_net):
        with pytest.raises(ValueError):
            greedy_utilization_strategy(lenet_net, ())

    def test_reward_greedy_not_worse_than_start(self, lenet_net, simulator):
        start = greedy_utilization_strategy(lenet_net, SMALL_CANDIDATES)
        improved = greedy_reward_strategy(
            lenet_net, SMALL_CANDIDATES, simulator
        )
        r0 = simulator.evaluate(lenet_net, start, detailed=False).reward
        r1 = simulator.evaluate(lenet_net, improved, detailed=False).reward
        assert r1 >= r0 - 1e-15


class TestRandomSearch:
    def test_returns_valid_strategy(self, lenet_net, simulator):
        strategy, metrics = random_search(
            lenet_net, DEFAULT_CANDIDATES, simulator, rounds=10, seed=0
        )
        assert len(strategy) == lenet_net.num_layers
        assert metrics.reward > 0

    def test_deterministic_by_seed(self, lenet_net, simulator):
        a = random_search(lenet_net, DEFAULT_CANDIDATES, simulator, rounds=5, seed=3)
        b = random_search(lenet_net, DEFAULT_CANDIDATES, simulator, rounds=5, seed=3)
        assert a[0] == b[0]

    def test_more_rounds_never_worse(self, lenet_net, simulator):
        few = random_search(lenet_net, DEFAULT_CANDIDATES, simulator, rounds=3, seed=1)
        many = random_search(lenet_net, DEFAULT_CANDIDATES, simulator, rounds=30, seed=1)
        assert many[1].reward >= few[1].reward

    def test_rejects_nonpositive_rounds(self, lenet_net):
        with pytest.raises(ValueError):
            random_search(lenet_net, DEFAULT_CANDIDATES, rounds=0)


class TestExhaustive:
    def test_oracle_beats_everything(self, lenet_net, simulator):
        strategy, metrics = exhaustive_search(
            lenet_net, SMALL_CANDIDATES, simulator
        )
        # No homogeneous or random strategy can beat the oracle.
        for cand in SMALL_CANDIDATES:
            homo = simulator.evaluate(
                lenet_net, homogeneous_strategy(lenet_net, cand),
                detailed=False,
            )
            assert metrics.reward >= homo.reward
        _, rnd = random_search(
            lenet_net, SMALL_CANDIDATES, simulator, rounds=20, seed=2
        )
        assert metrics.reward >= rnd.reward

    def test_space_limit_guard(self, vgg_net):
        with pytest.raises(ValueError, match="exceeds limit"):
            exhaustive_search(vgg_net, DEFAULT_CANDIDATES, limit=100)

    def test_greedy_reward_close_to_oracle(self, lenet_net, simulator):
        """Coordinate ascent should land within 20% of the oracle here."""
        _, oracle = exhaustive_search(lenet_net, SMALL_CANDIDATES, simulator)
        greedy = simulator.evaluate(
            lenet_net,
            greedy_reward_strategy(lenet_net, SMALL_CANDIDATES, simulator),
            detailed=False,
        )
        assert greedy.reward >= 0.8 * oracle.reward


class TestBestHomogeneous:
    def test_picks_max_rue(self, vgg_net, simulator):
        shape, metrics = best_homogeneous(vgg_net, SQUARE_CANDIDATES, simulator)
        for cand in SQUARE_CANDIDATES:
            other = simulator.evaluate_homogeneous(vgg_net, cand)
            assert metrics.rue >= other.rue
        assert str(shape) in {str(s) for s in SQUARE_CANDIDATES}

    def test_base_is_512_for_vgg16(self, vgg_net, simulator):
        """§4.3 pins Base for VGG16 to the 512x512 homogeneous SXB."""
        shape, _ = best_homogeneous(vgg_net, SQUARE_CANDIDATES, simulator)
        assert shape == CrossbarShape(512, 512)
