"""MLP + Adam tests, including finite-difference gradient verification."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.rl.networks import MLP, Adam


def finite_diff_grads(net, x, upstream, eps=1e-6):
    """Numerical gradients of sum(upstream * net(x)) wrt all parameters."""
    def loss():
        return float(np.sum(upstream * net.forward(x)))

    grads = []
    for p in net.parameters():
        g = np.zeros_like(p)
        it = np.nditer(p, flags=["multi_index"])
        while not it.finished:
            idx = it.multi_index
            orig = p[idx]
            p[idx] = orig + eps
            hi = loss()
            p[idx] = orig - eps
            lo = loss()
            p[idx] = orig
            g[idx] = (hi - lo) / (2 * eps)
            it.iternext()
        grads.append(g)
    return grads


class TestForward:
    def test_output_shape(self):
        net = MLP.create([4, 8, 2])
        out = net.forward(np.zeros((5, 4)))
        assert out.shape == (5, 2)

    def test_1d_input_promoted(self):
        net = MLP.create([4, 8, 2])
        assert net.forward(np.zeros(4)).shape == (1, 2)

    def test_sigmoid_output_bounded(self):
        net = MLP.create([3, 8, 1], output_activation="sigmoid")
        out = net.forward(np.random.default_rng(0).normal(size=(20, 3)))
        assert np.all((out > 0) & (out < 1))

    def test_rejects_too_few_sizes(self):
        with pytest.raises(ValueError):
            MLP.create([4])

    def test_unknown_activation_raises(self):
        net = MLP.create([2, 2], output_activation="softplus")
        with pytest.raises(ValueError):
            net.forward(np.zeros((1, 2)))

    def test_deterministic_init_by_rng(self):
        a = MLP.create([4, 8, 1], rng=np.random.default_rng(3))
        b = MLP.create([4, 8, 1], rng=np.random.default_rng(3))
        assert all(np.array_equal(x, y) for x, y in zip(a.parameters(), b.parameters()))


class TestBackward:
    @pytest.mark.parametrize(
        "hidden_act,out_act",
        [("relu", "linear"), ("tanh", "sigmoid"), ("relu", "tanh")],
    )
    def test_gradients_match_finite_differences(self, hidden_act, out_act):
        rng = np.random.default_rng(1)
        net = MLP.create(
            [3, 6, 2],
            hidden_activation=hidden_act,
            output_activation=out_act,
            rng=rng,
        )
        x = rng.normal(size=(4, 3))
        upstream = rng.normal(size=(4, 2))
        grad_w, grad_b, _ = net.backward(x, upstream)
        num = finite_diff_grads(net, x, upstream)
        for analytic, numeric in zip(grad_w + grad_b, num):
            assert np.allclose(analytic, numeric, atol=1e-4), (
                f"{hidden_act}/{out_act} gradient mismatch"
            )

    def test_input_gradient_matches_finite_differences(self):
        rng = np.random.default_rng(2)
        net = MLP.create([3, 5, 1], hidden_activation="tanh", rng=rng)
        x = rng.normal(size=(2, 3))
        upstream = np.ones((2, 1))
        _, _, dx = net.backward(x, upstream)
        eps = 1e-6
        for i in range(2):
            for j in range(3):
                xp = x.copy(); xp[i, j] += eps
                xm = x.copy(); xm[i, j] -= eps
                num = (net.forward(xp).sum() - net.forward(xm).sum()) / (2 * eps)
                assert dx[i, j] == pytest.approx(num, abs=1e-4)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_gradient_property_random_nets(self, seed):
        rng = np.random.default_rng(seed)
        net = MLP.create([2, 4, 1], hidden_activation="tanh", rng=rng)
        x = rng.normal(size=(3, 2))
        upstream = rng.normal(size=(3, 1))
        grad_w, grad_b, _ = net.backward(x, upstream)
        num = finite_diff_grads(net, x, upstream)
        for analytic, numeric in zip(grad_w + grad_b, num):
            assert np.allclose(analytic, numeric, atol=1e-4)


class TestTargets:
    def test_clone_is_deep(self):
        net = MLP.create([2, 3, 1])
        clone = net.clone()
        clone.weights[0][0, 0] += 1.0
        assert net.weights[0][0, 0] != clone.weights[0][0, 0]

    def test_soft_update_interpolates(self):
        a = MLP.create([2, 2], rng=np.random.default_rng(0))
        b = MLP.create([2, 2], rng=np.random.default_rng(1))
        before = b.weights[0].copy()
        b.soft_update_from(a, 0.5)
        assert np.allclose(b.weights[0], 0.5 * a.weights[0] + 0.5 * before)

    def test_copy_from_is_full_update(self):
        a = MLP.create([2, 2], rng=np.random.default_rng(0))
        b = MLP.create([2, 2], rng=np.random.default_rng(1))
        b.copy_from(a)
        assert np.array_equal(a.weights[0], b.weights[0])

    def test_soft_update_rejects_bad_tau(self):
        a = MLP.create([2, 2])
        with pytest.raises(ValueError):
            a.soft_update_from(a.clone(), 1.5)


class TestAdam:
    def test_descends_quadratic(self):
        p = [np.array([5.0])]
        opt = Adam(p, lr=0.1)
        for _ in range(300):
            opt.step([2 * p[0]])  # d/dx x^2
        assert abs(p[0][0]) < 0.05

    def test_trains_mlp_on_regression(self):
        rng = np.random.default_rng(0)
        net = MLP.create([1, 16, 1], hidden_activation="tanh", rng=rng)
        opt = Adam(net.parameters(), lr=1e-2)
        x = rng.uniform(-1, 1, size=(64, 1))
        y = x**2
        first_loss = None
        for _ in range(400):
            pred = net.forward(x)
            err = pred - y
            loss = float(np.mean(err**2))
            if first_loss is None:
                first_loss = loss
            gw, gb, _ = net.backward(x, 2 * err / err.shape[0])
            opt.step(gw + gb)
        assert loss < first_loss * 0.1

    def test_rejects_mismatched_grads(self):
        opt = Adam([np.zeros(2)])
        with pytest.raises(ValueError):
            opt.step([np.zeros(2), np.zeros(2)])
