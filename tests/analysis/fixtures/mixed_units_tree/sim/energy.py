"""A toy cost model with one dimensional bug per UNI sim rule.

Each ``bad_*`` entity trips exactly one rule; the neighbouring ``ok_*``
twin computes the same thing with the units kept straight.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Named conversion constant: multiplying by it is *not* UNI003 even
#: though its value is a power of ten — the literal sits behind a name.
#: (In the real tree the name would also carry a CONVERSION_UNITS entry.)
FAN_NJ_TO_J = 1e-9


@dataclass(frozen=True)
class FanConfig:
    """UNI002: ``fan_gain`` is numeric but has neither a unit suffix nor
    a UNIT_TABLE entry — nothing says what the number measures."""

    energy_fan_nj: float = 0.5
    latency_spin_ns: float = 12.0
    fan_gain: float = 1.25


@dataclass(frozen=True)
class OkFanConfig:
    """Negative twin of :class:`FanConfig`: every numeric field declares
    its dimension through its suffix (``_fraction`` covers the gain)."""

    energy_fan_nj: float = 0.5
    latency_spin_ns: float = 12.0
    gain_fraction: float = 1.25


def bad_total_cost(config: FanConfig) -> float:
    """UNI001: adds nanojoules to nanoseconds."""
    return config.energy_fan_nj + config.latency_spin_ns


def ok_total_energy_nj(config: FanConfig) -> float:
    """Negative twin: a pure-energy sum, scaled by a dimensionless gain."""
    return config.energy_fan_nj + config.energy_fan_nj * config.fan_gain


def bad_energy_scaled(config: FanConfig) -> float:
    """UNI003: a bare power-of-ten literal converts nJ to J undeclared."""
    return config.energy_fan_nj * 1e-9


def ok_energy_joules(config: FanConfig) -> float:
    """Negative twin: the same conversion through a named constant."""
    return config.energy_fan_nj * FAN_NJ_TO_J


def bad_latency_roundup_ns(config: FanConfig) -> float:
    """UNI004: the ``_ns`` suffix declares nanoseconds, but the returned
    value is the config's energy."""
    return float(config.energy_fan_nj)


def ok_latency_roundup_ns(config: FanConfig) -> float:
    """Negative twin: returns the dimension its name declares."""
    return float(config.latency_spin_ns)
