"""AutoHet core: RL search, allocation schemes, and strategy producers."""

from .autohet import AutoHet, SearchResult, autohet_search

__all__ = ["AutoHet", "SearchResult", "autohet_search"]
