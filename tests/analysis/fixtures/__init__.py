"""Fixture trees for the static-analysis test suites."""
