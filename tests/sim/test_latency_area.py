"""Latency and area model tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.config import (
    CrossbarShape,
    HardwareConfig,
    SQUARE_CANDIDATES,
)
from repro.arch.mapping import map_layer
from repro.core.allocation import allocate_tile_based, apply_tile_sharing
from repro.models import vgg16
from repro.models.layers import LayerSpec
from repro.sim.area import (
    allocation_area_um2,
    crossbar_slot_area_um2,
    tile_area_um2,
)
from repro.sim.latency import layer_latency_ns, mvm_latency_ns, pooling_latency_ns

CFG = HardwareConfig()


class TestLatency:
    def test_mvm_latency_includes_bit_serial_cycles(self):
        layer = LayerSpec.fc(100, 100)
        mapping = map_layer(layer, CrossbarShape(128, 128))
        t = mvm_latency_ns(mapping, CFG)
        floor = CFG.input_cycles * (
            CFG.latency_dac_ns + CFG.latency_xbar_ns + CFG.latency_adc_ns
        )
        assert t > floor

    def test_layer_latency_scales_with_positions(self):
        shape = CrossbarShape(64, 64)
        small = LayerSpec.conv(8, 8, 3, padding=1, input_size=4)
        big = LayerSpec.conv(8, 8, 3, padding=1, input_size=8)
        assert layer_latency_ns(map_layer(big, shape), CFG) == pytest.approx(
            4 * layer_latency_ns(map_layer(small, shape), CFG)
        )

    def test_adc_mux_depth_raises_latency(self):
        layer = LayerSpec.fc(100, 100)
        mapping = map_layer(layer, CrossbarShape(128, 128))
        shared = HardwareConfig(adc_sharing=8)
        assert mvm_latency_ns(mapping, shared) > mvm_latency_ns(mapping, CFG)

    def test_deeper_adder_trees_cost_time(self):
        wide = LayerSpec.conv(512, 64, 3, input_size=4)   # many row groups
        flat = LayerSpec.conv(8, 64, 3, input_size=4)     # one row group
        shape = CrossbarShape(72, 64)
        assert mvm_latency_ns(map_layer(wide, shape), CFG) > mvm_latency_ns(
            map_layer(flat, shape), CFG
        )

    def test_pooling_latency_positive_for_vgg(self):
        assert pooling_latency_ns(vgg16(), CFG) > 0

    def test_vgg16_magnitude_matches_table5(self, simulator, vgg_net):
        """Paper Table 5: VGG16 inference latency is a few times 1e6 ns."""
        for shape in SQUARE_CANDIDATES:
            m = simulator.evaluate_homogeneous(vgg_net, shape)
            assert 5e5 < m.latency_ns < 2e7


class TestArea:
    def test_slot_area_includes_bit_slice_group(self):
        cfg = CFG
        one = crossbar_slot_area_um2(CrossbarShape(32, 32), cfg)
        half_group = cfg.with_(weight_bits=4)
        assert crossbar_slot_area_um2(
            CrossbarShape(32, 32), half_group
        ) == pytest.approx(one / 2)

    def test_adc_dominates_small_crossbar_area(self):
        shape = CrossbarShape(32, 32)
        adc_part = shape.cols * CFG.area_adc_um2() * CFG.xbars_per_group
        assert adc_part > 0.8 * crossbar_slot_area_um2(shape, CFG)

    def test_area_per_cell_decreases_with_size(self):
        """The Table 5 trend: big crossbars amortise peripherals."""
        per_cell = [
            crossbar_slot_area_um2(s, CFG) / s.cells for s in SQUARE_CANDIDATES
        ]
        assert all(a > b for a, b in zip(per_cell, per_cell[1:]))

    def test_tile_area_adds_overheads(self):
        shape = CrossbarShape(64, 64)
        assert tile_area_um2(shape, CFG) > CFG.logical_xbars_per_tile * (
            crossbar_slot_area_um2(shape, CFG)
        )

    def test_tile_sharing_reduces_area(self):
        net = vgg16()
        mappings = [map_layer(l, CrossbarShape(576, 512)) for l in net.layers]
        base = allocate_tile_based(mappings, 4)
        shared = apply_tile_sharing(base)
        assert allocation_area_um2(shared, CFG) <= allocation_area_um2(base, CFG)

    def test_vgg16_area_magnitudes_match_table5(self, simulator, vgg_net):
        """Paper Table 5: 2.29e10 um^2 (SXB32) down to 2.12e9 (SXB512)."""
        a32 = simulator.evaluate_homogeneous(vgg_net, CrossbarShape(32, 32)).area_um2
        a512 = simulator.evaluate_homogeneous(vgg_net, CrossbarShape(512, 512)).area_um2
        assert 1e10 < a32 < 6e10
        assert 1e9 < a512 < 6e9
        assert 5 < a32 / a512 < 20

    @settings(max_examples=30, deadline=None)
    @given(st.sampled_from(SQUARE_CANDIDATES), st.integers(1, 32))
    def test_area_monotone_in_capacity(self, shape, capacity):
        cfg = CFG.with_(pes_per_tile=capacity)
        assert tile_area_um2(shape, cfg) > 0
        bigger = CFG.with_(pes_per_tile=capacity + 1)
        assert tile_area_um2(shape, bigger) > tile_area_um2(shape, cfg)
