"""Tests for the crossbar-configuration search environment."""

import numpy as np
import pytest

from repro.arch.config import CrossbarShape, DEFAULT_CANDIDATES
from repro.core.rl.environment import (
    STATE_DIM,
    CrossbarSearchEnv,
    reward_energy,
    reward_rue,
    reward_utilization,
)
from repro.models import lenet
from repro.sim import Simulator


@pytest.fixture
def env(lenet_net):
    return CrossbarSearchEnv(lenet_net, DEFAULT_CANDIDATES, Simulator())


class TestConstruction:
    def test_rejects_empty_candidates(self, lenet_net):
        with pytest.raises(ValueError):
            CrossbarSearchEnv(lenet_net, ())

    def test_dimensions(self, env, lenet_net):
        assert env.num_layers == lenet_net.num_layers
        assert env.num_actions == 5


class TestDiscretization:
    def test_equal_width_bins(self, env):
        assert env.continuous_to_index(0.0) == 0
        assert env.continuous_to_index(0.19) == 0
        assert env.continuous_to_index(0.21) == 1
        assert env.continuous_to_index(0.99) == 4
        assert env.continuous_to_index(1.0) == 4

    def test_clipping(self, env):
        assert env.continuous_to_index(-5.0) == 0
        assert env.continuous_to_index(5.0) == 4

    def test_index_to_continuous_is_bin_center(self, env):
        for i in range(5):
            assert env.continuous_to_index(env.index_to_continuous(i)) == i

    def test_action_to_shape(self, env):
        assert env.action_to_shape(0) == CrossbarShape(32, 32)
        assert env.action_to_shape(4) == CrossbarShape(576, 512)


class TestStateVector:
    def test_dimension(self, env):
        assert env.reset().shape == (STATE_DIM,)

    def test_all_dims_normalised(self, env, lenet_net):
        for i in range(lenet_net.num_layers):
            s = env.observe(i, 1.0, 1.0)
            assert np.all(s >= 0.0) and np.all(s <= 1.0 + 1e-12)

    def test_static_features_content(self, env, lenet_net):
        layer = lenet_net.layers[1]
        s = env.observe(1, 0.5, 0.25)
        norms = env._feature_norms()
        assert s[0] == pytest.approx(1 / norms[0])
        assert s[1] == 1.0  # CONV
        assert s[2] == pytest.approx(layer.in_channels / norms[2])
        assert s[8] == 0.5
        assert s[9] == 0.25

    def test_fc_layer_type_code(self, env, lenet_net):
        fc_index = next(
            i for i, l in enumerate(lenet_net.layers)
            if l.layer_type.name == "FC"
        )
        assert env.observe(fc_index, 0, 0)[1] == 0.0

    def test_initial_state_has_zero_dynamics(self, env):
        s = env.reset()
        assert s[8] == 0.0 and s[9] == 0.0


class TestEpisodeProtocol:
    def test_full_episode(self, env, lenet_net):
        env.reset()
        for k in range(lenet_net.num_layers):
            next_state, done = env.step(2)
            if k < lenet_net.num_layers - 1:
                assert not done and next_state is not None
            else:
                assert done and next_state is None
        result = env.finish()
        assert len(result.strategy) == lenet_net.num_layers
        assert len(result.transitions) == lenet_net.num_layers
        assert result.reward > 0

    def test_transition_structure(self, env, lenet_net):
        env.reset()
        for _ in range(lenet_net.num_layers):
            env.step(1)
        result = env.finish()
        for k, t in enumerate(result.transitions):
            assert t.reward == result.reward  # broadcast terminal reward
            assert t.done == (k == lenet_net.num_layers - 1)
            assert t.action == pytest.approx(env.index_to_continuous(1))
        # S_{k+1} carries a_k (Table 1's dynamic features).
        assert result.transitions[0].next_state[8] == pytest.approx(
            env.index_to_continuous(1)
        )

    def test_step_before_reset_raises(self, lenet_net):
        env = CrossbarSearchEnv(lenet_net, DEFAULT_CANDIDATES, Simulator())
        with pytest.raises(RuntimeError):
            env.step(0)

    def test_step_past_end_raises(self, env, lenet_net):
        env.reset()
        for _ in range(lenet_net.num_layers):
            env.step(0)
        with pytest.raises(RuntimeError):
            env.step(0)

    def test_finish_before_end_raises(self, env):
        env.reset()
        env.step(0)
        with pytest.raises(RuntimeError):
            env.finish()

    def test_invalid_action_raises(self, env):
        env.reset()
        with pytest.raises(ValueError):
            env.step(99)

    def test_rollout_convenience(self, env, lenet_net):
        result = env.rollout(lambda s: 3)
        assert set(result.strategy) == {DEFAULT_CANDIDATES[3]}

    def test_evaluate_indices(self, env, lenet_net):
        indices = [0, 1, 2, 3, 4][: lenet_net.num_layers]
        result = env.evaluate_indices(indices)
        assert result.strategy == tuple(
            DEFAULT_CANDIDATES[i] for i in indices
        )

    def test_evaluate_indices_length_check(self, env):
        with pytest.raises(ValueError):
            env.evaluate_indices([0])


class TestRewardFunctions:
    def test_rue_reward_matches_metrics(self, env):
        result = env.rollout(lambda s: 4)
        assert result.reward == pytest.approx(result.metrics.reward)

    def test_utilization_reward(self, lenet_net):
        env = CrossbarSearchEnv(
            lenet_net, DEFAULT_CANDIDATES, Simulator(),
            reward_fn=reward_utilization,
        )
        result = env.rollout(lambda s: 0)
        assert result.reward == pytest.approx(result.metrics.utilization)

    def test_energy_reward_negative(self, lenet_net):
        env = CrossbarSearchEnv(
            lenet_net, DEFAULT_CANDIDATES, Simulator(), reward_fn=reward_energy
        )
        assert env.rollout(lambda s: 0).reward < 0

    def test_tile_shared_flag_respected(self, lenet_net):
        shared = CrossbarSearchEnv(
            lenet_net, DEFAULT_CANDIDATES, Simulator(), tile_shared=True
        )
        unshared = CrossbarSearchEnv(
            lenet_net, DEFAULT_CANDIDATES, Simulator(), tile_shared=False
        )
        rs = shared.rollout(lambda s: 2).metrics
        ru = unshared.rollout(lambda s: 2).metrics
        assert rs.occupied_tiles <= ru.occupied_tiles
