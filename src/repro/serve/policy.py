"""Re-allocation policies: evict/re-pack tiles when the mix drifts.

The paper's Algorithm 1 packs one static workload; §3.4 notes freed
tiles "become available for … other models".  In an online setting the
*right* packing depends on the traffic mix, which shifts (ARAS's
motivation, PAPERS.md).  A :class:`ReallocationPolicy` watches the
observed per-tenant arrival mix and, when it drifts from the mix the
current allocation was provisioned for, proposes a new packing — here,
per-tenant PipeLayer-style weight replication re-packed through
:func:`repro.core.allocation.allocate_multi_network` (Algorithm 1
merging partially-filled tiles across tenants and replicas alike).

The contract (docs/serving.md): ``decide`` is a pure function of its
arguments — no wall clock, no global RNG — so serving runs stay
seed-deterministic.  Returning ``None`` means "keep the current
allocation"; returning a :class:`ReallocDecision` makes the engine
re-time every tenant's pipeline from the decision's replication vector,
stall dispatch for the configured weight-rewrite cost, and log a
``serve.realloc`` event.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

from ..arch.config import CrossbarShape
from ..core.allocation.multi_model import (
    MultiModelAllocation,
    allocate_multi_network,
)
from ..models.graph import Network


@dataclass(frozen=True)
class ReallocDecision:
    """A proposed re-packing: per-tenant replication plus its allocation."""

    replication: tuple[int, ...]
    allocation: MultiModelAllocation
    drift: float            #: observed total-variation drift that triggered it
    observed_share: tuple[float, ...]


class ReallocationPolicy(Protocol):
    """Anything the serving engine can consult about re-packing."""

    def decide(
        self,
        *,
        now_ns: float,
        observed_share: Sequence[float],
        provisioned_share: Sequence[float],
        current_replication: Sequence[int],
        workloads: Sequence[tuple[Network, Sequence[CrossbarShape]]],
        tile_capacity: int,
        tile_budget: int,
        last_realloc_ns: float,
    ) -> ReallocDecision | None: ...


def mix_drift(
    observed: Sequence[float], provisioned: Sequence[float]
) -> float:
    """Total-variation distance between two arrival-mix distributions."""
    return 0.5 * sum(abs(o - p) for o, p in zip(observed, provisioned))


@dataclass(frozen=True)
class DriftReallocationPolicy:
    """Replicate hot tenants proportionally when the mix drifts.

    When the observed mix is more than ``threshold`` (total variation)
    away from the provisioned mix and the cooldown has elapsed, the
    policy rebuilds the replication vector greedily: starting from one
    copy each, it repeatedly grants an extra weight copy to the tenant
    with the highest per-copy observed share, as long as the re-packed
    allocation (Algorithm 1 over all copies of all tenants) still fits
    the tile budget.  Deterministic: ties break on tenant order.
    """

    threshold: float = 0.2
    cooldown_ns: float = 1e7
    max_replication: int = 4

    def decide(
        self,
        *,
        now_ns: float,
        observed_share: Sequence[float],
        provisioned_share: Sequence[float],
        current_replication: Sequence[int],
        workloads: Sequence[tuple[Network, Sequence[CrossbarShape]]],
        tile_capacity: int,
        tile_budget: int,
        last_realloc_ns: float,
    ) -> ReallocDecision | None:
        drift = mix_drift(observed_share, provisioned_share)
        if drift <= self.threshold:
            return None
        if now_ns - last_realloc_ns < self.cooldown_ns:
            return None
        replication = self._target_replication(
            observed_share, workloads, tile_capacity, tile_budget
        )
        if tuple(replication) == tuple(current_replication):
            return None
        allocation = allocate_multi_network(
            workloads, tile_capacity, replication=replication
        )
        return ReallocDecision(
            replication=tuple(replication),
            allocation=allocation,
            drift=drift,
            observed_share=tuple(observed_share),
        )

    def _target_replication(
        self,
        observed_share: Sequence[float],
        workloads: Sequence[tuple[Network, Sequence[CrossbarShape]]],
        tile_capacity: int,
        tile_budget: int,
    ) -> list[int]:
        """Greedy proportional replication under the tile budget."""
        replication = [1] * len(workloads)
        while True:
            # The tenant whose copies are each carrying the most load.
            ranked = sorted(
                range(len(workloads)),
                key=lambda i: (-observed_share[i] / replication[i], i),
            )
            granted = False
            for idx in ranked:
                if replication[idx] >= self.max_replication:
                    continue
                if observed_share[idx] <= 0.0:
                    continue
                trial = list(replication)
                trial[idx] += 1
                packed = allocate_multi_network(
                    workloads, tile_capacity, replication=trial
                )
                if packed.occupied_tiles <= tile_budget:
                    replication = trial
                    granted = True
                break  # only ever try the single best candidate per round
            if not granted:
                return replication
