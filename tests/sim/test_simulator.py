"""Tests for the top-level Simulator and SystemMetrics."""

import pytest

from repro.arch.config import CrossbarShape, HardwareConfig
from repro.models import lenet, tiny_cnn
from repro.sim import CapacityError, Simulator
from repro.sim.metrics import SystemMetrics


class TestEvaluate:
    def test_returns_consistent_metrics(self, simulator, lenet_net):
        strategy = tuple(CrossbarShape(72, 64) for _ in lenet_net.layers)
        m = simulator.evaluate(lenet_net, strategy)
        assert 0 < m.utilization <= 1
        assert m.energy_nj > 0
        assert m.latency_ns > 0
        assert m.area_um2 > 0
        assert m.occupied_tiles > 0
        assert m.network_name == "LeNet"
        assert len(m.strategy) == lenet_net.num_layers

    def test_rue_definition(self, simulator, lenet_net):
        strategy = tuple(CrossbarShape(72, 64) for _ in lenet_net.layers)
        m = simulator.evaluate(lenet_net, strategy)
        assert m.rue == pytest.approx(m.utilization * 100 / m.energy_nj)
        assert m.reward == pytest.approx(m.utilization / m.energy_nj)

    def test_reward_in_unit_interval(self, simulator, lenet_net):
        """§3.2: energy's magnitude keeps R = u/e inside [0, 1]."""
        strategy = tuple(CrossbarShape(72, 64) for _ in lenet_net.layers)
        m = simulator.evaluate(lenet_net, strategy)
        assert 0.0 < m.reward < 1.0

    def test_energy_breakdown_sums_to_total(self, simulator, lenet_net):
        strategy = tuple(CrossbarShape(72, 64) for _ in lenet_net.layers)
        m = simulator.evaluate(lenet_net, strategy)
        assert m.energy_breakdown.total == pytest.approx(m.energy_nj)

    def test_layer_costs_present_when_detailed(self, simulator, lenet_net):
        strategy = tuple(CrossbarShape(72, 64) for _ in lenet_net.layers)
        detailed = simulator.evaluate(lenet_net, strategy, detailed=True)
        brief = simulator.evaluate(lenet_net, strategy, detailed=False)
        assert len(detailed.layer_costs) == lenet_net.num_layers
        assert brief.layer_costs == ()
        assert brief.energy_nj == pytest.approx(detailed.energy_nj)

    def test_tile_shared_improves_or_preserves(self, simulator, lenet_net):
        strategy = tuple(CrossbarShape(72, 64) for _ in lenet_net.layers)
        base = simulator.evaluate(lenet_net, strategy, tile_shared=False)
        shared = simulator.evaluate(lenet_net, strategy, tile_shared=True)
        assert shared.occupied_tiles <= base.occupied_tiles
        assert shared.utilization >= base.utilization
        assert shared.energy_nj <= base.energy_nj + 1e-9

    def test_rejects_strategy_length_mismatch(self, simulator, lenet_net):
        with pytest.raises(ValueError):
            simulator.evaluate(lenet_net, (CrossbarShape(32, 32),))

    def test_capacity_error(self, lenet_net):
        tiny_bank = Simulator(HardwareConfig(tiles_per_bank=1))
        strategy = tuple(CrossbarShape(32, 32) for _ in lenet_net.layers)
        with pytest.raises(CapacityError):
            tiny_bank.evaluate(lenet_net, strategy)

    def test_capacity_enforcement_optional(self, lenet_net):
        lax = Simulator(HardwareConfig(tiles_per_bank=1), enforce_capacity=False)
        strategy = tuple(CrossbarShape(32, 32) for _ in lenet_net.layers)
        assert lax.evaluate(lenet_net, strategy).occupied_tiles > 1

    def test_homogeneous_wrapper(self, simulator, lenet_net):
        m = simulator.evaluate_homogeneous(lenet_net, CrossbarShape(64, 64))
        assert set(m.strategy) == {"64x64"}
        assert not m.tile_shared

    def test_determinism(self, simulator, tiny_net):
        strategy = tuple(CrossbarShape(288, 256) for _ in tiny_net.layers)
        a = simulator.evaluate(tiny_net, strategy)
        b = simulator.evaluate(tiny_net, strategy)
        assert a.energy_nj == b.energy_nj
        assert a.utilization == b.utilization
        assert a.latency_ns == b.latency_ns

    def test_summary_is_readable(self, simulator, tiny_net):
        strategy = tuple(CrossbarShape(288, 256) for _ in tiny_net.layers)
        text = simulator.evaluate(tiny_net, strategy).summary()
        assert "TinyCNN" in text and "RUE" in text


class TestSystemMetricsMath:
    def test_zero_energy_guard(self):
        m = SystemMetrics(
            network_name="x", strategy=(), utilization=0.5, energy_nj=0.0,
            latency_ns=1.0, area_um2=1.0, occupied_tiles=1,
            occupied_crossbars=1, empty_crossbars=0, tile_shared=False,
        )
        assert m.rue == 0.0 and m.reward == 0.0

    def test_utilization_percent(self):
        m = SystemMetrics(
            network_name="x", strategy=(), utilization=0.42, energy_nj=1.0,
            latency_ns=1.0, area_um2=1.0, occupied_tiles=1,
            occupied_crossbars=1, empty_crossbars=0, tile_shared=False,
        )
        assert m.utilization_percent == pytest.approx(42.0)
