"""The single logging bridge for every ``repro`` subsystem.

Library code must obtain loggers through :func:`get_logger` instead of
calling :func:`logging.getLogger` directly (enforced by lint rule
LNT007): funnelling every subsystem through one helper keeps the
namespace uniform (everything lives under the ``repro`` root logger)
and gives the observability layer one place to attach handlers, adjust
levels, or mirror records into trace sinks.

The CLI configures human-readable output with
:func:`configure_cli_logging`; libraries never install handlers.
"""

from __future__ import annotations

import logging
import sys
from typing import TextIO

#: root of the project's logger namespace
ROOT_LOGGER = "repro"


def get_logger(subsystem: str = "") -> logging.Logger:
    """A logger under the ``repro`` namespace.

    ``get_logger("search")`` → ``repro.search``; an empty string (or
    ``"repro"`` itself, or any already-qualified ``repro.x`` name)
    returns that logger unchanged.
    """
    if not subsystem or subsystem == ROOT_LOGGER:
        name = ROOT_LOGGER
    elif subsystem.startswith(ROOT_LOGGER + "."):
        name = subsystem
    else:
        name = f"{ROOT_LOGGER}.{subsystem}"
    return logging.getLogger(name)


def configure_cli_logging(
    level: int = logging.INFO,
    stream: TextIO | None = None,
    fmt: str = "%(message)s",
) -> logging.Handler:
    """Attach one stream handler to the ``repro`` root logger.

    Idempotent for the CLI's purposes: an existing handler installed by
    a previous call is replaced rather than duplicated, so repeated
    in-process ``main()`` invocations (tests, notebooks) do not stack
    handlers and double every line.  Returns the installed handler.
    """
    root = get_logger()
    for handler in list(root.handlers):
        if getattr(handler, "_repro_cli_handler", False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stdout)
    handler.setFormatter(logging.Formatter(fmt))
    handler._repro_cli_handler = True  # type: ignore[attr-defined]
    root.addHandler(handler)
    root.setLevel(level)
    return handler
