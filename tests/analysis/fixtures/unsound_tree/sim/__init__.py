"""Fixture subpackage mirroring ``repro.sim``."""
