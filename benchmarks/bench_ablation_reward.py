"""Ablation (design choice): why the reward must be R = u / e.

The paper's reward (Eq. 2) folds utilization and energy into one scalar.
This bench re-runs the VGG16 search with three reward functions —
utilization-only, energy-only, and the paper's ratio — and scores each
learned strategy on the *joint* RUE metric.

Expected shape: the single-objective rewards each optimise their own
metric (utilization-only tops utilization; energy-only bottoms energy)
but both lose on RUE to the paper's combined reward, demonstrating the
§2.2 point that the two objectives conflict.
"""

from conftest import run_once

from repro.arch.config import DEFAULT_CANDIDATES
from repro.bench import default_rounds
from repro.bench.reporting import print_table
from repro.core.autohet import AutoHet
from repro.core.rl.environment import (
    reward_energy,
    reward_rue,
    reward_utilization,
)
from repro.models import vgg16
from repro.sim import Simulator


def run_reward_ablation(rounds=None, seed=0):
    rounds = rounds if rounds is not None else default_rounds()
    net = vgg16()
    sim = Simulator()
    out = {}
    for label, fn in (
        ("utilization-only", reward_utilization),
        ("energy-only", reward_energy),
        ("RUE (paper)", reward_rue),
    ):
        engine = AutoHet(net, DEFAULT_CANDIDATES, sim, reward_fn=fn, seed=seed)
        result = engine.search(rounds)
        out[label] = result.best_metrics
    return out


def test_reward_ablation(benchmark):
    data = run_once(benchmark, run_reward_ablation)
    print_table(
        ["reward", "utilization_%", "energy_nJ", "RUE"],
        [
            (label, m.utilization_percent, m.energy_nj, m.rue)
            for label, m in data.items()
        ],
        title="Ablation — reward function (VGG16)",
    )
    util_only = data["utilization-only"]
    energy_only = data["energy-only"]
    rue = data["RUE (paper)"]
    # Each single-objective reward wins its own metric...
    assert util_only.utilization >= rue.utilization - 1e-9
    assert energy_only.energy_nj <= rue.energy_nj + 1e-9
    # ...but the combined reward wins the joint metric.
    assert rue.rue >= util_only.rue
    assert rue.rue >= energy_only.rue
