"""Minimal feed-forward neural networks with manual backprop (NumPy only).

The DDPG agent (§3.2) needs an actor and a critic — small MLPs.  No deep
learning framework is available offline, so this module implements exactly
what DDPG requires: dense layers, ReLU/tanh/sigmoid activations, forward
passes with cached intermediates, reverse-mode gradients (including the
gradient with respect to the *input*, which the actor update needs through
the critic), an Adam optimizer, and Polyak (soft) target-network updates.

Gradients are verified against finite differences in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

Activation = str  # "relu" | "tanh" | "sigmoid" | "linear"


def _act(name: Activation, z: np.ndarray) -> np.ndarray:
    if name == "relu":
        return np.maximum(z, 0.0)
    if name == "tanh":
        return np.tanh(z)
    if name == "sigmoid":
        return 1.0 / (1.0 + np.exp(-z))
    if name == "linear":
        return z
    raise ValueError(f"unknown activation {name!r}")


def _act_grad(name: Activation, z: np.ndarray, a: np.ndarray) -> np.ndarray:
    """d activation / d z given pre-activation ``z`` and output ``a``."""
    if name == "relu":
        return (z > 0.0).astype(z.dtype)
    if name == "tanh":
        return 1.0 - a * a
    if name == "sigmoid":
        return a * (1.0 - a)
    if name == "linear":
        return np.ones_like(z)
    raise ValueError(f"unknown activation {name!r}")


@dataclass
class MLP:
    """A fully-connected network ``in -> hidden... -> out``."""

    sizes: tuple[int, ...]
    hidden_activation: Activation = "relu"
    output_activation: Activation = "linear"
    weights: list[np.ndarray] = field(default_factory=list)
    biases: list[np.ndarray] = field(default_factory=list)

    @staticmethod
    def create(
        sizes: Sequence[int],
        *,
        hidden_activation: Activation = "relu",
        output_activation: Activation = "linear",
        rng: np.random.Generator | None = None,
    ) -> "MLP":
        """He/Xavier-initialised network."""
        if len(sizes) < 2:
            raise ValueError("need at least input and output sizes")
        rng = rng if rng is not None else np.random.default_rng(0)
        weights, biases = [], []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            scale = np.sqrt(2.0 / fan_in)
            weights.append(rng.normal(0.0, scale, size=(fan_in, fan_out)))
            biases.append(np.zeros(fan_out))
        return MLP(
            tuple(sizes),
            hidden_activation,
            output_activation,
            weights,
            biases,
        )

    # ------------------------------------------------------------------
    @property
    def num_layers(self) -> int:
        return len(self.weights)

    def parameters(self) -> list[np.ndarray]:
        return self.weights + self.biases

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Plain forward pass (no cache)."""
        return self._forward_cached(np.atleast_2d(x))[0]

    def _forward_cached(
        self, x: np.ndarray
    ) -> tuple[np.ndarray, list[tuple[np.ndarray, np.ndarray, np.ndarray]]]:
        """Forward pass caching (input, pre-activation, activation) per layer."""
        cache = []
        a = x
        for i, (w, b) in enumerate(zip(self.weights, self.biases)):
            z = a @ w + b
            name = (
                self.output_activation
                if i == self.num_layers - 1
                else self.hidden_activation
            )
            out = _act(name, z)
            cache.append((a, z, out))
            a = out
        return a, cache

    def backward(
        self, x: np.ndarray, upstream: np.ndarray
    ) -> tuple[list[np.ndarray], list[np.ndarray], np.ndarray]:
        """Reverse-mode pass.

        ``upstream`` is dLoss/dOutput of shape (batch, out).  Returns
        (weight grads, bias grads, dLoss/dInput).
        """
        x = np.atleast_2d(x)
        _, cache = self._forward_cached(x)
        grad_w: list[np.ndarray] = [np.empty(0)] * self.num_layers
        grad_b: list[np.ndarray] = [np.empty(0)] * self.num_layers
        delta = np.atleast_2d(upstream)
        for i in reversed(range(self.num_layers)):
            a_in, z, a_out = cache[i]
            name = (
                self.output_activation
                if i == self.num_layers - 1
                else self.hidden_activation
            )
            delta = delta * _act_grad(name, z, a_out)
            grad_w[i] = a_in.T @ delta
            grad_b[i] = delta.sum(axis=0)
            delta = delta @ self.weights[i].T
        return grad_w, grad_b, delta

    # ------------------------------------------------------------------
    def clone(self) -> "MLP":
        return MLP(
            self.sizes,
            self.hidden_activation,
            self.output_activation,
            [w.copy() for w in self.weights],
            [b.copy() for b in self.biases],
        )

    def soft_update_from(self, source: "MLP", tau: float) -> None:
        """Polyak averaging: ``theta <- tau * source + (1 - tau) * theta``."""
        if not 0.0 <= tau <= 1.0:
            raise ValueError("tau must be in [0, 1]")
        for mine, theirs in zip(self.parameters(), source.parameters()):
            mine *= 1.0 - tau
            mine += tau * theirs

    def copy_from(self, source: "MLP") -> None:
        self.soft_update_from(source, 1.0)


@dataclass
class Adam:
    """Adam optimizer over a list of parameter arrays (updated in place)."""

    params: list[np.ndarray]
    lr: float = 1e-3
    beta1: float = 0.9
    beta2: float = 0.999
    eps: float = 1e-8
    _m: list[np.ndarray] = field(default_factory=list)
    _v: list[np.ndarray] = field(default_factory=list)
    _t: int = 0

    def __post_init__(self) -> None:
        self._m = [np.zeros_like(p) for p in self.params]
        self._v = [np.zeros_like(p) for p in self.params]

    def step(self, grads: Sequence[np.ndarray]) -> None:
        if len(grads) != len(self.params):
            raise ValueError("gradient list length mismatch")
        self._t += 1
        bc1 = 1.0 - self.beta1**self._t
        bc2 = 1.0 - self.beta2**self._t
        for p, g, m, v in zip(self.params, grads, self._m, self._v):
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * (g * g)
            p -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)
