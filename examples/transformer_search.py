#!/usr/bin/env python3
"""Extension: heterogeneous crossbars for a transformer LM (§4.5).

The paper closes by arguing the heterogeneous-crossbar idea carries over
to large language models.  A transformer block's projection matrices are
FC layers in the crossbar-mapping sense, so the same search applies.

This example searches crossbar configurations for a small decoder stack
and compares against the homogeneous baselines — the attention
projections (d x d), the MLP blocks (d x 4d / 4d x d), and the LM head
(d x vocab) each get their own best shape.

Run:  python examples/transformer_search.py
"""

from collections import Counter

from repro import DEFAULT_CANDIDATES, SQUARE_CANDIDATES, Simulator, autohet_search
from repro.models.transformer import transformer_lm


def main() -> None:
    network = transformer_lm(
        num_blocks=4, d_model=512, mlp_ratio=4, vocab_size=8192
    )
    print(network.describe())
    simulator = Simulator()

    print("\nHomogeneous baselines:")
    best_homo = 0.0
    for shape in SQUARE_CANDIDATES:
        m = simulator.evaluate_homogeneous(network, shape)
        best_homo = max(best_homo, m.rue)
        print(
            f"  {shape!s:>9}: U={m.utilization_percent:5.1f}%  "
            f"E={m.energy_nj:.3e} nJ  RUE={m.rue:.3e}"
        )

    print("\nAutoHet search (150 rounds)...")
    result = autohet_search(
        network, DEFAULT_CANDIDATES, rounds=150, simulator=simulator, seed=0
    )
    m = result.best_metrics
    print(
        f"  AutoHet:  U={m.utilization_percent:5.1f}%  "
        f"E={m.energy_nj:.3e} nJ  RUE={m.rue:.3e}  "
        f"({m.rue / best_homo:.2f}x best homogeneous)"
    )

    print("\nChosen shapes by projection kind:")
    by_kind: dict[str, Counter] = {}
    for layer, shape in zip(network.layers, result.best_strategy):
        kind = layer.name.split(".")[-1] if "." in layer.name else layer.name
        by_kind.setdefault(kind, Counter())[str(shape)] += 1
    for kind, counts in sorted(by_kind.items()):
        choices = ", ".join(f"{s} x{n}" for s, n in counts.most_common())
        print(f"  {kind:>8}: {choices}")


if __name__ == "__main__":
    main()
