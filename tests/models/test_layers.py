"""Unit tests for LayerSpec / PoolSpec / Stage."""

import pytest
from hypothesis import given, strategies as st

from repro.models.layers import LayerSpec, LayerType, PoolSpec, Stage


class TestLayerSpecConstruction:
    def test_conv_builder(self):
        layer = LayerSpec.conv(3, 64, 3, stride=2, padding=1, input_size=32)
        assert layer.layer_type is LayerType.CONV
        assert layer.in_channels == 3
        assert layer.out_channels == 64
        assert layer.kernel_size == 3
        assert layer.stride == 2
        assert layer.padding == 1
        assert layer.input_size == 32

    def test_fc_builder_forces_unit_kernel_and_stride(self):
        layer = LayerSpec.fc(512, 10)
        assert layer.layer_type is LayerType.FC
        assert layer.kernel_size == 1
        assert layer.stride == 1
        assert layer.input_size == 1

    def test_rejects_nonpositive_channels(self):
        with pytest.raises(ValueError):
            LayerSpec.conv(0, 64, 3)
        with pytest.raises(ValueError):
            LayerSpec.conv(3, 0, 3)
        with pytest.raises(ValueError):
            LayerSpec.fc(-1, 10)

    def test_rejects_nonpositive_kernel(self):
        with pytest.raises(ValueError):
            LayerSpec.conv(3, 4, 0)

    def test_rejects_nonpositive_stride(self):
        with pytest.raises(ValueError):
            LayerSpec.conv(3, 4, 3, stride=0)

    def test_rejects_negative_padding(self):
        with pytest.raises(ValueError):
            LayerSpec.conv(3, 4, 3, padding=-1)

    def test_rejects_nonpositive_input_size(self):
        with pytest.raises(ValueError):
            LayerSpec.conv(3, 4, 3, input_size=0)

    def test_fc_rejects_nonunit_kernel(self):
        with pytest.raises(ValueError):
            LayerSpec(LayerType.FC, 10, 10, kernel_size=3)

    def test_frozen(self):
        layer = LayerSpec.fc(10, 10)
        with pytest.raises(AttributeError):
            layer.in_channels = 5  # type: ignore[misc]


class TestDerivedQuantities:
    def test_kernel_elems(self):
        assert LayerSpec.conv(3, 4, 3).kernel_elems == 9
        assert LayerSpec.conv(3, 4, 7).kernel_elems == 49
        assert LayerSpec.fc(10, 10).kernel_elems == 1

    def test_weight_count_conv(self):
        layer = LayerSpec.conv(12, 128, 3)
        assert layer.weight_count == 12 * 128 * 9

    def test_weight_count_fc(self):
        assert LayerSpec.fc(512, 4096).weight_count == 512 * 4096

    def test_weight_matrix_shape_follows_fig7(self):
        layer = LayerSpec.conv(12, 128, 3)
        assert layer.weight_matrix_shape == (12 * 9, 128)

    def test_weight_matrix_shape_fc(self):
        assert LayerSpec.fc(512, 4096).weight_matrix_shape == (512, 4096)

    def test_output_size_same_padding(self):
        layer = LayerSpec.conv(3, 4, 3, padding=1, input_size=32)
        assert layer.output_size == 32

    def test_output_size_valid_padding(self):
        layer = LayerSpec.conv(3, 4, 5, input_size=28)
        assert layer.output_size == 24

    def test_output_size_strided(self):
        layer = LayerSpec.conv(3, 64, 7, stride=2, padding=3, input_size=224)
        assert layer.output_size == 112

    def test_output_size_fc_is_one(self):
        assert LayerSpec.fc(10, 10).output_size == 1

    def test_mvm_ops_conv(self):
        layer = LayerSpec.conv(3, 4, 3, padding=1, input_size=32)
        assert layer.mvm_ops == 32 * 32

    def test_mvm_ops_fc(self):
        assert LayerSpec.fc(4096, 1000).mvm_ops == 1

    def test_macs(self):
        layer = LayerSpec.conv(3, 4, 3, padding=1, input_size=8)
        assert layer.macs == 64 * 3 * 4 * 9

    @given(
        st.integers(1, 64),
        st.integers(1, 64),
        st.integers(1, 7),
        st.integers(1, 3),
        st.integers(0, 3),
        st.integers(8, 64),
    )
    def test_output_size_never_below_one(self, cin, cout, k, s, p, ins):
        layer = LayerSpec.conv(cin, cout, k, stride=s, padding=p, input_size=ins)
        assert layer.output_size >= 1
        assert layer.mvm_ops >= 1


class TestStateFeatures:
    def test_static_features_match_table1(self):
        layer = LayerSpec.conv(12, 128, 3, stride=2, input_size=16).with_index(4)
        k, t, inc, outc, ks, s, w, ins = layer.state_features()
        assert (k, t) == (4, 1)
        assert (inc, outc) == (12, 128)
        assert ks == 9
        assert s == 2
        assert w == 12 * 128 * 9
        assert ins == 16

    def test_fc_state_code_is_zero(self):
        assert LayerSpec.fc(10, 10).state_features()[1] == 0

    def test_with_index_preserves_other_fields(self):
        layer = LayerSpec.conv(3, 4, 3, input_size=8)
        indexed = layer.with_index(7)
        assert indexed.index == 7
        assert indexed.in_channels == layer.in_channels

    def test_with_input_size_noop_for_fc(self):
        layer = LayerSpec.fc(10, 10)
        assert layer.with_input_size(99).input_size == 1

    def test_describe_mentions_key_dims(self):
        text = LayerSpec.conv(3, 64, 3, input_size=32).describe()
        assert "C3-64" in text
        assert LayerSpec.fc(512, 10).describe().startswith("F10")


class TestPoolSpec:
    def test_output_size_halving(self):
        assert PoolSpec("max", 2, 2).output_size(32) == 16

    def test_output_size_overlapping(self):
        assert PoolSpec("max", 3, 2).output_size(112) == 55

    def test_output_size_floor_at_one(self):
        assert PoolSpec("max", 2, 2).output_size(1) == 1

    def test_rejects_bad_kind(self):
        with pytest.raises(ValueError):
            PoolSpec("median", 2, 2)

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            PoolSpec("max", 0, 2)

    @given(st.integers(1, 4), st.integers(1, 4), st.integers(1, 256))
    def test_output_smaller_than_input(self, window, stride, size):
        out = PoolSpec("avg", window, stride).output_size(size)
        assert 1 <= out <= size


class TestStage:
    def test_requires_exactly_one_member(self):
        with pytest.raises(ValueError):
            Stage()
        with pytest.raises(ValueError):
            Stage(layer=LayerSpec.fc(1, 1), pool=PoolSpec())

    def test_holds_layer(self):
        s = Stage(layer=LayerSpec.fc(1, 1))
        assert s.layer is not None and s.pool is None
