"""Export experiment results to JSON / CSV for plotting.

The printers in :mod:`repro.bench.reporting` target terminals; this module
targets downstream tooling — matplotlib scripts, spreadsheets, CI
artifact diffs.  Every experiment's structured output converts to a flat
list of records (one dict per table row / figure point) which serialises
to JSON or CSV.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Any, Sequence

from .experiments import (
    AblationResult,
    AcceleratorRow,
    Fig5Row,
    OverallResult,
    SensitivityPoint,
)

Records = list[dict[str, Any]]


def rows_to_records(rows: Sequence[AcceleratorRow], **extra) -> Records:
    """Flatten accelerator comparison rows (fig3 / fig10 / table5)."""
    out = []
    for row in rows:
        m = row.metrics
        out.append(
            {
                "accelerator": row.label,
                "utilization_percent": m.utilization_percent,
                "energy_nj": m.energy_nj,
                "rue": m.rue,
                "area_um2": m.area_um2,
                "latency_ns": m.latency_ns,
                "occupied_tiles": m.occupied_tiles,
                **extra,
            }
        )
    return out


def overall_to_records(results: Sequence[OverallResult]) -> Records:
    """Flatten the Fig. 9 structure: one record per (model, accelerator)."""
    out: Records = []
    for res in results:
        out.extend(rows_to_records(res.rows, model=res.model))
    return out


def ablation_to_records(results: Sequence[AblationResult]) -> Records:
    """Flatten the Fig. 10 structure: one record per (model, variant)."""
    out: Records = []
    for res in results:
        out.extend(rows_to_records(res.rows, model=res.model))
    return out


def fig4_to_records(data: dict[str, dict[int, float]]) -> Records:
    return [
        {"layer": layer, "xbs_per_tile": ts, "empty_fraction": frac}
        for layer, series in data.items()
        for ts, frac in sorted(series.items())
    ]


def fig5_to_records(rows: Sequence[Fig5Row]) -> Records:
    return [
        {
            "crossbar": r.shape,
            "utilization": r.utilization,
            "activated_adcs": r.activated_adcs,
        }
        for r in rows
    ]


def sensitivity_to_records(
    points: Sequence[SensitivityPoint], *, x_label: str
) -> Records:
    return [
        {
            x_label: p.label,
            "best_homo_rue": p.best_homo_rue,
            "autohet_rue": p.autohet_rue,
            "speedup": p.speedup,
        }
        for p in points
    ]


def table3_to_records(data: dict[str, tuple[str, ...]]) -> Records:
    n = len(next(iter(data.values())))
    return [
        {"layer": f"L{i + 1}", **{variant: data[variant][i] for variant in data}}
        for i in range(n)
    ]


def table4_to_records(data: dict[str, dict[str, int]]) -> Records:
    return [
        {"model": model, "variant": variant, "occupied_tiles": tiles}
        for model, row in data.items()
        for variant, tiles in row.items()
    ]


# ----------------------------------------------------------------------
# Writers
# ----------------------------------------------------------------------
def to_json(records: Records, path: str | Path | None = None) -> str:
    """Serialise records to JSON; optionally write to ``path``."""
    text = json.dumps(records, indent=2, sort_keys=True)
    if path is not None:
        Path(path).write_text(text)
    return text


def to_csv(records: Records, path: str | Path | None = None) -> str:
    """Serialise records to CSV (union of keys, sorted header)."""
    if not records:
        return ""
    fields = sorted({k for r in records for k in r})
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=fields)
    writer.writeheader()
    for record in records:
        writer.writerow(record)
    text = buf.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text
