"""Zero-dependency structured tracing primitives.

The observability layer has exactly three record kinds:

``span``
    a timed region with a name, monotonic start/duration and nesting
    depth (spans opened inside other spans on the same thread form a
    tree; ``depth`` is the nesting level at open time);
``event``
    a point-in-time occurrence with a name and attributes;
``counter``
    a named numeric sample (a *stream* when emitted repeatedly).

Every record is a plain ``dict`` conforming to schema version
:data:`SCHEMA_VERSION` (see :func:`repro.obs.summary.validate_record`
and ``docs/observability.md``) and is pushed to each attached sink.

Two tracer classes exist:

* :class:`Tracer` — the live implementation, which timestamps spans
  with an injectable monotonic clock and fans records out to sinks;
* :class:`NullTracer` — a no-op whose :attr:`~NullTracer.enabled`
  class attribute is ``False``.  Instrumented code guards every
  record-building block with ``if tracer.enabled:`` so the disabled
  path costs one attribute load.

The module-level *ambient* tracer (:func:`current_tracer`,
:func:`use_tracer`) lets the CLI enable tracing for a whole command
without threading a tracer argument through every constructor.
Components accept an explicit tracer and fall back to the ambient one
when handed ``None``.

This package must stay import-independent from ``repro.sim`` and
``repro.core`` — those packages import *us*, never the reverse — and
is listed as a boundary module for the cache-safety analyzer (its
clock and file I/O are exempt from CAC003 the same way
``repro.sim.cache`` is).
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Protocol, Sequence

#: version stamped into every record as ``"v"``; bump on schema change
SCHEMA_VERSION = 1

#: the record kinds the schema admits
RECORD_TYPES = ("span", "event", "counter")


class Sink(Protocol):
    """Destination for trace records (see :mod:`repro.obs.sinks`)."""

    def emit(self, record: dict[str, Any]) -> None: ...

    def flush(self) -> None: ...


class _NullSpan:
    """Context manager returned by :meth:`NullTracer.span`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """A live timed region; records itself on ``__exit__``.

    ``start_ns`` is relative to the owning tracer's epoch so traces
    from the same run are directly comparable; ``depth`` is the
    per-thread nesting level at open time.
    """

    __slots__ = ("_tracer", "_name", "_attrs", "_start", "_depth")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> "_Span":
        stack = self._tracer._span_stack()
        self._depth = len(stack)
        stack.append(self)
        self._start = self._tracer._now()
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        end = self._tracer._now()
        self._tracer._span_stack().pop()
        record: dict[str, Any] = {
            "v": SCHEMA_VERSION,
            "type": "span",
            "name": self._name,
            "seq": self._tracer._next_seq(),
            "start_ns": self._start,
            "dur_ns": end - self._start,
            "depth": self._depth,
        }
        if exc_type is not None:
            record["error"] = True
        if self._attrs:
            record["attrs"] = self._attrs
        self._tracer._emit(record)
        return False


class Tracer:
    """Live tracer: builds schema-v1 records and fans them out to sinks.

    ``clock`` must be a monotonic nanosecond clock (defaults to
    :func:`time.perf_counter_ns`); it is injectable so tests can drive
    spans deterministically.  Thread-safe: the sequence counter is an
    atomic :func:`itertools.count` and span stacks are thread-local,
    so spans on different threads nest independently.
    """

    enabled: bool = True

    def __init__(
        self,
        sinks: Sequence[Sink] = (),
        *,
        clock: Callable[[], int] = time.perf_counter_ns,
    ):
        self._sinks: tuple[Sink, ...] = tuple(sinks)
        self._clock = clock
        self._epoch = clock()
        self._seq = itertools.count()
        self._local = threading.local()

    # -- internals ----------------------------------------------------
    def _now(self) -> int:
        return self._clock() - self._epoch

    def _next_seq(self) -> int:
        return next(self._seq)

    def _span_stack(self) -> list[_Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _emit(self, record: dict[str, Any]) -> None:
        for sink in self._sinks:
            sink.emit(record)

    # -- public API ----------------------------------------------------
    @property
    def sinks(self) -> tuple[Sink, ...]:
        return self._sinks

    def span(self, name: str, **attrs: Any) -> _Span:
        """Open a timed region; use as a context manager."""
        return _Span(self, name, attrs)

    def event(self, name: str, **attrs: Any) -> None:
        """Record a point-in-time occurrence."""
        record: dict[str, Any] = {
            "v": SCHEMA_VERSION,
            "type": "event",
            "name": name,
            "seq": self._next_seq(),
        }
        if attrs:
            record["attrs"] = attrs
        self._emit(record)

    def counter(self, name: str, value: float, **attrs: Any) -> None:
        """Record one sample of a named numeric stream."""
        record: dict[str, Any] = {
            "v": SCHEMA_VERSION,
            "type": "counter",
            "name": name,
            "seq": self._next_seq(),
            "value": value,
        }
        if attrs:
            record["attrs"] = attrs
        self._emit(record)

    def flush(self) -> None:
        for sink in self._sinks:
            sink.flush()


class NullTracer(Tracer):
    """No-op tracer; the default everywhere.

    ``enabled`` is a *class* attribute so the hot-path guard
    ``if tracer.enabled:`` is a plain attribute load with no
    per-instance dict lookup.
    """

    enabled = False

    def __init__(self) -> None:  # deliberately no sinks / clock state
        pass

    def span(self, name: str, **attrs: Any) -> _NullSpan:  # type: ignore[override]
        return _NULL_SPAN

    def event(self, name: str, **attrs: Any) -> None:
        return None

    def counter(self, name: str, value: float, **attrs: Any) -> None:
        return None

    def flush(self) -> None:
        return None


#: process-wide no-op singleton; safe to share (it has no state)
NULL_TRACER = NullTracer()

#: the ambient tracer — read via :func:`current_tracer`, swapped via
#: :func:`use_tracer`.  Instrumented hot paths read this module global
#: directly, so it must always hold a tracer (never ``None``).
_AMBIENT: Tracer = NULL_TRACER


def current_tracer() -> Tracer:
    """The ambient tracer (``NULL_TRACER`` unless :func:`use_tracer`
    or :func:`set_ambient_tracer` installed one)."""
    return _AMBIENT


def set_ambient_tracer(tracer: Tracer | None) -> Tracer:
    """Install ``tracer`` (or reset to the null tracer with ``None``)
    as the ambient tracer; returns the previous one."""
    global _AMBIENT
    previous = _AMBIENT
    _AMBIENT = tracer if tracer is not None else NULL_TRACER
    return previous


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Scoped ambient-tracer override::

        with use_tracer(Tracer([sink])) as t:
            simulator.evaluate(net, strategy)   # traced

    Restores the previous ambient tracer on exit, even on error.
    """
    previous = set_ambient_tracer(tracer)
    try:
        yield tracer
    finally:
        set_ambient_tracer(previous)
