"""``summarize_allocation`` must reproduce the materialised allocator's
aggregates exactly — it is the fast path ``Simulator.evaluate`` trusts
instead of building tiles (docs/performance.md)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.config import DEFAULT_CANDIDATES, HardwareConfig
from repro.arch.mapping import map_layer
from repro.core.allocation import (
    allocate_tile_based,
    apply_tile_sharing,
    clear_summary_cache,
    summarize_allocation,
    summary_cache_info,
)
from repro.models import LayerSpec
from repro.sim.area import allocation_area_um2, area_from_tile_runs


def materialize(mappings, capacity, *, tile_shared):
    allocation = allocate_tile_based(mappings, capacity)
    if tile_shared:
        allocation = apply_tile_sharing(allocation)
    return allocation


def surviving_tiles_per_layer(allocation, mappings, capacity):
    """Occupied-tile count per layer, attributed by tile-id range.

    ``allocate_tile_based`` hands out sequential ids layer by layer and
    Algorithm 1 keeps the *head* tile's id, so each layer owns one
    contiguous id range before and after sharing.
    """
    counts = []
    start = 0
    for mapping in mappings:
        width = math.ceil(mapping.num_crossbars / capacity)
        counts.append(
            sum(
                1
                for t in allocation.tiles
                if t.occupied > 0 and start <= t.tile_id < start + width
            )
        )
        start += width
    return tuple(counts)


def assert_summary_matches(mappings, capacity, config, *, tile_shared):
    allocation = materialize(mappings, capacity, tile_shared=tile_shared)
    summary = summarize_allocation(mappings, capacity, tile_shared=tile_shared)
    assert summary.occupied_tiles == allocation.occupied_tiles
    assert summary.empty_crossbars == allocation.empty_crossbars
    assert summary.allocated_cells == allocation.allocated_cells
    assert summary.weight_cells == allocation.weight_cells
    assert summary.total_crossbar_slots == allocation.total_crossbar_slots
    assert summary.utilization == allocation.utilization
    assert summary.tiles_per_layer == surviving_tiles_per_layer(
        allocation, mappings, capacity
    )
    assert summary.shapes_per_layer == tuple(m.shape for m in mappings)
    # The float fold over per-layer runs must replay the per-tile fold
    # bit for bit (tiles of one layer are contiguous and share a shape).
    assert area_from_tile_runs(
        zip(summary.shapes_per_layer, summary.tiles_per_layer), config
    ) == allocation_area_um2(allocation, config)


@settings(max_examples=100, deadline=None)
@given(data=st.data(), tile_shared=st.booleans())
def test_summary_matches_materialized_allocation(data, tile_shared, lenet_net):
    config = HardwareConfig()
    picks = data.draw(
        st.lists(
            st.sampled_from(DEFAULT_CANDIDATES),
            min_size=lenet_net.num_layers,
            max_size=lenet_net.num_layers,
        )
    )
    mappings = tuple(
        map_layer(layer, shape) for layer, shape in zip(lenet_net.layers, picks)
    )
    assert_summary_matches(
        mappings, config.logical_xbars_per_tile, config, tile_shared=tile_shared
    )


@pytest.mark.parametrize("tile_shared", [True, False])
@pytest.mark.parametrize("capacity", [1, 4])
def test_summary_edge_cases(tile_shared, capacity):
    config = HardwareConfig(pes_per_tile=capacity)
    shape = DEFAULT_CANDIDATES[0]  # 32x32
    cases = [
        # Single tile: one layer, one crossbar.
        [LayerSpec.fc(3, 8).with_index(0)],
        # All-full group: every tile filled exactly to capacity, so
        # Algorithm 1 has nothing to merge.
        [
            LayerSpec.fc(32 * capacity, 32).with_index(0),
            LayerSpec.fc(32 * capacity, 32).with_index(1),
        ],
        # Mixed partials that sharing can actually merge.
        [
            LayerSpec.fc(3, 8).with_index(0),
            LayerSpec.fc(3, 40).with_index(1),
            LayerSpec.fc(3, 72).with_index(2),
        ],
    ]
    for layers in cases:
        mappings = tuple(map_layer(layer, shape) for layer in layers)
        assert_summary_matches(mappings, capacity, config, tile_shared=tile_shared)


def test_summary_group_memo_is_shared(lenet_net):
    clear_summary_cache()
    shapes = tuple(DEFAULT_CANDIDATES[0] for _ in lenet_net.layers)
    mappings = tuple(
        map_layer(layer, shape) for layer, shape in zip(lenet_net.layers, shapes)
    )
    summarize_allocation(mappings, 4, tile_shared=True)
    misses = summary_cache_info().misses
    summarize_allocation(mappings, 4, tile_shared=True)
    after = summary_cache_info()
    assert after.misses == misses  # second call re-pays nothing
    assert after.hits > 0


def test_summary_rejects_nonpositive_capacity(lenet_net):
    mapping = map_layer(lenet_net.layers[0], DEFAULT_CANDIDATES[0])
    with pytest.raises(ValueError):
        summarize_allocation((mapping,), 0, tile_shared=True)
