"""Property battery for the serving event loop (hypothesis).

Three families of invariants over randomly generated scenarios:

* **Determinism** — the same scenario and seed reproduce the event log
  and the report byte for byte; the engine reads no wall clock and no
  global RNG (docs/serving.md's determinism contract).
* **Conservation** — every arrival ends up in exactly one of
  completed / rejected / in-flight, per tenant and in aggregate, and
  the report's own :func:`repro.serve.validate_report` gate agrees.
* **Ordering / monotonicity** — latencies are non-negative, the event
  log is time-ordered, and a probe request's latency is monotone in the
  amount of traffic queued ahead of it (FIFO + conveyor admission).
"""

import json

from hypothesis import given, settings, strategies as st

from repro.serve import (
    ArrivalPhase,
    ReallocConfig,
    Scenario,
    TenantSpec,
    build_report,
    simulate,
    validate_report,
)

#: cheap workloads so hypothesis can afford many examples
MODELS = ("lenet", "tinycnn")


@st.composite
def scenarios(draw):
    """Small but structurally varied serving scenarios."""
    n = draw(st.integers(1, 2))
    duration_ns = draw(st.floats(1e6, 2e7))
    tenants = []
    for i in range(n):
        phases = ()
        if draw(st.booleans()):
            phases = (
                ArrivalPhase(
                    at_ns=draw(st.floats(0.0, duration_ns)),
                    rate_rps=draw(st.floats(0.0, 8000.0)),
                ),
            )
        tenants.append(
            TenantSpec(
                name=f"t{i}",
                model=MODELS[i % len(MODELS)],
                shape="64x64",
                rate_rps=draw(st.floats(100.0, 5000.0)),
                phases=phases,
                slo_ns=draw(st.floats(1e5, 1e7)),
            )
        )
    return Scenario(
        name="prop",
        tenants=tuple(tenants),
        duration_ns=duration_ns,
        seed=draw(st.integers(0, 2**32 - 1)),
        max_batch=draw(st.integers(1, 8)),
        queue_cap=draw(st.sampled_from([0, 1, 4, 64])),
        drain=draw(st.booleans()),
        realloc=ReallocConfig(
            enabled=draw(st.booleans()),
            threshold=0.15,
            window=8,
            check_every=4,
            stall_ns=draw(st.sampled_from([0.0, 5e4])),
            cooldown_ns=1e6,
            headroom=2.0,
        ),
    )


class TestDeterminism:
    @settings(max_examples=20, deadline=None)
    @given(scenario=scenarios())
    def test_event_log_is_byte_identical_across_runs(self, scenario):
        a = simulate(scenario)
        b = simulate(scenario)
        assert json.dumps(list(a.event_log)) == json.dumps(list(b.event_log))
        assert json.dumps(build_report(a), sort_keys=True) == json.dumps(
            build_report(b), sort_keys=True
        )

    @settings(max_examples=10, deadline=None)
    @given(scenario=scenarios(), other_seed=st.integers(0, 2**32 - 1))
    def test_seed_only_changes_arrivals_not_structure(
        self, scenario, other_seed
    ):
        """A different seed still yields a valid, conserved report."""
        import dataclasses

        reseeded = dataclasses.replace(scenario, seed=other_seed)
        report = build_report(simulate(reseeded))
        assert validate_report(report) == []


class TestConservation:
    @settings(max_examples=20, deadline=None)
    @given(scenario=scenarios())
    def test_every_arrival_is_accounted_for(self, scenario):
        result = simulate(scenario)
        for tenant in result.tenants:
            assert tenant.arrivals >= 0
            assert tenant.completed >= 0
            assert tenant.rejected >= 0
            assert tenant.in_flight >= 0, (
                f"{tenant.name}: completed+rejected exceeds arrivals"
            )
            assert tenant.arrivals == (
                tenant.completed + tenant.rejected + tenant.in_flight
            )
            assert len(tenant.latencies_ns) == tenant.completed
        assert result.total_arrivals == (
            result.total_completed
            + result.total_rejected
            + sum(t.in_flight for t in result.tenants)
        )
        assert validate_report(build_report(result)) == []

    @settings(max_examples=10, deadline=None)
    @given(scenario=scenarios())
    def test_drain_completes_everything_unrejected(self, scenario):
        import dataclasses

        drained = dataclasses.replace(scenario, drain=True)
        result = simulate(drained)
        for tenant in result.tenants:
            assert tenant.in_flight == 0, (
                f"{tenant.name}: drain left work behind"
            )


class TestOrdering:
    @settings(max_examples=20, deadline=None)
    @given(scenario=scenarios())
    def test_latencies_nonnegative_and_log_time_ordered(self, scenario):
        result = simulate(scenario)
        for tenant in result.tenants:
            assert all(v >= 0.0 for v in tenant.latencies_ns)
            assert all(v >= 0.0 for v in tenant.waits_ns)
        times = [entry["t"] for entry in result.event_log]
        assert times == sorted(times)
        kinds = {entry["kind"] for entry in result.event_log}
        assert kinds <= {"arrival", "dispatch", "complete", "reject",
                         "realloc"}

    @settings(max_examples=25, deadline=None)
    @given(
        prior=st.lists(st.floats(0.0, 1e6), max_size=24),
        extra=st.floats(0.0, 1e6),
        max_batch=st.integers(1, 8),
    )
    def test_probe_latency_monotone_in_queue_depth(
        self, prior, extra, max_batch
    ):
        """Traffic queued ahead of a probe request never speeds it up.

        FIFO queues plus conveyor admission mean an extra earlier
        arrival can only push the probe's pipeline-entry slot later
        (realloc off, unbounded queue).
        """
        probe_ns = 2e6
        base = self._probe_latency(sorted(prior), probe_ns, max_batch)
        more = self._probe_latency(
            sorted(prior + [extra]), probe_ns, max_batch
        )
        assert more >= base - 1e-6

    @staticmethod
    def _probe_latency(prior, probe_ns, max_batch):
        scenario = Scenario(
            name="probe",
            tenants=(
                TenantSpec(
                    name="solo",
                    model="lenet",
                    shape="64x64",
                    trace_ns=tuple(prior) + (probe_ns,),
                    slo_ns=1e9,
                ),
            ),
            duration_ns=probe_ns + 1.0,
            max_batch=max_batch,
            queue_cap=0,
            drain=True,
            realloc=ReallocConfig(enabled=False),
        )
        result = simulate(scenario)
        tenant = result.tenants[0]
        assert tenant.completed == len(prior) + 1
        # FIFO + in-order completions: the probe (latest arrival)
        # finishes last, so its latency is the final one recorded.
        return tenant.latencies_ns[-1]
