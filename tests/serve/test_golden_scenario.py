"""Golden-snapshot regression for the two-tenant serving scenario.

``golden_two_tenant.json`` pins the full ``repro serve`` report for the
checked-in AlexNet + VGG16 reference scenario (seed 0): per-tenant
p50/p95/p99/mean/max latency, SLO attainment, throughput, conservation
counts, the re-allocation history, and the tile numbers.  The simulator
is deterministic closed-form float math end to end, so the snapshot is
compared at near-machine precision — any drift is a claimed change to
the serving model and must regenerate the snapshot *in the same commit*.

Regenerate with::

    PYTHONPATH=src python tests/serve/test_golden_scenario.py --regen
"""

import json
import math
from pathlib import Path

from repro.serve import build_report, simulate, two_tenant_scenario

GOLDEN_PATH = Path(__file__).with_name("golden_two_tenant.json")

RELATIVE_TOLERANCE = 1e-9


def compute_report():
    return build_report(simulate(two_tenant_scenario()))


def _diff(got, want, path, mismatches):
    """Recursive near-exact compare (floats via isclose)."""
    if isinstance(want, dict):
        if not isinstance(got, dict) or sorted(got) != sorted(want):
            mismatches.append(f"{path}: keys {sorted(got)} != {sorted(want)}")
            return
        for key in want:
            _diff(got[key], want[key], f"{path}.{key}", mismatches)
    elif isinstance(want, list):
        if not isinstance(got, list) or len(got) != len(want):
            mismatches.append(f"{path}: length differs")
            return
        for i, (g, w) in enumerate(zip(got, want)):
            _diff(g, w, f"{path}[{i}]", mismatches)
    elif isinstance(want, bool) or not isinstance(want, (int, float)):
        if got != want:
            mismatches.append(f"{path}: {got!r} != {want!r}")
    elif isinstance(want, int) and isinstance(got, int):
        if got != want:
            mismatches.append(f"{path}: {got!r} != {want!r}")
    else:
        if got is None or want is None:
            if got is not want:
                mismatches.append(f"{path}: {got!r} != {want!r}")
        elif not math.isclose(got, want, rel_tol=RELATIVE_TOLERANCE):
            mismatches.append(f"{path}: {got!r} != {want!r}")


class TestGoldenScenario:
    def test_snapshot_exists(self):
        assert GOLDEN_PATH.exists(), (
            "golden snapshot missing — regenerate with "
            "PYTHONPATH=src python tests/serve/test_golden_scenario.py --regen"
        )

    def test_report_matches_snapshot(self):
        golden = json.loads(GOLDEN_PATH.read_text())
        current = json.loads(json.dumps(compute_report()))
        mismatches = []
        _diff(current, golden, "report", mismatches)
        assert not mismatches, (
            "serving output drifted from the golden snapshot:\n  "
            + "\n  ".join(mismatches[:20])
            + "\nIf the change is intended, regenerate with "
            "PYTHONPATH=src python tests/serve/test_golden_scenario.py --regen"
        )

    def test_snapshot_sanity(self):
        """The pinned numbers stay a plausible serving outcome."""
        golden = json.loads(GOLDEN_PATH.read_text())
        requests = golden["requests"]
        assert requests["arrivals"] == (
            requests["completed"]
            + requests["rejected"]
            + requests["in_flight"]
        )
        # The scenario exists to exercise the re-pack path: the traffic
        # inversion at 100 ms must trigger at least one re-allocation.
        assert len(golden["realloc_events"]) >= 1
        assert golden["realloc_events"][0]["replication"] != [1, 1]
        assert (
            golden["allocation"]["final_tiles"]
            <= golden["allocation"]["tile_budget"]
        )
        for name, entry in golden["tenants"].items():
            assert 0.0 <= entry["slo_attainment"] <= 1.0, name
            assert entry["p50_ns"] <= entry["p95_ns"] <= entry["p99_ns"], name
            assert entry["completed"] > 0, name


if __name__ == "__main__":
    import sys

    if "--regen" not in sys.argv:
        sys.exit(
            "usage: python tests/serve/test_golden_scenario.py --regen"
        )
    GOLDEN_PATH.write_text(
        json.dumps(compute_report(), indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {GOLDEN_PATH}")
