"""Paper-grounded metric streams.

Central catalogue of the span / event / counter names the instrumented
subsystems emit, plus duck-typed emitters that turn the project's
result objects (``SystemMetrics``, ``CacheStats``) into trace records.
Emitters take their inputs as plain attribute bags so this package
never imports ``repro.sim`` or ``repro.core`` (they import us).

The streams mirror the quantities the AUTOHET paper reasons about:
Eq. 4 crossbar utilization (aggregate and per layer), activated-ADC
conversion counts (Fig. 5 energy driver), tile occupancy before/after
Algorithm 1 tile sharing, cache behaviour from PR 2/3, and the RL
loop's episode reward and actor/critic losses (Eq. 2 reward).
"""

from __future__ import annotations

from typing import Any

from .trace import Tracer

# -- span names ------------------------------------------------------
SPAN_EVALUATE = "sim.evaluate"        #: one cold Simulator.evaluate
SPAN_MAP = "sim.map"                  #: weight-matrix -> crossbar mapping
SPAN_ALLOCATE = "sim.allocate"        #: allocation / summary (Algorithm 1)
SPAN_COST = "sim.cost"                #: energy/latency/area rollup
SPAN_SEARCH = "search"                #: one whole strategy search
SPAN_EPISODE = "search.episode"       #: one RL episode (decide+eval+learn)

# -- event names -----------------------------------------------------
EVENT_CACHE_HIT = "cache.hit"
EVENT_CACHE_MISS = "cache.miss"
EVENT_CACHE_AUDIT = "cache.audit"
EVENT_INFEASIBLE = "sim.infeasible"
EVENT_ALLOC_GROUP = "alloc.group"     #: one shape group through Algorithm 1
EVENT_CANDIDATE = "search.candidate"  #: one candidate probed by a strategy
EVENT_EPISODE = "rl.episode"          #: one finished environment episode
EVENT_SEARCH_RESULT = "search.result"
EVENT_SERVE_REALLOC = "serve.realloc"  #: one Algorithm-1 re-pack applied
EVENT_SERVE_REJECT = "serve.reject"    #: one arrival shed at the queue cap

# -- counter streams -------------------------------------------------
UTILIZATION = "sim.utilization"           #: Eq. 4 aggregate utilization
ENERGY_NJ = "sim.energy_nj"
LATENCY_NS = "sim.latency_ns"
TILE_OCCUPANCY = "alloc.occupied_tiles"   #: tiles after sharing
LAYER_UTILIZATION = "sim.layer.utilization"    #: per-layer Eq. 4 stream
LAYER_ADC = "sim.layer.adc_conversions"        #: activated-ADC counts
CACHE_HIT_RATE = "cache.hit_rate"
CRITIC_LOSS = "rl.critic_loss"
ACTOR_LOSS = "rl.actor_loss"
EPISODE_REWARD = "rl.reward"              #: Eq. 2 reward per episode

# -- serving streams (repro.serve, docs/serving.md) ------------------
SERVE_LATENCY_NS = "serve.latency_ns"     #: per-request end-to-end latency
SERVE_WAIT_NS = "serve.wait_ns"           #: queueing share of the latency
SERVE_QUEUE_DEPTH = "serve.queue_depth"   #: tenant queue depth at completion
SERVE_BATCH_SIZE = "serve.batch_size"     #: requests per pipeline dispatch
SERVE_SLO_ATTAINMENT = "serve.slo_attainment"  #: rollup, per tenant
SERVE_THROUGHPUT_RPS = "serve.throughput_rps"  #: rollup, per tenant


def emit_system_metrics(
    tracer: Tracer,
    metrics: Any,
    *,
    network: str = "",
    include_layers: bool = True,
) -> None:
    """Stream one ``SystemMetrics``-shaped result.

    Emits the aggregate utilization / energy / latency / occupancy
    counters, and (when ``include_layers`` and the result carries
    per-layer costs) the per-layer utilization and activated-ADC
    streams with ``layer`` / ``shape`` attributes.
    """
    if not tracer.enabled:
        return
    tracer.counter(UTILIZATION, metrics.utilization, network=network)
    tracer.counter(ENERGY_NJ, metrics.energy_nj, network=network)
    tracer.counter(LATENCY_NS, metrics.latency_ns, network=network)
    tracer.counter(TILE_OCCUPANCY, metrics.occupied_tiles, network=network)
    if not include_layers:
        return
    for cost in getattr(metrics, "layer_costs", ()) or ():
        tracer.counter(
            LAYER_UTILIZATION,
            cost.intra_utilization,
            layer=cost.layer_index,
            shape=cost.shape_str,
        )
        tracer.counter(
            LAYER_ADC,
            cost.adc_conversions,
            layer=cost.layer_index,
            shape=cost.shape_str,
        )


def emit_cache_stats(tracer: Tracer, stats: Any, *, context: str = "") -> None:
    """Stream one ``CacheStats``-shaped snapshot as counters."""
    if not tracer.enabled:
        return
    tracer.counter("cache.hits", stats.hits, context=context)
    tracer.counter("cache.misses", stats.misses, context=context)
    tracer.counter("cache.evictions", stats.evictions, context=context)
    tracer.counter("cache.size", stats.size, context=context)
    tracer.counter(CACHE_HIT_RATE, stats.hit_rate, context=context)
    if getattr(stats, "audited", 0):
        tracer.counter("cache.audited", stats.audited, context=context)
    if getattr(stats, "audit_failures", 0):
        tracer.counter("cache.audit_failures", stats.audit_failures, context=context)


def emit_serve_request(
    tracer: Tracer,
    *,
    tenant: str,
    latency_ns: float,
    wait_ns: float,
    queue_depth: int,
) -> None:
    """Stream one completed serving request (latency in nanoseconds)."""
    if not tracer.enabled:
        return
    tracer.counter(SERVE_LATENCY_NS, latency_ns, tenant=tenant)
    tracer.counter(SERVE_WAIT_NS, wait_ns, tenant=tenant)
    tracer.counter(SERVE_QUEUE_DEPTH, queue_depth, tenant=tenant)


def emit_serve_batch(tracer: Tracer, *, tenant: str, batch_size: int) -> None:
    """Stream one pipeline dispatch."""
    if not tracer.enabled:
        return
    tracer.counter(SERVE_BATCH_SIZE, batch_size, tenant=tenant)


def emit_serve_summary(
    tracer: Tracer,
    *,
    tenant: str,
    slo_attainment: float,
    throughput_rps: float,
    p50_ns: float,
    p95_ns: float,
    p99_ns: float,
) -> None:
    """Stream one tenant's end-of-run SLO rollup."""
    if not tracer.enabled:
        return
    tracer.counter(SERVE_SLO_ATTAINMENT, slo_attainment, tenant=tenant)
    tracer.counter(SERVE_THROUGHPUT_RPS, throughput_rps, tenant=tenant)
    tracer.counter(SERVE_LATENCY_NS, p50_ns, tenant=tenant, quantile="p50")
    tracer.counter(SERVE_LATENCY_NS, p95_ns, tenant=tenant, quantile="p95")
    tracer.counter(SERVE_LATENCY_NS, p99_ns, tenant=tenant, quantile="p99")


def emit_episode(
    tracer: Tracer,
    *,
    index: int,
    reward: float,
    feasible: bool,
    network: str = "",
    utilization: float | None = None,
    occupied_tiles: int | None = None,
) -> None:
    """Record one finished RL environment episode."""
    if not tracer.enabled:
        return
    tracer.counter(EPISODE_REWARD, reward, episode=index, feasible=feasible)
    attrs: dict[str, Any] = {
        "episode": index,
        "reward": reward,
        "feasible": feasible,
        "network": network,
    }
    if utilization is not None:
        attrs["utilization"] = utilization
    if occupied_tiles is not None:
        attrs["occupied_tiles"] = occupied_tiles
    tracer.event(EVENT_EPISODE, **attrs)
