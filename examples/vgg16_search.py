#!/usr/bin/env python3
"""The paper's flagship experiment: VGG16 on CIFAR-10 shapes.

Runs the full §4 pipeline for one model:

1. the five homogeneous square baselines (Fig. 9);
2. the hand-tuned Manual-Hetero split (Fig. 3);
3. the AutoHet RL search over the hybrid candidate set;
4. the ablation Base / +He / +Hy / All (Fig. 10);
5. the per-layer strategy table (Table 3).

Takes a couple of minutes at the paper's 300 search rounds; set
``ROUNDS`` lower for a faster pass.

Run:  python examples/vgg16_search.py [rounds]
"""

import sys

from repro import (
    DEFAULT_CANDIDATES,
    SQUARE_CANDIDATES,
    Simulator,
    autohet_search,
    best_homogeneous,
    manual_hetero_strategy,
    vgg16,
)

ROUNDS = int(sys.argv[1]) if len(sys.argv) > 1 else 300


def row(label, m):
    print(
        f"  {label:>14}: U={m.utilization_percent:5.1f}%  "
        f"E={m.energy_nj:.3e} nJ  RUE={m.rue:.3e}  "
        f"A={m.area_um2:.2e} um^2  T={m.latency_ns:.2e} ns"
    )


def main() -> None:
    network = vgg16()
    simulator = Simulator()

    print(f"== Homogeneous baselines ({network.name}) ==")
    for shape in SQUARE_CANDIDATES:
        row(str(shape), simulator.evaluate_homogeneous(network, shape))

    manual = simulator.evaluate(
        network, manual_hetero_strategy(network), tile_shared=False,
        detailed=False,
    )
    row("Manual-Hetero", manual)

    print(f"\n== AutoHet search ({ROUNDS} rounds) ==")
    result = autohet_search(
        network, DEFAULT_CANDIDATES, rounds=ROUNDS, simulator=simulator,
        seed=0, verbose=True,
    )
    row("AutoHet", result.best_metrics)
    _, base = best_homogeneous(network, SQUARE_CANDIDATES, simulator)
    print(f"  RUE speedup vs best homogeneous: "
          f"{result.best_metrics.rue / base.rue:.2f}x")
    print(f"  search time: {result.total_seconds:.1f}s "
          f"({result.simulator_fraction:.0%} simulator feedback)")

    print("\n== Ablation (Fig. 10) ==")
    he = autohet_search(
        network, SQUARE_CANDIDATES, rounds=ROUNDS, simulator=simulator,
        tile_shared=False, seed=0,
    )
    hy = autohet_search(
        network, DEFAULT_CANDIDATES, rounds=ROUNDS, simulator=simulator,
        tile_shared=False, seed=0,
    )
    row("Base", base)
    row("+He", he.best_metrics)
    row("+Hy", hy.best_metrics)
    row("All", result.best_metrics)

    print("\n== Per-layer strategy (Table 3) ==")
    for i, (sq, hyb) in enumerate(zip(he.best_strategy, hy.best_strategy)):
        print(f"  L{i + 1:>2}: +He {sq!s:>8}   +Hy {hyb!s:>8}")


if __name__ == "__main__":
    main()
