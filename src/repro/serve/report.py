"""SLO reports over serving runs, rolled up through ``repro.obs``.

Turns a :class:`repro.serve.engine.ServeResult` into the JSON document
``repro serve`` emits: per-tenant p50/p95/p99 latency (nearest-rank, the
same :func:`repro.obs.summary.percentile` every trace rollup uses), SLO
attainment, throughput, conservation counts, and the re-allocation
history.  :func:`validate_report` is the schema gate the CLI smoke tests
and the golden regression hold the document to; :func:`emit_report`
streams the rollups onto the ``serve.*`` counter streams so a traced run
carries its own summary.

SLO attainment is defined over *finished* requests: completions within
the tenant's ``slo_ns`` divided by completions plus rejections.
Requests still queued or in the pipeline at the horizon (``in_flight``)
are excluded — they have no outcome yet — but conservation over all
three buckets is part of the schema (``arrivals == completed +
rejected + in_flight``) and is checked by :func:`validate_report`.
"""

from __future__ import annotations

from typing import Any

from ..obs.metrics import emit_serve_summary
from ..obs.summary import percentile
from ..sim.units_constants import NS_PER_S
from .engine import ServeResult, TenantResult

#: bumped on report-format change; validated by :func:`validate_report`
REPORT_SCHEMA_VERSION = 1

_TENANT_FIELDS = (
    "model", "arrivals", "completed", "rejected", "in_flight",
    "replication", "slo_ns", "slo_attainment", "throughput_rps",
    "p50_ns", "p95_ns", "p99_ns", "mean_ns", "max_ns",
)


def tenant_rollup(tenant: TenantResult, end_ns: float) -> dict[str, Any]:
    """Per-tenant latency/SLO rollup (percentiles via ``repro.obs``)."""
    latencies = sorted(tenant.latencies_ns)
    finished = tenant.completed + tenant.rejected
    within = sum(1 for v in tenant.latencies_ns if v <= tenant.slo_ns)
    attainment = within / finished if finished else 1.0
    seconds = end_ns / NS_PER_S
    return {
        "model": tenant.model,
        "arrivals": tenant.arrivals,
        "completed": tenant.completed,
        "rejected": tenant.rejected,
        "in_flight": tenant.in_flight,
        "replication": tenant.replication,
        "slo_ns": tenant.slo_ns,
        "slo_attainment": attainment,
        "throughput_rps": tenant.completed / seconds if seconds else 0.0,
        "p50_ns": percentile(latencies, 0.50) if latencies else None,
        "p95_ns": percentile(latencies, 0.95) if latencies else None,
        "p99_ns": percentile(latencies, 0.99) if latencies else None,
        "mean_ns": sum(latencies) / len(latencies) if latencies else None,
        "max_ns": latencies[-1] if latencies else None,
    }


def build_report(result: ServeResult) -> dict[str, Any]:
    """The full JSON report document for one serving run."""
    tenants = {
        t.name: tenant_rollup(t, result.end_ns) for t in result.tenants
    }
    return {
        "schema": REPORT_SCHEMA_VERSION,
        "scenario": result.scenario.name,
        "seed": result.scenario.seed,
        "duration_ns": result.scenario.duration_ns,
        "end_ns": result.end_ns,
        "events_processed": result.events_processed,
        "requests": {
            "arrivals": result.total_arrivals,
            "completed": result.total_completed,
            "rejected": result.total_rejected,
            "in_flight": (
                result.total_arrivals
                - result.total_completed
                - result.total_rejected
            ),
        },
        "allocation": {
            "initial_tiles": result.initial_tiles,
            "final_tiles": result.final_tiles,
            "tile_budget": result.tile_budget,
        },
        "realloc_events": list(result.realloc_events),
        "tenants": tenants,
    }


def validate_report(doc: Any) -> list[str]:
    """Problems with a serve report document (empty list = valid)."""
    if not isinstance(doc, dict):
        return [f"report is {type(doc).__name__}, not an object"]
    problems: list[str] = []
    if doc.get("schema") != REPORT_SCHEMA_VERSION:
        problems.append(
            f"schema {doc.get('schema')!r} != {REPORT_SCHEMA_VERSION}"
        )
    for key in ("scenario", "seed", "duration_ns", "end_ns",
                "events_processed", "requests", "allocation",
                "realloc_events", "tenants"):
        if key not in doc:
            problems.append(f"missing required field {key!r}")
    requests = doc.get("requests")
    if isinstance(requests, dict):
        for key in ("arrivals", "completed", "rejected", "in_flight"):
            if not isinstance(requests.get(key), int):
                problems.append(f"requests.{key} must be an integer")
        if all(isinstance(requests.get(k), int) for k in
               ("arrivals", "completed", "rejected", "in_flight")):
            if requests["arrivals"] != (
                requests["completed"]
                + requests["rejected"]
                + requests["in_flight"]
            ):
                problems.append(
                    "conservation violated: arrivals != "
                    "completed + rejected + in_flight"
                )
    tenants = doc.get("tenants")
    if isinstance(tenants, dict):
        for name, entry in tenants.items():
            if not isinstance(entry, dict):
                problems.append(f"tenant {name!r} entry must be an object")
                continue
            for key in _TENANT_FIELDS:
                if key not in entry:
                    problems.append(f"tenant {name!r} missing field {key!r}")
            attainment = entry.get("slo_attainment")
            if isinstance(attainment, (int, float)) and not (
                0.0 <= attainment <= 1.0
            ):
                problems.append(
                    f"tenant {name!r} slo_attainment out of [0, 1]"
                )
            if (
                isinstance(entry.get("arrivals"), int)
                and isinstance(entry.get("completed"), int)
                and isinstance(entry.get("rejected"), int)
                and isinstance(entry.get("in_flight"), int)
                and entry["arrivals"] != (
                    entry["completed"] + entry["rejected"] + entry["in_flight"]
                )
            ):
                problems.append(f"tenant {name!r} conservation violated")
    return problems


def emit_report(tracer, report: dict[str, Any]) -> None:
    """Stream the per-tenant rollups onto the ``serve.*`` counters."""
    if not tracer.enabled:
        return
    for name, entry in report["tenants"].items():
        if entry["p50_ns"] is None:
            continue
        emit_serve_summary(
            tracer,
            tenant=name,
            slo_attainment=entry["slo_attainment"],
            throughput_rps=entry["throughput_rps"],
            p50_ns=entry["p50_ns"],
            p95_ns=entry["p95_ns"],
            p99_ns=entry["p99_ns"],
        )
