"""Shared configuration for the benchmark harness.

Every benchmark regenerates one figure/table from the paper's evaluation
and prints the same rows/series the paper reports (see DESIGN.md for the
experiment index and EXPERIMENTS.md for paper-vs-measured results).

RL-search experiments honour the ``REPRO_RL_ROUNDS`` environment variable
(default 120; the paper used 300 rounds — export REPRO_RL_ROUNDS=300 to
match it exactly at ~3x the runtime).
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark an experiment with a single timed execution.

    The experiments are deterministic end-to-end pipelines (many seconds
    each); timing them once keeps the harness fast while still recording
    wall-clock cost per figure.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
