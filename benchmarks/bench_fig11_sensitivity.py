"""Figure 11 — sensitivity analysis (VGG16).

Regenerates the three sweeps against Best-Homo (the highest-RUE
homogeneous accelerator):

* (a) SXB:RXB candidate-set composition — 2S3R / 3S2R / 4S1R;
* (b) number of crossbar candidates — 2 / 4 / 8;
* (c) PEs per tile — 8 / 16 / 32.

Expected shapes (paper §4.4): AutoHet beats Best-Homo at every point;
more rectangles help (a); more candidates widen the margin (b); AutoHet
stays ahead across tile granularities (c).
"""

from conftest import run_once

from repro.bench import (
    fig11a_sxb_rxb_ratio,
    fig11b_candidate_count,
    fig11c_pes_per_tile,
    print_fig11,
)


def test_fig11a_sxb_rxb_ratio(benchmark):
    points = run_once(benchmark, fig11a_sxb_rxb_ratio)
    print_fig11(points, panel="a", x_label="SXB:RXB ratio")
    assert all(p.speedup >= 1.0 for p in points)
    # More rectangles never hurt: 2S3R >= 4S1R.
    assert points[0].autohet_rue >= 0.95 * points[-1].autohet_rue


def test_fig11b_candidate_count(benchmark):
    points = run_once(benchmark, fig11b_candidate_count)
    print_fig11(points, panel="b", x_label="candidate count")
    assert all(p.speedup >= 0.95 for p in points)
    # Larger candidate sets give the agent at least as much headroom.
    assert points[-1].autohet_rue >= 0.95 * points[0].autohet_rue


def test_fig11c_pes_per_tile(benchmark):
    points = run_once(benchmark, fig11c_pes_per_tile)
    print_fig11(points, panel="c", x_label="PEs per tile")
    assert all(p.speedup >= 1.0 for p in points)
