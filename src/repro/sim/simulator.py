"""The behavioral accelerator simulator — the "hardware feedback" source.

:class:`Simulator.evaluate` takes a network and a *strategy* (one crossbar
shape per layer — the RL agent's action sequence, Fig. 6 step 4) and
returns :class:`~repro.sim.metrics.SystemMetrics`: utilization, energy,
latency, area, tile occupancy (steps 5-6).  This plays the role MNSIM 2.0
plays in the paper (§4.1); see DESIGN.md for the substitution rationale.

Evaluation is pure and deterministic: map every layer (Eq. 4 math),
allocate tiles (tile-based, optionally tile-shared per §3.4), then roll up
the analytic energy / latency / area models.

Because it is pure, evaluation is also *cacheable* — and the simulator is
the search-time bottleneck (§4.5 reports ~97% of AutoHet's wall clock
waiting on feedback).  Three layers attack that, all on by default:

* a strategy-level :class:`~repro.sim.cache.EvaluationCache` (bounded
  LRU, hit/miss counters) in front of :meth:`Simulator.evaluate`;
* memoised per-``(mapping, config)`` layer energy/latency costs and an
  aggregate allocation summary (``repro.core.allocation.summary``) below
  it, shared across all strategies that agree on a layer's shape or a
  tile group's composition;
* :meth:`Simulator.evaluate_many`, a fan-out front-end with an optional
  thread or process pool for batch evaluation.

``Simulator(cache=None, memoize_costs=False)`` restores the cold
reference path; results are bit-for-bit identical either way (tested
property-style in ``tests/sim/test_cache.py``).  See
``docs/performance.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Sequence

from ..arch.config import DEFAULT_CONFIG, CrossbarShape, HardwareConfig
from ..arch.mapping import LayerMapping, map_layer
from ..core.allocation import (
    Allocation,
    allocate_tile_based,
    apply_tile_sharing,
)
from ..core.allocation.summary import (
    AllocationSummary,
    summarize_allocation,
    summarize_counts,
)
from ..models.graph import Network
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..obs.trace import NULL_TRACER, Tracer
from . import kernels
from .area import allocation_area_um2, area_from_tile_runs
from .cache import EvaluationCache, _Infeasible
from .energy import (
    cached_layer_adc_conversions,
    cached_layer_dac_conversions,
    cached_layer_dynamic_energy,
    cached_pooling_energy,
    layer_adc_conversions,
    layer_dac_conversions,
    layer_dynamic_energy,
    leakage_energy,
    pooling_energy,
)
from .latency import (
    cached_layer_latency_ns,
    cached_pooling_latency_ns,
    layer_latency_ns,
    pooling_latency_ns,
)
from .metrics import EnergyBreakdown, LayerCost, SystemMetrics

#: A crossbar-configuration strategy: one shape per weight layer.
Strategy = tuple[CrossbarShape, ...]


class CapacityError(RuntimeError):
    """Raised when a strategy needs more tiles than one bank provides."""


@dataclass(frozen=True)
class Simulator:
    """Deterministic behavioral model of the heterogeneous accelerator."""

    config: HardwareConfig = DEFAULT_CONFIG
    #: raise :class:`CapacityError` when the allocation exceeds one bank
    enforce_capacity: bool = True
    #: strategy-level result cache; pass ``None`` to disable
    cache: EvaluationCache | None = field(
        default_factory=EvaluationCache, compare=False
    )
    #: memoise layer costs and use the aggregate allocation summary
    memoize_costs: bool = True
    #: score evaluations with the NumPy batch kernels
    #: (``repro.sim.kernels``) instead of the per-layer scalar loop.
    #: Bit-identical results either way (``tests/sim/test_vectorized_parity.py``);
    #: only effective alongside ``memoize_costs`` — the materialised
    #: reference path always runs scalar.
    vectorize: bool = True
    #: observability tracer; ``None`` (default) resolves the ambient
    #: tracer (``repro.obs.use_tracer``) at each call, which is the
    #: no-op ``NULL_TRACER`` unless tracing was explicitly enabled.
    #: Result-invariant by construction (``tests/obs`` proves it).
    tracer: Tracer | None = field(default=None, compare=False)

    @property
    def effective_tracer(self) -> Tracer:
        """The tracer evaluations use: :attr:`tracer`, else the ambient one."""
        return self.tracer if self.tracer is not None else obs_trace._AMBIENT

    # ------------------------------------------------------------------
    def map_network(
        self, network: Network, strategy: Sequence[CrossbarShape]
    ) -> tuple[LayerMapping, ...]:
        """Map every layer onto its assigned crossbar type."""
        layers = network.layers
        if len(strategy) != len(layers):
            raise ValueError(
                f"strategy length {len(strategy)} != layer count {len(layers)}"
            )
        return tuple(map_layer(layer, shape) for layer, shape in zip(layers, strategy))

    def allocate(
        self,
        mappings: Sequence[LayerMapping],
        *,
        tile_shared: bool,
        tracer: Tracer = NULL_TRACER,
    ) -> Allocation:
        """Tile allocation, optionally followed by Algorithm 1 remapping.

        Always materialises (and validates) the full tile plan — use this
        for deployable plans; :meth:`evaluate` takes the aggregate
        shortcut when ``memoize_costs`` is set.
        """
        allocation = allocate_tile_based(
            mappings, self.config.logical_xbars_per_tile
        )
        if tile_shared:
            allocation = apply_tile_sharing(allocation, tracer=tracer)
        self._capacity_check(allocation.occupied_tiles)
        return allocation

    def _capacity_check(self, occupied_tiles: int) -> None:
        """Raise :class:`CapacityError` when the bank overflows.

        One formatting site for the error message — the cached
        ``_Infeasible`` sentinels store it verbatim, so every evaluation
        path (materialised, summary, vectorized, batch-scored) must
        produce the identical string.  ``kernels.score_strategy_batch``
        replicates this format; the parity analyzer (PAR003) checks the
        two f-strings against each other, and
        ``tests/sim/test_infeasible_messages.py`` proves the runtime
        strings byte-identical across paths.
        """
        if self.enforce_capacity and occupied_tiles > self.config.tiles_per_bank:
            raise CapacityError(
                f"strategy needs {occupied_tiles} tiles; one bank "
                f"holds {self.config.tiles_per_bank}"
            )

    def summarize(
        self,
        mappings: Sequence[LayerMapping],
        *,
        tile_shared: bool,
        tracer: Tracer = NULL_TRACER,
    ) -> AllocationSummary:
        """Aggregate allocation stats without materialising tiles.

        The memoised integer-math equivalent of :meth:`allocate` —
        bit-identical aggregates, no :class:`~repro.core.allocation.tiles.Tile`
        objects (see ``repro.core.allocation.summary``).
        """
        summary = summarize_allocation(
            mappings,
            self.config.logical_xbars_per_tile,
            tile_shared=tile_shared,
            tracer=tracer,
        )
        self._capacity_check(summary.occupied_tiles)
        return summary

    # ------------------------------------------------------------------
    def evaluate(
        self,
        network: Network,
        strategy: Sequence[CrossbarShape],
        *,
        tile_shared: bool = True,
        detailed: bool = True,
    ) -> SystemMetrics:
        """Full evaluation of one (network, strategy) pair.

        Pure and deterministic; with a :attr:`cache` attached, repeat
        evaluations (including infeasible ones) return memoised results.
        """
        strategy = tuple(strategy)
        # Hot path: resolve the tracer with one field load and, for the
        # default ``tracer=None``, one module-attribute read — never a
        # function call (the cached-hit path budget is ~2µs).
        tracer = self.tracer
        if tracer is None:
            tracer = obs_trace._AMBIENT
        key = None
        claimed = False
        if self.cache is not None:
            key = EvaluationCache.make_key(
                self.config,
                network,
                strategy,
                tile_shared=tile_shared,
                detailed=detailed,
                enforce_capacity=self.enforce_capacity,
            )
            # Single-flight protocol: a concurrent thread already
            # evaluating this key parks us on its event; we then re-claim
            # and (normally) take the hit path.  A "claimed" outcome makes
            # this thread the one evaluator for the key — release() in
            # every exit path below.
            while True:
                outcome, payload = self.cache.claim(key)
                if outcome != "wait":
                    break
                payload.wait()
            hit = payload if outcome == "hit" else None
            claimed = outcome == "claimed"
            if isinstance(hit, _Infeasible):
                if tracer.enabled:
                    tracer.event(
                        obs_metrics.EVENT_CACHE_HIT,
                        network=network.name,
                        infeasible=True,
                    )
                raise CapacityError(hit.message)
            if hit is not None:
                if self.cache.audit_due():
                    if tracer.enabled:
                        tracer.event(
                            obs_metrics.EVENT_CACHE_AUDIT, network=network.name
                        )
                    return self._audit_hit(
                        key, hit, network, strategy,
                        tile_shared=tile_shared, detailed=detailed,
                        tracer=tracer,
                    )
                if tracer.enabled:
                    tracer.event(obs_metrics.EVENT_CACHE_HIT, network=network.name)
                    obs_metrics.emit_system_metrics(
                        tracer, hit, network=network.name, include_layers=False
                    )
                return hit  # type: ignore[return-value]
            if tracer.enabled:
                tracer.event(obs_metrics.EVENT_CACHE_MISS, network=network.name)
        try:
            with tracer.span(
                obs_metrics.SPAN_EVALUATE,
                network=network.name,
                layers=len(strategy),
                tile_shared=tile_shared,
                detailed=detailed,
            ):
                metrics = self._evaluate_impl(
                    network, strategy, tile_shared=tile_shared, detailed=detailed,
                    tracer=tracer,
                )
        except CapacityError as exc:
            if tracer.enabled:
                tracer.event(
                    obs_metrics.EVENT_INFEASIBLE,
                    network=network.name,
                    message=str(exc),
                )
            if claimed and self.cache is not None:
                self.cache.put(key, _Infeasible(str(exc)))
                self.cache.release(key)
            raise
        except BaseException:
            # Unexpected failure: surrender the claim without inserting
            # so parked waiters re-claim and evaluate for themselves.
            if claimed and self.cache is not None:
                self.cache.release(key)
            raise
        if claimed and self.cache is not None:
            self.cache.put(key, metrics)
            self.cache.release(key)
        if tracer.enabled:
            obs_metrics.emit_system_metrics(tracer, metrics, network=network.name)
        return metrics

    def _audit_hit(
        self,
        key: object,
        hit: object,
        network: Network,
        strategy: Strategy,
        *,
        tile_shared: bool,
        detailed: bool,
        tracer: Tracer = NULL_TRACER,
    ) -> SystemMetrics:
        """Re-evaluate a sampled cache hit and cross-check the stored value.

        The runtime complement of ``repro check --cache-safety``: if the
        static key-coverage proof ever rots, a sampled hit whose fresh
        re-evaluation differs is recorded as a CAC004 diagnostic on the
        cache (never a crash) and the fresh value wins.
        """
        assert self.cache is not None
        try:
            fresh = self._evaluate_impl(
                network, strategy, tile_shared=tile_shared, detailed=detailed,
                tracer=tracer,
            )
        except CapacityError as exc:
            # The cache said feasible, the re-evaluation says not: still a
            # mismatch, still reported through the same channel.
            self.cache.record_audit(key, hit, _Infeasible(str(exc)))
            raise
        self.cache.record_audit(key, hit, fresh)
        return fresh

    def _evaluate_impl(
        self,
        network: Network,
        strategy: Strategy,
        *,
        tile_shared: bool,
        detailed: bool,
        tracer: Tracer = NULL_TRACER,
    ) -> SystemMetrics:
        cfg = self.config
        if self.memoize_costs and self.vectorize:
            # Vectorized fast path: one fancy-index gather of the
            # per-(network, config) shape table (repro.sim.kernels) plus
            # array folds, never materialising LayerMapping objects.
            # Bit-identical to the scalar paths below — the parity
            # battery is the proof.
            with tracer.span(obs_metrics.SPAN_MAP, network=network.name):
                net, floats, ints = kernels.strategy_view(
                    network, strategy, cfg
                )
            with tracer.span(obs_metrics.SPAN_ALLOCATE, mode="summary"):
                summary = summarize_counts(
                    strategy,
                    tuple(ints[kernels._I_XBARS].tolist()),
                    net.weight_cells_total,
                    cfg.logical_xbars_per_tile,
                    tile_shared=tile_shared,
                    tracer=tracer,
                )
                self._capacity_check(summary.occupied_tiles)
            with tracer.span(obs_metrics.SPAN_COST, layers=len(strategy)):
                return kernels.metrics_from_view(
                    network,
                    strategy,
                    net,
                    floats,
                    ints,
                    summary,
                    cfg,
                    tile_shared=tile_shared,
                    detailed=detailed,
                )

        with tracer.span(obs_metrics.SPAN_MAP, network=network.name):
            mappings = self.map_network(network, strategy)

        if self.memoize_costs:
            # Aggregate fast path: bit-identical integer/float rollups
            # without materialising Tile objects (the profiled ~70% of a
            # cold evaluate), plus memoised per-layer costs.
            with tracer.span(obs_metrics.SPAN_ALLOCATE, mode="summary"):
                summary = self.summarize(
                    mappings, tile_shared=tile_shared, tracer=tracer
                )
            utilization = summary.utilization
            occupied_tiles = summary.occupied_tiles
            occupied_slots = summary.total_crossbar_slots
            allocated_cells = summary.allocated_cells
            empty_crossbars = summary.empty_crossbars
            area_um2 = area_from_tile_runs(
                zip(summary.shapes_per_layer, summary.tiles_per_layer), cfg
            )
            energy_fn, latency_fn = cached_layer_dynamic_energy, cached_layer_latency_ns
            adc_fn, dac_fn = cached_layer_adc_conversions, cached_layer_dac_conversions
            pool_e_fn, pool_t_fn = cached_pooling_energy, cached_pooling_latency_ns
        else:
            # Reference path: materialise and validate the full tile plan.
            with tracer.span(obs_metrics.SPAN_ALLOCATE, mode="materialized"):
                allocation = self.allocate(
                    mappings, tile_shared=tile_shared, tracer=tracer
                )
            utilization = allocation.utilization
            occupied_tiles = allocation.occupied_tiles
            occupied_slots = allocation.total_crossbar_slots
            allocated_cells = allocation.allocated_cells
            empty_crossbars = allocation.empty_crossbars
            area_um2 = allocation_area_um2(allocation, cfg)
            energy_fn, latency_fn = layer_dynamic_energy, layer_latency_ns
            adc_fn, dac_fn = layer_adc_conversions, layer_dac_conversions
            pool_e_fn, pool_t_fn = pooling_energy, pooling_latency_ns

        layer_costs: list[LayerCost] = []
        dynamic = EnergyBreakdown()
        latency = 0.0
        with tracer.span(obs_metrics.SPAN_COST, layers=len(mappings)):
            for mapping in mappings:
                e = energy_fn(mapping, cfg)
                t = latency_fn(mapping, cfg)
                dynamic = dynamic + e
                latency += t
                if detailed:
                    layer_costs.append(
                        LayerCost(
                            layer_index=mapping.layer.index,
                            shape_str=str(mapping.shape),
                            mvm_ops=mapping.layer.mvm_ops,
                            num_crossbars=mapping.num_crossbars,
                            adc_conversions=adc_fn(mapping, cfg),
                            dac_conversions=dac_fn(mapping, cfg),
                            energy=e,
                            latency_ns=t,
                            intra_utilization=mapping.utilization,
                        )
                    )

            pool_e = pool_e_fn(network, cfg)
            latency += pool_t_fn(network, cfg)
            leak = leakage_energy(
                occupied_tiles,
                occupied_slots,
                allocated_cells,
                latency,
                cfg,
            )
            breakdown = dynamic + EnergyBreakdown(pooling=pool_e, leakage=leak)

        return SystemMetrics(
            network_name=network.name,
            strategy=tuple(str(s) for s in strategy),
            utilization=utilization,
            energy_nj=breakdown.total,
            latency_ns=latency,
            area_um2=area_um2,
            occupied_tiles=occupied_tiles,
            occupied_crossbars=sum(m.num_crossbars for m in mappings),
            empty_crossbars=empty_crossbars,
            tile_shared=tile_shared,
            energy_breakdown=breakdown,
            layer_costs=tuple(layer_costs),
        )

    # ------------------------------------------------------------------
    def try_evaluate(
        self,
        network: Network,
        strategy: Sequence[CrossbarShape],
        *,
        tile_shared: bool = True,
        detailed: bool = True,
    ) -> SystemMetrics | None:
        """:meth:`evaluate`, but ``None`` for an infeasible strategy.

        The feasibility-tolerant entry point the search strategies use: a
        proposal that overflows the bank is a *skippable* point of the
        search space, not a crash.
        """
        try:
            return self.evaluate(
                network, strategy, tile_shared=tile_shared, detailed=detailed
            )
        except CapacityError:
            return None

    def evaluate_many(
        self,
        network: Network,
        strategies: Iterable[Sequence[CrossbarShape]],
        *,
        tile_shared: bool = True,
        detailed: bool = False,
        max_workers: int | None = None,
        executor: str = "thread",
        skip_infeasible: bool = True,
    ) -> list[SystemMetrics | None]:
        """Evaluate a batch of strategies, optionally in parallel.

        Returns one entry per strategy, in order; infeasible strategies
        yield ``None`` when ``skip_infeasible`` is set (default) and raise
        :class:`CapacityError` otherwise.  ``max_workers`` > 1 fans out
        over a pool: ``executor="thread"`` shares this simulator (and its
        cache) across threads; ``executor="process"`` ships a cache-less
        copy to worker processes and merges results back into the local
        cache — worth it only when single evaluations are expensive.
        """
        batch = [tuple(s) for s in strategies]
        if executor not in ("thread", "process"):
            raise ValueError(f"unknown executor {executor!r}")

        tracer = self.tracer
        if tracer is None:
            tracer = obs_trace._AMBIENT
        # Serial batches take the (S, L) kernel scorer when nothing needs
        # the per-call evaluate machinery: no tracer events to interleave,
        # no audit sampling to replay, and infeasible entries collapse to
        # ``None`` (``skip_infeasible``).  Anything else falls through to
        # the loop below — results are bit-identical either way.
        if (
            self.vectorize
            and self.memoize_costs
            and skip_infeasible
            and len(batch) > 1
            and (max_workers is None or max_workers <= 1)
            and not tracer.enabled
            and (self.cache is None or self.cache.audit_interval <= 0)
        ):
            return self._evaluate_many_batched(
                network, batch, tile_shared=tile_shared, detailed=detailed
            )

        def one(strategy: Strategy) -> SystemMetrics | None:
            if skip_infeasible:
                return self.try_evaluate(
                    network, strategy, tile_shared=tile_shared, detailed=detailed
                )
            return self.evaluate(
                network, strategy, tile_shared=tile_shared, detailed=detailed
            )

        if max_workers is None or max_workers <= 1 or len(batch) <= 1:
            return [one(s) for s in batch]

        if executor == "process":
            import concurrent.futures

            # Worker processes neither cache nor trace: live tracers hold
            # thread-locals and open files, so they must not cross the
            # pickle boundary.
            worker = replace(self, cache=None, tracer=NULL_TRACER)
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=max_workers
            ) as pool:
                outcomes = list(
                    pool.map(
                        _evaluate_one_remote,
                        (
                            (worker, network, s, tile_shared, detailed, skip_infeasible)
                            for s in batch
                        ),
                        chunksize=max(1, len(batch) // (4 * max_workers)),
                    )
                )
            # Merge *every* outcome back: metrics and `_Infeasible`
            # sentinels alike.  An infeasible strategy crossing the pickle
            # boundary comes back as the sentinel (carrying the
            # CapacityError message) so subsequent lookups hit the cache
            # instead of re-paying the failed allocation.
            if self.cache is not None:
                for strategy, outcome in zip(batch, outcomes):
                    if outcome is None:
                        continue
                    self.cache.put(
                        EvaluationCache.make_key(
                            self.config,
                            network,
                            strategy,
                            tile_shared=tile_shared,
                            detailed=detailed,
                            enforce_capacity=self.enforce_capacity,
                        ),
                        outcome,
                    )
            return [
                None if isinstance(outcome, _Infeasible) else outcome
                for outcome in outcomes
            ]

        import concurrent.futures

        with concurrent.futures.ThreadPoolExecutor(max_workers=max_workers) as pool:
            return list(pool.map(one, batch))

    def _evaluate_many_batched(
        self,
        network: Network,
        batch: list[Strategy],
        *,
        tile_shared: bool,
        detailed: bool,
    ) -> list[SystemMetrics | None]:
        """Serial batch evaluation through the ``(S, L)`` kernel scorer.

        Replicates the serial loop's cache protocol — one lookup per
        strategy, one insert per cold unique strategy, duplicate
        occurrences resolving to hits — while scoring every cold strategy
        in a single kernel pass.
        """
        results: list[SystemMetrics | None] = [None] * len(batch)
        if self.cache is None:
            unique: dict[Strategy, list[int]] = {}
            for i, strategy in enumerate(batch):
                unique.setdefault(strategy, []).append(i)
            scored = kernels.score_strategy_batch(
                network,
                list(unique),
                self.config,
                tile_shared=tile_shared,
                enforce_capacity=self.enforce_capacity,
                detailed=detailed,
            )
            for positions, outcome in zip(unique.values(), scored):
                value = (
                    None
                    if isinstance(outcome, kernels.InfeasibleScore)
                    else outcome
                )
                for i in positions:
                    results[i] = value
            return results

        keys = [
            EvaluationCache.make_key(
                self.config,
                network,
                strategy,
                tile_shared=tile_shared,
                detailed=detailed,
                enforce_capacity=self.enforce_capacity,
            )
            for strategy in batch
        ]
        to_score: list[int] = []
        pending: set[object] = set()
        # Duplicates of a cold key defer their lookup until after the
        # scored results are inserted, so they register as cache hits
        # exactly like the serial loop's second visit would.
        deferred: list[int] = []
        for i, key in enumerate(keys):
            if key in pending:
                deferred.append(i)
                continue
            hit = self.cache.get(key)
            if isinstance(hit, _Infeasible):
                results[i] = None
            elif hit is not None:
                results[i] = hit  # type: ignore[assignment]
            else:
                pending.add(key)
                to_score.append(i)
        if to_score:
            scored = kernels.score_strategy_batch(
                network,
                [batch[i] for i in to_score],
                self.config,
                tile_shared=tile_shared,
                enforce_capacity=self.enforce_capacity,
                detailed=detailed,
            )
            for i, outcome in zip(to_score, scored):
                if isinstance(outcome, kernels.InfeasibleScore):
                    self.cache.put(keys[i], _Infeasible(outcome.message))
                    results[i] = None
                else:
                    self.cache.put(keys[i], outcome)
                    results[i] = outcome
        for i in deferred:
            hit = self.cache.get(keys[i])
            if hit is None:
                # Evicted between the insert and this lookup (a cache
                # smaller than the batch) — re-evaluate like the serial
                # loop would on its own miss.
                results[i] = self.try_evaluate(
                    network, batch[i], tile_shared=tile_shared, detailed=detailed
                )
            else:
                results[i] = None if isinstance(hit, _Infeasible) else hit  # type: ignore[assignment]
        return results

    # ------------------------------------------------------------------
    def evaluate_homogeneous(
        self, network: Network, shape: CrossbarShape, *, tile_shared: bool = False
    ) -> SystemMetrics:
        """Evaluate a homogeneous accelerator (the §4.1 baselines).

        Baselines use the conventional tile-based allocation, hence
        ``tile_shared=False`` by default.
        """
        strategy = tuple(shape for _ in network.layers)
        return self.evaluate(network, strategy, tile_shared=tile_shared)

    def cache_stats(self):
        """Snapshot of the attached cache's counters (``None`` if off)."""
        return self.cache.stats() if self.cache is not None else None


def _evaluate_one_remote(args) -> SystemMetrics | _Infeasible:
    """Process-pool worker: evaluate one strategy on a shipped simulator.

    Infeasible strategies return the ``_Infeasible`` sentinel (picklable —
    it carries only the ``CapacityError`` message) rather than ``None``,
    so the parent can merge the verdict into its cache and later batches
    hit instead of re-paying the failed allocation.
    """
    simulator, network, strategy, tile_shared, detailed, skip_infeasible = args
    try:
        return simulator.evaluate(
            network, strategy, tile_shared=tile_shared, detailed=detailed
        )
    except CapacityError as exc:
        if skip_infeasible:
            return _Infeasible(str(exc))
        raise
