#!/usr/bin/env python3
"""A guided tour of the behavioral cost model.

Walks the energy / latency / area models the RL reward is built on and
shows the relations the paper's argument depends on:

1. per-component energy breakdown — ADCs dominate (the §2.2.3 premise);
2. the crossbar-size lever — taller crossbars cut ADC conversions but
   strand cells (utilization falls);
3. where area goes — the per-bitline ADCs, which is why small-crossbar
   accelerators are an order of magnitude larger (Table 5);
4. what the tile-shared scheme changes — allocated cells and leakage.

Run:  python examples/cost_model_tour.py
"""

from repro import CrossbarShape, SQUARE_CANDIDATES, Simulator, vgg16
from repro.arch.mapping import map_layer
from repro.sim.area import crossbar_slot_area_um2
from repro.sim.energy import layer_dynamic_energy


def main() -> None:
    network = vgg16()
    simulator = Simulator()
    config = simulator.config

    print("1) Energy breakdown of a VGG16 inference (512x512 homogeneous):")
    metrics = simulator.evaluate_homogeneous(network, CrossbarShape(512, 512))
    breakdown = metrics.energy_breakdown
    for component in (
        "adc", "dac", "crossbar", "shift_add", "adder_tree",
        "buffer", "bus", "pooling", "leakage",
    ):
        value = getattr(breakdown, component)
        share = value / breakdown.total
        bar = "#" * int(round(share * 40))
        print(f"   {component:>10}: {value:12.1f} nJ  {share:6.1%} {bar}")

    print("\n2) The crossbar-size lever on one layer (VGG16 L8: C3-512 @4):")
    layer = network.layers[7]
    print(f"   {'shape':>9}  {'row grps':>8}  {'ADC/cycle':>9}  "
          f"{'util':>6}  {'layer ADC energy':>17}")
    for shape in SQUARE_CANDIDATES + (CrossbarShape(576, 512),):
        mapping = map_layer(layer, shape)
        energy = layer_dynamic_energy(mapping, config)
        print(
            f"   {shape!s:>9}  {mapping.row_groups:>8}  "
            f"{mapping.used_columns_total:>9}  {mapping.utilization:>6.1%}  "
            f"{energy.adc:>15.1f} nJ"
        )

    print("\n3) Where the area goes (one logical crossbar slot):")
    for shape in (CrossbarShape(32, 32), CrossbarShape(512, 512)):
        total = crossbar_slot_area_um2(shape, config)
        adc = shape.cols * config.area_adc_um2() * config.xbars_per_group
        cells = shape.cells * config.area_cell_um2 * config.xbars_per_group
        print(
            f"   {shape!s:>9}: {total:12.0f} um^2 total — "
            f"ADCs {adc / total:5.1%}, cells {cells / total:5.1%}, "
            f"{total / shape.cells:8.2f} um^2 per cell"
        )

    print("\n4) Tile sharing on the same strategy (576x512 everywhere):")
    strategy = tuple(CrossbarShape(576, 512) for _ in network.layers)
    for shared in (False, True):
        m = simulator.evaluate(network, strategy, tile_shared=shared, detailed=False)
        label = "tile-shared" if shared else "tile-based "
        print(
            f"   {label}: {m.occupied_tiles:>3} tiles, "
            f"U={m.utilization_percent:5.1f}%, "
            f"leakage {m.energy_breakdown.leakage:8.1f} nJ, "
            f"RUE={m.rue:.3e}"
        )


if __name__ == "__main__":
    main()
