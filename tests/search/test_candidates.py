"""Tests for candidate-set construction (§3.3, §4.3, §4.4)."""

import pytest

from repro.arch.config import CrossbarShape
from repro.core.search import (
    all_shapes,
    hybrid_candidates,
    ratio_candidates,
    rectangle_candidates,
    sized_candidates,
    square_candidates,
)


class TestFixedSets:
    def test_hybrid_is_section_3_3(self):
        assert [str(s) for s in hybrid_candidates()] == [
            "32x32", "36x32", "72x64", "288x256", "576x512",
        ]

    def test_square_set(self):
        assert all(s.is_square for s in square_candidates())
        assert len(square_candidates()) == 5

    def test_rectangle_set(self):
        assert all(s.rows % 9 == 0 for s in rectangle_candidates())
        assert len(rectangle_candidates()) == 5

    def test_all_shapes_sorted_and_complete(self):
        shapes = all_shapes()
        assert len(shapes) == 10
        cells = [s.cells for s in shapes]
        assert cells == sorted(cells)


class TestRatioCandidates:
    @pytest.mark.parametrize("num_s,num_r", [(2, 3), (3, 2), (4, 1)])
    def test_fig11a_compositions(self, num_s, num_r):
        cands = ratio_candidates(num_s, num_r)
        assert len(cands) == num_s + num_r
        squares = sum(1 for c in cands if c.is_square)
        assert squares == num_s

    def test_takes_largest_shapes(self):
        cands = ratio_candidates(1, 1)
        assert CrossbarShape(512, 512) in cands
        assert CrossbarShape(576, 512) in cands

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ratio_candidates(0, 0)

    def test_rejects_oversubscription(self):
        with pytest.raises(ValueError):
            ratio_candidates(6, 0)
        with pytest.raises(ValueError):
            ratio_candidates(0, 6)

    def test_sorted_by_cells(self):
        cands = ratio_candidates(3, 2)
        cells = [c.cells for c in cands]
        assert cells == sorted(cells)


class TestSizedCandidates:
    @pytest.mark.parametrize("count", [1, 2, 4, 8, 10])
    def test_fig11b_sizes(self, count):
        cands = sized_candidates(count)
        assert len(cands) == count
        assert len(set(cands)) == count

    def test_mixes_families_when_possible(self):
        cands = sized_candidates(4)
        assert any(c.is_square for c in cands)
        assert any(c.is_rectangle for c in cands)

    def test_rejects_invalid_counts(self):
        with pytest.raises(ValueError):
            sized_candidates(0)
        with pytest.raises(ValueError):
            sized_candidates(11)
