"""Synthetic dataset descriptors and generators.

The paper evaluates AlexNet on MNIST, VGG16 on CIFAR-10, and ResNet152 on
ImageNet (§4.1).  None of those datasets can be downloaded in this offline
environment, and — crucially — none of the reported metrics (utilization,
energy, area, latency, RUE) depend on pixel values: they depend only on the
input *shapes* that set per-layer feature-map sizes and MVM counts.

We therefore model each dataset as a :class:`DatasetSpec` with the paper's
shapes and provide deterministic synthetic generators so the functional
inference engine and examples have real tensors to push through crossbars.
This substitution is documented in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class DatasetSpec:
    """Shape-level description of an image-classification dataset."""

    name: str
    image_size: int
    channels: int
    num_classes: int
    train_examples: int = 0
    test_examples: int = 0

    def __post_init__(self) -> None:
        if self.image_size <= 0 or self.channels <= 0 or self.num_classes <= 0:
            raise ValueError("dataset dimensions must be positive")

    @property
    def input_shape(self) -> tuple[int, int, int]:
        """(channels, height, width) of one example."""
        return (self.channels, self.image_size, self.image_size)

    def synthetic_batch(
        self, batch: int, *, rng: np.random.Generator | None = None, seed: int = 0
    ) -> np.ndarray:
        """Deterministic synthetic images in [0, 1], shape (B, C, H, W).

        The generator blends low-frequency structure (so pooling and conv
        outputs are not pure noise) with pixel noise.
        """
        if batch <= 0:
            raise ValueError("batch must be positive")
        if rng is None:
            rng = np.random.default_rng(seed)
        c, h, w = self.input_shape
        yy, xx = np.meshgrid(np.linspace(0, np.pi, h), np.linspace(0, np.pi, w), indexing="ij")
        base = 0.5 + 0.5 * np.sin(yy * 2.0) * np.cos(xx * 3.0)
        images = np.empty((batch, c, h, w), dtype=np.float64)
        for b in range(batch):
            phase = rng.uniform(0, np.pi)
            noise = rng.normal(0.0, 0.15, size=(c, h, w))
            images[b] = np.clip(base * np.cos(phase) ** 2 + 0.25 + noise, 0.0, 1.0)
        return images

    def synthetic_labels(
        self, batch: int, *, rng: np.random.Generator | None = None, seed: int = 0
    ) -> np.ndarray:
        """Deterministic synthetic integer labels, shape (B,)."""
        if rng is None:
            rng = np.random.default_rng(seed)
        return rng.integers(0, self.num_classes, size=batch)


# Paper §4.1 dataset trio, with the published shapes.
MNIST = DatasetSpec(
    name="MNIST", image_size=28, channels=1, num_classes=10,
    train_examples=60_000, test_examples=10_000,
)
CIFAR10 = DatasetSpec(
    name="CIFAR-10", image_size=32, channels=3, num_classes=10,
    train_examples=50_000, test_examples=10_000,
)
IMAGENET = DatasetSpec(
    name="ImageNet", image_size=224, channels=3, num_classes=1000,
    train_examples=1_281_167, test_examples=50_000,
)

_REGISTRY = {d.name.lower(): d for d in (MNIST, CIFAR10, IMAGENET)}
_REGISTRY["cifar10"] = CIFAR10
_REGISTRY["imagenet"] = IMAGENET


def get_dataset(name: str) -> DatasetSpec:
    """Look up a dataset spec by (case-insensitive) name."""
    key = name.lower().replace("_", "-")
    if key in _REGISTRY:
        return _REGISTRY[key]
    key = key.replace("-", "")
    if key in _REGISTRY:
        return _REGISTRY[key]
    raise KeyError(f"unknown dataset {name!r}; known: {sorted(set(_REGISTRY))}")
