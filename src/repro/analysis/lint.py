"""Project-specific AST lint rules for the ``repro`` source tree.

Generic linters cannot know that ``repro``'s energy math must never use
float equality, or that ``arch/`` dataclasses model immutable hardware
descriptions unless explicitly declared stateful.  This module encodes
those repo rules as AST passes producing the same
:class:`~repro.analysis.invariants.Diagnostic` stream as the structural
checkers, so ``repro check --source`` and CI share one report format.

Rules
-----
LNT001  no ``print`` outside the CLI / bench reporting layer
LNT002  no mutable default arguments
LNT003  dataclasses under ``arch/`` are frozen or marked ``# stateful:``
LNT004  no float-literal ``==`` / ``!=`` in energy/latency modules
LNT005  no bare ``assert`` in ``core/allocation`` invariants
LNT006  no ``functools.lru_cache`` / ``functools.cache`` on instance methods
LNT007  no direct ``logging.getLogger`` / ``logging.basicConfig`` outside
        ``obs/`` — subsystems log through ``repro.obs.log``
LNT008  no literal dtype casts (``float()``, ``np.float32()``, ...) inside
        loops in the kernel hot path (``sim/kernels.py``) — a per-element
        cast scalarizes the batch math the module exists to vectorize
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable

from .invariants import (
    LNT001,
    LNT002,
    LNT003,
    LNT004,
    LNT005,
    LNT006,
    LNT007,
    LNT008,
    Diagnostic,
)

#: module paths (relative, POSIX) where ``print`` is user-facing output
PRINT_ALLOWED_PREFIXES = ("cli.py", "__main__.py", "bench/")

#: module paths allowed to touch the stdlib logging module directly —
#: the obs bridge is where loggers and handlers are wired up
LOGGING_BRIDGE_PREFIXES = ("obs/",)

#: the stdlib logging entry points LNT007 fences off
_LOGGING_SETUP_NAMES = ("getLogger", "basicConfig")

#: marker that declares a deliberately mutable dataclass in arch/
STATEFUL_MARKER = "# stateful:"

#: ``"relpath::Class.method"`` entries exempt from LNT006 — methods that
#: are deliberately memoised per-instance (none today; additions need a
#: review of the self-in-key lifetime hazard they reintroduce)
CACHED_METHOD_ALLOWLIST: frozenset[str] = frozenset()

#: module paths (relative, POSIX) whose loops are kernel hot paths —
#: LNT008 forbids per-element dtype casts inside them
KERNEL_HOT_PATH_PREFIXES = ("sim/kernels.py",)

#: ``"relpath::function"`` entries exempt from LNT008 — functions whose
#: in-loop casts are deliberate (none today; additions need a rationale
#: for why the cast cannot hoist to a single ``.astype`` before the loop)
KERNEL_CAST_ALLOWLIST: frozenset[str] = frozenset()

#: builtin scalar constructors LNT008 treats as literal casts
_SCALAR_CAST_NAMES = frozenset({"float", "int"})

#: NumPy scalar-type constructors LNT008 treats as literal casts
_NP_CAST_NAMES = frozenset(
    {"float16", "float32", "float64", "int8", "int16", "int32", "int64",
     "uint8", "uint16", "uint32", "uint64"}
)

_LOOP_NODES = (ast.For, ast.AsyncFor, ast.While, ast.ListComp, ast.SetComp,
               ast.DictComp, ast.GeneratorExp)


def _cast_callee(node: ast.AST) -> str | None:
    """``"float"`` / ``"np.float32"`` when *node* is a literal dtype cast."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Name) and func.id in _SCALAR_CAST_NAMES:
        return func.id
    if (
        isinstance(func, ast.Attribute)
        and func.attr in _NP_CAST_NAMES
        and isinstance(func.value, ast.Name)
        and func.value.id in ("np", "numpy")
    ):
        return f"np.{func.attr}"
    return None


def _memo_decorator_name(dec: ast.expr) -> str | None:
    """The memoising decorator's short name, or None.

    Matches ``@lru_cache``, ``@lru_cache(...)``, ``@functools.lru_cache``,
    ``@functools.cache`` and the parenthesised forms; ``cached_property``
    is excluded (it keys per instance by design, not per argument tuple).
    """
    target = dec.func if isinstance(dec, ast.Call) else dec
    if isinstance(target, ast.Name) and target.id in ("lru_cache", "cache"):
        return target.id
    if (
        isinstance(target, ast.Attribute)
        and target.attr in ("lru_cache", "cache")
        and isinstance(target.value, ast.Name)
        and target.value.id == "functools"
    ):
        return target.attr
    return None


def _is_instance_method(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for dec in node.decorator_list:
        if isinstance(dec, ast.Name) and dec.id in ("staticmethod", "classmethod"):
            return False
    params = [*node.args.posonlyargs, *node.args.args]
    return bool(params) and params[0].arg in ("self", "cls")


def _is_mutable_literal(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("list", "dict", "set", "bytearray")
    return False


def _dataclass_decorator(node: ast.ClassDef) -> ast.expr | None:
    for dec in node.decorator_list:
        if isinstance(dec, ast.Name) and dec.id == "dataclass":
            return dec
        if isinstance(dec, ast.Attribute) and dec.attr == "dataclass":
            return dec
        if isinstance(dec, ast.Call):
            func = dec.func
            if (isinstance(func, ast.Name) and func.id == "dataclass") or (
                isinstance(func, ast.Attribute) and func.attr == "dataclass"
            ):
                return dec
    return None


def _is_frozen(dec: ast.expr) -> bool:
    if isinstance(dec, ast.Call):
        for kw in dec.keywords:
            if kw.arg == "frozen" and isinstance(kw.value, ast.Constant):
                return bool(kw.value.value)
    return False


def lint_source(source: str, rel_path: str) -> list[Diagnostic]:
    """Run every lint rule over one module's source text.

    ``rel_path`` is the module's path relative to the package root
    (POSIX separators); it decides which path-scoped rules apply.
    """
    try:
        tree = ast.parse(source, filename=rel_path)
    except SyntaxError as exc:
        return [
            LNT002.diag(
                f"{rel_path}:{exc.lineno or 0}",
                f"file does not parse: {exc.msg}",
                hint="fix the syntax error first",
            )
        ]
    lines = source.splitlines()
    out: list[Diagnostic] = []

    print_allowed = rel_path.startswith(PRINT_ALLOWED_PREFIXES)
    logging_allowed = rel_path.startswith(LOGGING_BRIDGE_PREFIXES)
    # Names bound by ``from logging import getLogger [as g]`` — LNT007
    # must catch the bare-name call form too, not just ``logging.X(...)``.
    logging_aliases: set[str] = set()
    if not logging_allowed:
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == "logging":
                for alias in node.names:
                    if alias.name in _LOGGING_SETUP_NAMES:
                        logging_aliases.add(alias.asname or alias.name)
    in_arch = rel_path.startswith("arch/")
    in_allocation = rel_path.startswith("core/allocation/")
    cost_module = "energy" in Path(rel_path).stem or "latency" in Path(rel_path).stem

    for node in ast.walk(tree):
        # LNT001 — no print outside the CLI / bench layer.
        if (
            not print_allowed
            and isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "print"
        ):
            out.append(
                LNT001.diag(
                    f"{rel_path}:{node.lineno}",
                    "print() call in library code",
                    hint="use the logging module, or move output to cli/bench",
                )
            )

        # LNT007 — logging is wired in exactly one place (repro.obs.log);
        # library code gets its logger through the bridge so the namespace
        # stays uniform and handler setup stays idempotent.
        if not logging_allowed and isinstance(node, ast.Call):
            func = node.func
            direct = (
                isinstance(func, ast.Attribute)
                and func.attr in _LOGGING_SETUP_NAMES
                and isinstance(func.value, ast.Name)
                and func.value.id == "logging"
            )
            imported = isinstance(func, ast.Name) and func.id in logging_aliases
            if direct or imported:
                called = func.attr if direct else func.id  # type: ignore[union-attr]
                out.append(
                    LNT007.diag(
                        f"{rel_path}:{node.lineno}",
                        f"direct logging.{called}() call outside the obs bridge",
                        hint="use repro.obs.log.get_logger (or "
                        "configure_cli_logging in the CLI) instead",
                    )
                )

        # LNT002 — mutable default arguments.
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_mutable_literal(default):
                    out.append(
                        LNT002.diag(
                            f"{rel_path}:{default.lineno}",
                            f"mutable default argument in {node.name}()",
                            hint="default to None (or use dataclasses.field)",
                        )
                    )

        # LNT003 — frozen-dataclass discipline under arch/.
        if in_arch and isinstance(node, ast.ClassDef):
            dec = _dataclass_decorator(node)
            if dec is not None and not _is_frozen(dec):
                dec_line = lines[dec.lineno - 1] if dec.lineno - 1 < len(lines) else ""
                if STATEFUL_MARKER not in dec_line:
                    out.append(
                        LNT003.diag(
                            f"{rel_path}:{node.lineno}",
                            f"dataclass {node.name} in arch/ is mutable and "
                            "not marked stateful",
                            hint="add frozen=True, or append "
                            f"'{STATEFUL_MARKER} <reason>' to the decorator line",
                        )
                    )

        # LNT004 — float equality in energy/latency math.
        if cost_module and isinstance(node, ast.Compare):
            operands = [node.left, *node.comparators]
            has_eq = any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops)
            has_float = any(
                isinstance(o, ast.Constant) and isinstance(o.value, float)
                for o in operands
            )
            if has_eq and has_float:
                out.append(
                    LNT004.diag(
                        f"{rel_path}:{node.lineno}",
                        "float-literal equality comparison in cost-model math",
                        hint="compare against a tolerance (math.isclose)",
                    )
                )

        # LNT006 — no functools memoisation on instance methods: the memo
        # holds `self` in its key, pinning every instance for the life of
        # the process and keying results on object identity.
        if isinstance(node, ast.ClassDef):
            for item in node.body:
                if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if not _is_instance_method(item):
                    continue
                for dec in item.decorator_list:
                    memo = _memo_decorator_name(dec)
                    if memo is None:
                        continue
                    if f"{rel_path}::{node.name}.{item.name}" in CACHED_METHOD_ALLOWLIST:
                        continue
                    out.append(
                        LNT006.diag(
                            f"{rel_path}:{item.lineno}",
                            f"functools.{memo} on instance method "
                            f"{node.name}.{item.name} leaks instances via the "
                            "memo key",
                            hint="memoise a module-level function of explicit "
                            "arguments, or add the method to "
                            "CACHED_METHOD_ALLOWLIST with a rationale",
                        )
                    )

        # LNT005 — no bare asserts in allocation invariants.
        if in_allocation and isinstance(node, ast.Assert):
            out.append(
                LNT005.diag(
                    f"{rel_path}:{node.lineno}",
                    "bare assert in allocation invariant code",
                    hint="raise InvariantViolation with a Diagnostic instead",
                )
            )

    # LNT008 — literal dtype casts inside kernel hot loops.  A float()
    # or np.float32() per element turns the batch kernel back into the
    # scalar loop it replaced; the cast belongs on the whole array, once,
    # before the loop.
    if rel_path.startswith(KERNEL_HOT_PATH_PREFIXES):
        flagged: set[tuple[int, int]] = set()
        for func in ast.walk(tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if f"{rel_path}::{func.name}" in KERNEL_CAST_ALLOWLIST:
                continue
            for loop in ast.walk(func):
                if not isinstance(loop, _LOOP_NODES):
                    continue
                for sub in ast.walk(loop):
                    callee = _cast_callee(sub)
                    key = (sub.lineno, sub.col_offset) if callee else None
                    if callee is None or key in flagged:
                        continue
                    flagged.add(key)  # type: ignore[arg-type]
                    out.append(
                        LNT008.diag(
                            f"{rel_path}:{sub.lineno}",
                            f"per-element {callee}() cast inside a kernel "
                            f"hot loop in {func.name}()",
                            hint="hoist the cast to one .astype on the whole "
                            f"array before the loop, or add "
                            f"'{rel_path}::{func.name}' to "
                            "KERNEL_CAST_ALLOWLIST with a rationale",
                        )
                    )
    return out


def lint_path(path: Path, root: Path) -> list[Diagnostic]:
    """Lint one file; ``root`` is the package root the rules are scoped to."""
    rel = path.relative_to(root).as_posix()
    return lint_source(path.read_text(), rel)


def lint_tree(root: Path | str | None = None) -> list[Diagnostic]:
    """Lint every ``*.py`` under the package root (default: ``repro``'s own
    source tree, wherever it is installed)."""
    base = Path(root) if root is not None else Path(__file__).resolve().parent.parent
    out: list[Diagnostic] = []
    for path in sorted(base.rglob("*.py")):
        out.extend(lint_path(path, base))
    return out


def iter_python_files(root: Path | str) -> Iterable[Path]:
    """Public helper for tools that want the same file discovery."""
    return sorted(Path(root).rglob("*.py"))
