"""``repro.serve`` — request-level multi-tenant serving simulation.

The paper maps one workload once; this package serves many.  A
:class:`~repro.serve.scenario.Scenario` describes tenants (model +
strategy + arrival process + SLO) co-located on one accelerator via
:func:`repro.core.allocation.allocate_multi_network`;
:func:`~repro.serve.engine.simulate` drives a deterministic
discrete-event loop with service times from
:mod:`repro.sim.pipeline`, per-tenant queueing/batching, and a
drift-triggered re-allocation policy (Algorithm 1 re-pack with weight
replication); :func:`~repro.serve.report.build_report` rolls latencies
up into the p50/p95/p99 + SLO-attainment document ``repro serve``
prints.  See docs/serving.md.
"""

from .engine import ServeResult, TenantResult, initial_allocation, simulate
from .policy import (
    DriftReallocationPolicy,
    ReallocationPolicy,
    ReallocDecision,
    mix_drift,
)
from .report import (
    REPORT_SCHEMA_VERSION,
    build_report,
    emit_report,
    validate_report,
)
from .scenario import (
    BUILTIN_SCENARIOS,
    ArrivalPhase,
    ReallocConfig,
    Scenario,
    TenantSpec,
    generate_arrivals,
    load_scenario,
    save_scenario,
    scenario_from_dict,
    scenario_to_dict,
    two_tenant_scenario,
)

__all__ = [
    "ArrivalPhase",
    "BUILTIN_SCENARIOS",
    "DriftReallocationPolicy",
    "REPORT_SCHEMA_VERSION",
    "ReallocConfig",
    "ReallocDecision",
    "ReallocationPolicy",
    "Scenario",
    "ServeResult",
    "TenantResult",
    "TenantSpec",
    "build_report",
    "emit_report",
    "generate_arrivals",
    "initial_allocation",
    "load_scenario",
    "mix_drift",
    "save_scenario",
    "scenario_from_dict",
    "scenario_to_dict",
    "simulate",
    "two_tenant_scenario",
    "validate_report",
]
