"""Tests for the NumPy-aware numeric-safety analysis (NUM rules)."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.numeric import analyze_numeric, numeric_findings

FIXTURE_TREE = Path(__file__).parent / "fixtures" / "unsafe_numeric_tree"


def ids(source):
    return sorted(d.rule_id for d in numeric_findings(source, "sim/mod.py"))


class TestNUM001DtypeMixing:
    def test_int32_meets_int64(self):
        src = (
            "import numpy as np\n"
            "a = np.zeros(4, dtype=np.int32)\n"
            "b = np.ones(4, dtype=np.int64)\n"
            "c = a + b\n"
        )
        assert ids(src) == ["NUM001"]

    def test_int_into_float32_narrowing(self):
        src = (
            "import numpy as np\n"
            "a = np.zeros(4, dtype=np.int64)\n"
            "b = np.ones(4, dtype=np.float32)\n"
            "c = a * b\n"
        )
        assert ids(src) == ["NUM001"]

    def test_int64_to_float64_is_the_scalar_promotion(self):
        src = (
            "import numpy as np\n"
            "a = np.zeros(4, dtype=np.int64)\n"
            "b = np.ones(4, dtype=np.float64)\n"
            "c = a + b\n"
        )
        assert ids(src) == []

    def test_astype_declares_the_conversion(self):
        src = (
            "import numpy as np\n"
            "a = np.zeros(4, dtype=np.int32)\n"
            "b = np.ones(4, dtype=np.int64)\n"
            "c = a.astype(np.int64) + b\n"
        )
        assert ids(src) == []


class TestNUM002OrderSensitiveReductions:
    def test_np_sum_on_float(self):
        src = (
            "import numpy as np\n"
            "x = np.ones(4, dtype=np.float64)\n"
            "t = np.sum(x)\n"
        )
        assert ids(src) == ["NUM002"]

    def test_method_sum_on_float(self):
        src = (
            "import numpy as np\n"
            "x = np.ones(4, dtype=np.float64)\n"
            "t = x.sum()\n"
        )
        assert ids(src) == ["NUM002"]

    def test_matmul_operator_on_float(self):
        src = (
            "import numpy as np\n"
            "x = np.ones((2, 2), dtype=np.float64)\n"
            "t = x @ x\n"
        )
        assert ids(src) == ["NUM002"]

    def test_int_reduction_is_exact(self):
        # Integer accumulation is associative — einsum/sum on int64 is
        # how the functional engine works.
        src = (
            "import numpy as np\n"
            "x = np.ones(4, dtype=np.int64)\n"
            "t = np.sum(x)\n"
        )
        assert ids(src) == []

    def test_cumsum_left_fold_is_sanctioned(self):
        src = (
            "import numpy as np\n"
            "x = np.ones(4, dtype=np.float64)\n"
            "t = np.cumsum(x)[-1]\n"
        )
        assert ids(src) == []


class TestNUM003UnguardedDivision:
    def test_division_by_zeros(self):
        src = "import numpy as np\nd = np.zeros(4)\nr = 1.0 / d\n"
        assert ids(src) == ["NUM003"]

    def test_division_by_subtraction(self):
        src = "import numpy as np\ndef f(a, b):\n    return 1 / (a - b)\n"
        assert ids(src) == ["NUM003"]

    def test_sqrt_of_possibly_negative(self):
        src = (
            "import numpy as np\n"
            "v = np.array([1.0, 2.0]) - np.array([3.0, 4.0])\n"
            "r = np.sqrt(v)\n"
        )
        assert ids(src) == ["NUM003"]

    def test_log_of_possibly_zero(self):
        src = "import numpy as np\nd = np.zeros(4)\nr = np.log(d)\n"
        assert ids(src) == ["NUM003"]

    def test_comparison_guard_discharges(self):
        src = (
            "import numpy as np\n"
            "def f(d):\n"
            "    d = np.zeros(4)\n"
            "    if np.all(d > 0):\n"
            "        return 1.0 / d\n"
            "    return 0.0\n"
        )
        assert ids(src) == []

    def test_early_exit_guard_discharges(self):
        src = (
            "def f(a, b):\n"
            "    d = a - b\n"
            "    if d == 0:\n"
            "        raise ValueError\n"
            "    return 1 / d\n"
        )
        assert ids(src) == []

    def test_or_fallback_discharges(self):
        # The ``x or 1.0`` idiom (sim/variation.py's RMS denominator).
        src = (
            "import numpy as np\n"
            "def f(x):\n"
            "    denom = float(np.zeros(1)[0]) or 1.0\n"
            "    return x / denom\n"
        )
        assert ids(src) == []

    def test_even_power_clears_negative(self):
        src = (
            "import numpy as np\n"
            "def f(a, b):\n"
            "    return np.sqrt((a - b) ** 2)\n"
        )
        assert ids(src) == []


class TestNUM004FloatEquality:
    def test_float_literal_equality(self):
        assert ids("def f(x):\n    return x == 1.5\n") == ["NUM004"]

    def test_float_dtype_equality(self):
        src = (
            "import numpy as np\n"
            "x = np.zeros(3, dtype=np.float64)\n"
            "eq = x == 0\n"
        )
        assert ids(src) == ["NUM004"]

    def test_int_equality_is_fine(self):
        assert ids("def f(x):\n    return x == 3\n") == []

    def test_waiver_comment_suppresses(self):
        src = "def f(x):\n    return x == 1.5  # numeric-ok: NUM004 (sentinel)\n"
        assert ids(src) == []

    def test_waiver_for_other_rule_does_not_suppress(self):
        src = "def f(x):\n    return x == 1.5  # numeric-ok: NUM003 (wrong id)\n"
        assert ids(src) == ["NUM004"]


class TestNUM005NanSinks:
    def test_argmin_on_inf_tainted(self):
        src = (
            "import numpy as np\n"
            "s = np.ones(3) * np.inf\n"
            "best = np.argmin(s)\n"
        )
        assert ids(src) == ["NUM005"]

    def test_builtin_min_on_nan_tainted(self):
        src = (
            "import numpy as np\n"
            "s = np.ones(3) - np.nan\n"
            "best = min(s)\n"
        )
        assert ids(src) == ["NUM005"]

    def test_ordering_comparison_on_tainted(self):
        src = (
            "import numpy as np\n"
            "s = np.ones(3) - np.inf\n"
            "flag = s < 0\n"
        )
        assert ids(src) == ["NUM005"]

    def test_isfinite_guard_discharges(self):
        src = (
            "import numpy as np\n"
            "def f():\n"
            "    s = np.ones(3) - np.inf\n"
            "    if np.all(np.isfinite(s)):\n"
            "        return np.argmin(s)\n"
            "    return -1\n"
        )
        assert ids(src) == []

    def test_nan_aware_variant_is_sanctioned(self):
        src = (
            "import numpy as np\n"
            "s = np.ones(3) - np.inf\n"
            "best = np.nanmin(s)\n"
        )
        assert ids(src) == []


class TestOptimismAboutUnknowns:
    def test_plain_python_arithmetic_is_silent(self):
        src = (
            "def f(mapping, config):\n"
            "    per = mapping.weight_cells / mapping.num_crossbars\n"
            "    return per * config.adc_bits\n"
        )
        assert ids(src) == []

    def test_unknown_reduction_operand_is_silent(self):
        src = "import numpy as np\ndef f(x):\n    return np.sum(x)\n"
        assert ids(src) == []


class TestEntryPoints:
    def test_fixture_tree_reports_exactly_one_per_rule(self):
        diags = analyze_numeric(FIXTURE_TREE)
        assert [d.rule_id for d in diags] == [
            "NUM001", "NUM002", "NUM003", "NUM004", "NUM005",
        ]
        assert all(d.location.startswith("sim/kernels.py:") for d in diags)

    def test_real_tree_is_numerically_clean(self):
        assert analyze_numeric() == []

    def test_empty_tree_raises(self, tmp_path):
        with pytest.raises(ValueError, match="no sim/ modules"):
            analyze_numeric(tmp_path)
