"""Trace invariance + stream hygiene for the serving simulator.

Instrumentation is read-only: running the identical scenario with a
live tracer (ambient or explicit) must produce byte-identical outcomes
to an untraced run.  And everything the engine emits must be
well-formed — schema-v1 records, ``serve.*`` names declared in the
units table (the UNI005 contract: latency counters carry ``ns``).
"""

import json

from repro.arch.config import UNIT_TABLE
from repro.obs import Tracer, use_tracer, validate_record
from repro.obs.sinks import InMemorySink
from repro.serve import (
    ArrivalPhase,
    ReallocConfig,
    Scenario,
    TenantSpec,
    build_report,
    emit_report,
    simulate,
)

#: small scenario exercising every emitter: the lenet phase shift
#: drives a re-allocation, the tinycnn burst overflows its queue
BUSY = Scenario(
    name="busy",
    duration_ns=4e7,
    seed=3,
    max_batch=4,
    queue_cap=4,
    realloc=ReallocConfig(
        enabled=True, threshold=0.15, window=8, check_every=4,
        stall_ns=5e4, cooldown_ns=1e6, headroom=4.0,
    ),
    tenants=(
        TenantSpec(
            name="steady", model="lenet", shape="64x64",
            rate_rps=1500.0,
            phases=(ArrivalPhase(at_ns=2e7, rate_rps=6000.0),),
            slo_ns=1e6,
        ),
        TenantSpec(
            name="bursty", model="tinycnn", shape="64x64",
            trace_ns=tuple([1e7] * 24),
            slo_ns=1e6,
        ),
    ),
)


def traced_run(scenario):
    sink = InMemorySink()
    tracer = Tracer([sink])
    with use_tracer(tracer):
        result = simulate(scenario)
        report = build_report(result)
        emit_report(tracer, report)
    return result, report, sink.records


class TestTraceInvariance:
    def test_tracing_changes_nothing(self):
        plain = simulate(BUSY)
        traced, traced_report, records = traced_run(BUSY)
        assert records, "live tracer emitted nothing"
        assert json.dumps(list(plain.event_log)) == json.dumps(
            list(traced.event_log)
        )
        assert json.dumps(build_report(plain), sort_keys=True) == json.dumps(
            traced_report, sort_keys=True
        )

    def test_scenario_exercises_every_emitter(self):
        """The fixture is only a fixture while it rejects AND re-packs."""
        result = simulate(BUSY)
        assert result.total_rejected > 0
        assert len(result.realloc_events) >= 1

    def test_records_are_schema_valid_serve_streams(self):
        _, _, records = traced_run(BUSY)
        for record in records:
            assert validate_record(record) == [], record
            assert record["name"].startswith("serve."), record["name"]

    def test_counter_streams_declared_with_units(self):
        """Every serve counter is in the units table; UNI005's contract
        that ``*_ns`` streams are declared in nanoseconds holds."""
        _, _, records = traced_run(BUSY)
        streams = UNIT_TABLE["obs.streams"]
        counters = {r["name"] for r in records if r["type"] == "counter"}
        assert counters, "no counter records emitted"
        for name in counters:
            assert name in streams, f"{name} missing from UNIT_TABLE"
            if name.endswith("_ns"):
                assert streams[name] == "ns", name
        # Both per-request and rollup latency land on the same stream.
        assert "serve.latency_ns" in counters
