"""Hardware substrate: crossbars, peripherals, PEs, tiles, accelerator."""

from .accelerator import BlockLocation, HeterogeneousAccelerator
from .config import (
    DEFAULT_CANDIDATES,
    DEFAULT_CONFIG,
    RECTANGLE_CANDIDATES,
    SQUARE_CANDIDATES,
    CrossbarShape,
    HardwareConfig,
)
from .controller import GlobalController, Instruction, Opcode
from .crossbar import Crossbar
from .mapping import LayerMapping, eq4_utilization, map_layer, occupancy_grid
from .pe import ProcessingElement
from .peripherals import ADCArray, AdderTree, DACArray, PoolingModule, ShiftAdder
from .tile import BlockAssignment, HardwareTile

__all__ = [
    "BlockLocation",
    "HeterogeneousAccelerator",
    "DEFAULT_CANDIDATES",
    "DEFAULT_CONFIG",
    "RECTANGLE_CANDIDATES",
    "SQUARE_CANDIDATES",
    "CrossbarShape",
    "HardwareConfig",
    "GlobalController",
    "Instruction",
    "Opcode",
    "Crossbar",
    "LayerMapping",
    "eq4_utilization",
    "map_layer",
    "occupancy_grid",
    "ProcessingElement",
    "ADCArray",
    "AdderTree",
    "DACArray",
    "PoolingModule",
    "ShiftAdder",
    "BlockAssignment",
    "HardwareTile",
]
