"""Figure 10 — impact of individual techniques (Base / +He / +Hy / All).

Regenerates the ablation: the best homogeneous SXB accelerator (Base),
the RL search over heterogeneous squares (+He), the hybrid square +
rectangle candidate set (+Hy), and the full system with the tile-shared
allocation scheme (All), for all three models.

Expected shapes (paper §4.3): each technique improves or maintains RUE;
+Hy's gain shows up mostly as an energy cut, All's mostly as a
utilization lift.
"""

from conftest import run_once

from repro.bench import fig10_ablation, print_fig10


def test_fig10_ablation(benchmark):
    results = run_once(benchmark, fig10_ablation)
    print_fig10(results)
    for res in results:
        base, he, hy, all_ = res.rows
        assert he.rue >= 0.98 * base.rue
        assert hy.rue >= 0.98 * he.rue
        assert all_.rue >= 0.98 * hy.rue
        # The full system beats the homogeneous baseline outright.
        assert all_.rue > base.rue
