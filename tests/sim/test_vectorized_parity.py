"""Differential battery: the vectorized kernel path vs the scalar reference.

The exactness contract of ``repro.sim.kernels`` is *bit-identical*
metrics — not approximately equal — because the NumPy kernels mirror the
scalar evaluation's arithmetic operation-for-operation (strict left
folds via ``cumsum``, identical association order, identical int→float
conversion points).  These tests enforce the contract three ways:

* a hypothesis battery over random networks × strategies × configs,
  comparing all three evaluation modes (materialising reference,
  scalar-memoized, vectorized) pairwise, infeasible verdicts included;
* the paper workloads (VGG16 et al.) under the paper's strategies;
* the batched ``evaluate_many`` fast path against the serial loop,
  duplicates and infeasible entries included, cache counters and all.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.config import DEFAULT_CANDIDATES, CrossbarShape, HardwareConfig
from repro.arch.mapping import map_layer
from repro.models.datasets import CIFAR10
from repro.models.graph import Network
from repro.models.layers import LayerSpec, PoolSpec
from repro.sim import kernels
from repro.sim.simulator import CapacityError, Simulator

SHAPES = DEFAULT_CANDIDATES


def reference_sim(config=None):
    """The materialising scalar path — the semantic ground truth."""
    return Simulator(
        config=config or HardwareConfig(),
        cache=None,
        memoize_costs=False,
        vectorize=False,
    )


def scalar_sim(config=None):
    """The scalar summary-shortcut path (memoized, not vectorized)."""
    return Simulator(
        config=config or HardwareConfig(), cache=None, vectorize=False
    )


def vector_sim(config=None):
    """The NumPy kernel path under test."""
    return Simulator(config=config or HardwareConfig(), cache=None)


def outcome(sim, network, strategy, *, tile_shared, detailed):
    """Metrics on success, the CapacityError message on infeasibility."""
    try:
        return sim.evaluate(
            network, strategy, tile_shared=tile_shared, detailed=detailed
        )
    except CapacityError as exc:
        return ("infeasible", str(exc))


@st.composite
def network_and_strategy(draw):
    """A small random CONV/pool pipeline plus a per-layer shape choice."""
    depth = draw(st.integers(1, 5))
    items = []
    channels = CIFAR10.channels
    for _ in range(depth):
        out = draw(st.integers(1, 96))
        kernel = draw(st.sampled_from([1, 3]))
        items.append(
            LayerSpec.conv(
                channels, out, kernel, padding=1 if kernel == 3 else 0
            )
        )
        channels = out
        if draw(st.booleans()):
            items.append(PoolSpec(window=2, stride=2))
    network = Network.build("rand", CIFAR10, items)
    strategy = tuple(
        draw(st.sampled_from(SHAPES)) for _ in range(network.num_layers)
    )
    return network, strategy


class TestHypothesisDifferential:
    @settings(max_examples=60, deadline=None)
    @given(
        network_and_strategy(),
        st.booleans(),
        st.booleans(),
        # tiles_per_bank=6 makes a healthy fraction of draws infeasible,
        # so the CapacityError verdict (and message) parity is exercised
        # alongside the numeric parity.
        st.sampled_from([337, 6]),
    )
    def test_three_paths_agree_bit_for_bit(
        self, net_strat, tile_shared, detailed, tiles_per_bank
    ):
        network, strategy = net_strat
        config = HardwareConfig(tiles_per_bank=tiles_per_bank)
        results = [
            outcome(
                sim_factory(config),
                network,
                strategy,
                tile_shared=tile_shared,
                detailed=detailed,
            )
            for sim_factory in (reference_sim, scalar_sim, vector_sim)
        ]
        # Plain ==: SystemMetrics is a frozen dataclass of floats/ints,
        # so equality here means every field is bit-identical.
        assert results[0] == results[1] == results[2]

    @settings(max_examples=30, deadline=None)
    @given(network_and_strategy())
    def test_strategy_batch_scorer_matches_evaluate(self, net_strat):
        network, strategy = net_strat
        config = HardwareConfig()
        scored = kernels.score_strategy_batch(
            network,
            [strategy],
            config,
            tile_shared=True,
            enforce_capacity=True,
            detailed=True,
        )[0]
        expected = outcome(
            reference_sim(config), network, strategy,
            tile_shared=True, detailed=True,
        )
        if isinstance(scored, kernels.InfeasibleScore):
            assert expected == ("infeasible", scored.message)
        else:
            assert scored == expected


class TestPaperWorkloads:
    @pytest.mark.parametrize("net_fixture", ["lenet_net", "tiny_net", "vgg_net"])
    @pytest.mark.parametrize("tile_shared", [True, False])
    def test_uniform_strategies_unchanged(
        self, net_fixture, tile_shared, request
    ):
        network = request.getfixturevalue(net_fixture)
        for shape in SHAPES:
            strategy = tuple(shape for _ in range(network.num_layers))
            assert outcome(
                vector_sim(), network, strategy,
                tile_shared=tile_shared, detailed=True,
            ) == outcome(
                reference_sim(), network, strategy,
                tile_shared=tile_shared, detailed=True,
            )

    def test_vgg16_manual_hetero_unchanged(self, vgg_net):
        from repro.core.search.strategies import manual_hetero_strategy

        strategy = manual_hetero_strategy(vgg_net)
        assert vector_sim().evaluate(vgg_net, strategy) == reference_sim().evaluate(
            vgg_net, strategy
        )


class TestBatchedEvaluateMany:
    def batch_for(self, network, count=8):
        return [
            tuple(
                SHAPES[(i + j) % len(SHAPES)]
                for j in range(network.num_layers)
            )
            for i in range(count)
        ]

    def test_matches_serial_with_duplicates(self, lenet_net):
        batch = self.batch_for(lenet_net) * 2  # every strategy twice
        serial = [
            Simulator(vectorize=False).try_evaluate(
                lenet_net, s, detailed=False
            )
            for s in batch
        ]
        assert Simulator().evaluate_many(lenet_net, batch) == serial

    def test_cache_protocol_matches_serial(self, lenet_net):
        """Hit/miss/size counters replicate the serial loop exactly."""
        batch = self.batch_for(lenet_net, count=6) * 3
        serial_sim = Simulator(vectorize=False)
        for s in batch:
            serial_sim.try_evaluate(lenet_net, s, detailed=False)
        batched_sim = Simulator()
        batched_sim.evaluate_many(lenet_net, batch)
        serial, batched = serial_sim.cache_stats(), batched_sim.cache_stats()
        assert (serial.hits, serial.misses, serial.size) == (
            batched.hits,
            batched.misses,
            batched.size,
        )

    def test_infeasible_entries_cached_and_reused(self, tiny_net):
        hopeless = Simulator(HardwareConfig(tiles_per_bank=1))
        batch = self.batch_for(tiny_net, count=4)
        assert hopeless.evaluate_many(tiny_net, batch) == [None] * 4
        stats = hopeless.cache_stats()
        assert stats.size == len(set(batch))
        assert hopeless.evaluate_many(tiny_net, batch) == [None] * 4
        after = hopeless.cache_stats()
        assert after.hits - stats.hits == len(batch)
        assert after.misses == stats.misses

    def test_infeasible_message_matches_serial(self, tiny_net):
        config = HardwareConfig(tiles_per_bank=1)
        strategy = self.batch_for(tiny_net, count=1)[0]
        with pytest.raises(CapacityError) as serial_exc:
            reference_sim(config).evaluate(tiny_net, strategy)
        scored = kernels.score_strategy_batch(
            tiny_net,
            [strategy],
            config,
            tile_shared=True,
            enforce_capacity=True,
        )[0]
        assert isinstance(scored, kernels.InfeasibleScore)
        assert scored.message == str(serial_exc.value)


class TestAdcChainInvariant:
    """Satellite: ``min(adc_sharing, used_columns_per_crossbar_max)``.

    The ADC chain length in :func:`repro.sim.latency.mvm_latency_ns`
    would silently zero the latency if a mapping could ever report zero
    used columns.  ``LayerMapping.__post_init__`` (MAP003) makes that
    state unconstructible — these tests pin both halves of the argument.
    """

    @settings(max_examples=80, deadline=None)
    @given(
        st.integers(1, 512),
        st.integers(1, 512),
        st.sampled_from([1, 3, 5]),
        st.sampled_from(list(SHAPES)),
    )
    def test_mapped_layers_always_use_a_column(self, cin, cout, k, shape):
        mapping = map_layer(LayerSpec.conv(cin, cout, k, input_size=8), shape)
        assert mapping.used_columns_per_crossbar_max >= 1
        assert min(4, mapping.used_columns_per_crossbar_max) >= 1

    def test_degenerate_mapping_is_unconstructible(self):
        from repro.analysis.invariants import InvariantViolation
        from repro.arch.mapping import LayerMapping

        layer = LayerSpec.conv(3, 16, 3, input_size=8)
        with pytest.raises(InvariantViolation):
            LayerMapping(
                layer=layer,
                shape=CrossbarShape(64, 64),
                row_groups=0,
                col_groups=1,
                kernel_split=False,
            )
        with pytest.raises(InvariantViolation):
            LayerMapping(
                layer=layer,
                shape=CrossbarShape(64, 64),
                row_groups=1,
                col_groups=0,
                kernel_split=False,
            )
