"""Experiment implementations — one function per paper figure/table.

Each function returns structured data (so tests can assert on shapes and
orderings) and has a ``print_...`` companion that renders the same
rows/series the paper reports.  The full experiment index lives in
DESIGN.md; measured-vs-paper results in EXPERIMENTS.md.

RL-based experiments accept ``rounds`` / ``seed``; the default round count
comes from the ``REPRO_RL_ROUNDS`` environment variable (falling back to
120 — enough for convergence on these search spaces; the paper used 300).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Sequence

from ..arch.config import (
    DEFAULT_CANDIDATES,
    RECTANGLE_CANDIDATES,
    SQUARE_CANDIDATES,
    CrossbarShape,
    HardwareConfig,
)
from ..arch.mapping import map_layer
from ..core.allocation import allocate_tile_based, layer_empty_fraction
from ..core.autohet import SearchResult, autohet_search
from ..core.search import (
    best_homogeneous,
    greedy_reward_strategy,
    manual_hetero_strategy,
    ratio_candidates,
    simulated_annealing,
    sized_candidates,
)
from ..models import LayerSpec, Network, alexnet, resnet152, vgg16
from ..models.layers import LayerType
from ..models.zoo import get_model
from ..sim.cache import CacheStats
from ..sim.metrics import SystemMetrics
from ..sim.simulator import Simulator
from .reporting import normalize_series, print_table


def default_rounds() -> int:
    """RL search rounds for the harness (env-overridable)."""
    return int(os.environ.get("REPRO_RL_ROUNDS", "120"))


def _simulator(config: HardwareConfig | None = None) -> Simulator:
    return Simulator(config) if config is not None else Simulator()


@dataclass(frozen=True)
class AcceleratorRow:
    """One accelerator's scores in a comparison table."""

    label: str
    metrics: SystemMetrics

    @property
    def rue(self) -> float:
        return self.metrics.rue

    @property
    def utilization_percent(self) -> float:
        return self.metrics.utilization_percent

    @property
    def energy_nj(self) -> float:
        return self.metrics.energy_nj


# ======================================================================
# Figure 3 — motivation: homogeneous vs manual-heterogeneous on VGG16
# ======================================================================
def fig3_motivation(config: HardwareConfig | None = None) -> list[AcceleratorRow]:
    """Five homogeneous squares + the Fig. 3 Manual-Hetero split (VGG16)."""
    sim = _simulator(config)
    net = vgg16()
    rows = [
        AcceleratorRow(str(s), sim.evaluate_homogeneous(net, s))
        for s in SQUARE_CANDIDATES
    ]
    manual = manual_hetero_strategy(net)
    rows.append(
        AcceleratorRow(
            "Manual-Hetero",
            sim.evaluate(net, manual, tile_shared=False, detailed=False),
        )
    )
    return rows


def print_fig3(rows: list[AcceleratorRow]) -> None:
    print_table(
        ["accelerator", "utilization_%", "energy_nJ", "RUE"],
        [
            (r.label, r.utilization_percent, r.energy_nj, r.rue)
            for r in rows
        ],
        title="Figure 3 — homogeneous vs manual-heterogeneous (VGG16/CIFAR-10)",
    )


# ======================================================================
# Figure 4 — empty-crossbar proportion vs crossbars per tile
# ======================================================================
def fig4_empty_crossbars(
    tile_sizes: Sequence[int] = (4, 8, 16, 32),
    shape: CrossbarShape = CrossbarShape(64, 64),
) -> dict[str, dict[int, float]]:
    """Empty-crossbar share of four early VGG16 layers (tile-based alloc).

    Returns ``{layer_label: {tile_size: empty_fraction}}``.
    """
    net = vgg16()
    layers = net.layers[:4]
    result: dict[str, dict[int, float]] = {}
    for i, layer in enumerate(layers):
        mapping = map_layer(layer, shape)
        result[f"Layer {i + 1}"] = {
            ts: layer_empty_fraction(mapping, ts) for ts in tile_sizes
        }
    return result


def print_fig4(data: dict[str, dict[int, float]]) -> None:
    tile_sizes = sorted(next(iter(data.values())))
    rows = [
        (label, *[f"{data[label][ts] * 100:.1f}%" for ts in tile_sizes])
        for label in data
    ]
    print_table(
        ["layer", *[f"{ts} XBs/tile" for ts in tile_sizes]],
        rows,
        title="Figure 4 — empty crossbar proportion (VGG16 layers, 64x64 XBs)",
    )


# ======================================================================
# Figure 5 — the utilization/energy trade-off example
# ======================================================================
@dataclass(frozen=True)
class Fig5Row:
    shape: str
    utilization: float       #: incl. tile-level wastage (27/32 vs 27/128)
    activated_adcs: int      #: per analog cycle (256 vs 128)


def fig5_tradeoff(tile_capacity: int = 4) -> list[Fig5Row]:
    """The §2.2.3 example: 128 kernels of 3x3x12 on 64x64 vs 128x128."""
    layer = LayerSpec.conv(12, 128, 3, input_size=8, name="fig5")
    rows = []
    for shape in (CrossbarShape(64, 64), CrossbarShape(128, 128)):
        mapping = map_layer(layer, shape)
        allocation = allocate_tile_based([mapping], tile_capacity)
        rows.append(
            Fig5Row(
                shape=str(shape),
                utilization=allocation.utilization,
                activated_adcs=mapping.used_columns_total,
            )
        )
    return rows


def print_fig5(rows: list[Fig5Row]) -> None:
    print_table(
        ["crossbar", "utilization", "activated ADCs"],
        [(r.shape, f"{r.utilization:.4f}", r.activated_adcs) for r in rows],
        title="Figure 5 — same layer on 64x64 vs 128x128 (tile of 4 XBs)",
    )


# ======================================================================
# Figure 9 — overall performance: 3 models x (5 homogeneous + AutoHet)
# ======================================================================
@dataclass(frozen=True)
class OverallResult:
    model: str
    rows: list[AcceleratorRow]
    search: SearchResult

    @property
    def autohet(self) -> AcceleratorRow:
        return self.rows[-1]

    @property
    def best_homogeneous(self) -> AcceleratorRow:
        return max(self.rows[:-1], key=lambda r: r.rue)

    @property
    def rue_speedup(self) -> float:
        """AutoHet's RUE over the best homogeneous accelerator's."""
        return self.autohet.rue / self.best_homogeneous.rue


def fig9_overall(
    networks: Sequence[Network] | None = None,
    *,
    rounds: int | None = None,
    seed: int = 0,
    config: HardwareConfig | None = None,
) -> list[OverallResult]:
    """RUE / utilization / energy for every accelerator and model."""
    sim = _simulator(config)
    rounds = rounds if rounds is not None else default_rounds()
    nets = list(networks) if networks is not None else [alexnet(), vgg16(), resnet152()]
    results = []
    for net in nets:
        rows = [
            AcceleratorRow(str(s), sim.evaluate_homogeneous(net, s))
            for s in SQUARE_CANDIDATES
        ]
        search = autohet_search(
            net, DEFAULT_CANDIDATES, rounds=rounds, simulator=sim, seed=seed
        )
        rows.append(AcceleratorRow("AutoHet", search.best_metrics))
        results.append(OverallResult(net.name, rows, search))
    return results


def print_fig9(results: list[OverallResult]) -> None:
    for res in results:
        energies = [r.energy_nj for r in res.rows]
        normalized = normalize_series(energies)
        print_table(
            ["accelerator", "RUE", "utilization_%", "energy_nJ", "energy_norm"],
            [
                (r.label, r.rue, r.utilization_percent, r.energy_nj, n)
                for r, n in zip(res.rows, normalized)
            ],
            title=f"Figure 9 — overall performance ({res.model})",
        )
        print(
            f"  AutoHet vs best homogeneous RUE: {res.rue_speedup:.2f}x "
            f"(best homo = {res.best_homogeneous.label})"
        )


# ======================================================================
# Figure 10 — ablation: Base -> +He -> +Hy -> All
# ======================================================================
@dataclass(frozen=True)
class AblationResult:
    model: str
    rows: list[AcceleratorRow]  #: Base, +He, +Hy, All (in order)

    def row(self, label: str) -> AcceleratorRow:
        for r in self.rows:
            if r.label == label:
                return r
        raise KeyError(label)


def fig10_ablation(
    networks: Sequence[Network] | None = None,
    *,
    rounds: int | None = None,
    seed: int = 0,
    config: HardwareConfig | None = None,
) -> list[AblationResult]:
    """Enable AutoHet's techniques one by one (§4.3).

    * **Base** — best homogeneous SXB accelerator (tile-based allocation).
    * **+He**  — RL search over heterogeneous SXBs only, no tile sharing.
    * **+Hy**  — RL search over the hybrid SXB+RXB set, no tile sharing.
    * **All**  — hybrid search with the tile-shared allocation scheme.
    """
    sim = _simulator(config)
    rounds = rounds if rounds is not None else default_rounds()
    nets = list(networks) if networks is not None else [alexnet(), vgg16(), resnet152()]
    results = []
    for net in nets:
        _, base = best_homogeneous(net, SQUARE_CANDIDATES, sim)
        he = autohet_search(
            net, SQUARE_CANDIDATES, rounds=rounds, simulator=sim,
            tile_shared=False, seed=seed,
        )
        hy = autohet_search(
            net, DEFAULT_CANDIDATES, rounds=rounds, simulator=sim,
            tile_shared=False, seed=seed,
        )
        # "All" re-scores the +Hy strategy with tile sharing enabled and
        # also lets the RL search exploit sharing during the search.
        all_ = autohet_search(
            net, DEFAULT_CANDIDATES, rounds=rounds, simulator=sim,
            tile_shared=True, seed=seed,
        )
        results.append(
            AblationResult(
                net.name,
                [
                    AcceleratorRow("Base", base),
                    AcceleratorRow("+He", he.best_metrics),
                    AcceleratorRow("+Hy", hy.best_metrics),
                    AcceleratorRow("All", all_.best_metrics),
                ],
            )
        )
    return results


def print_fig10(results: list[AblationResult]) -> None:
    for res in results:
        print_table(
            ["variant", "RUE", "utilization_%", "energy_nJ"],
            [
                (r.label, r.rue, r.utilization_percent, r.energy_nj)
                for r in res.rows
            ],
            title=f"Figure 10 — ablation ({res.model})",
        )


# ======================================================================
# Table 3 — per-layer crossbar assignment for VGG16
# ======================================================================
def table3_strategies(
    *,
    rounds: int | None = None,
    seed: int = 0,
    config: HardwareConfig | None = None,
) -> dict[str, tuple[str, ...]]:
    """Chosen crossbar size per VGG16 layer for Base / +He / +Hy."""
    sim = _simulator(config)
    rounds = rounds if rounds is not None else default_rounds()
    net = vgg16()
    base_shape, _ = best_homogeneous(net, SQUARE_CANDIDATES, sim)
    he = autohet_search(
        net, SQUARE_CANDIDATES, rounds=rounds, simulator=sim,
        tile_shared=False, seed=seed,
    )
    hy = autohet_search(
        net, DEFAULT_CANDIDATES, rounds=rounds, simulator=sim,
        tile_shared=False, seed=seed,
    )
    return {
        "Base": tuple(str(base_shape) for _ in net.layers),
        "+He": tuple(str(s) for s in he.best_strategy),
        "+Hy": tuple(str(s) for s in hy.best_strategy),
    }


def print_table3(data: dict[str, tuple[str, ...]]) -> None:
    n = len(next(iter(data.values())))
    rows = [
        (f"L{i + 1}", *[data[variant][i] for variant in data]) for i in range(n)
    ]
    print_table(
        ["layer", *data.keys()],
        rows,
        title="Table 3 — crossbar size per VGG16 layer",
    )


# ======================================================================
# Table 4 — occupied tiles: +Hy vs All
# ======================================================================
def table4_tiles(
    networks: Sequence[Network] | None = None,
    *,
    rounds: int | None = None,
    seed: int = 0,
    config: HardwareConfig | None = None,
) -> dict[str, dict[str, int]]:
    """Occupied-tile counts with and without the tile-shared scheme.

    The +Hy strategy is searched once (no sharing); "All" re-allocates
    *the same strategy* with Algorithm 1 — isolating the allocation
    scheme's effect exactly as Table 4 does.
    """
    sim = _simulator(config)
    rounds = rounds if rounds is not None else default_rounds()
    nets = list(networks) if networks is not None else [alexnet(), vgg16(), resnet152()]
    out: dict[str, dict[str, int]] = {}
    for net in nets:
        hy = autohet_search(
            net, DEFAULT_CANDIDATES, rounds=rounds, simulator=sim,
            tile_shared=False, seed=seed,
        )
        shared = sim.evaluate(
            net, hy.best_strategy, tile_shared=True, detailed=False
        )
        out[net.name] = {
            "+Hy": hy.best_metrics.occupied_tiles,
            "All": shared.occupied_tiles,
        }
    return out


def print_table4(data: dict[str, dict[str, int]]) -> None:
    rows = []
    for variant in ("+Hy", "All"):
        rows.append((variant, *[data[m][variant] for m in data]))
    print_table(
        ["variant", *data.keys()],
        rows,
        title="Table 4 — occupied tiles (+Hy vs All)",
    )


# ======================================================================
# Figure 11 — sensitivity analysis (VGG16)
# ======================================================================
@dataclass(frozen=True)
class SensitivityPoint:
    label: str
    best_homo_rue: float
    autohet_rue: float

    @property
    def speedup(self) -> float:
        return self.autohet_rue / self.best_homo_rue if self.best_homo_rue else 0.0


def fig11a_sxb_rxb_ratio(
    ratios: Sequence[tuple[int, int]] = ((2, 3), (3, 2), (4, 1)),
    *,
    rounds: int | None = None,
    seed: int = 0,
    config: HardwareConfig | None = None,
) -> list[SensitivityPoint]:
    """RUE vs the SXB:RXB composition of a five-candidate set."""
    sim = _simulator(config)
    rounds = rounds if rounds is not None else default_rounds()
    net = vgg16()
    _, homo = best_homogeneous(net, SQUARE_CANDIDATES, sim)
    points = []
    for num_s, num_r in ratios:
        cands = ratio_candidates(num_s, num_r)
        res = autohet_search(net, cands, rounds=rounds, simulator=sim, seed=seed)
        points.append(
            SensitivityPoint(f"{num_s}S{num_r}R", homo.rue, res.best_metrics.rue)
        )
    return points


def fig11b_candidate_count(
    counts: Sequence[int] = (2, 4, 8),
    *,
    rounds: int | None = None,
    seed: int = 0,
    config: HardwareConfig | None = None,
) -> list[SensitivityPoint]:
    """RUE vs the number of crossbar candidates."""
    sim = _simulator(config)
    rounds = rounds if rounds is not None else default_rounds()
    net = vgg16()
    _, homo = best_homogeneous(net, SQUARE_CANDIDATES, sim)
    points = []
    for count in counts:
        cands = sized_candidates(count)
        res = autohet_search(net, cands, rounds=rounds, simulator=sim, seed=seed)
        points.append(
            SensitivityPoint(str(count), homo.rue, res.best_metrics.rue)
        )
    return points


def fig11c_pes_per_tile(
    pe_counts: Sequence[int] = (8, 16, 32),
    *,
    rounds: int | None = None,
    seed: int = 0,
    config: HardwareConfig | None = None,
) -> list[SensitivityPoint]:
    """RUE vs PEs per tile (tile allocation granularity)."""
    base_cfg = config if config is not None else HardwareConfig()
    rounds = rounds if rounds is not None else default_rounds()
    net = vgg16()
    points = []
    for pes in pe_counts:
        cfg = base_cfg.with_(pes_per_tile=pes)
        sim = Simulator(cfg)
        _, homo = best_homogeneous(net, SQUARE_CANDIDATES, sim)
        res = autohet_search(
            net, DEFAULT_CANDIDATES, rounds=rounds, simulator=sim, seed=seed
        )
        points.append(
            SensitivityPoint(str(pes), homo.rue, res.best_metrics.rue)
        )
    return points


def print_fig11(
    points: list[SensitivityPoint], *, panel: str, x_label: str
) -> None:
    print_table(
        [x_label, "Best-Homo RUE", "AutoHet RUE", "speedup"],
        [(p.label, p.best_homo_rue, p.autohet_rue, f"{p.speedup:.2f}x") for p in points],
        title=f"Figure 11({panel}) — sensitivity: RUE vs {x_label} (VGG16)",
    )


# ======================================================================
# Table 5 — area and latency
# ======================================================================
def table5_area_latency(
    *,
    rounds: int | None = None,
    seed: int = 0,
    config: HardwareConfig | None = None,
) -> list[AcceleratorRow]:
    """Area (um^2) and latency (ns) for the five SXB homos + AutoHet."""
    sim = _simulator(config)
    rounds = rounds if rounds is not None else default_rounds()
    net = vgg16()
    rows = [
        AcceleratorRow(f"SXB{s.rows}", sim.evaluate_homogeneous(net, s))
        for s in SQUARE_CANDIDATES
    ]
    search = autohet_search(
        net, DEFAULT_CANDIDATES, rounds=rounds, simulator=sim, seed=seed
    )
    rows.append(AcceleratorRow("AutoHet", search.best_metrics))
    return rows


def print_table5(rows: list[AcceleratorRow]) -> None:
    print_table(
        ["accelerator", "area_um2", "latency_ns"],
        [(r.label, r.metrics.area_um2, r.metrics.latency_ns) for r in rows],
        title="Table 5 — area occupancy and inference latency (VGG16)",
    )


# ======================================================================
# §4.5 — RL search-time split
# ======================================================================
def search_time_profile(
    *,
    rounds: int | None = None,
    seed: int = 0,
    cached: bool = False,
) -> SearchResult:
    """Run the VGG16 search and report the decision/simulator time split.

    Defaults to the *uncached* reference simulator so the §4.5 claim —
    simulator feedback dominates the search — stays reproducible.  Pass
    ``cached=True`` for the production configuration (evaluation cache +
    memoised costs); the result then carries non-``None``
    :attr:`~repro.core.autohet.SearchResult.cache_stats`.
    """
    rounds = rounds if rounds is not None else default_rounds()
    sim = Simulator() if cached else Simulator(cache=None, memoize_costs=False)
    return autohet_search(
        vgg16(), DEFAULT_CANDIDATES, rounds=rounds, simulator=sim, seed=seed
    )


def print_search_time(result: SearchResult) -> None:
    print_table(
        ["phase", "seconds", "share"],
        [
            ("decision (RL agent)", result.decision_seconds,
             f"{result.decision_seconds / result.total_seconds:.1%}"),
            ("simulator feedback", result.simulator_seconds,
             f"{result.simulator_fraction:.1%}"),
            ("learning (updates)", result.learning_seconds,
             f"{result.learning_seconds / result.total_seconds:.1%}"),
        ],
        title=f"§4.5 — search time, {result.rounds} rounds (VGG16)",
    )
    if result.cache_stats is not None:
        print(f"  {result.cache_stats.summary()}")
    print(
        f"  seed episodes: {result.seed_episodes}, "
        f"infeasible episodes: {result.infeasible_episodes}"
    )


# ======================================================================
# Evaluation-cache speedup: cached vs reference simulator hot path
# ======================================================================
def bench_model() -> str:
    """Model for the cache benchmark (env-overridable for CI smoke runs)."""
    return os.environ.get("REPRO_BENCH_MODEL", "vgg16")


@dataclass(frozen=True)
class CacheComparison:
    """One search algorithm timed on the cold vs cached simulator."""

    label: str
    model: str
    uncached_seconds: float
    cached_seconds: float
    identical: bool           #: cached run reproduced the cold result bit-for-bit
    infeasible: int           #: infeasible evaluations seen by the cached run
    cache_stats: CacheStats

    @property
    def speedup(self) -> float:
        return (
            self.uncached_seconds / self.cached_seconds
            if self.cached_seconds
            else 0.0
        )


def search_cache_profile(
    *,
    model: str | None = None,
    annealing_rounds: int = 300,
    seed: int = 0,
) -> list[CacheComparison]:
    """Time annealing + coordinate ascent on cold vs cached simulators.

    The cached configuration must reproduce the cold (reference) results
    bit-for-bit — :attr:`CacheComparison.identical` records the check —
    while the evaluation cache, memoised layer costs, and the aggregate
    allocation summary remove the simulator bottleneck (§4.5).
    """
    name = model if model is not None else bench_model()
    net = get_model(name)
    comparisons: list[CacheComparison] = []

    def cold_sim() -> Simulator:
        return Simulator(cache=None, memoize_costs=False)

    # --- simulated annealing -----------------------------------------
    t0 = time.perf_counter()
    cold = simulated_annealing(
        net, DEFAULT_CANDIDATES, cold_sim(), rounds=annealing_rounds, seed=seed
    )
    t1 = time.perf_counter()
    warm_sim = Simulator()
    warm = simulated_annealing(
        net, DEFAULT_CANDIDATES, warm_sim, rounds=annealing_rounds, seed=seed
    )
    t2 = time.perf_counter()
    comparisons.append(
        CacheComparison(
            label="annealing",
            model=name,
            uncached_seconds=t1 - t0,
            cached_seconds=t2 - t1,
            identical=(cold.strategy == warm.strategy
                       and cold.metrics == warm.metrics),
            infeasible=warm.infeasible,
            cache_stats=warm_sim.cache_stats(),
        )
    )

    # --- coordinate ascent (greedy on the global reward) --------------
    t0 = time.perf_counter()
    cold_strategy = greedy_reward_strategy(net, DEFAULT_CANDIDATES, cold_sim())
    t1 = time.perf_counter()
    warm_sim = Simulator()
    stats: dict[str, int] = {}
    warm_strategy = greedy_reward_strategy(
        net, DEFAULT_CANDIDATES, warm_sim, stats=stats
    )
    t2 = time.perf_counter()
    same = cold_strategy == warm_strategy and (
        cold_sim().evaluate(net, cold_strategy)
        == Simulator(cache=None).evaluate(net, warm_strategy)
    )
    comparisons.append(
        CacheComparison(
            label="coordinate-ascent",
            model=name,
            uncached_seconds=t1 - t0,
            cached_seconds=t2 - t1,
            identical=same,
            infeasible=stats.get("infeasible", 0),
            cache_stats=warm_sim.cache_stats(),
        )
    )
    return comparisons


@dataclass(frozen=True)
class VectorizedProfile:
    """The NumPy kernel path timed against the scalar reference.

    ``cold_single_us`` is the search-loop steady state: an evaluation
    whose *strategy* has never been seen (no evaluation-cache entry) on a
    simulator whose per-(network, config) shape tables are warm — the
    state every search iteration after the first few runs in.
    """

    model: str
    strategies: int                #: batch size scored
    cold_single_us: float          #: vectorized cold-cache evaluate
    scalar_single_us: float        #: materialising reference evaluate
    serial_scalar_seconds: float   #: reference loop over the batch
    batched_seconds: float         #: evaluate_many batched fast path
    identical: bool                #: batched results == reference loop

    @property
    def single_speedup(self) -> float:
        return (
            self.scalar_single_us / self.cold_single_us
            if self.cold_single_us
            else 0.0
        )

    @property
    def batch_speedup(self) -> float:
        return (
            self.serial_scalar_seconds / self.batched_seconds
            if self.batched_seconds
            else 0.0
        )

    @property
    def batched_us_per_strategy(self) -> float:
        return self.batched_seconds / self.strategies * 1e6


def vectorized_kernel_profile(
    *,
    model: str | None = None,
    strategies: int = 256,
    seed: int = 0,
) -> VectorizedProfile:
    """Time the vectorized cost-model core against the scalar reference.

    Scores ``strategies`` random candidate strategies three ways — the
    materialising reference loop, one vectorized evaluation at a time
    (cold cache), and the batched ``evaluate_many`` kernel path — and
    checks the batched results reproduce the reference bit-for-bit
    (infeasible verdicts included; docs/performance.md "Vectorized
    kernels").
    """
    import numpy as np

    name = model if model is not None else bench_model()
    net = get_model(name)
    rng = np.random.default_rng(seed)
    batch = [
        tuple(
            DEFAULT_CANDIDATES[i]
            for i in rng.integers(0, len(DEFAULT_CANDIDATES), size=net.num_layers)
        )
        for _ in range(strategies)
    ]

    reference = Simulator(cache=None, memoize_costs=False, vectorize=False)
    t0 = time.perf_counter()
    expected = [
        reference.try_evaluate(net, s, detailed=False) for s in batch
    ]
    serial_seconds = time.perf_counter() - t0

    batched_sim = Simulator()
    t0 = time.perf_counter()
    results = batched_sim.evaluate_many(net, batch)
    batched_seconds = time.perf_counter() - t0

    # Cold-cache single evaluations: no evaluation cache, so every call
    # re-runs the kernels; the shape tables are warm after the batch ran
    # on the same network object.
    single_sim = Simulator(cache=None)
    for s in batch[: min(8, len(batch))]:
        single_sim.try_evaluate(net, s, detailed=False)
    reps = min(len(batch), 64)
    t0 = time.perf_counter()
    for s in batch[:reps]:
        single_sim.try_evaluate(net, s, detailed=False)
    cold_single_us = (time.perf_counter() - t0) / reps * 1e6

    scalar_reps = min(len(batch), 8)
    t0 = time.perf_counter()
    for s in batch[:scalar_reps]:
        reference.try_evaluate(net, s, detailed=False)
    scalar_single_us = (time.perf_counter() - t0) / scalar_reps * 1e6

    return VectorizedProfile(
        model=name,
        strategies=len(batch),
        cold_single_us=cold_single_us,
        scalar_single_us=scalar_single_us,
        serial_scalar_seconds=serial_seconds,
        batched_seconds=batched_seconds,
        identical=results == expected,
    )


def print_vectorized_profile(profile: VectorizedProfile) -> None:
    print_table(
        ["metric", "value"],
        [
            ("strategies scored", profile.strategies),
            ("reference loop", f"{profile.serial_scalar_seconds:.3f} s"),
            ("batched kernels", f"{profile.batched_seconds:.3f} s"),
            ("batch speedup", f"{profile.batch_speedup:.1f}x"),
            ("cold single evaluate", f"{profile.cold_single_us:.1f} us"),
            ("scalar single evaluate", f"{profile.scalar_single_us:.1f} us"),
            ("single speedup", f"{profile.single_speedup:.1f}x"),
            ("bit-identical", profile.identical),
        ],
        title=f"Vectorized cost-model kernels ({profile.model})",
    )


def print_search_cache(comparisons: list[CacheComparison]) -> None:
    print_table(
        ["search", "cold_s", "cached_s", "speedup", "identical",
         "hit_rate", "infeasible"],
        [
            (
                c.label,
                f"{c.uncached_seconds:.3f}",
                f"{c.cached_seconds:.3f}",
                f"{c.speedup:.1f}x",
                c.identical,
                f"{c.cache_stats.hit_rate:.1%}",
                c.infeasible,
            )
            for c in comparisons
        ],
        title=f"Evaluation cache — search speedup ({comparisons[0].model})",
    )
