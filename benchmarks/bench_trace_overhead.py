"""Trace-overhead smoke: the disabled tracer must be (almost) free.

Tracing is opt-in; the cost when it is *off* is what every search pays,
so it is budgeted: the instrumented cached-hit path of
``Simulator.evaluate`` — the ~microsecond operation RL search repeats
hundreds of thousands of times (§4.5) — must stay within 5% of an
uninstrumented baseline that performs the same key-build/lookup work
with no tracer guards at all.

Timing pairs the two paths round by round: each round times one batch
of the baseline and one of the instrumented path back to back and
records the per-round ratio.  Back-to-back pairing makes each ratio
immune to slow drift (frequency scaling, thermal throttling), and the
*median* over many rounds discards the minority of rounds a scheduler
preemption lands in.  CI runs this file as a plain pytest module; no
benchmark plugin is required.
"""

from __future__ import annotations

import time

from repro.arch.config import DEFAULT_CANDIDATES
from repro.models import lenet
from repro.sim.cache import EvaluationCache, _Infeasible
from repro.sim.simulator import Simulator

#: allowed slowdown of the instrumented (but disabled) hot path
OVERHEAD_BUDGET = 1.05

BATCH = 2_000
REPEATS = 50


def untraced_hit_baseline(sim: Simulator, network, strategy) -> object:
    """The pre-observability cached-hit path, guard-free.

    Mirrors ``Simulator.evaluate`` exactly as it was before the tracer
    hooks: tuple the strategy, build the key, probe the cache, check
    the infeasible sentinel and the audit clock, return the hit.
    """
    strategy = tuple(strategy)
    key = EvaluationCache.make_key(
        sim.config,
        network,
        strategy,
        tile_shared=True,
        detailed=False,
        enforce_capacity=sim.enforce_capacity,
    )
    hit = sim.cache.get(key)
    if isinstance(hit, _Infeasible):
        raise AssertionError("benchmark strategy must be feasible")
    if hit is not None:
        if sim.cache.audit_due():
            raise AssertionError("audits must be disabled for the benchmark")
        return hit
    raise AssertionError("benchmark expects a warm cache")


def _timed_batch(fn) -> float:
    t0 = time.perf_counter()
    for _ in range(BATCH):
        fn()
    return (time.perf_counter() - t0) / BATCH


def measure() -> tuple[float, float]:
    """(baseline_s, instrumented_s) per cached-hit evaluate."""
    network = lenet()
    strategy = tuple(
        DEFAULT_CANDIDATES[i % len(DEFAULT_CANDIDATES)]
        for i in range(network.num_layers)
    )
    sim = Simulator()
    sim.evaluate(network, strategy, tile_shared=True, detailed=False)  # warm

    def baseline_fn():
        untraced_hit_baseline(sim, network, strategy)

    def instrumented_fn():
        sim.evaluate(network, strategy, tile_shared=True, detailed=False)

    _timed_batch(baseline_fn)  # warm both paths before measuring
    _timed_batch(instrumented_fn)
    pairs = []
    for _ in range(REPEATS):
        pairs.append((_timed_batch(baseline_fn), _timed_batch(instrumented_fn)))
    # Median of the per-round (baseline, instrumented) pairs by ratio.
    pairs.sort(key=lambda p: p[1] / p[0])
    return pairs[len(pairs) // 2]


def test_null_tracer_overhead_within_budget():
    baseline, current = measure()
    ratio = current / baseline
    print(
        f"\ncached-hit evaluate: baseline {baseline * 1e6:.3f} us, "
        f"instrumented {current * 1e6:.3f} us, ratio {ratio:.3f} "
        f"(budget {OVERHEAD_BUDGET:.2f})"
    )
    assert ratio <= OVERHEAD_BUDGET, (
        f"disabled-tracer overhead {ratio:.3f}x exceeds the "
        f"{OVERHEAD_BUDGET:.2f}x budget "
        f"(baseline {baseline * 1e6:.3f} us, instrumented {current * 1e6:.3f} us)"
    )


if __name__ == "__main__":
    baseline, current = measure()
    print(f"baseline      {baseline * 1e6:.3f} us/hit")
    print(f"instrumented  {current * 1e6:.3f} us/hit")
    print(f"ratio         {current / baseline:.3f}")
