"""The behavioral accelerator simulator — the "hardware feedback" source.

:class:`Simulator.evaluate` takes a network and a *strategy* (one crossbar
shape per layer — the RL agent's action sequence, Fig. 6 step 4) and
returns :class:`~repro.sim.metrics.SystemMetrics`: utilization, energy,
latency, area, tile occupancy (steps 5-6).  This plays the role MNSIM 2.0
plays in the paper (§4.1); see DESIGN.md for the substitution rationale.

Evaluation is pure and deterministic: map every layer (Eq. 4 math),
allocate tiles (tile-based, optionally tile-shared per §3.4), then roll up
the analytic energy / latency / area models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..arch.config import DEFAULT_CONFIG, CrossbarShape, HardwareConfig
from ..arch.mapping import LayerMapping, map_layer
from ..core.allocation import (
    Allocation,
    allocate_tile_based,
    apply_tile_sharing,
)
from ..models.graph import Network
from .area import allocation_area_um2
from .energy import (
    layer_adc_conversions,
    layer_dac_conversions,
    layer_dynamic_energy,
    leakage_energy,
    pooling_energy,
)
from .latency import layer_latency_ns, pooling_latency_ns
from .metrics import EnergyBreakdown, LayerCost, SystemMetrics

#: A crossbar-configuration strategy: one shape per weight layer.
Strategy = tuple[CrossbarShape, ...]


class CapacityError(RuntimeError):
    """Raised when a strategy needs more tiles than one bank provides."""


@dataclass(frozen=True)
class Simulator:
    """Deterministic behavioral model of the heterogeneous accelerator."""

    config: HardwareConfig = DEFAULT_CONFIG
    #: raise :class:`CapacityError` when the allocation exceeds one bank
    enforce_capacity: bool = True

    # ------------------------------------------------------------------
    def map_network(
        self, network: Network, strategy: Sequence[CrossbarShape]
    ) -> tuple[LayerMapping, ...]:
        """Map every layer onto its assigned crossbar type."""
        layers = network.layers
        if len(strategy) != len(layers):
            raise ValueError(
                f"strategy length {len(strategy)} != layer count {len(layers)}"
            )
        return tuple(map_layer(layer, shape) for layer, shape in zip(layers, strategy))

    def allocate(
        self, mappings: Sequence[LayerMapping], *, tile_shared: bool
    ) -> Allocation:
        """Tile allocation, optionally followed by Algorithm 1 remapping."""
        allocation = allocate_tile_based(
            mappings, self.config.logical_xbars_per_tile
        )
        if tile_shared:
            allocation = apply_tile_sharing(allocation)
        if self.enforce_capacity and allocation.occupied_tiles > self.config.tiles_per_bank:
            raise CapacityError(
                f"strategy needs {allocation.occupied_tiles} tiles; one bank "
                f"holds {self.config.tiles_per_bank}"
            )
        return allocation

    # ------------------------------------------------------------------
    def evaluate(
        self,
        network: Network,
        strategy: Sequence[CrossbarShape],
        *,
        tile_shared: bool = True,
        detailed: bool = True,
    ) -> SystemMetrics:
        """Full evaluation of one (network, strategy) pair."""
        cfg = self.config
        mappings = self.map_network(network, strategy)
        allocation = self.allocate(mappings, tile_shared=tile_shared)

        layer_costs: list[LayerCost] = []
        dynamic = EnergyBreakdown()
        latency = 0.0
        for mapping in mappings:
            e = layer_dynamic_energy(mapping, cfg)
            t = layer_latency_ns(mapping, cfg)
            dynamic = dynamic + e
            latency += t
            if detailed:
                layer_costs.append(
                    LayerCost(
                        layer_index=mapping.layer.index,
                        shape_str=str(mapping.shape),
                        mvm_ops=mapping.layer.mvm_ops,
                        num_crossbars=mapping.num_crossbars,
                        adc_conversions=layer_adc_conversions(mapping, cfg),
                        dac_conversions=layer_dac_conversions(mapping, cfg),
                        energy=e,
                        latency_ns=t,
                        intra_utilization=mapping.utilization,
                    )
                )

        pool_e = pooling_energy(network, cfg)
        latency += pooling_latency_ns(network, cfg)
        occupied_slots = sum(
            t.capacity for t in allocation.tiles if t.occupied > 0
        )
        leak = leakage_energy(
            allocation.occupied_tiles,
            occupied_slots,
            allocation.allocated_cells,
            latency,
            cfg,
        )
        breakdown = dynamic + EnergyBreakdown(pooling=pool_e, leakage=leak)

        return SystemMetrics(
            network_name=network.name,
            strategy=tuple(str(s) for s in strategy),
            utilization=allocation.utilization,
            energy_nj=breakdown.total,
            latency_ns=latency,
            area_um2=allocation_area_um2(allocation, cfg),
            occupied_tiles=allocation.occupied_tiles,
            occupied_crossbars=sum(m.num_crossbars for m in mappings),
            empty_crossbars=allocation.empty_crossbars,
            tile_shared=tile_shared,
            energy_breakdown=breakdown,
            layer_costs=tuple(layer_costs),
        )

    # ------------------------------------------------------------------
    def evaluate_homogeneous(
        self, network: Network, shape: CrossbarShape, *, tile_shared: bool = False
    ) -> SystemMetrics:
        """Evaluate a homogeneous accelerator (the §4.1 baselines).

        Baselines use the conventional tile-based allocation, hence
        ``tile_shared=False`` by default.
        """
        strategy = tuple(shape for _ in network.layers)
        return self.evaluate(network, strategy, tile_shared=tile_shared)
