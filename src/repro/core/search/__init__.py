"""Strategy producers: candidate sets, baselines, and search algorithms."""

from .annealing import AnnealingSchedule, simulated_annealing
from .candidates import (
    all_shapes,
    hybrid_candidates,
    ratio_candidates,
    rectangle_candidates,
    sized_candidates,
    square_candidates,
)
from .strategies import (
    SearchOutcome,
    best_homogeneous,
    exhaustive_search,
    greedy_reward_strategy,
    greedy_utilization_strategy,
    homogeneous_strategy,
    manual_hetero_strategy,
    random_search,
)

__all__ = [
    "AnnealingSchedule",
    "SearchOutcome",
    "simulated_annealing",
    "all_shapes",
    "hybrid_candidates",
    "ratio_candidates",
    "rectangle_candidates",
    "sized_candidates",
    "square_candidates",
    "best_homogeneous",
    "exhaustive_search",
    "greedy_reward_strategy",
    "greedy_utilization_strategy",
    "homogeneous_strategy",
    "manual_hetero_strategy",
    "random_search",
]
