"""Tests for the cache-key soundness / purity analysis (CAC / PUR)."""

from pathlib import Path

import pytest

from repro.analysis.callgraph import ModuleIndex
from repro.analysis.dataflow import (
    CoverageSpec,
    MemoContract,
    analyze_cache_safety,
    analyze_memoized,
    simulator_contract,
)

FIXTURE_TREE = Path(__file__).parent / "fixtures" / "unsound_tree"


def rule_ids(diags):
    return sorted({d.rule_id for d in diags})


def run(source, coverage, roots=("fix.mod:entry",), **contract_kw):
    index = ModuleIndex.from_sources({"fix.mod": source})
    contract = MemoContract(roots=roots, coverage=coverage, **contract_kw)
    return analyze_memoized(index, contract)


CFG_SOURCE = (
    "from dataclasses import dataclass\n"
    "@dataclass(frozen=True)\n"
    "class Cfg:\n"
    "    a: int\n"
    "    b: int\n"
    "    secret: int\n"
)


class TestCAC001:
    def test_direct_unfingerprinted_read(self):
        src = CFG_SOURCE + "def entry(cfg: Cfg):\n    return cfg.secret\n"
        diags = run(src, {"Cfg": CoverageSpec(frozenset({"a", "b"}))})
        assert "CAC001" in rule_ids(diags)
        (d,) = [d for d in diags if d.rule_id == "CAC001"]
        assert "Cfg.secret" in d.message

    def test_read_through_helper_call(self):
        src = CFG_SOURCE + (
            "def helper(c):\n"
            "    return c.secret\n"
            "def entry(cfg: Cfg):\n"
            "    return helper(cfg)\n"
        )
        diags = run(src, {"Cfg": CoverageSpec(frozenset({"a", "b"}))})
        assert "CAC001" in rule_ids(diags)

    def test_read_through_property(self):
        src = CFG_SOURCE.replace(
            "    secret: int\n",
            "    secret: int\n"
            "    @property\n"
            "    def derived(self):\n"
            "        return self.secret * 2\n",
        ) + "def entry(cfg: Cfg):\n    return cfg.derived\n"
        diags = run(src, {"Cfg": CoverageSpec(frozenset({"a", "b"}))})
        assert "CAC001" in rule_ids(diags)

    def test_read_through_loop_and_container(self):
        src = CFG_SOURCE + (
            "def entry(cfgs: list[Cfg]):\n"
            "    total = 0\n"
            "    for c in cfgs:\n"
            "        total += c.secret\n"
            "    return total\n"
        )
        diags = run(src, {"Cfg": CoverageSpec(frozenset({"a", "b"}))})
        assert "CAC001" in rule_ids(diags)

    def test_covered_reads_are_clean(self):
        src = CFG_SOURCE + "def entry(cfg: Cfg):\n    return cfg.a + cfg.b\n"
        diags = run(src, {"Cfg": CoverageSpec(frozenset({"a", "b"}))})
        assert [d for d in diags if d.rule_id == "CAC001"] == []

    def test_exempt_field_is_not_flagged(self):
        src = CFG_SOURCE + "def entry(cfg: Cfg):\n    return cfg.a + cfg.secret\n"
        spec = CoverageSpec(frozenset({"a"}), exempt=frozenset({"secret", "b"}))
        diags = run(src, {"Cfg": spec})
        assert rule_ids(diags) == []


class TestCAC002:
    def test_dead_key_component_warns(self):
        src = CFG_SOURCE + "def entry(cfg: Cfg):\n    return cfg.a\n"
        diags = run(src, {"Cfg": CoverageSpec(frozenset({"a", "b"}))})
        dead = [d for d in diags if d.rule_id == "CAC002"]
        assert len(dead) == 1
        assert "Cfg.b" in dead[0].location
        assert dead[0].severity.name == "WARNING"

    def test_unreached_class_reports_nothing(self):
        src = CFG_SOURCE + "def entry(x: int):\n    return x\n"
        diags = run(src, {"Cfg": CoverageSpec(frozenset({"a", "b"}))})
        assert diags == []


class TestCAC003:
    def test_random_sink(self):
        src = (
            "import random\n"
            "def entry(x):\n"
            "    return x + random.random()\n"
        )
        diags = run(src, {})
        assert rule_ids(diags) == ["CAC003"]

    def test_time_sink_through_callee(self):
        src = (
            "import time\n"
            "def stamp():\n"
            "    return time.monotonic()\n"
            "def entry(x):\n"
            "    return x + stamp()\n"
        )
        diags = run(src, {})
        assert rule_ids(diags) == ["CAC003"]

    def test_open_builtin_sink(self):
        src = (
            "def entry(path):\n"
            "    with open(path) as fh:\n"
            "        return fh.read()\n"
        )
        diags = run(src, {})
        assert "CAC003" in rule_ids(diags)

    def test_pure_math_is_clean(self):
        src = (
            "import math\n"
            "def entry(x):\n"
            "    return math.sqrt(x) + math.floor(x)\n"
        )
        assert run(src, {}) == []


class TestPUR:
    def test_attribute_store_on_tracked_input(self):
        src = CFG_SOURCE + (
            "def entry(cfg: Cfg):\n"
            "    cfg.a = 1\n"
            "    return cfg.a\n"
        )
        diags = run(src, {"Cfg": CoverageSpec(frozenset({"a", "b", "secret"}))})
        assert "PUR001" in rule_ids(diags)

    def test_mutator_method_on_tracked_input(self):
        src = (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class Box:\n"
            "    items: list\n"
            "def entry(b: Box):\n"
            "    b.items.clear()\n"
            "    b.update()\n"
            "    return b.items\n"
        )
        diags = run(src, {"Box": CoverageSpec(frozenset({"items"}))})
        assert "PUR001" in rule_ids(diags)

    def test_global_statement(self):
        src = (
            "COUNTER = 0\n"
            "def entry(x):\n"
            "    global COUNTER\n"
            "    COUNTER += 1\n"
            "    return x\n"
        )
        diags = run(src, {})
        assert rule_ids(diags) == ["PUR002"]

    def test_local_mutation_is_clean(self):
        src = (
            "def entry(x):\n"
            "    acc = []\n"
            "    acc.append(x)\n"
            "    return acc\n"
        )
        assert run(src, {}) == []


class TestEngineCoverage:
    """The alias-tracking constructs the real tree exercises."""

    def test_zip_and_tuple_unpacking(self):
        src = CFG_SOURCE + (
            "def entry(cfgs: list[Cfg], weights: list[int]):\n"
            "    total = 0\n"
            "    for c, w in zip(cfgs, weights):\n"
            "        total += c.secret * w\n"
            "    return total\n"
        )
        diags = run(src, {"Cfg": CoverageSpec(frozenset({"a", "b"}))})
        assert "CAC001" in rule_ids(diags)

    def test_comprehension_binding(self):
        src = CFG_SOURCE + (
            "def entry(cfgs: list[Cfg]):\n"
            "    return sum(c.secret for c in cfgs)\n"
        )
        diags = run(src, {"Cfg": CoverageSpec(frozenset({"a", "b"}))})
        assert "CAC001" in rule_ids(diags)

    def test_branch_merge_keeps_both_aliases(self):
        src = CFG_SOURCE + (
            "def left(c):\n"
            "    return c.a\n"
            "def right(c):\n"
            "    return c.secret\n"
            "def entry(cfg: Cfg, flag: bool):\n"
            "    if flag:\n"
            "        fn = left\n"
            "    else:\n"
            "        fn = right\n"
            "    return fn(cfg)\n"
        )
        diags = run(src, {"Cfg": CoverageSpec(frozenset({"a", "b"}))})
        assert "CAC001" in rule_ids(diags)

    def test_recursion_terminates(self):
        src = CFG_SOURCE + (
            "def walk(c, n):\n"
            "    if n:\n"
            "        return walk(c, n - 1)\n"
            "    return c.secret\n"
            "def entry(cfg: Cfg):\n"
            "    return walk(cfg, 3)\n"
        )
        diags = run(src, {"Cfg": CoverageSpec(frozenset({"a", "b"}))})
        assert "CAC001" in rule_ids(diags)

    def test_return_type_inferred_without_annotation(self):
        src = CFG_SOURCE + (
            "def pick(cfgs):\n"
            "    for c in cfgs:\n"
            "        return c\n"
            "    return None\n"
            "def entry(cfgs: list[Cfg]):\n"
            "    chosen = pick(cfgs)\n"
            "    return chosen.secret\n"
        )
        diags = run(src, {"Cfg": CoverageSpec(frozenset({"a", "b"}))})
        assert "CAC001" in rule_ids(diags)

    def test_boundary_module_is_not_traversed(self):
        index = ModuleIndex.from_sources(
            {
                "fix.memo": (
                    "import random\n"
                    "def memo_key(x):\n"
                    "    return random.random()\n"
                ),
                "fix.mod": (
                    "from .memo import memo_key\n"
                    "def entry(x):\n"
                    "    return memo_key(x)\n"
                ),
            }
        )
        contract = MemoContract(
            roots=("fix.mod:entry",),
            coverage={},
            boundary_modules=("fix.memo",),
        )
        assert analyze_memoized(index, contract) == []

    def test_unresolvable_root_raises(self):
        index = ModuleIndex.from_sources({"fix.mod": "x = 1\n"})
        contract = MemoContract(roots=("fix.mod:missing",), coverage={})
        with pytest.raises(ValueError, match="missing"):
            analyze_memoized(index, contract)


class TestFixtureTree:
    def test_unsound_tree_reports_cac001_cac003_pur001(self):
        diags = analyze_cache_safety(FIXTURE_TREE)
        ids = rule_ids(diags)
        assert "CAC001" in ids
        assert "CAC003" in ids
        assert "PUR001" in ids
        cac1 = [d for d in diags if d.rule_id == "CAC001"]
        assert any("undocumented_knob" in d.message for d in cac1)


class TestRealTree:
    def test_simulator_contract_roots_resolve(self):
        contract = simulator_contract()
        assert "repro.sim.simulator:Simulator.evaluate" in contract.roots
        assert "HardwareConfig" in contract.coverage

    def test_repro_tree_is_cache_safe(self):
        # The theorem this subsystem exists to prove: the shipped
        # simulator reads nothing its cache key does not cover, reaches
        # no nondeterministic sink, and mutates no input.
        assert analyze_cache_safety() == []

    def test_analysis_reads_every_config_field(self):
        # Cross-check the CAC002 direction explicitly: every declared
        # HardwareConfig key component is genuinely read (no dead keys).
        from repro.analysis.dataflow import _Analyzer
        from repro.sim.cache import FINGERPRINTED_FIELDS
        import repro

        index = ModuleIndex.from_package(
            Path(repro.__file__).resolve().parent, "repro"
        )
        contract = simulator_contract()
        analyzer = _Analyzer(index, contract)
        for root in contract.roots:
            analyzer.analyze_root(index.resolve_qualname(root))
        read = {a for (c, a) in analyzer.reads if c == "HardwareConfig"}
        assert read == set(FINGERPRINTED_FIELDS["HardwareConfig"])
