"""Mapping math tests — Eq. 4 and the paper's pinned examples, plus
property-based verification against brute-force occupancy grids."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.config import CrossbarShape, DEFAULT_CANDIDATES, SQUARE_CANDIDATES
from repro.arch.mapping import eq4_utilization, map_layer, occupancy_grid
from repro.models.layers import LayerSpec


class TestPaperPinnedExamples:
    def test_fig2a_layer1_utilization(self):
        """Four 3x3x3 kernels on 32x32 -> 10.5% (paper Fig. 2a)."""
        assert eq4_utilization(3, 4, 3, 32, 32) == pytest.approx(0.10546875)

    def test_fig2b_layer2_utilization(self):
        """Twenty 1x1x32 kernels on 32x32 -> 62.5% (paper Fig. 2b)."""
        assert eq4_utilization(32, 20, 1, 32, 32) == pytest.approx(0.625)

    def test_fig5_intra_utilization_64(self):
        """128 kernels of 3x3x12 on 64x64 -> 27/32 (paper Fig. 5)."""
        layer = LayerSpec.conv(12, 128, 3)
        assert map_layer(layer, CrossbarShape(64, 64)).utilization == pytest.approx(27 / 32)

    def test_fig5_adc_counts(self):
        """Activated ADCs: 256 on 64x64 vs 128 on 128x128 (paper Fig. 5)."""
        layer = LayerSpec.conv(12, 128, 3)
        assert map_layer(layer, CrossbarShape(64, 64)).used_columns_total == 256
        assert map_layer(layer, CrossbarShape(128, 128)).used_columns_total == 128

    def test_section33_vgg16_l4_example(self):
        """k=3, Cin=Cout=128: 83.7% on 32x32 but 100% on 36x32 (§3.3)."""
        assert eq4_utilization(128, 128, 3, 32, 32) == pytest.approx(0.837, abs=1e-3)
        assert eq4_utilization(128, 128, 3, 36, 32) == pytest.approx(1.0)

    def test_rectangles_fit_3x3_rows_perfectly(self):
        """All RXB heights are multiples of 9: zero intra-row waste for
        3x3 kernels when channels divide evenly."""
        layer = LayerSpec.conv(64, 64, 3)
        m = map_layer(layer, CrossbarShape(72, 64))
        assert m.utilization == pytest.approx(1.0)


class TestMapLayerStructure:
    def test_row_and_col_groups(self):
        layer = LayerSpec.conv(12, 128, 3)
        m = map_layer(layer, CrossbarShape(64, 64))
        assert (m.row_groups, m.col_groups) == (2, 2)
        assert m.num_crossbars == 4
        assert not m.kernel_split

    def test_fc_uses_k_equals_one(self):
        layer = LayerSpec.fc(512, 4096)
        m = map_layer(layer, CrossbarShape(512, 512))
        assert (m.row_groups, m.col_groups) == (1, 8)
        assert m.utilization == pytest.approx(1.0)

    def test_kernel_split_engages_when_kernel_taller_than_crossbar(self):
        layer = LayerSpec.conv(3, 64, 7)  # 49 rows per slice > 32
        m = map_layer(layer, CrossbarShape(32, 32))
        assert m.kernel_split
        assert m.row_groups == math.ceil(3 * 49 / 32)

    def test_kernel_split_matches_eq4_generalisation(self):
        layer = LayerSpec.conv(3, 64, 7)
        m = map_layer(layer, CrossbarShape(32, 32))
        expected = (3 * 49 * 64) / (32 * m.row_groups * 32 * m.col_groups)
        assert m.utilization == pytest.approx(expected)

    def test_eq4_raises_on_undefined_case(self):
        with pytest.raises(ZeroDivisionError):
            eq4_utilization(3, 64, 7, 32, 32)

    def test_used_rows_total_counts_column_replicas(self):
        layer = LayerSpec.conv(12, 128, 3)
        m = map_layer(layer, CrossbarShape(64, 64))
        assert m.used_rows_total == 2 * 12 * 9  # col_groups * Cin * k^2

    def test_allocated_counts(self):
        layer = LayerSpec.conv(12, 128, 3)
        m = map_layer(layer, CrossbarShape(64, 64))
        assert m.allocated_columns_total == 4 * 64
        assert m.allocated_rows_total == 4 * 64

    def test_partial_sum_adds(self):
        layer = LayerSpec.conv(12, 128, 3)
        m = map_layer(layer, CrossbarShape(64, 64))
        assert m.partial_sum_adds == (2 - 1) * 128

    def test_adder_tree_depth(self):
        layer = LayerSpec.conv(512, 512, 3)
        m = map_layer(layer, CrossbarShape(512, 512))
        assert m.row_groups == 10
        assert m.adder_tree_depth == 4
        single = map_layer(LayerSpec.fc(100, 100), CrossbarShape(512, 512))
        assert single.adder_tree_depth == 0

    def test_describe_mentions_shape(self):
        m = map_layer(LayerSpec.conv(3, 4, 3), CrossbarShape(32, 32))
        assert "32x32" in m.describe()


layer_strategy = st.builds(
    lambda cin, cout, k: LayerSpec.conv(cin, cout, k),
    st.integers(1, 80),
    st.integers(1, 300),
    st.sampled_from([1, 3, 5, 7]),
)
shape_strategy = st.sampled_from(DEFAULT_CANDIDATES + SQUARE_CANDIDATES)


class TestPropertiesAgainstGroundTruth:
    @settings(max_examples=60, deadline=None)
    @given(layer_strategy, shape_strategy)
    def test_occupancy_grid_matches_utilization(self, layer, shape):
        """Eq. 4 (and its fallback) equals brute-force cell counting."""
        m = map_layer(layer, shape)
        grids = occupancy_grid(layer, shape)
        used = sum(int(g.sum()) for row in grids for g in row)
        assert used == m.weight_cells
        total = m.num_crossbars * shape.cells
        assert m.utilization == pytest.approx(used / total)

    @settings(max_examples=60, deadline=None)
    @given(layer_strategy, shape_strategy)
    def test_occupancy_grid_column_usage(self, layer, shape):
        """Per-grid used column counts sum to used_columns_total."""
        m = map_layer(layer, shape)
        grids = occupancy_grid(layer, shape)
        used_cols = sum(
            int(g.any(axis=0).sum()) for row in grids for g in row
        )
        assert used_cols == m.used_columns_total

    @settings(max_examples=60, deadline=None)
    @given(layer_strategy, shape_strategy)
    def test_utilization_bounds(self, layer, shape):
        m = map_layer(layer, shape)
        assert 0.0 < m.utilization <= 1.0

    @settings(max_examples=60, deadline=None)
    @given(layer_strategy, shape_strategy)
    def test_capacity_is_sufficient(self, layer, shape):
        """Allocated cells always cover the layer's weights."""
        m = map_layer(layer, shape)
        assert m.num_crossbars * shape.cells >= layer.weight_count

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 64), st.integers(1, 128), st.sampled_from([1, 3, 5]))
    def test_eq4_equals_map_layer_when_defined(self, cin, cout, k):
        for shape in SQUARE_CANDIDATES:
            if k * k <= shape.rows:
                assert map_layer(
                    LayerSpec.conv(cin, cout, k), shape
                ).utilization == pytest.approx(
                    eq4_utilization(cin, cout, k, shape.rows, shape.cols)
                )

    @settings(max_examples=40, deadline=None)
    @given(layer_strategy)
    def test_mapping_is_cached_and_deterministic(self, layer):
        shape = CrossbarShape(64, 64)
        a = map_layer(layer, shape)
        b = map_layer(layer, shape)
        assert (a.row_groups, a.col_groups) == (b.row_groups, b.col_groups)
