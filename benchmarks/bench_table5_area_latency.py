"""Table 5 — area occupancy and inference latency (VGG16).

Regenerates the area/latency comparison of the five homogeneous square
accelerators and AutoHet.

Expected shapes (paper §4.5): AutoHet has the smallest area (paper: -92%
vs SXB512's 2.12e9 um^2, with SXB32 at 2.29e10); AutoHet's latency shows
no significant increase over the homogeneous accelerators (paper: within
3.2% of the fastest).
"""

from conftest import run_once

from repro.bench import print_table5, table5_area_latency


def test_table5_area_latency(benchmark):
    rows = run_once(benchmark, table5_area_latency)
    print_table5(rows)
    areas = {r.label: r.metrics.area_um2 for r in rows}
    latencies = {r.label: r.metrics.latency_ns for r in rows}
    # AutoHet occupies the least area; area shrinks with crossbar size.
    assert areas["AutoHet"] == min(areas.values())
    homo_areas = [areas[f"SXB{n}"] for n in (32, 64, 128, 256, 512)]
    assert all(a > b for a, b in zip(homo_areas, homo_areas[1:]))
    # AutoHet latency within 25% of the fastest accelerator.
    assert latencies["AutoHet"] < 1.25 * min(latencies.values())
