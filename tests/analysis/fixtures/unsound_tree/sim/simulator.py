"""Fixture simulator whose evaluation breaks every part of the contract.

``undocumented_knob`` is absent from
``repro.sim.cache.FINGERPRINTED_FIELDS["HardwareConfig"]`` — reading it
inside ``evaluate`` is the canonical CAC001 finding.  The ``random``
call is a CAC003 sink; the attribute store on the config is PUR001.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class HardwareConfig:
    weight_bits: int
    undocumented_knob: int


@dataclass
class Simulator:
    config: HardwareConfig

    def evaluate(self, scale: int) -> float:
        import random

        self.config.undocumented_knob = 0
        noisy = self.config.weight_bits + random.random()
        return noisy * self.config.undocumented_knob * scale

    def try_evaluate(self, scale: int) -> float:
        return self.evaluate(scale)
