"""The ``executor="process"`` path of ``Simulator.evaluate_many``.

Worker processes receive a cache-less, tracer-less copy of the
simulator (``replace(self, cache=None, tracer=NULL_TRACER)``); results
are merged back into the parent's cache afterwards.  These tests pin
the pickle boundary (the copy must actually cross it), the chunked
dispatch, error propagation, and the merge-back contract.
"""

import pytest

from repro.arch.config import DEFAULT_CANDIDATES, HardwareConfig
from repro.sim.cache import EvaluationCache
from repro.sim.simulator import CapacityError, Simulator


def strategies_for(network, count=8):
    shapes = DEFAULT_CANDIDATES
    return [
        tuple(shapes[(i + j) % len(shapes)] for j in range(network.num_layers))
        for i in range(count)
    ]


def test_process_pool_matches_serial(tiny_net):
    batch = strategies_for(tiny_net, count=6)
    serial = Simulator().evaluate_many(tiny_net, batch)
    parallel = Simulator().evaluate_many(
        tiny_net, batch, executor="process", max_workers=2
    )
    assert parallel == serial


def test_chunked_dispatch_preserves_order(tiny_net):
    # chunksize = max(1, len(batch) // (4 * max_workers)); 9 items over
    # 2 workers exercises chunks > 1 while leaving a ragged tail.
    batch = strategies_for(tiny_net, count=9)
    serial = Simulator().evaluate_many(tiny_net, batch)
    parallel = Simulator().evaluate_many(
        tiny_net, batch, executor="process", max_workers=2
    )
    assert parallel == serial
    assert len(parallel) == len(batch)


def test_capacity_error_crosses_the_process_boundary(tiny_net):
    hopeless = Simulator(HardwareConfig(tiles_per_bank=1))
    batch = strategies_for(tiny_net, count=4)
    with pytest.raises(CapacityError):
        hopeless.evaluate_many(
            tiny_net,
            batch,
            executor="process",
            max_workers=2,
            skip_infeasible=False,
        )


def test_skip_infeasible_yields_none_entries(tiny_net):
    hopeless = Simulator(HardwareConfig(tiles_per_bank=1))
    batch = strategies_for(tiny_net, count=4)
    results = hopeless.evaluate_many(
        tiny_net, batch, executor="process", max_workers=2
    )
    assert results == [None] * len(batch)
    # Infeasible outcomes merge back as sentinel entries, exactly like
    # the serial path caches them — a repeat batch is answered entirely
    # from the cache without re-dispatching to workers.
    stats = hopeless.cache_stats()
    assert stats.size == len(set(batch))
    again = hopeless.evaluate_many(tiny_net, batch)
    assert again == [None] * len(batch)
    after = hopeless.cache_stats()
    assert after.hits - stats.hits == len(batch)
    assert after.misses == stats.misses


def test_mixed_feasible_infeasible_merge_back(tiny_net):
    # A batch whose members straddle the capacity limit: feasible results
    # and infeasible sentinels must both merge into the parent cache, and
    # the merged entries must answer serial re-evaluation identically.
    # tiles_per_bank=4 sits between the all-big strategy (2 tiles) and
    # the all-small strategy (35 tiles) on the tiny net.
    config = HardwareConfig(tiles_per_bank=4)
    sim = Simulator(config)
    small = min(DEFAULT_CANDIDATES, key=lambda s: s.cells)
    big = max(DEFAULT_CANDIDATES, key=lambda s: s.cells)
    batch = [
        tuple(big for _ in range(tiny_net.num_layers)),
        tuple(small for _ in range(tiny_net.num_layers)),
    ]
    serial = Simulator(config).evaluate_many(tiny_net, batch)
    assert serial[0] is not None and serial[1] is None
    results = sim.evaluate_many(
        tiny_net, batch, executor="process", max_workers=2
    )
    assert results == serial
    assert sim.cache_stats().size == len(batch)
    before = sim.cache_stats()
    assert sim.evaluate_many(tiny_net, batch) == serial
    assert sim.cache_stats().hits - before.hits == len(batch)


def test_results_merge_back_into_local_cache(tiny_net):
    sim = Simulator()
    batch = strategies_for(tiny_net, count=4)
    results = sim.evaluate_many(
        tiny_net, batch, executor="process", max_workers=2
    )

    stats = sim.cache_stats()
    assert stats.size == len(set(batch))
    # The parent never looked anything up — entries arrived via merge-back.
    assert stats.lookups == 0

    # A subsequent serial evaluation is served from the merged cache
    # (``detailed=False`` to match ``evaluate_many``'s keying default).
    again = sim.evaluate(tiny_net, batch[0], detailed=False)
    assert again == results[0]
    assert sim.cache_stats().hits == 1


def test_cacheless_parent_skips_merge_back(tiny_net):
    sim = Simulator(cache=None)
    batch = strategies_for(tiny_net, count=3)
    serial = Simulator().evaluate_many(tiny_net, batch)
    assert (
        sim.evaluate_many(tiny_net, batch, executor="process", max_workers=2)
        == serial
    )
    assert sim.cache_stats() is None


def test_worker_copy_does_not_mutate_parent_cache_counters(tiny_net):
    # Pre-warm one entry, then fan out: workers run cache-less, so the
    # parent's hit/miss counters must not move during the parallel phase.
    sim = Simulator(cache=EvaluationCache(max_size=64))
    batch = strategies_for(tiny_net, count=4)
    sim.evaluate(tiny_net, batch[0], detailed=False)
    before = sim.cache_stats()

    sim.evaluate_many(tiny_net, batch, executor="process", max_workers=2)
    after = sim.cache_stats()
    assert (after.hits, after.misses) == (before.hits, before.misses)
    assert after.size == len(set(batch))
