"""Figure 5 — the utilization/energy trade-off example.

Regenerates the pinned §2.2.3 example: 128 kernels of 3x3x12 mapped onto
64x64 vs 128x128 crossbars (4-crossbar tiles).

Expected numbers (exact, from the paper): utilization 27/32 vs 27/128;
activated ADCs 256 vs 128.
"""

import pytest
from conftest import run_once

from repro.bench import fig5_tradeoff, print_fig5


def test_fig5_tradeoff(benchmark):
    rows = run_once(benchmark, fig5_tradeoff)
    print_fig5(rows)
    assert rows[0].utilization == pytest.approx(27 / 32)
    assert rows[1].utilization == pytest.approx(27 / 128)
    assert rows[0].activated_adcs == 256
    assert rows[1].activated_adcs == 128
