"""Weight-replication optimisation for pipeline balance (extension).

Early CONV layers dominate a layer pipeline: a 32x32-input layer runs
1024 MVMs per image while the FC head runs one.  ISAAC and PipeLayer
replicate early layers' weight arrays so several sliding windows proceed
in parallel.  Replication costs crossbars, so the question is where extra
copies buy the most throughput under a crossbar budget.

:func:`balance_replication` runs the classic greedy water-filling: while
budget remains, give one more replica to the current bottleneck stage.
Each step strictly reduces (or keeps) the bottleneck; the greedy choice
is optimal for this min-max objective because only the bottleneck stage
can improve the objective, and replicas are the only lever.
"""

from __future__ import annotations

import heapq
from typing import Sequence

from ..arch.config import CrossbarShape, DEFAULT_CONFIG, HardwareConfig
from ..arch.mapping import map_layer
from ..models.graph import Network
from .pipeline import PipelineReport, pipeline_report, replication_crossbar_cost


def balance_replication(
    network: Network,
    strategy: Sequence[CrossbarShape],
    *,
    crossbar_budget: int,
    config: HardwareConfig = DEFAULT_CONFIG,
) -> tuple[tuple[int, ...], PipelineReport]:
    """Greedy water-filling of replicas under a logical-crossbar budget.

    Parameters
    ----------
    crossbar_budget:
        Total logical crossbars available (base mapping + replicas).
        Must cover at least the unreplicated mapping.

    Returns
    -------
    (replication factors, resulting pipeline report)
    """
    layers = network.layers
    strategy = tuple(strategy)
    if len(strategy) != len(layers):
        raise ValueError("strategy length must equal layer count")
    base_cost = replication_crossbar_cost(
        network, strategy, [1] * len(layers)
    )
    if crossbar_budget < base_cost:
        raise ValueError(
            f"budget {crossbar_budget} below the unreplicated cost {base_cost}"
        )
    per_layer_cost = [
        map_layer(layer, shape).num_crossbars
        for layer, shape in zip(layers, strategy)
    ]
    replication = [1] * len(layers)
    remaining = crossbar_budget - base_cost

    # Max-heap keyed on current service time.
    report = pipeline_report(network, strategy, replication=replication, config=config)
    services = [s.service_ns for s in report.stages]
    heap = [(-t, i) for i, t in enumerate(services)]
    heapq.heapify(heap)

    while heap:
        neg_t, i = heapq.heappop(heap)
        cost = per_layer_cost[i]
        if cost > remaining:
            # This stage can't afford another replica; it stays the
            # bottleneck — adding replicas elsewhere cannot help min-max.
            break
        mvm = layers[i].mvm_ops
        if replication[i] >= mvm:
            # Already one replica per MVM; no further gain possible.
            continue
        replication[i] += 1
        remaining -= cost
        new_report = pipeline_report(
            network, strategy, replication=replication, config=config
        )
        new_t = new_report.stages[i].service_ns
        heapq.heappush(heap, (-new_t, i))

    final = pipeline_report(network, strategy, replication=replication, config=config)
    return tuple(replication), final


def replication_speedup(
    network: Network,
    strategy: Sequence[CrossbarShape],
    *,
    crossbar_budget: int,
    config: HardwareConfig = DEFAULT_CONFIG,
) -> float:
    """Throughput gain of the balanced plan over no replication."""
    base = pipeline_report(network, strategy, config=config)
    _, balanced = balance_replication(
        network, strategy, crossbar_budget=crossbar_budget, config=config
    )
    return balanced.throughput_img_per_s / base.throughput_img_per_s
