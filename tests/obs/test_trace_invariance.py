"""Trace-invariance battery: tracing changes no result bit.

The observability layer's core contract is that instrumentation is
*read-only*: running the simulator or any search with a live tracer
attached must produce results bit-identical to the untraced run — same
metrics, same cache keys, same seed-for-seed search trajectories.
These tests pin that contract for the evaluate hot path (VGG16 and
ResNet152), for the cache state, and for every search entry point
(greedy, random, annealing, AutoHet RL).
"""

import pytest

from repro.arch.config import DEFAULT_CANDIDATES
from repro.core.autohet import autohet_search
from repro.core.search.annealing import simulated_annealing
from repro.core.search.strategies import greedy_reward_strategy, random_search
from repro.obs import Tracer, use_tracer
from repro.obs.sinks import InMemorySink
from repro.sim.simulator import Simulator


def traced_sim():
    sink = InMemorySink()
    return Simulator(tracer=Tracer([sink])), sink


def mixed_strategy(network):
    """A heterogeneous strategy cycling all five candidates."""
    return tuple(
        DEFAULT_CANDIDATES[i % len(DEFAULT_CANDIDATES)]
        for i in range(network.num_layers)
    )


NETWORK_FIXTURES = ("vgg_net", "resnet_net")


class TestEvaluateInvariance:
    @pytest.mark.parametrize("fixture", NETWORK_FIXTURES)
    def test_metrics_bit_identical(self, fixture, request):
        network = request.getfixturevalue(fixture)
        strategy = mixed_strategy(network)
        plain = Simulator()
        traced, sink = traced_sim()
        m_plain = plain.evaluate(network, strategy, detailed=True)
        m_traced = traced.evaluate(network, strategy, detailed=True)
        # SystemMetrics is a frozen dataclass: == is exact, field by field.
        assert m_plain == m_traced
        assert len(sink) > 0  # tracing actually happened

    @pytest.mark.parametrize("fixture", NETWORK_FIXTURES)
    def test_cache_state_identical(self, fixture, request):
        """Same evaluation sequence -> same cache keys and counters."""
        network = request.getfixturevalue(fixture)
        strategy = mixed_strategy(network)
        plain = Simulator()
        traced, _ = traced_sim()
        for sim in (plain, traced):
            sim.evaluate(network, strategy, detailed=True)
            sim.evaluate(network, strategy, detailed=True)  # hit
            sim.evaluate(network, strategy, detailed=False)  # distinct key
        assert list(plain.cache._entries.keys()) == list(
            traced.cache._entries.keys()
        )
        assert plain.cache_stats() == traced.cache_stats()

    def test_ambient_tracer_invariance(self, vgg_net):
        """Tracing via use_tracer (the CLI path) is equally invisible."""
        strategy = mixed_strategy(vgg_net)
        baseline = Simulator().evaluate(vgg_net, strategy, detailed=True)
        sink = InMemorySink()
        with use_tracer(Tracer([sink])):
            ambient = Simulator().evaluate(vgg_net, strategy, detailed=True)
        assert ambient == baseline
        assert len(sink) > 0

    def test_infeasible_verdict_invariant(self, vgg_net):
        """Capacity failures trace identically too (event, not crash)."""
        big = tuple(DEFAULT_CANDIDATES[0] for _ in range(vgg_net.num_layers))
        plain = Simulator()
        traced, sink = traced_sim()
        assert plain.try_evaluate(vgg_net, big, tile_shared=False) == (
            traced.try_evaluate(vgg_net, big, tile_shared=False)
        )
        # Both verdicts cached under the same key either way.
        assert list(plain.cache._entries.keys()) == list(
            traced.cache._entries.keys()
        )


class TestSearchInvariance:
    def test_greedy_identical(self, lenet_net):
        plain = greedy_reward_strategy(
            lenet_net, DEFAULT_CANDIDATES, Simulator()
        )
        sim, sink = traced_sim()
        traced = greedy_reward_strategy(lenet_net, DEFAULT_CANDIDATES, sim)
        assert plain == traced
        assert len(sink) > 0

    def test_random_search_identical_seed_for_seed(self, lenet_net):
        for seed in (0, 3):
            plain = random_search(
                lenet_net, DEFAULT_CANDIDATES, Simulator(), rounds=12, seed=seed
            )
            sim, _ = traced_sim()
            traced = random_search(
                lenet_net, DEFAULT_CANDIDATES, sim, rounds=12, seed=seed
            )
            assert plain.strategy == traced.strategy
            assert plain.metrics == traced.metrics
            assert plain.evaluations == traced.evaluations
            assert plain.infeasible == traced.infeasible

    def test_annealing_identical_seed_for_seed(self, lenet_net):
        """The acceptance test consumes RNG draws; tracing must not
        perturb the draw order, so the whole trajectory must match."""
        plain = simulated_annealing(
            lenet_net, DEFAULT_CANDIDATES, Simulator(), rounds=40, seed=5
        )
        sim, sink = traced_sim()
        traced = simulated_annealing(
            lenet_net, DEFAULT_CANDIDATES, sim, rounds=40, seed=5
        )
        assert plain.strategy == traced.strategy
        assert plain.metrics == traced.metrics
        assert plain.infeasible == traced.infeasible
        summary = sink.summary()
        assert summary.events["search.candidate"] == 40

    def test_autohet_identical_seed_for_seed(self, lenet_net):
        """Full RL search: tracer hooks in the env, the agent and the
        episode loop must leave the learning trajectory untouched."""
        plain = autohet_search(
            lenet_net, DEFAULT_CANDIDATES, rounds=8, seed=1
        )
        traced = autohet_search(
            lenet_net,
            DEFAULT_CANDIDATES,
            rounds=8,
            seed=1,
            tracer=Tracer([InMemorySink()]),
        )
        # Everything except wall-clock timings must be bit-identical.
        assert plain.best_strategy == traced.best_strategy
        assert plain.best_metrics == traced.best_metrics
        assert plain.reward_history == traced.reward_history
        assert plain.best_reward_history == traced.best_reward_history
        assert plain.seed_episodes == traced.seed_episodes
        assert plain.infeasible_episodes == traced.infeasible_episodes
