"""Static checkers over configs, mappings, model graphs, and plans.

Every function returns a list of :class:`~repro.analysis.invariants.Diagnostic`
and never raises on *invalid input content* — the point is to report what
is wrong, with rule ids and fix hints, before anything expensive (an RL
episode, a simulator rollup) touches the object.  Checkers come in two
flavours:

* **object-level** — operate on constructed ``repro`` objects
  (:class:`HardwareConfig`, :class:`LayerMapping`, :class:`Network`,
  :class:`Allocation`).  Used by runtime validation hooks
  (``Allocation.validate``, the RL environment) and by tests.
* **dict-level** — operate on plain JSON-ready dicts
  (:func:`check_config_dict`, :func:`check_plan_dict`).  Used by the
  ``repro check`` CLI, because genuinely broken artifacts often cannot
  even be constructed (construction-time validation rejects them).
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Mapping, Sequence

from ..arch.config import CrossbarShape, HardwareConfig
from ..arch.mapping import LayerMapping
from ..models.graph import Network
from ..models.layers import LayerType
from .invariants import (
    ALC001,
    CFG001,
    ALC002,
    ALC003,
    ALC004,
    ALC005,
    ALC006,
    ALC007,
    MAP001,
    MAP002,
    MAP003,
    NET001,
    NET002,
    NET003,
    Diagnostic,
    adc_resolution_diagnostics,
    config_value_diagnostics,
    shape_dim_diagnostics,
    shape_discipline_diagnostics,
)

# ----------------------------------------------------------------------
# Crossbar shapes and candidate sets
# ----------------------------------------------------------------------
def check_shape(shape: CrossbarShape) -> list[Diagnostic]:
    """SHP001-SHP003 over one candidate shape."""
    loc = f"shape {shape}"
    out = shape_dim_diagnostics(shape.rows, shape.cols, loc)
    out.extend(shape_discipline_diagnostics(shape.rows, shape.cols, loc))
    return out


def check_candidate_set(shapes: Iterable[CrossbarShape]) -> list[Diagnostic]:
    """Shape discipline over a whole candidate set (§3.3)."""
    out: list[Diagnostic] = []
    for shape in shapes:
        out.extend(check_shape(shape))
    return out


# ----------------------------------------------------------------------
# Hardware configs
# ----------------------------------------------------------------------
def check_config(
    config: HardwareConfig, shapes: Sequence[CrossbarShape] = ()
) -> list[Diagnostic]:
    """CFG001-CFG004 over a constructed config (plus candidate coverage).

    A constructed :class:`HardwareConfig` already passed CFG001-CFG003 in
    ``__post_init__`` (same implementations); re-running them here keeps
    the checker total and costs microseconds.  CFG004 needs the candidate
    shapes, which only the caller knows.
    """
    out = config_value_diagnostics(
        weight_bits=config.weight_bits,
        input_bits=config.input_bits,
        cell_bits=config.cell_bits,
        dac_bits=config.dac_bits,
        adc_bits=config.adc_bits,
        pes_per_tile=config.pes_per_tile,
        tiles_per_bank=config.tiles_per_bank,
        adc_sharing=config.adc_sharing,
    )
    for shape in shapes:
        out.extend(
            adc_resolution_diagnostics(
                config.adc_bits, shape.rows, config.cell_bits, f"shape {shape}"
            )
        )
    return out


def check_config_dict(
    data: Mapping[str, Any], shapes: Sequence[CrossbarShape] = ()
) -> list[Diagnostic]:
    """CFG001-CFG004 over a serialized (possibly partial) config dict.

    The merged dict (dataclass defaults + file overrides) is checked
    structurally without ever constructing a :class:`HardwareConfig`, so
    broken files produce diagnostics instead of construction exceptions.
    Unknown keys are a serialization concern and stay with
    :func:`repro.serialize.config_from_dict`.
    """
    defaults = {
        "weight_bits": 8,
        "input_bits": 8,
        "cell_bits": 1,
        "dac_bits": 1,
        "adc_bits": 10,
        "pes_per_tile": 4,
        "tiles_per_bank": 256 * 256,
        "adc_sharing": 1,
    }
    merged: dict[str, int] = {}
    out: list[Diagnostic] = []
    for key, default in defaults.items():
        raw = data.get(key, default)
        try:
            merged[key] = int(raw)
        except (TypeError, ValueError):
            merged[key] = default
            out.append(
                CFG001.diag(
                    "HardwareConfig",
                    f"{key} is not an integer: {raw!r}",
                    hint=f"set {key} to a positive integer",
                )
            )
    out.extend(config_value_diagnostics(**merged))  # type: ignore[arg-type]
    for shape in shapes:
        out.extend(
            adc_resolution_diagnostics(
                merged["adc_bits"], shape.rows, merged["cell_bits"], f"shape {shape}"
            )
        )
    return out


# ----------------------------------------------------------------------
# Layer mappings (Eq. 4)
# ----------------------------------------------------------------------
def check_mapping(mapping: LayerMapping) -> list[Diagnostic]:
    """MAP001-MAP003 over one layer's mapping."""
    out: list[Diagnostic] = []
    layer = mapping.layer
    shape = mapping.shape
    loc = f"L{layer.index + 1}->{shape}"

    # MAP001 — Eq. 4 bounds.
    util = mapping.utilization
    if not (0.0 < util <= 1.0):
        out.append(
            MAP001.diag(
                loc,
                f"utilization {util:.4f} outside (0, 1]",
                hint="row/col group counts or the layer's weight count are corrupt",
            )
        )

    # MAP002 — kernel-split fallback engages exactly when k^2 > rows.
    should_split = layer.kernel_elems > shape.rows
    if mapping.kernel_split != should_split:
        out.append(
            MAP002.diag(
                loc,
                f"kernel_split={mapping.kernel_split} but k^2={layer.kernel_elems} "
                f"vs rows={shape.rows} implies {should_split}",
                hint="rebuild the mapping with repro.arch.mapping.map_layer",
            )
        )

    # MAP003 — recompute the group arithmetic from the layer dims.
    if should_split:
        want_rows = math.ceil(layer.in_channels * layer.kernel_elems / shape.rows)
    else:
        slices = shape.rows // layer.kernel_elems
        want_rows = math.ceil(layer.in_channels / slices)
    want_cols = math.ceil(layer.out_channels / shape.cols)
    if (mapping.row_groups, mapping.col_groups) != (want_rows, want_cols):
        out.append(
            MAP003.diag(
                loc,
                f"row/col groups {mapping.row_groups}x{mapping.col_groups} do not "
                f"match Eq. 4's {want_rows}x{want_cols}",
                hint="rebuild the mapping with repro.arch.mapping.map_layer",
            )
        )
    elif (
        mapping.row_groups * shape.rows < layer.in_channels * layer.kernel_elems
        and not should_split
    ) or mapping.col_groups * shape.cols < layer.out_channels:
        out.append(
            MAP003.diag(
                loc,
                "mapped crossbars provide fewer rows/cols than the unfolded "
                f"weight matrix {layer.weight_matrix_shape}",
                hint="increase row_groups/col_groups",
            )
        )
    return out


def check_mappings(mappings: Iterable[LayerMapping]) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    for mapping in mappings:
        out.extend(check_mapping(mapping))
    return out


# ----------------------------------------------------------------------
# Model graphs
# ----------------------------------------------------------------------
def check_network(network: Network) -> list[Diagnostic]:
    """NET001-NET003 over a network description.

    The checks are deliberately *sound for branchy topologies*: the zoo
    builds ResNet-152 (projection shortcuts) and transformer stacks as
    flat layer lists, so strict sequential chaining would mis-flag valid
    networks.  Instead, every layer's input width must be *producible* —
    by the dataset or by some earlier layer (directly, or flattened for
    FC layers).
    """
    out: list[Diagnostic] = []
    layers = network.layers

    # NET001 — contiguous indices in execution order.
    for position, layer in enumerate(layers):
        if layer.index != position:
            out.append(
                NET001.diag(
                    f"{network.name} layer #{position}",
                    f"layer carries index {layer.index}, expected {position}",
                    hint="assign indices via Network.build / with_index",
                )
            )
            break  # one desynchronisation cascades; report the first

    # NET002 — every input width is producible by something upstream.
    dataset = network.dataset
    producible: set[int] = {dataset.channels}
    flat_producible: set[int] = {
        dataset.channels,
        dataset.channels * dataset.image_size * dataset.image_size,
    }
    for layer in layers:
        if layer.layer_type is LayerType.CONV:
            ok = layer.in_channels in producible
        else:
            # An FC width is satisfiable by any upstream width directly or
            # by a flattened feature volume (channels * spatial^2), whose
            # spatial extent depends on pooling we cannot re-derive for
            # branchy graphs — accept any whole multiple of an upstream
            # channel count.
            ok = layer.in_channels in flat_producible or any(
                layer.in_channels % width == 0 for width in producible
            )
        if not ok:
            out.append(
                NET002.diag(
                    f"{network.name} L{layer.index + 1}",
                    f"{layer.describe()} consumes {layer.in_channels} inputs "
                    "but no upstream stage produces that width",
                    hint="check the layer list for a missing or misordered stage",
                )
            )
        producible.add(layer.out_channels)
        flat_producible.add(layer.out_channels)

        # NET003 — the kernel must fit the padded input.
        if (
            layer.layer_type is LayerType.CONV
            and layer.kernel_size > layer.input_size + 2 * layer.padding
        ):
            out.append(
                NET003.diag(
                    f"{network.name} L{layer.index + 1}",
                    f"kernel {layer.kernel_size} exceeds padded input "
                    f"{layer.input_size}+2*{layer.padding}",
                    hint="fix input_size propagation or the padding",
                )
            )
    return out


# ----------------------------------------------------------------------
# Allocation plans (object level)
# ----------------------------------------------------------------------
def check_allocation(allocation: Any) -> list[Diagnostic]:
    """ALC001-ALC007 over a constructed Allocation.

    Accepts the duck-typed :class:`~repro.core.allocation.tiles.Allocation`
    (annotated ``Any`` to avoid an import cycle: ``tiles.validate`` calls
    back into this function).
    """
    out: list[Diagnostic] = []
    needed = {m.layer.index: m.num_crossbars for m in allocation.mappings}
    shapes = {m.layer.index: m.shape for m in allocation.mappings}
    placed: dict[int, int] = {}
    survivor_ids = set()

    for tile in allocation.tiles:
        loc = f"tile {tile.tile_id}"
        survivor_ids.add(tile.tile_id)
        if tile.capacity != allocation.tile_capacity:
            out.append(
                ALC007.diag(
                    loc,
                    f"capacity {tile.capacity} != plan tile_capacity "
                    f"{allocation.tile_capacity}",
                    hint="all tiles integrate pes_per_tile crossbar slots",
                )
            )
        occupied = 0
        for layer_index, count in tile.occupants.items():
            if count <= 0:
                out.append(
                    ALC005.diag(
                        loc,
                        f"layer {layer_index} recorded with non-positive "
                        f"count {count}",
                        hint="remove empty occupant entries",
                    )
                )
                continue
            occupied += count
            placed[layer_index] = placed.get(layer_index, 0) + count
            expected_shape = shapes.get(layer_index)
            if expected_shape is not None and expected_shape != tile.shape:
                out.append(
                    ALC004.diag(
                        loc,
                        f"hosts layer {layer_index} mapped to {expected_shape} "
                        f"but the tile is {tile.shape}",
                        hint="tiles only host layers of their own geometry (§3.1)",
                    )
                )
        if occupied > tile.capacity:
            out.append(
                ALC001.diag(
                    loc,
                    f"over capacity: {occupied} crossbars in "
                    f"{tile.capacity} slots",
                    hint="re-run the allocator; a merge overfilled this tile",
                )
            )

    for layer_index, want in needed.items():
        got = placed.get(layer_index, 0)
        if got > want:
            out.append(
                ALC002.diag(
                    f"layer {layer_index}",
                    f"double-booked: {got} crossbar slots placed for a mapping "
                    f"of {want}",
                    hint="an absorbed tile was merged twice",
                )
            )
        elif got < want:
            out.append(
                ALC003.diag(
                    f"layer {layer_index}",
                    f"only {got} of {want} mapped crossbars are placed",
                    hint="a tile was dropped without remapping its occupants",
                )
            )
    for layer_index in placed:
        if layer_index not in needed:
            out.append(
                ALC002.diag(
                    f"layer {layer_index}",
                    "placed on tiles but absent from the layer mappings",
                    hint="the plan references a layer the network does not have",
                )
            )

    # ALC006 — Algorithm 1 accounting: absorbed tiles must be gone, and
    # the absorber must agree with the comb_map.
    for head_id, tail_ids in getattr(allocation, "comb_map", {}).items():
        if head_id not in survivor_ids:
            out.append(
                ALC006.diag(
                    f"tile {head_id}",
                    "absorber listed in comb_map but missing from the plan",
                    hint="the absorbing tile must survive the remap",
                )
            )
            continue
        head = next(t for t in allocation.tiles if t.tile_id == head_id)
        for tail_id in tail_ids:
            if tail_id in survivor_ids:
                out.append(
                    ALC006.diag(
                        f"tile {tail_id}",
                        f"absorbed by tile {head_id} but still present in "
                        "the plan",
                        hint="released tiles must be dropped from the tile list",
                    )
                )
            if tail_id not in head.absorbed:
                out.append(
                    ALC006.diag(
                        f"tile {head_id}",
                        f"comb_map says it absorbed tile {tail_id} but its "
                        "absorbed list disagrees",
                        hint="keep Tile.absorbed and Allocation.comb_map in sync",
                    )
                )
    return out


# ----------------------------------------------------------------------
# Allocation plans (dict level, for `repro check --plan`)
# ----------------------------------------------------------------------
def check_plan_dict(data: Mapping[str, Any]) -> list[Diagnostic]:
    """ALC001-ALC007 over a serialized plan document.

    The document format is what :func:`repro.serialize.plan_to_dict`
    emits::

        {"tile_capacity": 4,
         "layers": [{"index": 0, "shape": "72x64", "num_crossbars": 7}, ...],
         "tiles": [{"tile_id": 0, "shape": "72x64", "capacity": 4,
                    "occupants": {"0": 4}, "absorbed": [2]}, ...],
         "comb_map": {"0": [2]}}

    Working on the raw dict means deliberately broken plans — an
    over-capacity tile, a double-booked crossbar — are *reported*, not
    rejected at construction before the checker can see them.
    """

    class _Tile:
        def __init__(self, entry: Mapping[str, Any], default_capacity: int) -> None:
            self.tile_id = int(entry.get("tile_id", -1))
            self.shape = CrossbarShape.parse(str(entry.get("shape", "1x1")))
            self.capacity = int(entry.get("capacity", default_capacity))
            self.occupants = {
                int(k): int(v) for k, v in dict(entry.get("occupants", {})).items()
            }
            self.absorbed = [int(t) for t in entry.get("absorbed", [])]

    class _Mapping:
        def __init__(self, entry: Mapping[str, Any]) -> None:
            class _L:
                index = int(entry.get("index", -1))

            self.layer = _L()
            self.shape = CrossbarShape.parse(str(entry.get("shape", "1x1")))
            self.num_crossbars = int(entry.get("num_crossbars", 0))

    class _Plan:
        tile_capacity = int(data.get("tile_capacity", 0))
        mappings = tuple(_Mapping(e) for e in data.get("layers", []))
        tiles = tuple(_Tile(e, int(data.get("tile_capacity", 0))) for e in data.get("tiles", []))
        comb_map = {
            int(k): tuple(int(t) for t in v)
            for k, v in dict(data.get("comb_map", {})).items()
        }

    return check_allocation(_Plan)
