"""The heterogeneous accelerator object model.

:class:`HeterogeneousAccelerator` instantiates hardware tiles from an
:class:`~repro.core.allocation.tiles.Allocation`, programs every layer's
offset-encoded weight blocks into PE slots, and executes per-layer MVMs by
driving the physical crossbars — the end-to-end physical realisation of
the mapping, at per-crossbar granularity.

The placement is deterministic: tiles are walked in id order, and each
tile's occupant count for a layer consumes that layer's blocks in
(row_group, col_group) row-major order.  This mirrors exactly what the
Global Controller's LOAD phase would stream over the bus.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.allocation.tiles import Allocation
from ..models.layers import LayerSpec
from ..sim.quantization import offset_encode
from .config import DEFAULT_CONFIG, HardwareConfig
from .mapping import LayerMapping
from .peripherals import AdderTree
from .tile import BlockAssignment, HardwareTile


@dataclass(frozen=True)
class BlockLocation:
    """Where one (row_group, col_group) block of a layer physically lives."""

    tile_id: int
    pe_id: int
    row_group: int
    col_group: int


@dataclass(frozen=True)
class _RowSegment:
    """A contiguous slice of the unfolded weight-matrix rows (one rg)."""

    start: int
    stop: int

    @property
    def size(self) -> int:
        return self.stop - self.start


def _row_segments(mapping: LayerMapping) -> list[_RowSegment]:
    """Contiguous weight-matrix row ranges per crossbar row group."""
    layer = mapping.layer
    total = layer.in_channels * layer.kernel_elems
    segments = []
    if not mapping.kernel_split:
        slices = mapping.shape.rows // layer.kernel_elems
        step = slices * layer.kernel_elems
    else:
        step = mapping.shape.rows
    for start in range(0, total, step):
        segments.append(_RowSegment(start, min(start + step, total)))
    assert len(segments) == mapping.row_groups
    return segments


class HeterogeneousAccelerator:
    """Physical tiles programmed per an allocation, ready for inference."""

    def __init__(
        self,
        allocation: Allocation,
        weight_matrices_q: dict[int, np.ndarray],
        config: HardwareConfig = DEFAULT_CONFIG,
    ) -> None:
        """Build tiles and program quantized weights.

        ``weight_matrices_q`` maps layer index -> signed integer unfolded
        weight matrix (``Cin * k^2`` rows by ``Cout`` columns).
        """
        self.allocation = allocation
        self.config = config
        self.mappings: dict[int, LayerMapping] = {
            m.layer.index: m for m in allocation.mappings
        }
        self.tiles: dict[int, HardwareTile] = {}
        self.block_locations: dict[int, list[BlockLocation]] = {
            idx: [] for idx in self.mappings
        }
        self.adder_tree = AdderTree()
        self._segments = {
            idx: _row_segments(m) for idx, m in self.mappings.items()
        }
        self._encoded = {}
        for idx, mapping in self.mappings.items():
            wq = np.asarray(weight_matrices_q[idx], dtype=np.int64)
            expect = (
                mapping.layer.in_channels * mapping.layer.kernel_elems,
                mapping.layer.out_channels,
            )
            if wq.shape != expect:
                raise ValueError(
                    f"layer {idx}: weight matrix {wq.shape} != {expect}"
                )
            self._encoded[idx] = offset_encode(wq, config.weight_bits)

        self._program_all()

    # ------------------------------------------------------------------
    def _program_all(self) -> None:
        # Per-layer iterator over (rg, cg) block coordinates.
        cursors = {idx: 0 for idx in self.mappings}
        for tile_spec in self.allocation.tiles:
            if tile_spec.occupied == 0:
                continue
            if tile_spec.capacity != self.config.pes_per_tile:
                raise ValueError(
                    "allocation tile capacity does not match the hardware "
                    f"config ({tile_spec.capacity} != {self.config.pes_per_tile})"
                )
            tile = HardwareTile(tile_spec.tile_id, tile_spec.shape, self.config)
            self.tiles[tile_spec.tile_id] = tile
            next_pe = 0
            for layer_index in sorted(tile_spec.occupants):
                count = tile_spec.occupants[layer_index]
                mapping = self.mappings[layer_index]
                encoded = self._encoded[layer_index]
                segments = self._segments[layer_index]
                cols = mapping.shape.cols
                for _ in range(count):
                    block_no = cursors[layer_index]
                    cursors[layer_index] += 1
                    rg, cg = divmod(block_no, mapping.col_groups)
                    seg = segments[rg]
                    c0 = cg * cols
                    c1 = min(c0 + cols, mapping.layer.out_channels)
                    block = encoded[seg.start : seg.stop, c0:c1]
                    assignment = BlockAssignment(
                        layer_index=layer_index,
                        row_group=rg,
                        col_group=cg,
                        rows_used=seg.size,
                        cols_used=c1 - c0,
                    )
                    tile.assign_block(next_pe, assignment, block)
                    self.block_locations[layer_index].append(
                        BlockLocation(tile_spec.tile_id, next_pe, rg, cg)
                    )
                    next_pe += 1
        for idx, mapping in self.mappings.items():
            placed = len(self.block_locations[idx])
            if placed != mapping.num_crossbars:
                raise RuntimeError(
                    f"layer {idx}: programmed {placed} of "
                    f"{mapping.num_crossbars} blocks"
                )

    # ------------------------------------------------------------------
    def layer_mvm(self, layer_index: int, x_q: np.ndarray) -> np.ndarray:
        """Exact integer MVM of one unsigned input vector through a layer.

        Drives every physical block of the layer, merges row-group partial
        sums through the adder tree, and removes the offset-encoding term.
        Returns ``x_q @ Wq`` (int64) when the ADCs never saturate.
        """
        mapping = self.mappings[layer_index]
        layer = mapping.layer
        x = np.asarray(x_q, dtype=np.int64)
        total_rows = layer.in_channels * layer.kernel_elems
        if x.shape != (total_rows,):
            raise ValueError(f"input shape {x.shape} != ({total_rows},)")
        segments = self._segments[layer_index]
        partials = np.zeros(
            (mapping.row_groups, layer.out_channels), dtype=np.int64
        )
        for loc in self.block_locations[layer_index]:
            tile = self.tiles[loc.tile_id]
            seg = segments[loc.row_group]
            out = tile.mvm_block(loc.pe_id, x[seg.start : seg.stop])
            c0 = loc.col_group * mapping.shape.cols
            partials[loc.row_group, c0 : c0 + out.size] += out
        merged = self.adder_tree.reduce(partials)
        offset = 1 << (self.config.weight_bits - 1)
        return merged - offset * int(x.sum())

    # ------------------------------------------------------------------
    @property
    def occupied_tiles(self) -> int:
        return len(self.tiles)

    def utilization(self) -> float:
        """Physically-measured utilization: programmed cells over all cells
        in instantiated tiles (should equal ``allocation.utilization``)."""
        used = sum(
            pe.used_cells for tile in self.tiles.values() for pe in tile.pes
        )
        total = sum(
            tile.capacity * tile.shape.cells for tile in self.tiles.values()
        )
        return used / total if total else 0.0
