"""Fixture kernel module that drifted from its scalar twin — see
``simulator.py`` in this tree for the catalogue of planted divergences."""

import numpy as np

SHAPE_TABLE_FLOAT_ROWS = (
    "adc",
    "dac",
    "crossbar",
    "shift_add",
    "adder_tree",
    "buffer",
    "bus",
    "layer_latency_ns",
    "tile_area_um2",
    "utilization",
)
SHAPE_TABLE_INT_ROWS = ("num_crossbars", "adc_conversions", "dac_conversions")

# Drift: the registry above declares ten float rows but this unpack
# binds nine names -> PAR003.
(_F_ADC, _F_DAC, _F_XBAR, _F_SHIFT, _F_TREE, _F_BUF, _F_BUS, _F_LAT,
 _F_AREA) = range(9)
(_I_XBARS, _I_ADC, _I_DAC) = range(3)


class NetworkArrays:
    num_layers: int
    layer_indices: np.ndarray
    mvm_ops: np.ndarray
    in_channels: np.ndarray
    out_channels: np.ndarray
    kernel_elems: np.ndarray
    weight_counts: np.ndarray
    in_bytes: np.ndarray
    weight_cells_total: int
    pooled_elems: np.ndarray
    scratch_buffer: np.ndarray  # dead column with no declared provenance -> PAR002


class MappingBatch:
    net: NetworkArrays
    rows: np.ndarray
    cols: np.ndarray
    row_groups: np.ndarray
    col_groups: np.ndarray
    kernel_split: np.ndarray
    num_crossbars: np.ndarray
    used_columns_total: np.ndarray
    allocated_columns_total: np.ndarray
    used_rows_total: np.ndarray
    allocated_rows_total: np.ndarray
    partial_sum_adds: np.ndarray
    adder_tree_depth: np.ndarray
    used_columns_per_crossbar_max: np.ndarray


class ShapeTable:
    floats: np.ndarray
    ints: np.ndarray


def score_strategy_batch(table, config):
    needed = int(table.floats.sum())
    if needed > config.tiles_per_bank:
        # Drift: "wants" vs the scalar _capacity_check's "needs" -> PAR003.
        return (
            f"strategy wants {needed} tiles; one "
            f"bank holds {config.tiles_per_bank}"
        )
    return needed
