"""Ablation (design choice): the RL search vs simpler search algorithms.

Compares four strategy producers on VGG16 under the same candidate set
and tile-shared allocation:

* the per-layer utilization greedy (the Zhu-et-al.-style local heuristic
  the paper's related work discusses);
* uniform random search with the same evaluation budget;
* coordinate-ascent greedy on the global reward;
* the AutoHet DDPG search.

Expected shape: AutoHet matches or beats random search and the
utilization greedy on RUE; coordinate ascent is a strong upper-ish
reference the RL search should approach.
"""

from conftest import run_once

from repro.arch.config import DEFAULT_CANDIDATES
from repro.bench import default_rounds
from repro.bench.reporting import print_table
from repro.core.autohet import autohet_search
from repro.core.search import (
    greedy_reward_strategy,
    greedy_utilization_strategy,
    random_search,
    simulated_annealing,
)
from repro.models import vgg16
from repro.sim import Simulator


def run_search_comparison(rounds=None, seed=0):
    rounds = rounds if rounds is not None else default_rounds()
    net = vgg16()
    sim = Simulator()
    out = {}

    util_greedy = greedy_utilization_strategy(net, DEFAULT_CANDIDATES)
    out["utilization greedy"] = sim.evaluate(
        net, util_greedy, tile_shared=True, detailed=False
    )
    _, rnd = random_search(
        net, DEFAULT_CANDIDATES, sim, rounds=rounds, tile_shared=True, seed=seed
    )
    out["random search"] = rnd
    coord = greedy_reward_strategy(net, DEFAULT_CANDIDATES, sim, tile_shared=True)
    out["coordinate ascent"] = sim.evaluate(
        net, coord, tile_shared=True, detailed=False
    )
    _, annealed = simulated_annealing(
        net, DEFAULT_CANDIDATES, sim, rounds=rounds, tile_shared=True, seed=seed
    )
    out["simulated annealing"] = annealed
    out["AutoHet (DDPG)"] = autohet_search(
        net, DEFAULT_CANDIDATES, rounds=rounds, simulator=sim, seed=seed
    ).best_metrics
    return out


def test_search_comparison(benchmark):
    data = run_once(benchmark, run_search_comparison)
    print_table(
        ["search", "utilization_%", "energy_nJ", "RUE"],
        [
            (label, m.utilization_percent, m.energy_nj, m.rue)
            for label, m in data.items()
        ],
        title="Ablation — search algorithm (VGG16)",
    )
    autohet = data["AutoHet (DDPG)"]
    assert autohet.rue >= data["utilization greedy"].rue
    assert autohet.rue >= 0.9 * data["random search"].rue
    assert autohet.rue >= 0.75 * data["coordinate ascent"].rue
    assert autohet.rue >= 0.9 * data["simulated annealing"].rue
