"""Tests for the static race detector (CON rule family)."""

from pathlib import Path

import pytest

from repro.analysis.callgraph import ModuleIndex
from repro.analysis.concurrency import (
    ConcurrencyContract,
    analyze_concurrency,
    analyze_concurrency_tree,
    concurrency_contract,
)
from repro.cli import main

FIXTURE_TREE = Path(__file__).parent / "fixtures" / "racy_tree"
SRC_TREE = Path(__file__).parent.parent.parent / "src" / "repro"


def rule_ids(diags):
    return sorted({d.rule_id for d in diags})


def run(source, **contract_kw):
    index = ModuleIndex.from_sources({"fix": "", "fix.mod": source})
    return analyze_concurrency_tree(index, ConcurrencyContract(**contract_kw))


THREAD_PREFIX = (
    "import threading\n"
    "from concurrent.futures import ThreadPoolExecutor\n"
)
PROCESS_PREFIX = "from concurrent.futures import ProcessPoolExecutor\n"


class TestCON001:
    COUNTER = (
        "class Counter:\n"
        "    def __init__(self):\n"
        "        self.total = 0\n"
        "        self._lock = threading.Lock()\n"
    )

    def test_unguarded_write_from_thread_worker(self):
        src = THREAD_PREFIX + self.COUNTER + (
            "def fan(c: Counter):\n"
            "    def work(x):\n"
            "        c.total += 1\n"
            "        return x\n"
            "    with ThreadPoolExecutor() as pool:\n"
            "        return list(pool.map(work, range(4)))\n"
        )
        diags = run(src)
        assert rule_ids(diags) == ["CON001"]
        (d,) = diags
        assert "Counter" in d.message and ".total" in d.message

    def test_write_under_lock_is_clean(self):
        src = THREAD_PREFIX + self.COUNTER + (
            "def fan(c: Counter):\n"
            "    def work(x):\n"
            "        with c._lock:\n"
            "            c.total += 1\n"
            "    with ThreadPoolExecutor() as pool:\n"
            "        return list(pool.map(work, range(4)))\n"
        )
        assert run(src) == []

    def test_write_inside_locked_method_is_clean(self):
        src = THREAD_PREFIX + self.COUNTER + (
            "    def bump(self):\n"
            "        with self._lock:\n"
            "            self.total += 1\n"
            "def fan(c: Counter):\n"
            "    with ThreadPoolExecutor() as pool:\n"
            "        return list(pool.map(c.bump, range(4)))\n"
        )
        assert run(src) == []

    def test_worker_fresh_instance_is_clean(self):
        # An object the worker constructs itself cannot race.
        src = THREAD_PREFIX + self.COUNTER + (
            "def fan():\n"
            "    def work(x):\n"
            "        mine = Counter()\n"
            "        mine.total += 1\n"
            "        return mine.total\n"
            "    with ThreadPoolExecutor() as pool:\n"
            "        return list(pool.map(work, range(4)))\n"
        )
        assert run(src) == []

    def test_exempt_guard_token_is_clean(self):
        src = THREAD_PREFIX + (
            "class Counter:\n"
            "    def __init__(self):\n"
            "        self.total = 0  # guarded-by: worker-local\n"
            "def fan(c: Counter):\n"
            "    def work(x):\n"
            "        c.total += 1\n"
            "    with ThreadPoolExecutor() as pool:\n"
            "        return list(pool.map(work, range(4)))\n"
        )
        assert run(src) == []

    def test_mutator_call_on_shared_container_attr(self):
        src = THREAD_PREFIX + (
            "class Sink:\n"
            "    def __init__(self):\n"
            "        self.records = []\n"
            "def fan(s: Sink):\n"
            "    def work(x):\n"
            "        s.records.append(x)\n"
            "    with ThreadPoolExecutor() as pool:\n"
            "        return list(pool.map(work, range(4)))\n"
        )
        assert "CON001" in rule_ids(run(src))

    def test_submit_fans_out_too(self):
        src = THREAD_PREFIX + self.COUNTER + (
            "def fan(c: Counter):\n"
            "    def work():\n"
            "        c.total += 1\n"
            "    with ThreadPoolExecutor() as pool:\n"
            "        pool.submit(work)\n"
        )
        assert "CON001" in rule_ids(run(src))

    def test_threading_thread_target_fans_out(self):
        src = "import threading\n" + self.COUNTER + (
            "def fan(c: Counter):\n"
            "    def work():\n"
            "        c.total += 1\n"
            "    t = threading.Thread(target=work)\n"
            "    t.start()\n"
        )
        assert "CON001" in rule_ids(run(src))

    def test_outside_worker_context_is_clean(self):
        src = THREAD_PREFIX + self.COUNTER + (
            "def serial(c: Counter):\n"
            "    c.total += 1\n"
        )
        assert run(src) == []


class TestCON002:
    def test_global_rebinding_in_worker(self):
        src = THREAD_PREFIX + (
            "_BEST = 0\n"
            "def fan():\n"
            "    def work(x):\n"
            "        global _BEST\n"
            "        _BEST = x\n"
            "    with ThreadPoolExecutor() as pool:\n"
            "        return list(pool.map(work, range(4)))\n"
        )
        assert rule_ids(run(src)) == ["CON002"]

    def test_module_list_append_in_worker(self):
        src = THREAD_PREFIX + (
            "_LOG = []\n"
            "def fan():\n"
            "    def work(x):\n"
            "        _LOG.append(x)\n"
            "    with ThreadPoolExecutor() as pool:\n"
            "        return list(pool.map(work, range(4)))\n"
        )
        assert rule_ids(run(src)) == ["CON002"]

    def test_module_dict_store_in_worker(self):
        src = THREAD_PREFIX + (
            "_REGISTRY = {}\n"
            "def fan():\n"
            "    def work(x):\n"
            "        _REGISTRY[x] = x\n"
            "    with ThreadPoolExecutor() as pool:\n"
            "        return list(pool.map(work, range(4)))\n"
        )
        assert rule_ids(run(src)) == ["CON002"]

    def test_reading_module_state_is_clean(self):
        src = THREAD_PREFIX + (
            "_TABLE = {1: 2}\n"
            "def fan():\n"
            "    def work(x):\n"
            "        return _TABLE.get(x)\n"
            "    with ThreadPoolExecutor() as pool:\n"
            "        return list(pool.map(work, range(4)))\n"
        )
        assert run(src) == []

    def test_global_outside_worker_is_not_this_rules_business(self):
        src = "_BEST = 0\ndef serial(x):\n    global _BEST\n    _BEST = x\n"
        assert run(src) == []


class TestCON003:
    LOCKED = (
        "import threading\n"
        "class Cache:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
    )

    def test_lock_holder_shipped_to_process_pool(self):
        src = PROCESS_PREFIX + self.LOCKED + (
            "def remote(c):\n"
            "    return c\n"
            "def fan(c: Cache):\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        pool.submit(remote, c)\n"
        )
        diags = run(src)
        assert rule_ids(diags) == ["CON003"]
        (d,) = diags
        assert "threading.Lock" in d.message

    def test_closure_worker_not_picklable(self):
        src = PROCESS_PREFIX + (
            "def fan():\n"
            "    def work(x):\n"
            "        return x\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return list(pool.map(work, range(4)))\n"
        )
        diags = run(src)
        assert rule_ids(diags) == ["CON003"]
        assert "closure" in diags[0].message

    def test_open_file_in_init_is_a_hazard(self):
        src = PROCESS_PREFIX + (
            "class Writer:\n"
            "    def __init__(self, path):\n"
            "        self._fh = open(path, 'w')\n"
            "def remote(w):\n"
            "    return w\n"
            "def fan(w: Writer):\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        pool.submit(remote, w)\n"
        )
        assert "CON003" in rule_ids(run(src))

    def test_hazard_through_annotated_field(self):
        src = PROCESS_PREFIX + self.LOCKED + (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class Sim:\n"
            "    cache: Cache\n"
            "def remote(s):\n"
            "    return s\n"
            "def fan(s: Sim):\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        pool.submit(remote, s)\n"
        )
        assert "CON003" in rule_ids(run(src))

    def test_replace_strips_the_hazard(self):
        src = PROCESS_PREFIX + self.LOCKED + (
            "from dataclasses import dataclass, replace\n"
            "@dataclass\n"
            "class Sim:\n"
            "    cache: Cache\n"
            "def remote(s):\n"
            "    return s\n"
            "def fan(s: Sim):\n"
            "    worker = replace(s, cache=None)\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        pool.submit(remote, worker)\n"
        )
        assert run(src) == []

    def test_inherited_hazard_and_allowlist(self):
        base = self.LOCKED + (
            "class Child(Cache):\n"
            "    def __init__(self):\n"
            "        super().__init__()\n"
            "def remote(c):\n"
            "    return c\n"
            "def fan(c: Child):\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        pool.submit(remote, c)\n"
        )
        src = PROCESS_PREFIX + base
        assert "CON003" in rule_ids(run(src))
        assert run(src, picklable_allowlist=frozenset({"Child"})) == []

    def test_stateless_subclass_skipping_super_is_clean(self):
        # NullTracer idiom: own __init__ that never chains to the base.
        src = PROCESS_PREFIX + self.LOCKED + (
            "class NullCache(Cache):\n"
            "    def __init__(self):\n"
            "        pass\n"
            "def remote(c):\n"
            "    return c\n"
            "def fan(c: NullCache):\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        pool.submit(remote, c)\n"
        )
        assert run(src) == []

    def test_thread_pool_does_not_pickle(self):
        src = THREAD_PREFIX + self.LOCKED + (
            "def remote(c):\n"
            "    return c\n"
            "def fan(c: Cache):\n"
            "    with ThreadPoolExecutor() as pool:\n"
            "        pool.submit(remote, c)\n"
        )
        assert run(src) == []


class TestCON004:
    def test_shared_module_rng_in_thread_worker(self):
        src = THREAD_PREFIX + (
            "import random\n"
            "def fan():\n"
            "    def work(x):\n"
            "        return random.random()\n"
            "    with ThreadPoolExecutor() as pool:\n"
            "        return list(pool.map(work, range(4)))\n"
        )
        diags = run(src)
        assert rule_ids(diags) == ["CON004"]
        assert "random.random" in diags[0].message

    def test_numpy_module_rng_in_worker(self):
        src = THREAD_PREFIX + (
            "import numpy as np\n"
            "def fan():\n"
            "    def work(x):\n"
            "        return np.random.rand()\n"
            "    with ThreadPoolExecutor() as pool:\n"
            "        return list(pool.map(work, range(4)))\n"
        )
        assert rule_ids(run(src)) == ["CON004"]

    def test_per_worker_seeded_rng_is_clean(self):
        src = THREAD_PREFIX + (
            "import random\n"
            "import numpy as np\n"
            "def fan():\n"
            "    def work(seed):\n"
            "        a = random.Random(seed).random()\n"
            "        b = np.random.default_rng(seed).normal()\n"
            "        return a + b\n"
            "    with ThreadPoolExecutor() as pool:\n"
            "        return list(pool.map(work, range(4)))\n"
        )
        assert run(src) == []

    def test_rng_outside_worker_is_clean(self):
        src = "import random\ndef serial():\n    return random.random()\n"
        assert run(src) == []


class TestCON005:
    GUARDED = (
        "import threading\n"
        "class Sink:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self.count = 0  # guarded-by: _lock\n"
    )

    def test_unlocked_write_caught_without_any_fan_out(self):
        # The whole-class discipline pass needs no worker to reach it.
        src = self.GUARDED + (
            "    def reset(self):\n"
            "        self.count = 0\n"
        )
        diags = run(src)
        assert rule_ids(diags) == ["CON005"]
        assert "guarded-by" in diags[0].message

    def test_locked_write_is_clean(self):
        src = self.GUARDED + (
            "    def bump(self):\n"
            "        with self._lock:\n"
            "            self.count += 1\n"
        )
        assert run(src) == []

    def test_holds_lock_marker_is_honoured(self):
        src = self.GUARDED + (
            "    def _bump_locked(self):  # holds-lock: _lock\n"
            "        self.count += 1\n"
            "    def bump(self):\n"
            "        with self._lock:\n"
            "            self._bump_locked()\n"
        )
        assert run(src) == []

    def test_init_writes_are_exempt(self):
        assert run(self.GUARDED) == []

    def test_class_body_declaration_site(self):
        src = (
            "import threading\n"
            "class Sink:\n"
            "    count: int = 0  # guarded-by: _lock\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def reset(self):\n"
            "        self.count = 0\n"
        )
        assert rule_ids(run(src)) == ["CON005"]

    def test_mutator_call_on_guarded_container(self):
        src = (
            "import threading\n"
            "class Sink:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self.records = []  # guarded-by: _lock\n"
            "    def drop(self):\n"
            "        self.records.clear()\n"
        )
        assert rule_ids(run(src)) == ["CON005"]

    def test_nested_closure_does_not_inherit_the_lock(self):
        # The closure may run after the lock is released.
        src = self.GUARDED + (
            "    def deferred(self):\n"
            "        with self._lock:\n"
            "            def later():\n"
            "                self.count += 1\n"
            "            return later\n"
        )
        assert rule_ids(run(src)) == ["CON005"]

    def test_unlocked_write_from_worker_traversal(self):
        src = THREAD_PREFIX + (
            "class Sink:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self.count = 0  # guarded-by: _lock\n"
            "def fan(s: Sink):\n"
            "    def work(x):\n"
            "        s.count += 1\n"
            "    with ThreadPoolExecutor() as pool:\n"
            "        return list(pool.map(work, range(4)))\n"
        )
        assert "CON005" in rule_ids(run(src))


class TestContract:
    def test_unresolvable_extra_root_raises(self):
        index = ModuleIndex.from_sources({"fix": ""})
        contract = ConcurrencyContract(extra_roots=("fix:missing",))
        with pytest.raises(ValueError, match="missing"):
            analyze_concurrency_tree(index, contract)

    def test_repro_contract_roots_resolve_on_src(self):
        index = ModuleIndex.from_package(SRC_TREE, "repro")
        contract = concurrency_contract()
        for root in contract.extra_roots:
            assert index.resolve_qualname(root) is not None, root


class TestFixtureTree:
    def test_every_seeded_race_is_detected(self):
        diags = analyze_concurrency(FIXTURE_TREE)
        assert rule_ids(diags) == [
            "CON001", "CON002", "CON003", "CON004", "CON005",
        ]

    def test_seeded_locations(self):
        diags = analyze_concurrency(FIXTURE_TREE)
        by_rule = {d.rule_id: [x.location for x in diags if x.rule_id == d.rule_id] for d in diags}
        assert any("repro.sim.simulator" in loc for loc in by_rule["CON001"])
        assert any("repro.core.autohet" in loc for loc in by_rule["CON002"])
        assert any("repro.sim.simulator" in loc for loc in by_rule["CON003"])
        assert any("repro.core.autohet" in loc for loc in by_rule["CON004"])
        assert any("repro.obs.sinks" in loc for loc in by_rule["CON005"])
        assert any("repro.sim.simulator" in loc for loc in by_rule["CON005"])

    def test_negative_twins_stay_silent(self):
        diags = analyze_concurrency(FIXTURE_TREE)
        for d in diags:
            assert "clean" not in d.message
            assert "_append_locked" not in d.message
            assert "emit" not in d.location


class TestRealTree:
    def test_src_is_race_free(self):
        # The theorem the satellite work earns: zero ERROR findings over
        # the real package, with no grandfathering.
        assert analyze_concurrency(SRC_TREE) == []

    def test_removing_a_lock_breaks_the_proof(self):
        sources = {}
        for path in sorted(SRC_TREE.rglob("*.py")):
            rel = path.relative_to(SRC_TREE)
            parts = list(rel.parts)
            is_pkg = parts[-1] == "__init__.py"
            parts = parts[:-1] if is_pkg else [*parts[:-1], parts[-1][:-3]]
            name = ".".join(["repro", *parts]) if parts else "repro"
            sources[name] = path.read_text()
        tampered = sources["repro.sim.cache"].replace(
            "        with self._lock:\n"
            "            if key in self._entries:",
            "        if True:\n"
            "            if key in self._entries:",
        )
        assert tampered != sources["repro.sim.cache"]
        sources["repro.sim.cache"] = tampered
        index = ModuleIndex.from_sources(sources)
        diags = analyze_concurrency_tree(index, concurrency_contract())
        assert "CON005" in rule_ids(diags)


class TestCheckCLI:
    def test_concurrency_flag_passes_on_real_tree(self, capsys):
        assert main(["check", "--concurrency"]) == 0
        out = capsys.readouterr().out
        assert "concurrency safety" in out

    def test_fixture_tree_fails_with_all_rules(self, capsys):
        assert main(
            ["check", "--concurrency", "--source", str(FIXTURE_TREE)]
        ) == 1
        out = capsys.readouterr().out
        for rule in ("CON001", "CON002", "CON003", "CON004", "CON005"):
            assert rule in out

    def test_ratchet_grandfathers_fixture_findings(self, tmp_path, capsys):
        baseline = tmp_path / "ratchet.json"
        baseline.write_text(
            '{"CON001": 1, "CON002": 1, "CON003": 1, "CON004": 1, "CON005": 2}'
        )
        # Errors still fail the check; the ratchet only gates *new* ones.
        assert main(
            [
                "check", "--concurrency",
                "--source", str(FIXTURE_TREE),
                "--ratchet", str(baseline),
            ]
        ) == 1

    def test_empty_ratchet_baseline_passes_on_real_tree(self, capsys):
        assert main(
            ["check", "--concurrency", "--ratchet", ".github/diagnostic-ratchet.json"]
        ) == 0

    def test_default_sweep_includes_concurrency(self, capsys):
        assert main(["check"]) == 0
        assert "concurrency safety" in capsys.readouterr().out
