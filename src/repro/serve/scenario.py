"""Serving scenarios: tenants, arrival processes, SLOs, policy knobs.

A *scenario* is the complete, serializable description of one serving
run: which tenant models share the accelerator, how their requests
arrive (piecewise-constant Poisson rates or an explicit arrival-time
trace), what latency SLO each tenant promises, and how the re-allocation
policy is tuned.  Scenarios round-trip through plain JSON
(:func:`scenario_to_dict` / :func:`scenario_from_dict` /
:func:`load_scenario`) so the ``repro serve`` CLI takes a scenario file
in and emits a report out; :func:`two_tenant_scenario` is the checked-in
reference scenario (AlexNet + VGG16 with a mid-run traffic shift) the
golden tests and the CLI's ``two-tenant`` builtin share.

All times are nanoseconds — the native unit of the cost model — and the
file format spells that out (``duration_ns``, ``slo_ns``, ``at_ns``).
Rates are requests per second (``rate_rps``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

from ..arch.config import CrossbarShape
from ..sim.units_constants import NS_PER_S


@dataclass(frozen=True)
class ArrivalPhase:
    """One piecewise-constant segment of a tenant's Poisson arrival rate."""

    at_ns: float      #: phase start, relative to scenario start
    rate_rps: float   #: mean arrivals per second from ``at_ns`` on

    def __post_init__(self) -> None:
        if self.at_ns < 0:
            raise ValueError("phase start must be non-negative")
        if self.rate_rps < 0:
            raise ValueError("arrival rate must be non-negative")


@dataclass(frozen=True)
class TenantSpec:
    """One co-located tenant model and its traffic contract.

    Exactly one arrival source applies: ``trace_ns`` (explicit arrival
    times, used verbatim) when non-empty, else a Poisson process whose
    rate starts at ``rate_rps`` and steps through ``phases``.  The
    per-layer crossbar strategy is ``strategy`` when given, else the
    homogeneous strategy of ``shape``.
    """

    name: str
    model: str                       #: workload name (see ``repro models``)
    shape: str = "64x64"             #: homogeneous crossbar shape
    strategy: tuple[str, ...] = ()   #: explicit per-layer shapes (optional)
    rate_rps: float = 500.0
    phases: tuple[ArrivalPhase, ...] = ()
    trace_ns: tuple[float, ...] = ()
    slo_ns: float = 5e6              #: latency objective per request

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.rate_rps < 0:
            raise ValueError("arrival rate must be non-negative")
        if self.slo_ns <= 0:
            raise ValueError("slo_ns must be positive")
        if list(self.trace_ns) != sorted(self.trace_ns):
            raise ValueError(f"{self.name}: trace_ns must be sorted")
        starts = [p.at_ns for p in self.phases]
        if starts != sorted(starts):
            raise ValueError(f"{self.name}: phases must be time-ordered")

    def strategy_shapes(self, num_layers: int) -> tuple[CrossbarShape, ...]:
        """The per-layer crossbar shapes this tenant maps with."""
        if self.strategy:
            if len(self.strategy) != num_layers:
                raise ValueError(
                    f"{self.name}: strategy length {len(self.strategy)} != "
                    f"{num_layers} layers"
                )
            return tuple(CrossbarShape.parse(s) for s in self.strategy)
        return tuple([CrossbarShape.parse(self.shape)] * num_layers)


@dataclass(frozen=True)
class ReallocConfig:
    """Re-allocation policy knobs (see docs/serving.md for the contract)."""

    enabled: bool = True
    #: trigger when total-variation distance between the observed and
    #: the currently-provisioned arrival mix exceeds this
    threshold: float = 0.2
    window: int = 128        #: sliding window of arrivals defining the mix
    check_every: int = 32    #: policy consulted every this many arrivals
    stall_ns: float = 5e4    #: weight-rewrite stall applied on re-pack
    cooldown_ns: float = 1e7  #: minimum time between re-allocations
    headroom: float = 2.0    #: tile budget = headroom * initial tiles

    def __post_init__(self) -> None:
        if not 0.0 < self.threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        if self.window < 1 or self.check_every < 1:
            raise ValueError("window and check_every must be positive")
        if self.stall_ns < 0 or self.cooldown_ns < 0:
            raise ValueError("stall_ns and cooldown_ns must be non-negative")
        if self.headroom < 1.0:
            raise ValueError("headroom must be >= 1.0")


@dataclass(frozen=True)
class Scenario:
    """One complete serving run description."""

    name: str
    tenants: tuple[TenantSpec, ...]
    duration_ns: float = 2.5e8
    seed: int = 0
    max_batch: int = 8       #: requests admitted into the pipeline at once
    queue_cap: int = 0       #: per-tenant queue bound; 0 = unbounded
    drain: bool = False      #: keep serving queued work past the horizon
    realloc: ReallocConfig = field(default_factory=ReallocConfig)

    def __post_init__(self) -> None:
        if not self.tenants:
            raise ValueError("scenario needs at least one tenant")
        if self.duration_ns <= 0:
            raise ValueError("duration_ns must be positive")
        if self.max_batch < 1:
            raise ValueError("max_batch must be positive")
        if self.queue_cap < 0:
            raise ValueError("queue_cap must be non-negative (0 = unbounded)")
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names: {names}")


# ----------------------------------------------------------------------
# JSON round-trip
# ----------------------------------------------------------------------
def scenario_to_dict(scenario: Scenario) -> dict[str, Any]:
    """Plain-JSON form of a scenario (inverse of :func:`scenario_from_dict`)."""
    return {
        "name": scenario.name,
        "seed": scenario.seed,
        "duration_ns": scenario.duration_ns,
        "max_batch": scenario.max_batch,
        "queue_cap": scenario.queue_cap,
        "drain": scenario.drain,
        "realloc": {
            "enabled": scenario.realloc.enabled,
            "threshold": scenario.realloc.threshold,
            "window": scenario.realloc.window,
            "check_every": scenario.realloc.check_every,
            "stall_ns": scenario.realloc.stall_ns,
            "cooldown_ns": scenario.realloc.cooldown_ns,
            "headroom": scenario.realloc.headroom,
        },
        "tenants": [
            {
                "name": t.name,
                "model": t.model,
                "shape": t.shape,
                "strategy": list(t.strategy),
                "rate_rps": t.rate_rps,
                "phases": [
                    {"at_ns": p.at_ns, "rate_rps": p.rate_rps}
                    for p in t.phases
                ],
                "trace_ns": list(t.trace_ns),
                "slo_ns": t.slo_ns,
            }
            for t in scenario.tenants
        ],
    }


def scenario_from_dict(doc: dict[str, Any]) -> Scenario:
    """Build a :class:`Scenario` from its JSON form, validating as it goes."""
    if not isinstance(doc, dict):
        raise ValueError(f"scenario must be an object, got {type(doc).__name__}")
    unknown = set(doc) - {
        "name", "seed", "duration_ns", "max_batch", "queue_cap", "drain",
        "realloc", "tenants",
    }
    if unknown:
        raise ValueError(f"unknown scenario fields: {sorted(unknown)}")
    tenants = []
    for entry in doc.get("tenants", ()):
        phases = tuple(
            ArrivalPhase(at_ns=float(p["at_ns"]), rate_rps=float(p["rate_rps"]))
            for p in entry.get("phases", ())
        )
        tenants.append(
            TenantSpec(
                name=str(entry["name"]),
                model=str(entry["model"]),
                shape=str(entry.get("shape", "64x64")),
                strategy=tuple(entry.get("strategy", ())),
                rate_rps=float(entry.get("rate_rps", 500.0)),
                phases=phases,
                trace_ns=tuple(float(t) for t in entry.get("trace_ns", ())),
                slo_ns=float(entry.get("slo_ns", 5e6)),
            )
        )
    rc = doc.get("realloc", {})
    realloc = ReallocConfig(
        enabled=bool(rc.get("enabled", True)),
        threshold=float(rc.get("threshold", 0.2)),
        window=int(rc.get("window", 128)),
        check_every=int(rc.get("check_every", 32)),
        stall_ns=float(rc.get("stall_ns", 5e4)),
        cooldown_ns=float(rc.get("cooldown_ns", 1e7)),
        headroom=float(rc.get("headroom", 2.0)),
    )
    return Scenario(
        name=str(doc.get("name", "scenario")),
        tenants=tuple(tenants),
        duration_ns=float(doc.get("duration_ns", 2.5e8)),
        seed=int(doc.get("seed", 0)),
        max_batch=int(doc.get("max_batch", 8)),
        queue_cap=int(doc.get("queue_cap", 0)),
        drain=bool(doc.get("drain", False)),
        realloc=realloc,
    )


def load_scenario(path: str | Path) -> Scenario:
    """Read a scenario JSON file."""
    return scenario_from_dict(json.loads(Path(path).read_text()))


def save_scenario(scenario: Scenario, path: str | Path) -> None:
    """Write a scenario as reviewable JSON."""
    Path(path).write_text(
        json.dumps(scenario_to_dict(scenario), indent=2) + "\n"
    )


# ----------------------------------------------------------------------
# Reference scenarios
# ----------------------------------------------------------------------
def two_tenant_scenario(
    *,
    seed: int = 0,
    duration_ns: float = 2.5e8,
    realloc: bool = True,
) -> Scenario:
    """The checked-in two-tenant reference scenario.

    AlexNet and VGG16 co-located on one accelerator; at 100 ms the
    traffic mix inverts — AlexNet jumps from 400 to 1800 req/s (past its
    single-copy pipeline bandwidth of ~1386 req/s on 64x64 crossbars)
    while VGG16 falls from 700 to 300 req/s.  With re-allocation enabled
    the drift policy re-packs the accelerator with a second AlexNet
    weight copy, halving its bottleneck; with it disabled the AlexNet
    queue grows without bound and its SLO attainment collapses.
    """
    return Scenario(
        name="two-tenant",
        seed=seed,
        duration_ns=duration_ns,
        max_batch=8,
        queue_cap=512,
        realloc=ReallocConfig(
            enabled=realloc,
            threshold=0.15,
            window=128,
            check_every=32,
            stall_ns=5e4,
            cooldown_ns=2e7,
            headroom=2.0,
        ),
        tenants=(
            TenantSpec(
                name="alex",
                model="alexnet",
                shape="64x64",
                rate_rps=400.0,
                phases=(ArrivalPhase(at_ns=1e8, rate_rps=1800.0),),
                slo_ns=5e6,
            ),
            TenantSpec(
                name="vgg",
                model="vgg16",
                shape="128x128",
                rate_rps=700.0,
                phases=(ArrivalPhase(at_ns=1e8, rate_rps=300.0),),
                slo_ns=8e6,
            ),
        ),
    )


#: builtin scenarios the CLI accepts by name instead of a file path
BUILTIN_SCENARIOS = {
    "two-tenant": two_tenant_scenario,
}


def generate_arrivals(
    tenant: TenantSpec, duration_ns: float, seed: int
) -> list[float]:
    """Deterministic arrival times (ns) for one tenant over the horizon.

    An explicit ``trace_ns`` is used verbatim (clipped to the horizon).
    Otherwise a piecewise-constant Poisson process: exponential gaps at
    the rate of the phase the current time falls in.  The RNG stream is
    derived from ``(seed, tenant.name)`` through blake2b so it is stable
    across processes and independent of other tenants — adding a tenant
    never perturbs another tenant's arrivals.
    """
    if tenant.trace_ns:
        return [t for t in tenant.trace_ns if t < duration_ns]
    import hashlib
    import random

    digest = hashlib.blake2b(
        f"serve-arrivals:{seed}:{tenant.name}".encode(), digest_size=8
    ).digest()
    rng = random.Random(int.from_bytes(digest, "big"))

    # Rate schedule: [(start_ns, rate_rps)] with the base rate first.
    schedule = [(0.0, tenant.rate_rps)] + [
        (p.at_ns, p.rate_rps) for p in tenant.phases
    ]
    arrivals: list[float] = []
    now = 0.0
    segment = 0
    while now < duration_ns:
        while (
            segment + 1 < len(schedule) and now >= schedule[segment + 1][0]
        ):
            segment += 1
        rate = schedule[segment][1]
        if rate <= 0.0:
            # Dead segment: jump to the next phase boundary, if any.
            if segment + 1 < len(schedule):
                now = schedule[segment + 1][0]
                continue
            break
        gap_ns = rng.expovariate(rate) * NS_PER_S
        now += gap_ns
        if now >= duration_ns:
            break
        if (
            segment + 1 < len(schedule)
            and now >= schedule[segment + 1][0]
        ):
            # The gap crossed a rate boundary; restart the wait at the
            # boundary with the new rate (memorylessness makes this
            # exact for the piecewise process).
            now = schedule[segment + 1][0]
            segment += 1
            continue
        arrivals.append(now)
    return arrivals
