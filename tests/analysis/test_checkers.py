"""Per-rule tests for the structural checkers: one valid and one
violating fixture per rule id."""

import dataclasses

import pytest

from repro.analysis.checkers import (
    check_allocation,
    check_candidate_set,
    check_config,
    check_config_dict,
    check_mapping,
    check_network,
    check_plan_dict,
    check_shape,
)
from repro.analysis.invariants import InvariantViolation
from repro.arch.config import (
    DEFAULT_CANDIDATES,
    DEFAULT_CONFIG,
    CrossbarShape,
    HardwareConfig,
)
from repro.arch.mapping import map_layer
from repro.core.allocation import Tile, allocate_tile_based, apply_tile_sharing
from repro.models.datasets import CIFAR10
from repro.models.graph import Network
from repro.models.layers import LayerSpec, Stage
from repro.models.zoo import get_model, lenet, resnet152, vgg16
from repro.models.transformer import transformer_lm


def rule_ids(diags):
    return sorted({d.rule_id for d in diags})


# ----------------------------------------------------------------------
# Shapes / candidate sets
# ----------------------------------------------------------------------
class TestShapeChecks:
    def test_default_candidates_clean(self):
        assert check_candidate_set(DEFAULT_CANDIDATES) == []

    def test_rxb_height_not_multiple_of_9(self):
        assert rule_ids(check_shape(CrossbarShape(35, 32))) == ["SHP002"]

    def test_sxb_not_power_of_two(self):
        assert rule_ids(check_shape(CrossbarShape(48, 48))) == ["SHP003"]

    def test_candidate_set_aggregates(self):
        diags = check_candidate_set(
            (CrossbarShape(35, 32), CrossbarShape(48, 48), CrossbarShape(64, 64))
        )
        assert rule_ids(diags) == ["SHP002", "SHP003"]


# ----------------------------------------------------------------------
# Configs
# ----------------------------------------------------------------------
class TestConfigChecks:
    def test_default_config_clean(self):
        assert check_config(DEFAULT_CONFIG, DEFAULT_CANDIDATES) == []

    def test_under_resolved_adc_flagged(self):
        cfg = HardwareConfig(adc_bits=8)
        assert rule_ids(check_config(cfg, DEFAULT_CANDIDATES)) == ["CFG004"]

    def test_construction_rejects_what_checker_flags(self):
        # Runtime and static validation share rule implementations: the
        # same violation either raises at construction or is reported
        # from the dict checker, with the same rule id.
        with pytest.raises(InvariantViolation) as exc:
            HardwareConfig(weight_bits=7, cell_bits=2)
        assert "CFG002" in exc.value.rule_ids
        assert rule_ids(
            check_config_dict({"weight_bits": 7, "cell_bits": 2})
        ) == ["CFG002"]

    def test_config_dict_partial_and_defaults(self):
        assert check_config_dict({}) == []
        assert rule_ids(check_config_dict({"pes_per_tile": 0})) == ["CFG001"]
        assert rule_ids(check_config_dict({"input_bits": 8, "dac_bits": 3})) == [
            "CFG003"
        ]

    def test_config_dict_non_integer_value(self):
        assert rule_ids(check_config_dict({"adc_bits": "lots"})) == ["CFG001"]

    def test_config_dict_adc_vs_shapes(self):
        diags = check_config_dict({"adc_bits": 6}, (CrossbarShape(576, 512),))
        assert rule_ids(diags) == ["CFG004"]


# ----------------------------------------------------------------------
# Mappings (Eq. 4)
# ----------------------------------------------------------------------
def _conv(cin=12, cout=128, k=3):
    return LayerSpec.conv(cin, cout, k, input_size=32)


class TestMappingChecks:
    def test_valid_mappings_clean(self):
        for shape in DEFAULT_CANDIDATES:
            assert check_mapping(map_layer(_conv(), shape)) == []

    def test_kernel_split_mapping_clean(self):
        # 7x7 stem on a 32-row crossbar engages the fallback — still valid.
        stem = LayerSpec.conv(3, 64, 7, stride=2, padding=3, input_size=224)
        mapping = map_layer(stem, CrossbarShape(32, 32))
        assert mapping.kernel_split
        assert check_mapping(mapping) == []

    def test_map001_utilization_out_of_bounds(self):
        good = map_layer(_conv(), CrossbarShape(72, 64))
        # num_crossbars shrunk below what the weights need -> u > 1.
        bad = dataclasses.replace(good, row_groups=1, col_groups=1)
        ids = rule_ids(check_mapping(bad))
        assert "MAP001" in ids and "MAP003" in ids

    def test_map002_kernel_split_flag_flipped(self):
        good = map_layer(_conv(), CrossbarShape(72, 64))
        bad = dataclasses.replace(good, kernel_split=True)
        assert "MAP002" in rule_ids(check_mapping(bad))

    def test_map003_group_arithmetic_drift(self):
        good = map_layer(_conv(), CrossbarShape(72, 64))
        bad = dataclasses.replace(good, row_groups=good.row_groups + 3)
        assert "MAP003" in rule_ids(check_mapping(bad))


# ----------------------------------------------------------------------
# Model graphs
# ----------------------------------------------------------------------
class TestNetworkChecks:
    @pytest.mark.parametrize(
        "name",
        ["lenet", "alexnet", "vgg16", "resnet152", "tiny_cnn", "transformer"],
    )
    def test_zoo_models_clean(self, name):
        assert check_network(get_model(name)) == []

    def test_net001_index_desync(self):
        net = lenet()
        stages = tuple(
            Stage(layer=s.layer.with_index(s.layer.index + 1))
            if s.layer is not None
            else s
            for s in net.stages
        )
        broken = Network(name="Broken", dataset=net.dataset, stages=stages)
        assert "NET001" in rule_ids(check_network(broken))

    def test_net002_dangling_layer(self):
        layers = [
            LayerSpec.conv(3, 64, 3, input_size=32, name="c1").with_index(0),
            # consumes 57 channels nothing produces:
            LayerSpec.conv(57, 64, 3, input_size=32, name="c2").with_index(1),
        ]
        broken = Network(
            name="Dangling",
            dataset=CIFAR10,
            stages=tuple(Stage(layer=l) for l in layers),
        )
        assert "NET002" in rule_ids(check_network(broken))

    def test_net003_kernel_exceeds_padded_input(self):
        layers = [
            LayerSpec.conv(3, 8, 7, input_size=4, padding=0, name="huge").with_index(0)
        ]
        broken = Network(
            name="BigKernel",
            dataset=CIFAR10,
            stages=tuple(Stage(layer=l) for l in layers),
        )
        assert "NET003" in rule_ids(check_network(broken))

    def test_branchy_topologies_not_misflagged(self):
        # ResNet's projection shortcuts and the transformer's flat FC
        # stack are built without sequential chaining; the producible-
        # width rule must accept both.
        assert check_network(resnet152()) == []
        assert check_network(transformer_lm(num_blocks=2, d_model=64)) == []


# ----------------------------------------------------------------------
# Allocation plans (object level)
# ----------------------------------------------------------------------
def small_allocation(tile_shared=False):
    net = vgg16()
    mappings = [map_layer(l, CrossbarShape(64, 64)) for l in net.layers[:4]]
    alloc = allocate_tile_based(mappings, 4)
    return apply_tile_sharing(alloc) if tile_shared else alloc


class TestAllocationChecks:
    def test_tile_based_plan_clean(self):
        assert check_allocation(small_allocation()) == []

    def test_tile_shared_plan_clean(self):
        assert check_allocation(small_allocation(tile_shared=True)) == []

    def test_alc003_dropped_tile(self):
        alloc = small_allocation()
        broken = dataclasses.replace(alloc, tiles=alloc.tiles[:-1])
        assert "ALC003" in rule_ids(check_allocation(broken))

    def test_alc002_double_booked_layer(self):
        alloc = small_allocation()
        extra = Tile(999, alloc.tiles[0].shape, alloc.tile_capacity)
        extra.add(0, 1)  # layer 0's crossbars are already fully placed
        broken = dataclasses.replace(alloc, tiles=alloc.tiles + (extra,))
        assert "ALC002" in rule_ids(check_allocation(broken))

    def test_alc004_geometry_mismatch(self):
        alloc = small_allocation()
        rogue = Tile(999, CrossbarShape(128, 128), alloc.tile_capacity)
        rogue.add(0, 1)
        broken = dataclasses.replace(alloc, tiles=alloc.tiles + (rogue,))
        ids = rule_ids(check_allocation(broken))
        assert "ALC004" in ids and "ALC002" in ids

    def test_alc006_absorbed_tile_still_present(self):
        shared = small_allocation(tile_shared=True)
        if not shared.comb_map:
            pytest.skip("no merges occurred for this fixture")
        head_id, tail_ids = next(iter(shared.comb_map.items()))
        ghost = Tile(tail_ids[0], shared.tiles[0].shape, shared.tile_capacity)
        broken = dataclasses.replace(shared, tiles=shared.tiles + (ghost,))
        assert "ALC006" in rule_ids(check_allocation(broken))

    def test_alc007_capacity_drift(self):
        alloc = small_allocation()
        odd = Tile(999, alloc.tiles[0].shape, alloc.tile_capacity + 2)
        broken = dataclasses.replace(alloc, tiles=alloc.tiles + (odd,))
        assert "ALC007" in rule_ids(check_allocation(broken))

    def test_validate_raises_with_rule_ids(self):
        alloc = small_allocation()
        broken = dataclasses.replace(alloc, tiles=alloc.tiles[:-1])
        with pytest.raises(InvariantViolation) as exc:
            broken.validate()
        assert "ALC003" in exc.value.rule_ids


# ----------------------------------------------------------------------
# Allocation plans (dict level)
# ----------------------------------------------------------------------
class TestPlanDictChecks:
    def plan(self, **overrides):
        base = {
            "tile_capacity": 4,
            "layers": [
                {"index": 0, "shape": "64x64", "num_crossbars": 4},
                {"index": 1, "shape": "64x64", "num_crossbars": 2},
            ],
            "tiles": [
                {
                    "tile_id": 0,
                    "shape": "64x64",
                    "capacity": 4,
                    "occupants": {"0": 4},
                },
                {
                    "tile_id": 1,
                    "shape": "64x64",
                    "capacity": 4,
                    "occupants": {"1": 2},
                },
            ],
            "comb_map": {},
        }
        base.update(overrides)
        return base

    def test_clean_plan(self):
        assert check_plan_dict(self.plan()) == []

    def test_alc001_over_capacity_tile(self):
        plan = self.plan()
        plan["tiles"][0]["occupants"] = {"0": 4, "1": 2}
        ids = rule_ids(check_plan_dict(plan))
        assert "ALC001" in ids and "ALC002" in ids

    def test_alc005_zero_count_occupant(self):
        plan = self.plan()
        plan["tiles"][1]["occupants"] = {"1": 2, "0": 0}
        assert "ALC005" in rule_ids(check_plan_dict(plan))

    def test_alc006_comb_map_mismatch(self):
        plan = self.plan(comb_map={"0": [1]})  # tile 1 still present
        assert "ALC006" in rule_ids(check_plan_dict(plan))

    def test_unknown_layer_reference(self):
        plan = self.plan()
        plan["tiles"][1]["occupants"] = {"7": 2}
        ids = rule_ids(check_plan_dict(plan))
        assert "ALC002" in ids and "ALC003" in ids
