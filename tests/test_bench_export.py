"""Tests for the JSON/CSV experiment exporters."""

import csv
import io
import json

import pytest

from repro.bench import (
    fig4_empty_crossbars,
    fig5_tradeoff,
    fig9_overall,
    fig10_ablation,
    fig11b_candidate_count,
    fig3_motivation,
    table3_strategies,
    table4_tiles,
)
from repro.bench.export import (
    ablation_to_records,
    fig4_to_records,
    fig5_to_records,
    overall_to_records,
    rows_to_records,
    sensitivity_to_records,
    table3_to_records,
    table4_to_records,
    to_csv,
    to_json,
)
from repro.models import lenet

FAST = dict(rounds=8, seed=0)


class TestRecordBuilders:
    def test_rows_records(self):
        records = rows_to_records(fig3_motivation())
        assert len(records) == 6
        assert records[0]["accelerator"] == "32x32"
        assert all("rue" in r and "energy_nj" in r for r in records)

    def test_rows_records_extra_columns(self):
        records = rows_to_records(fig3_motivation(), model="VGG16")
        assert all(r["model"] == "VGG16" for r in records)

    def test_overall_records(self):
        records = overall_to_records(fig9_overall([lenet()], **FAST))
        assert len(records) == 6
        assert {r["model"] for r in records} == {"LeNet"}

    def test_ablation_records(self):
        records = ablation_to_records(fig10_ablation([lenet()], **FAST))
        assert [r["accelerator"] for r in records] == ["Base", "+He", "+Hy", "All"]

    def test_fig4_records(self):
        records = fig4_to_records(fig4_empty_crossbars())
        assert len(records) == 16  # 4 layers x 4 tile sizes
        assert all(0 <= r["empty_fraction"] <= 1 for r in records)

    def test_fig5_records(self):
        records = fig5_to_records(fig5_tradeoff())
        assert records[0]["activated_adcs"] == 256

    def test_sensitivity_records(self):
        points = fig11b_candidate_count(counts=(2,), **FAST)
        records = sensitivity_to_records(points, x_label="count")
        assert records[0]["count"] == "2"
        assert records[0]["speedup"] > 0

    def test_table3_records(self):
        records = table3_to_records(table3_strategies(**FAST))
        assert len(records) == 16
        assert set(records[0]) == {"layer", "Base", "+He", "+Hy"}

    def test_table4_records(self):
        records = table4_to_records(table4_tiles([lenet()], **FAST))
        assert len(records) == 2
        assert {r["variant"] for r in records} == {"+Hy", "All"}


class TestWriters:
    @pytest.fixture(scope="class")
    def records(self):
        return rows_to_records(fig3_motivation())

    def test_json_round_trip(self, records):
        assert json.loads(to_json(records)) == json.loads(
            json.dumps(records, sort_keys=True)
        )

    def test_json_file(self, records, tmp_path):
        path = tmp_path / "fig3.json"
        to_json(records, path)
        assert len(json.loads(path.read_text())) == 6

    def test_csv_header_union(self, records):
        text = to_csv(records)
        reader = csv.DictReader(io.StringIO(text))
        rows = list(reader)
        assert len(rows) == 6
        assert "accelerator" in reader.fieldnames
        assert "rue" in reader.fieldnames

    def test_csv_file(self, records, tmp_path):
        path = tmp_path / "fig3.csv"
        to_csv(records, path)
        assert path.read_text().startswith("accelerator")

    def test_csv_empty(self):
        assert to_csv([]) == ""

    def test_csv_values_parse_back(self, records):
        text = to_csv(records)
        rows = list(csv.DictReader(io.StringIO(text)))
        assert float(rows[0]["utilization_percent"]) == pytest.approx(
            records[0]["utilization_percent"]
        )
