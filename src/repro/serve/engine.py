"""Deterministic discrete-event serving simulator.

Drives request-level multi-tenant traffic (:mod:`repro.serve.scenario`)
across models co-located by
:func:`repro.core.allocation.allocate_multi_network`, with service times
taken from the PipeLayer-style stage model in :mod:`repro.sim.pipeline`.

Queueing model (docs/serving.md):

* Each tenant owns a FIFO queue (bounded by ``queue_cap``; overflowing
  arrivals are *rejected*) in front of its layer pipeline.
* The pipeline is weight-stationary and streams: its input admits one
  request every ``bottleneck_ns`` and each admitted request completes
  ``fill_ns`` after entering.  Dispatch happens in batches of up to
  ``max_batch`` — a batch of ``k`` occupies the input conveyor for
  ``k * bottleneck_ns`` and its ``j``-th request completes at
  ``dispatch + j * bottleneck_ns + fill_ns`` (exactly the
  ``fill + (N-1) * bottleneck`` batch law of
  :class:`repro.sim.pipeline.PipelineReport`).
* A re-allocation (policy hook, :mod:`repro.serve.policy`) re-packs the
  accelerator with per-tenant weight replication, re-times every
  pipeline, and stalls dispatch for the configured weight-rewrite cost;
  batches already in flight drain on the old weights.

Determinism is a contract, not an accident: the event heap is ordered
by ``(time, insertion sequence)``, all randomness flows from
per-tenant blake2b-derived :class:`random.Random` streams, and nothing
reads a wall clock — the same scenario and seed reproduce the event
log byte for byte (``tests/serve/test_event_loop.py`` proves it with
hypothesis).  Tracing is read-only: a live tracer adds ``serve.*``
records but never changes an outcome.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from ..arch.config import DEFAULT_CONFIG, CrossbarShape, HardwareConfig
from ..core.allocation.multi_model import (
    MultiModelAllocation,
    allocate_multi_network,
)
from ..models.graph import Network
from ..models.zoo import get_model
from ..obs import current_tracer
from ..obs.metrics import (
    EVENT_SERVE_REALLOC,
    EVENT_SERVE_REJECT,
    emit_serve_batch,
    emit_serve_request,
)
from ..sim.pipeline import pipeline_report
from ..sim.units_constants import NS_PER_S
from .policy import DriftReallocationPolicy, ReallocationPolicy
from .scenario import Scenario, generate_arrivals

#: event kinds, in heap payload position 2 (tie-break is insertion seq)
_ARRIVAL = 0
_INPUT_FREE = 1
_COMPLETE = 2
_WAKE = 3


@dataclass
class _TenantState:
    """Mutable per-tenant serving state."""

    index: int
    name: str
    network: Network
    strategy: tuple[CrossbarShape, ...]
    slo_ns: float
    bottleneck_ns: float
    fill_ns: float
    replication: int = 1
    queue: deque = field(default_factory=deque)
    input_busy: bool = False
    stall_until_ns: float = 0.0
    arrivals: int = 0
    completed: int = 0
    rejected: int = 0
    latencies: list[float] = field(default_factory=list)
    waits: list[float] = field(default_factory=list)

    def retime(self, replication: int) -> None:
        """Re-derive pipeline service times for a new replication factor."""
        report = pipeline_report(
            self.network,
            self.strategy,
            replication=[replication] * self.network.num_layers,
        )
        self.replication = replication
        self.bottleneck_ns = report.bottleneck_ns
        self.fill_ns = report.fill_ns


@dataclass(frozen=True)
class TenantResult:
    """Immutable per-tenant outcome of one serving run."""

    name: str
    model: str
    slo_ns: float
    arrivals: int
    completed: int
    rejected: int
    replication: int
    latencies_ns: tuple[float, ...]
    waits_ns: tuple[float, ...]

    @property
    def in_flight(self) -> int:
        """Requests neither completed nor rejected at the horizon."""
        return self.arrivals - self.completed - self.rejected


@dataclass(frozen=True)
class ServeResult:
    """Complete outcome of one serving run (input to the report layer)."""

    scenario: Scenario
    tenants: tuple[TenantResult, ...]
    event_log: tuple[dict[str, Any], ...]
    realloc_events: tuple[dict[str, Any], ...]
    end_ns: float
    events_processed: int
    initial_tiles: int
    final_tiles: int
    tile_budget: int

    @property
    def total_arrivals(self) -> int:
        return sum(t.arrivals for t in self.tenants)

    @property
    def total_completed(self) -> int:
        return sum(t.completed for t in self.tenants)

    @property
    def total_rejected(self) -> int:
        return sum(t.rejected for t in self.tenants)


def simulate(
    scenario: Scenario,
    *,
    config: HardwareConfig = DEFAULT_CONFIG,
    policy: ReallocationPolicy | None = None,
    tracer=None,
    record_events: bool = True,
) -> ServeResult:
    """Run one serving scenario to completion.

    ``policy`` overrides the default drift policy built from
    ``scenario.realloc`` (pass one to plug in a custom re-allocation
    strategy; it is only consulted when ``scenario.realloc.enabled``).
    ``record_events`` keeps the full event log (on by default; the
    throughput benchmark leaves it on too — logging is part of the
    simulator's contract, not overhead to shed).
    """
    tracer = current_tracer() if tracer is None else tracer
    capacity = config.logical_xbars_per_tile

    # --- static setup: tenants, initial Algorithm-1 packing -----------
    tenants: list[_TenantState] = []
    for index, spec in enumerate(scenario.tenants):
        network = get_model(spec.model)
        strategy = spec.strategy_shapes(network.num_layers)
        state = _TenantState(
            index=index,
            name=spec.name,
            network=network,
            strategy=strategy,
            slo_ns=spec.slo_ns,
            bottleneck_ns=0.0,
            fill_ns=0.0,
        )
        state.retime(1)
        tenants.append(state)

    workloads = [(t.network, t.strategy) for t in tenants]
    allocation = allocate_multi_network(workloads, capacity)
    initial_tiles = allocation.occupied_tiles
    tile_budget = int(scenario.realloc.headroom * initial_tiles)

    realloc_cfg = scenario.realloc
    if policy is None:
        policy = DriftReallocationPolicy(
            threshold=realloc_cfg.threshold,
            cooldown_ns=realloc_cfg.cooldown_ns,
        )

    # --- arrivals ------------------------------------------------------
    heap: list[tuple[float, int, int, int, int, float]] = []
    seq = 0

    def push(t: float, kind: int, tenant: int, req: int, arrival: float):
        nonlocal seq
        heapq.heappush(heap, (t, seq, kind, tenant, req, arrival))
        seq += 1

    per_tenant_arrivals = [
        generate_arrivals(spec, scenario.duration_ns, scenario.seed)
        for spec in scenario.tenants
    ]
    merged = sorted(
        (t, idx)
        for idx, times in enumerate(per_tenant_arrivals)
        for t in times
    )
    for req_id, (t, idx) in enumerate(merged):
        push(t, _ARRIVAL, idx, req_id, t)

    # Provisioned mix: what the initial allocation was sized for.
    expected_rates = [
        len(times) / scenario.duration_ns * NS_PER_S
        for times in per_tenant_arrivals
    ]
    rate_total = sum(expected_rates)
    provisioned_share = [
        (r / rate_total if rate_total else 1.0 / len(tenants))
        for r in expected_rates
    ]

    # --- event loop ----------------------------------------------------
    log: list[dict[str, Any]] = []
    realloc_log: list[dict[str, Any]] = []
    window: deque = deque(maxlen=realloc_cfg.window)
    arrivals_seen = 0
    last_realloc_ns = float("-inf")
    current_replication = [1] * len(tenants)
    events_processed = 0
    end_ns = scenario.duration_ns
    traced = tracer.enabled

    def dispatch(state: _TenantState, now: float) -> None:
        """Admit up to ``max_batch`` queued requests into the pipeline."""
        if state.input_busy or now < state.stall_until_ns or not state.queue:
            return
        k = min(scenario.max_batch, len(state.queue))
        b = state.bottleneck_ns
        for j in range(k):
            req_id, arrival = state.queue.popleft()
            done = now + j * b + state.fill_ns
            push(done, _COMPLETE, state.index, req_id, arrival)
        state.input_busy = True
        push(now + k * b, _INPUT_FREE, state.index, -1, now)
        if record_events:
            log.append(
                {"t": now, "kind": "dispatch", "tenant": state.name, "batch": k}
            )
        if traced:
            emit_serve_batch(tracer, tenant=state.name, batch_size=k)

    def apply_realloc(decision, now: float) -> None:
        nonlocal last_realloc_ns, provisioned_share, current_replication
        last_realloc_ns = now
        provisioned_share = list(decision.observed_share)
        current_replication = list(decision.replication)
        for state, reps in zip(tenants, decision.replication):
            if state.replication != reps:
                state.retime(reps)
            state.stall_until_ns = now + realloc_cfg.stall_ns
            # Idle tenants need a wake-up once the weight rewrite ends.
            if not state.input_busy:
                push(now + realloc_cfg.stall_ns, _WAKE, state.index, -1, now)
        entry = {
            "t": now,
            "kind": "realloc",
            "replication": list(decision.replication),
            "tiles": decision.allocation.occupied_tiles,
            "tiles_saved": decision.allocation.tiles_saved,
            "drift": decision.drift,
            "observed_share": list(decision.observed_share),
        }
        realloc_log.append(entry)
        if record_events:
            log.append(dict(entry))
        if traced:
            tracer.event(
                EVENT_SERVE_REALLOC,
                tiles=decision.allocation.occupied_tiles,
                drift=decision.drift,
                replication=",".join(map(str, decision.replication)),
            )

    def maybe_realloc(now: float) -> None:
        if not realloc_cfg.enabled or len(window) < realloc_cfg.window:
            return
        if arrivals_seen % realloc_cfg.check_every:
            return
        counts = [0] * len(tenants)
        for idx in window:
            counts[idx] += 1
        observed = [c / len(window) for c in counts]
        decision = policy.decide(
            now_ns=now,
            observed_share=observed,
            provisioned_share=provisioned_share,
            current_replication=current_replication,
            workloads=workloads,
            tile_capacity=capacity,
            tile_budget=tile_budget,
            last_realloc_ns=last_realloc_ns,
        )
        if decision is not None:
            apply_realloc(decision, now)

    while heap:
        t, _, kind, idx, req_id, arrival = heapq.heappop(heap)
        if not scenario.drain and t > scenario.duration_ns:
            break
        events_processed += 1
        state = tenants[idx]
        if kind == _ARRIVAL:
            state.arrivals += 1
            arrivals_seen += 1
            window.append(idx)
            if scenario.queue_cap and len(state.queue) >= scenario.queue_cap:
                state.rejected += 1
                if record_events:
                    log.append(
                        {"t": t, "kind": "reject", "tenant": state.name,
                         "req": req_id}
                    )
                if traced:
                    tracer.event(EVENT_SERVE_REJECT, tenant=state.name)
            else:
                state.queue.append((req_id, arrival))
                if record_events:
                    log.append(
                        {"t": t, "kind": "arrival", "tenant": state.name,
                         "req": req_id}
                    )
                dispatch(state, t)
            maybe_realloc(t)
        elif kind == _INPUT_FREE:
            state.input_busy = False
            if t < state.stall_until_ns:
                # Weight rewrite in progress: resume when it ends.
                push(state.stall_until_ns, _WAKE, state.index, -1, t)
            else:
                dispatch(state, t)
        elif kind == _COMPLETE:
            state.completed += 1
            latency = t - arrival
            # (arrival + fill) - arrival rounds below fill for large
            # arrival times; the queueing share is never negative.
            wait = max(0.0, latency - state.fill_ns)
            state.latencies.append(latency)
            state.waits.append(wait)
            if record_events:
                log.append(
                    {"t": t, "kind": "complete", "tenant": state.name,
                     "req": req_id, "latency_ns": latency}
                )
            if traced:
                emit_serve_request(
                    tracer,
                    tenant=state.name,
                    latency_ns=latency,
                    wait_ns=wait,
                    queue_depth=len(state.queue),
                )
            if scenario.drain and t > end_ns:
                end_ns = t
        else:  # _WAKE after a re-allocation stall
            dispatch(state, t)

    if any(r != 1 for r in current_replication):
        final_tiles = allocate_multi_network(
            workloads, capacity, replication=current_replication
        ).occupied_tiles
    else:
        final_tiles = initial_tiles

    results = tuple(
        TenantResult(
            name=s.name,
            model=spec.model,
            slo_ns=s.slo_ns,
            arrivals=s.arrivals,
            completed=s.completed,
            rejected=s.rejected,
            replication=s.replication,
            latencies_ns=tuple(s.latencies),
            waits_ns=tuple(s.waits),
        )
        for s, spec in zip(tenants, scenario.tenants)
    )
    return ServeResult(
        scenario=scenario,
        tenants=results,
        event_log=tuple(log),
        realloc_events=tuple(realloc_log),
        end_ns=end_ns,
        events_processed=events_processed,
        initial_tiles=initial_tiles,
        final_tiles=final_tiles,
        tile_budget=tile_budget,
    )


def initial_allocation(
    scenario: Scenario, *, config: HardwareConfig = DEFAULT_CONFIG
) -> MultiModelAllocation:
    """The Algorithm-1 packing a scenario starts from (no replication)."""
    workloads = []
    for spec in scenario.tenants:
        network = get_model(spec.model)
        workloads.append((network, spec.strategy_shapes(network.num_layers)))
    return allocate_multi_network(workloads, config.logical_xbars_per_tile)
