"""The zoo must reproduce paper Table 2 exactly."""

from collections import Counter

import pytest

from repro.models import (
    CIFAR10,
    IMAGENET,
    MNIST,
    alexnet,
    get_model,
    lenet,
    paper_workloads,
    resnet152,
    tiny_cnn,
    vgg16,
)
from repro.models.layers import LayerType


def conv_histogram(net):
    counts = Counter()
    for layer in net.layers:
        if layer.layer_type is LayerType.CONV:
            counts[(layer.kernel_size, layer.out_channels)] += 1
    return counts


class TestAlexNet:
    """Table 2: C3-64, C3-192, C3-384, 2C3-256, F4096, F4096, F10."""

    def test_structure(self):
        net = alexnet()
        convs = [(l.kernel_size, l.out_channels) for l in net.conv_layers()]
        assert convs == [(3, 64), (3, 192), (3, 384), (3, 256), (3, 256)]
        fcs = [l.out_channels for l in net.fc_layers()]
        assert fcs == [4096, 4096, 10]

    def test_dataset_is_mnist(self):
        assert alexnet().dataset.name == "MNIST"

    def test_layer_count(self):
        assert alexnet().num_layers == 8


class TestVGG16:
    """Table 2: 2C3-64, 2C3-128, 3C3-256, 6C3-512, F4096, F1000, F10."""

    def test_conv_structure(self):
        hist = conv_histogram(vgg16())
        assert hist[(3, 64)] == 2
        assert hist[(3, 128)] == 2
        assert hist[(3, 256)] == 3
        assert hist[(3, 512)] == 6

    def test_fc_structure(self):
        fcs = [l.out_channels for l in vgg16().fc_layers()]
        assert fcs == [4096, 1000, 10]

    def test_sixteen_weight_layers(self):
        assert vgg16().num_layers == 16

    def test_dataset_is_cifar10(self):
        assert vgg16().dataset.name == "CIFAR-10"

    def test_spatial_flow(self):
        net = vgg16()
        sizes = [l.input_size for l in net.conv_layers()]
        assert sizes == [32, 32, 16, 16, 8, 8, 8, 4, 4, 4, 2, 2, 2]


class TestResNet152:
    """Table 2: C7-64, 3C1-64, 8C1-128, 40C1-256, 12C1-512, 37C1-1024,
    4C1-2048, 3C3-64, 8C3-128, 36C3-256, 3C3-512, F1000."""

    EXPECTED = {
        (7, 64): 1,
        (1, 64): 3,
        (1, 128): 8,
        (1, 256): 40,
        (1, 512): 12,
        (1, 1024): 37,
        (1, 2048): 4,
        (3, 64): 3,
        (3, 128): 8,
        (3, 256): 36,
        (3, 512): 3,
    }

    def test_conv_histogram_matches_table2(self):
        assert dict(conv_histogram(resnet152())) == self.EXPECTED

    def test_single_fc_1000(self):
        fcs = resnet152().fc_layers()
        assert len(fcs) == 1 and fcs[0].out_channels == 1000

    def test_dataset_is_imagenet(self):
        assert resnet152().dataset.name == "ImageNet"

    def test_stem_sees_224(self):
        assert resnet152().layers[0].input_size == 224

    def test_final_stage_at_7x7(self):
        convs = [
            l for l in resnet152().conv_layers()
            if l.out_channels == 2048 and l.name.endswith("_c")
        ]
        assert len(convs) == 3
        assert all(l.input_size == 7 for l in convs)


class TestSmallNets:
    def test_lenet_structure(self):
        net = lenet()
        assert net.num_layers == 5
        assert [l.out_channels for l in net.fc_layers()] == [120, 84, 10]

    def test_tiny_cnn(self):
        net = tiny_cnn()
        assert net.num_layers == 4


class TestRegistry:
    @pytest.mark.parametrize(
        "name", ["alexnet", "vgg16", "VGG16", "resnet152", "ResNet-152", "lenet"]
    )
    def test_lookup_variants(self, name):
        assert get_model(name).num_layers > 0

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            get_model("googlenet")

    def test_dataset_rebinding(self):
        net = get_model("lenet", "cifar-10")
        assert net.dataset.name == "CIFAR-10"
        assert net.layers[0].in_channels == 3

    def test_paper_workloads_pairing(self):
        nets = paper_workloads()
        assert [(n.name, n.dataset.name) for n in nets] == [
            ("AlexNet", "MNIST"),
            ("VGG16", "CIFAR-10"),
            ("ResNet152", "ImageNet"),
        ]
