"""Fixed-point quantization and bit-slicing for the functional engine.

The paper quantizes weights to 8 bits and stores them across a group of
eight 1-bit-cell crossbars (§4.1).  Memristor conductances are
non-negative, so signed weights use **offset (biased) encoding** — the
ISAAC convention: a signed ``b``-bit weight ``q`` is stored as
``q + 2^(b-1)`` (in ``[0, 2^b - 1]``) and the dot product is corrected by
subtracting ``2^(b-1) * sum(x)`` afterwards.  Activations are unsigned
(post-ReLU) and stream in bit-serially through 1-bit DACs.

Everything here is integer-exact, which is what makes the engine's
"crossbar output equals the integer matrix product" property testable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class QuantizedTensor:
    """An integer tensor plus the scale mapping it back to real values."""

    values: np.ndarray  #: integer array (int64)
    scale: float        #: real = values * scale
    bits: int
    signed: bool

    def dequantize(self) -> np.ndarray:
        return self.values.astype(np.float64) * self.scale

    @property
    def qmin(self) -> int:
        return -(2 ** (self.bits - 1)) + 1 if self.signed else 0

    @property
    def qmax(self) -> int:
        return 2 ** (self.bits - 1) - 1 if self.signed else 2**self.bits - 1


def quantize(x: np.ndarray, bits: int, *, signed: bool) -> QuantizedTensor:
    """Symmetric linear quantization of a real tensor.

    Signed tensors map ``[-max|x|, +max|x|]`` onto ``[-(2^(b-1)-1),
    2^(b-1)-1]``; unsigned tensors map ``[0, max x]`` onto
    ``[0, 2^b - 1]``.  An all-zero tensor quantizes to zeros with scale 1.
    """
    if bits <= 0:
        raise ValueError("bits must be positive")
    x = np.asarray(x, dtype=np.float64)
    if signed:
        qmax = 2 ** (bits - 1) - 1
        peak = float(np.max(np.abs(x))) if x.size else 0.0
    else:
        if x.size and float(np.min(x)) < 0:
            raise ValueError("unsigned quantization requires non-negative input")
        qmax = 2**bits - 1
        peak = float(np.max(x)) if x.size else 0.0
    if qmax == 0:
        # bits == 1, signed: the representable range collapses to {0} and
        # ``peak / qmax`` below would divide by zero.
        raise ValueError("signed quantization requires at least 2 bits")
    if peak == 0.0:  # numeric-ok: NUM004 (exact all-zero sentinel; guards the scale division)
        return QuantizedTensor(
            np.zeros(x.shape, dtype=np.int64), 1.0, bits, signed
        )
    scale = peak / qmax
    if scale == 0.0:  # numeric-ok: NUM004 (exact underflow sentinel; see comment below)
        # A subnormal peak can underflow ``peak / qmax`` to zero, and
        # dividing by that turns zeros into NaN (cast to INT64_MIN) and
        # everything else into ±inf.  Clamp to the smallest subnormal:
        # every float below such a peak is an exact integer multiple of
        # it, so the quantization is exact and stays inside [qmin, qmax].
        scale = math.ulp(0.0)
    q = np.clip(np.round(x / scale), -qmax if signed else 0, qmax)
    return QuantizedTensor(q.astype(np.int64), scale, bits, signed)


def offset_encode(q: np.ndarray, bits: int) -> np.ndarray:
    """Bias a signed integer tensor into the unsigned cell domain."""
    offset = 2 ** (bits - 1)
    encoded = np.asarray(q, dtype=np.int64) + offset
    if encoded.min(initial=0) < 0 or encoded.max(initial=0) > 2**bits - 1:
        raise ValueError(f"values out of range for {bits}-bit offset encoding")
    return encoded


def offset_decode_dot(
    encoded_dot: np.ndarray, x_sum: int | np.ndarray, bits: int
) -> np.ndarray:
    """Undo offset encoding after a dot product.

    ``(q + o) . x = q . x + o * sum(x)`` with ``o = 2^(b-1)``, so the true
    product is the encoded product minus ``o * sum(x)``.
    """
    offset = 2 ** (bits - 1)
    return np.asarray(encoded_dot, dtype=np.int64) - offset * np.asarray(
        x_sum, dtype=np.int64
    )


def bit_slices(values: np.ndarray, bits: int) -> np.ndarray:
    """Decompose unsigned integers into binary planes, LSB first.

    Returns an array of shape ``(bits, *values.shape)`` with entries in
    {0, 1} such that ``sum_b 2^b * slices[b] == values``.
    """
    v = np.asarray(values, dtype=np.int64)
    if v.min(initial=0) < 0 or v.max(initial=0) > 2**bits - 1:
        raise ValueError(f"values out of range for {bits}-bit slicing")
    planes = np.empty((bits,) + v.shape, dtype=np.int64)
    for b in range(bits):
        planes[b] = (v >> b) & 1
    return planes


def from_bit_slices(planes: np.ndarray) -> np.ndarray:
    """Inverse of :func:`bit_slices` (LSB-first binary planes)."""
    planes = np.asarray(planes, dtype=np.int64)
    weights = (1 << np.arange(planes.shape[0], dtype=np.int64)).reshape(
        (-1,) + (1,) * (planes.ndim - 1)
    )
    return (planes * weights).sum(axis=0)
