"""Evaluation caching for the behavioral simulator (the §4.5 hot path).

The paper measures ~97% of AutoHet's search time waiting on simulator
feedback, and every search strategy in this repo — DDPG, annealing,
coordinate ascent, random, exhaustive — revisits whole strategies and
per-layer shapes constantly.  Since :meth:`Simulator.evaluate
<repro.sim.simulator.Simulator.evaluate>` is pure and deterministic, its
results can be memoised outright:

* :class:`EvaluationCache` — a bounded, thread-safe LRU over full
  ``(config, network, strategy, tile_shared, detailed)`` evaluations,
  with hit / miss / eviction counters.  Infeasible strategies (those that
  raise :class:`~repro.sim.simulator.CapacityError`) are cached too, so a
  search random-walking near a capacity cliff does not re-pay the failed
  allocation every round.
* process-stable content fingerprints for :class:`HardwareConfig` and
  :class:`Network` (blake2b over a canonical field tuple), so cache keys
  survive object identity churn *and* are comparable across interpreter
  runs and ``evaluate_many(mode="process")`` workers regardless of
  ``PYTHONHASHSEED``.

The fingerprint coverage is a checked contract, not a convention:
:data:`FINGERPRINTED_FIELDS` declares exactly which fields each key
component folds in, and ``repro check --cache-safety``
(:func:`repro.analysis.dataflow.analyze_cache_safety`) statically proves
that the evaluation reads nothing outside it.  Extend the fingerprints
and the table together — the analyzer fails the build when they drift.

See ``docs/performance.md`` for the keying rules and usage guidance.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, fields
from enum import Enum
from functools import lru_cache
from hashlib import blake2b
from typing import Hashable, Mapping

from ..analysis.invariants import CAC004, Diagnostic
from ..arch.config import CrossbarShape, HardwareConfig
from ..models.graph import Network

#: A cache key: every component pre-reduced to a compact hashable value.
CacheKey = Hashable

# ----------------------------------------------------------------------
# Fingerprint coverage contract
# ----------------------------------------------------------------------

#: Every :class:`HardwareConfig` field participates in the key — the
#: evaluation reads essentially all of them (energy/latency/area tables,
#: bit widths, tile geometry), so the fingerprint folds the whole record.
_CONFIG_FIELDS: tuple[str, ...] = tuple(f.name for f in fields(HardwareConfig))

#: Mapping-relevant identity of one layer.  Derived properties
#: (``kernel_elems``, ``weight_count``, ``mvm_ops``, ``output_size``) are
#: pure functions of these, so folding the base fields covers them.
_LAYER_FIELDS: tuple[str, ...] = (
    "index",
    "layer_type",
    "in_channels",
    "out_channels",
    "kernel_size",
    "stride",
    "padding",
    "input_size",
)

#: class simple name -> fields folded into the cache key.  This is the
#: machine-checked half of the keying contract: ``repro check
#: --cache-safety`` extracts the attribute read-set of the memoized
#: evaluation and fails on any read outside these tables.
FINGERPRINTED_FIELDS: Mapping[str, tuple[str, ...]] = {
    "HardwareConfig": _CONFIG_FIELDS,
    "LayerSpec": _LAYER_FIELDS,
    "PoolSpec": ("window", "stride"),
    "Stage": ("layer", "pool"),
    "Network": ("name", "stages"),
    "CrossbarShape": ("rows", "cols"),
    "Simulator": ("config", "enforce_capacity"),
}

#: Fields the evaluation reads that are declared *result-invariant*:
#: they change how a result is computed (which memo, which cache), never
#: what it is — the memoize/reference parity tests are the evidence.
RESULT_INVARIANT_FIELDS: Mapping[str, tuple[str, ...]] = {
    # ``tracer`` only observes the evaluation (spans/events/counters);
    # the trace-invariance battery in ``tests/obs`` is the evidence that
    # it never changes a metric bit.  ``vectorize`` selects the NumPy
    # kernel path, which is bit-identical to the scalar reference
    # (``tests/sim/test_vectorized_parity.py``).
    "Simulator": ("cache", "memoize_costs", "tracer", "vectorize"),
    # ``_hash`` / ``_str`` are ``__post_init__`` stashes derived purely
    # from ``rows`` and ``cols``, which *are* fingerprinted — two shapes
    # with equal fingerprints carry equal stashes by construction.
    "CrossbarShape": ("_hash", "_str"),
}


def _canonical(value: object) -> object:
    """Reduce a field value to a deterministic, repr-stable form."""
    if isinstance(value, Enum):
        return (type(value).__name__, value.name)
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return value
    if isinstance(value, (tuple, list)):
        return tuple(_canonical(item) for item in value)
    raise TypeError(
        f"cannot canonicalise {type(value).__name__!r} for fingerprinting"
    )


def _stable_digest(payload: object) -> int:
    """blake2b digest of a canonical tuple, independent of PYTHONHASHSEED."""
    encoded = repr(_canonical(payload)).encode("utf-8")
    return int.from_bytes(blake2b(encoded, digest_size=16).digest(), "big")


@lru_cache(maxsize=1024)
def config_fingerprint(config: HardwareConfig) -> int:
    """Stable content fingerprint of a hardware configuration.

    Two configs with equal fields share a fingerprint even when they are
    distinct objects (e.g. round-tripped through JSON), and the digest is
    identical across processes and interpreter runs.
    """
    return _stable_digest(
        tuple(getattr(config, name) for name in _CONFIG_FIELDS)
    )


@lru_cache(maxsize=1024)
def network_fingerprint(network: Network) -> int:
    """Stable content fingerprint of a network's search-relevant identity.

    Folds the name plus every *stage* — each layer's full mapping- and
    cost-relevant spec (:data:`FINGERPRINTED_FIELDS`'s ``LayerSpec`` row,
    including ``input_size`` / ``stride`` / ``padding``) and each pooling
    stage's window geometry.  Two structurally identical builds of the
    same model share a fingerprint; two models differing only in
    feature-map size do not.
    """
    entries: list[tuple[object, ...]] = []
    for stage in network.stages:
        if stage.layer is not None:
            entries.append(
                ("L",)
                + tuple(getattr(stage.layer, name) for name in _LAYER_FIELDS)
            )
        if stage.pool is not None:
            entries.append(("P", stage.pool.window, stage.pool.stride))
    return _stable_digest((network.name, tuple(entries)))


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time snapshot of one cache's counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    size: int = 0
    max_size: int = 0
    audited: int = 0
    audit_failures: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over lookups; 0.0 before the first lookup."""
        return self.hits / self.lookups if self.lookups else 0.0

    def summary(self) -> str:
        line = (
            f"cache: {self.hits} hits / {self.lookups} lookups "
            f"({self.hit_rate:.1%}), {self.size}/{self.max_size} entries, "
            f"{self.evictions} evictions"
        )
        if self.audited:
            line += (
                f", {self.audited} audited "
                f"({self.audit_failures} mismatches)"
            )
        return line


class _Infeasible:
    """Cached outcome of a strategy that overflows the bank."""

    __slots__ = ("message",)

    def __init__(self, message: str) -> None:
        self.message = message


class EvaluationCache:
    """Bounded LRU cache over pure simulator evaluations.

    Thread-safe: :meth:`get` / :meth:`put` hold an internal lock, so one
    cache can back :meth:`Simulator.evaluate_many
    <repro.sim.simulator.Simulator.evaluate_many>`'s thread pool or a
    multi-seed search fan-out.  Values are immutable
    (:class:`~repro.sim.metrics.SystemMetrics` is frozen), so cached
    objects are shared, never copied.

    **Audit mode** (``audit_interval=N``) is the runtime complement of
    the static cache-safety proof: every Nth hit is re-evaluated from
    scratch and the cached value must compare equal to the fresh one.  A
    mismatch is recorded as a CAC004 :class:`Diagnostic` (see
    :attr:`audit_findings`), counted in :meth:`stats`, and the stale
    entry is replaced — the caller always receives the fresh value, never
    a crash.  Sampling is a deterministic hit counter, *not* a RNG: the
    audit must not itself introduce the nondeterminism it polices.
    """

    def __init__(self, max_size: int = 100_000, audit_interval: int = 0) -> None:
        if max_size <= 0:
            raise ValueError("max_size must be positive")
        if audit_interval < 0:
            raise ValueError("audit_interval must be >= 0 (0 disables audits)")
        self.max_size = max_size              # guarded-by: init-only
        self.audit_interval = audit_interval  # guarded-by: init-only
        self._entries: OrderedDict[CacheKey, object] = OrderedDict()  # guarded-by: _lock
        self._lock = threading.Lock()
        self._hits = 0                        # guarded-by: _lock
        self._misses = 0                      # guarded-by: _lock
        self._evictions = 0                   # guarded-by: _lock
        self._audit_clock = 0                 # guarded-by: _lock
        self._audited = 0                     # guarded-by: _lock
        self._audit_failures = 0              # guarded-by: _lock
        self._audit_findings: list[Diagnostic] = []  # guarded-by: _lock
        #: single-flight claims: key -> event set when the claimant is
        #: done (entry inserted, or computation failed).
        self._inflight: dict[CacheKey, threading.Event] = {}  # guarded-by: _lock

    # ------------------------------------------------------------------
    @staticmethod
    def make_key(
        config: HardwareConfig,
        network: Network,
        strategy: tuple[CrossbarShape, ...],
        *,
        tile_shared: bool,
        detailed: bool,
        enforce_capacity: bool,
    ) -> CacheKey:
        """The canonical key of one evaluation.

        Everything :meth:`Simulator.evaluate` reads goes in: the config
        and network content fingerprints, the per-layer shapes, and the
        flags that change the result (``tile_shared``, ``detailed``) or
        the feasibility verdict (``enforce_capacity``).
        """
        return (
            config_fingerprint(config),
            network_fingerprint(network),
            tuple((s.rows, s.cols) for s in strategy),
            tile_shared,
            detailed,
            enforce_capacity,
        )

    # ------------------------------------------------------------------
    def claim(self, key: CacheKey) -> tuple[str, object]:
        """Single-flight lookup: hit, wait on the computing thread, or claim.

        Returns one of::

            ("hit", value)    # cached entry (counted as a hit)
            ("wait", event)   # another thread holds the claim — wait on
                              # the event, then call claim() again
            ("claimed", None) # counted as a miss; the caller now OWNS the
                              # claim and MUST call release(key) when done
                              # (after put() on success)

        A "wait" outcome is not counted at all: the logical lookup
        resolves on the retry, as a hit once the claimant has inserted
        the entry (or as a fresh miss if the claimant failed without
        inserting).  This is what keeps the counter contract exact under
        thread contention — one miss and one evaluation per distinct cold
        key, duplicates resolving to hits — where a plain get/compute/put
        sequence would double-evaluate whenever two threads miss the same
        key concurrently (the NumPy kernels release the GIL, making that
        interleaving routine; the pure-Python scalar path only dodged it
        because its compute fits inside one GIL switch interval).
        """
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                pass
            else:
                self._entries.move_to_end(key)
                self._hits += 1
                return ("hit", value)
            event = self._inflight.get(key)
            if event is not None:
                return ("wait", event)
            self._misses += 1
            self._inflight[key] = threading.Event()
            return ("claimed", None)

    def release(self, key: CacheKey) -> None:
        """Drop a claim taken via :meth:`claim` and wake every waiter.

        Idempotent; call after :meth:`put` on success so waiters observe
        the entry, and on *any* failure path so they can re-claim.
        """
        with self._lock:
            event = self._inflight.pop(key, None)
        if event is not None:
            event.set()

    def get(self, key: CacheKey) -> object | None:
        """The cached value, or ``None`` on a miss (counts either way)."""
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: CacheKey, value: object) -> None:
        """Insert (or refresh) an entry, evicting the LRU tail if full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = value
                return
            if len(self._entries) >= self.max_size:
                self._entries.popitem(last=False)
                self._evictions += 1
            self._entries[key] = value

    # ------------------------------------------------------------------
    def audit_due(self) -> bool:
        """Whether the hit just served should be re-evaluated and checked.

        Deterministic every-Nth-hit sampling driven by an internal
        counter; always ``False`` when ``audit_interval`` is 0.
        """
        if self.audit_interval <= 0:
            return False
        with self._lock:
            self._audit_clock += 1
            return self._audit_clock % self.audit_interval == 0

    def record_audit(
        self, key: CacheKey, cached: object, fresh: object
    ) -> Diagnostic | None:
        """Compare a cached value against its re-evaluation.

        On a mismatch: counts the failure, records a CAC004 diagnostic,
        and replaces the stale entry with the fresh value.  Returns the
        diagnostic (``None`` when the values agree).
        """
        with self._lock:
            self._audited += 1
            if cached == fresh:
                return None
            self._audit_failures += 1
            diagnostic = CAC004.diag(
                f"cache-key {key!r}",
                "cache audit mismatch: cached value differs from "
                "re-evaluation — the key does not cover every input",
                hint="run `repro check --cache-safety` to find the "
                "unfingerprinted read, then clear() this cache",
            )
            self._audit_findings.append(diagnostic)
            if key in self._entries:
                self._entries[key] = fresh
            return diagnostic

    @property
    def audit_findings(self) -> tuple[Diagnostic, ...]:
        """All CAC004 mismatch diagnostics recorded so far."""
        with self._lock:
            return tuple(self._audit_findings)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        with self._lock:
            return key in self._entries

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        with self._lock:
            self._entries.clear()
            self._hits = self._misses = self._evictions = 0
            self._audit_clock = self._audited = self._audit_failures = 0
            self._audit_findings.clear()

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                max_size=self.max_size,
                audited=self._audited,
                audit_failures=self._audit_failures,
            )
