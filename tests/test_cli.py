"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_search_defaults(self):
        args = build_parser().parse_args(["search", "lenet"])
        assert args.model == "lenet"
        assert args.rounds == 300
        assert not args.no_tile_shared

    def test_experiment_choices(self):
        for name in EXPERIMENTS:
            args = build_parser().parse_args(["experiment", name])
            assert args.name == name

    def test_experiment_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve", "two-tenant"])
        assert args.scenario == "two-tenant"
        assert args.seed is None
        assert args.duration_s is None
        assert not args.no_realloc
        assert args.out is None


class TestCommands:
    def test_models_lists_workloads(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        for name in ("alexnet", "vgg16", "resnet152", "lenet", "transformer"):
            assert name in out

    def test_baselines(self, capsys):
        assert main(["baselines", "lenet"]) == 0
        out = capsys.readouterr().out
        assert "32x32" in out and "512x512" in out

    def test_baselines_vgg_includes_manual(self, capsys):
        assert main(["baselines", "vgg16"]) == 0
        assert "Manual-Hetero" in capsys.readouterr().out

    def test_search_small(self, capsys):
        assert main(["search", "lenet", "--rounds", "8", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "AutoHet[LeNet]" in out
        assert "strategy:" in out

    def test_search_custom_candidates(self, capsys):
        assert (
            main([
                "search", "lenet", "--rounds", "5",
                "--candidates", "32x32,72x64",
            ])
            == 0
        )
        out = capsys.readouterr().out
        assert "32x32" in out or "72x64" in out

    def test_search_no_tile_shared(self, capsys):
        assert (
            main(["search", "lenet", "--rounds", "5", "--no-tile-shared"]) == 0
        )

    def test_experiment_fig5(self, capsys):
        assert main(["experiment", "fig5"]) == 0
        out = capsys.readouterr().out
        assert "27" in out or "0.84" in out
        assert "128x128" in out

    def test_experiment_fig4(self, capsys):
        assert main(["experiment", "fig4"]) == 0
        assert "XBs/tile" in capsys.readouterr().out

    def test_experiment_with_rounds(self, capsys):
        assert (
            main(["experiment", "table5", "--rounds", "10", "--seed", "0"]) == 0
        )
        assert "AutoHet" in capsys.readouterr().out

    def test_unknown_model_errors(self):
        with pytest.raises(KeyError):
            main(["search", "googlenet", "--rounds", "5"])

    def test_experiment_export_json(self, capsys, tmp_path):
        path = tmp_path / "fig5.json"
        assert main(["experiment", "fig5", "--export", str(path)]) == 0
        import json

        records = json.loads(path.read_text())
        assert records[0]["activated_adcs"] == 256

    def test_experiment_export_csv(self, tmp_path):
        path = tmp_path / "fig4.csv"
        assert main(["experiment", "fig4", "--export", str(path)]) == 0
        assert "empty_fraction" in path.read_text()

    def test_experiment_export_unsupported(self, tmp_path):
        with pytest.raises(SystemExit, match="no flat-record exporter"):
            main([
                "experiment", "search-time",
                "--export", str(tmp_path / "x.json"),
            ])

    def test_serve_builtin_overrides(self, capsys):
        assert main([
            "serve", "two-tenant", "--seed", "3",
            "--duration-s", "0.05", "--no-realloc",
        ]) == 0
        out = capsys.readouterr().out
        assert "seed 3" in out
        assert "0 re-allocation(s)" in out
        assert "per-tenant SLO report" in out

    def test_serve_scenario_file_and_trace(self, capsys, tmp_path):
        from repro.serve import save_scenario, two_tenant_scenario

        scenario_path = tmp_path / "scenario.json"
        save_scenario(
            two_tenant_scenario(duration_ns=5e7, realloc=False),
            scenario_path,
        )
        trace_path = tmp_path / "trace.jsonl"
        assert main([
            "serve", str(scenario_path), "--trace", str(trace_path),
        ]) == 0
        assert trace_path.exists()
        assert "trace records" in capsys.readouterr().out

    def test_serve_unknown_scenario_errors(self):
        with pytest.raises(SystemExit, match="cannot load scenario"):
            main(["serve", "no-such-scenario"])
