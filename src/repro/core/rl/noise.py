"""Exploration noise processes for the DDPG actor.

Two standard options:

* :class:`TruncatedNormalNoise` — decayed Gaussian perturbation truncated
  to the action box (the HAQ-style default; works well for the bounded
  scalar action AutoHet uses).
* :class:`OrnsteinUhlenbeckNoise` — the temporally-correlated process of
  the original DDPG paper, kept for completeness and ablations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class TruncatedNormalNoise:
    """Gaussian exploration with multiplicative per-episode decay."""

    sigma: float = 0.5
    decay: float = 0.99
    low: float = 0.0
    high: float = 1.0
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.decay <= 1.0:
            raise ValueError("decay must be in (0, 1]")
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")
        self._rng = np.random.default_rng(self.seed)

    def perturb(self, action: float) -> float:
        """Add truncated Gaussian noise to a scalar action."""
        noisy = action + self._rng.normal(0.0, self.sigma)
        return float(np.clip(noisy, self.low, self.high))

    def end_episode(self) -> None:
        """Decay the exploration scale after each search round."""
        self.sigma *= self.decay

    def reset(self) -> None:
        pass


@dataclass
class OrnsteinUhlenbeckNoise:
    """Mean-reverting OU process: ``dx = theta (mu - x) dt + sigma dW``."""

    theta: float = 0.15
    mu: float = 0.0
    sigma: float = 0.2
    dt: float = 1.0
    low: float = 0.0
    high: float = 1.0
    seed: int = 0
    _x: float = field(init=False, default=0.0)
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)
        self._x = self.mu

    def perturb(self, action: float) -> float:
        self._x += self.theta * (self.mu - self._x) * self.dt + (
            self.sigma * np.sqrt(self.dt) * self._rng.normal()
        )
        return float(np.clip(action + self._x, self.low, self.high))

    def end_episode(self) -> None:
        self.reset()

    def reset(self) -> None:
        self._x = self.mu
