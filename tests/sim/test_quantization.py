"""Tests for quantization, offset encoding, and bit slicing."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.sim.quantization import (
    QuantizedTensor,
    bit_slices,
    from_bit_slices,
    offset_decode_dot,
    offset_encode,
    quantize,
)


class TestQuantize:
    def test_signed_range(self):
        q = quantize(np.array([-1.0, 0.0, 1.0]), 8, signed=True)
        assert q.values.min() == -127 and q.values.max() == 127

    def test_unsigned_range(self):
        q = quantize(np.array([0.0, 0.5, 1.0]), 8, signed=False)
        assert q.values.min() == 0 and q.values.max() == 255

    def test_unsigned_rejects_negative(self):
        with pytest.raises(ValueError):
            quantize(np.array([-0.1]), 8, signed=False)

    def test_zero_tensor(self):
        q = quantize(np.zeros(5), 8, signed=True)
        assert np.array_equal(q.values, np.zeros(5))
        assert q.scale == 1.0

    def test_subnormal_peak_does_not_underflow_the_scale(self):
        # peak / qmax underflowed to 0.0 for subnormal peaks, turning
        # zeros into NaN (cast to INT64_MIN) and the rest into inf.
        smallest = math.ulp(0.0)
        for signed in (False, True):
            q = quantize(np.array([smallest, 0.0]), 8, signed=signed)
            assert q.scale > 0.0
            assert list(q.values) == [1, 0]
            assert np.array_equal(q.dequantize(), [smallest, 0.0])

    def test_rejects_nonpositive_bits(self):
        with pytest.raises(ValueError):
            quantize(np.ones(3), 0, signed=True)

    def test_qmin_qmax(self):
        signed = quantize(np.ones(1), 8, signed=True)
        assert (signed.qmin, signed.qmax) == (-127, 127)
        unsigned = quantize(np.ones(1), 8, signed=False)
        assert (unsigned.qmin, unsigned.qmax) == (0, 255)

    @settings(max_examples=80, deadline=None)
    @given(
        hnp.arrays(
            np.float64,
            st.integers(1, 50),
            elements=st.floats(-100, 100, allow_nan=False),
        ),
        st.integers(2, 12),
    )
    def test_roundtrip_error_bounded(self, x, bits):
        q = quantize(x, bits, signed=True)
        recon = q.dequantize()
        peak = np.max(np.abs(x))
        if peak > 0:
            # Max error is half a quantization step.
            step = peak / (2 ** (bits - 1) - 1)
            assert np.max(np.abs(recon - x)) <= step / 2 + 1e-12

    @settings(max_examples=50, deadline=None)
    @given(
        hnp.arrays(
            np.float64,
            st.integers(1, 50),
            elements=st.floats(0, 100, allow_nan=False),
        )
    )
    def test_unsigned_roundtrip_in_range(self, x):
        q = quantize(x, 8, signed=False)
        assert q.values.min() >= 0
        assert q.values.max() <= 255


class TestOffsetEncoding:
    def test_encode_shifts_by_half_range(self):
        enc = offset_encode(np.array([-128, 0, 127]), 8)
        assert np.array_equal(enc, [0, 128, 255])

    def test_encode_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            offset_encode(np.array([128]), 8)
        with pytest.raises(ValueError):
            offset_encode(np.array([-129]), 8)

    def test_decode_dot_identity(self):
        rng = np.random.default_rng(0)
        w = rng.integers(-127, 128, size=(10, 4))
        x = rng.integers(0, 256, size=10)
        enc = offset_encode(w, 8)
        assert np.array_equal(
            offset_decode_dot(x @ enc, x.sum(), 8), x @ w
        )

    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 2**31 - 1), st.integers(2, 10))
    def test_decode_dot_property(self, seed, bits):
        rng = np.random.default_rng(seed)
        lo, hi = -(2 ** (bits - 1)), 2 ** (bits - 1)
        w = rng.integers(lo, hi, size=(7, 3))
        x = rng.integers(0, 2**bits, size=7)
        enc = offset_encode(w, bits)
        assert np.array_equal(offset_decode_dot(x @ enc, x.sum(), bits), x @ w)


class TestBitSlices:
    def test_lsb_first(self):
        planes = bit_slices(np.array([5]), 4)  # 0101
        assert planes[:, 0].tolist() == [1, 0, 1, 0]

    def test_roundtrip(self):
        v = np.array([[0, 1], [254, 255]])
        assert np.array_equal(from_bit_slices(bit_slices(v, 8)), v)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            bit_slices(np.array([16]), 4)
        with pytest.raises(ValueError):
            bit_slices(np.array([-1]), 4)

    @settings(max_examples=60, deadline=None)
    @given(
        hnp.arrays(np.int64, st.integers(1, 30), elements=st.integers(0, 255)),
    )
    def test_roundtrip_property(self, values):
        assert np.array_equal(from_bit_slices(bit_slices(values, 8)), values)

    @settings(max_examples=40, deadline=None)
    @given(
        hnp.arrays(np.int64, st.integers(1, 20), elements=st.integers(0, 255)),
        hnp.arrays(np.int64, st.integers(1, 20), elements=st.integers(0, 255)),
    )
    def test_slicewise_dot_reconstruction(self, w, x):
        """sum_b 2^b (w_b . x) == w . x — the crossbar's algebra."""
        n = min(w.size, x.size)
        w, x = w[:n], x[:n]
        planes = bit_slices(w, 8)
        partial = sum((1 << b) * int(planes[b] @ x) for b in range(8))
        assert partial == int(w @ x)
