"""Tests for the device non-ideality (variation) extension."""

import numpy as np
import pytest

from repro.arch.config import CrossbarShape, HardwareConfig
from repro.models.layers import LayerSpec
from repro.sim.functional import FunctionalLayerEngine, unfold_weights
from repro.sim.quantization import quantize
from repro.sim.variation import (
    VariationModel,
    inject_faults,
    relative_output_error,
)


def make_engine(seed=0):
    rng = np.random.default_rng(seed)
    layer = LayerSpec.conv(12, 32, 3, input_size=8)
    w = rng.normal(size=(32, 12, 3, 3))
    wq = quantize(unfold_weights(layer, w), 8, signed=True)
    return (
        FunctionalLayerEngine(layer, CrossbarShape(72, 64), wq.values),
        wq.values,
    )


class TestVariationModel:
    def test_ideal_by_default(self):
        assert VariationModel().is_ideal
        assert VariationModel().flip_probability == 0.0

    def test_flip_probability_monotone_in_sigma(self):
        probs = [
            VariationModel(conductance_sigma=s).flip_probability
            for s in (0.1, 0.3, 0.5, 1.0)
        ]
        assert all(0 < a < b < 1 for a, b in zip(probs, probs[1:]))

    def test_rejects_negative_sigma(self):
        with pytest.raises(ValueError):
            VariationModel(conductance_sigma=-0.1)

    def test_rejects_bad_stuck_fractions(self):
        with pytest.raises(ValueError):
            VariationModel(stuck_at_on=1.5)
        with pytest.raises(ValueError):
            VariationModel(stuck_at_on=0.6, stuck_at_off=0.6)


class TestInjection:
    def test_ideal_injection_is_noop(self):
        engine, wq = make_engine()
        counts = inject_faults(engine, VariationModel())
        assert counts == {"flipped": 0, "stuck_on": 0, "stuck_off": 0}
        x = np.random.default_rng(0).integers(0, 256, size=(3, 108))
        assert np.array_equal(engine.mvm_batch(x), x @ wq)

    def test_flips_are_counted_and_change_cells(self):
        engine, _ = make_engine()
        before = engine._cells.copy()
        counts = inject_faults(
            engine, VariationModel(conductance_sigma=0.5, seed=1)
        )
        assert counts["flipped"] > 0
        assert (engine._cells != before).sum() == counts["flipped"]

    def test_stuck_at_on_sets_cells(self):
        engine, _ = make_engine()
        inject_faults(engine, VariationModel(stuck_at_on=1.0))
        assert engine._cells.min() == 1

    def test_stuck_at_off_clears_cells(self):
        engine, _ = make_engine()
        inject_faults(engine, VariationModel(stuck_at_off=1.0))
        assert engine._cells.max() == 0

    def test_injection_deterministic_by_seed(self):
        e1, _ = make_engine()
        e2, _ = make_engine()
        model = VariationModel(conductance_sigma=0.4, seed=42)
        inject_faults(e1, model)
        inject_faults(e2, model)
        assert np.array_equal(e1._cells, e2._cells)


class TestAccuracyImpact:
    def test_error_zero_when_ideal(self):
        engine, wq = make_engine()
        x = np.random.default_rng(2).integers(0, 256, size=(4, 108))
        assert relative_output_error(engine, wq, x) == 0.0

    def test_error_grows_with_sigma(self):
        rng = np.random.default_rng(3)
        x = rng.integers(0, 256, size=(8, 108))
        errors = []
        for sigma in (0.3, 0.6, 1.2):
            engine, wq = make_engine(seed=5)
            inject_faults(
                engine, VariationModel(conductance_sigma=sigma, seed=7)
            )
            errors.append(relative_output_error(engine, wq, x))
        assert errors[0] < errors[-1]
        assert errors[0] > 0.0

    def test_stuck_faults_degrade_output(self):
        rng = np.random.default_rng(4)
        x = rng.integers(0, 256, size=(4, 108))
        engine, wq = make_engine(seed=6)
        inject_faults(engine, VariationModel(stuck_at_off=0.1, seed=8))
        assert relative_output_error(engine, wq, x) > 0.0
