"""Fixture sim package."""
