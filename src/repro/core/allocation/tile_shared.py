"""The tile-shared crossbar allocation scheme (§3.4, Algorithm 1).

The key idea: allow several DNN layers to share one tile, packing the
occupied crossbars of sparsely-filled tiles into the free slots of other
tiles *with the same crossbar geometry*, then releasing the emptied tiles.

Algorithm 1 (transcribed literally):

1. Group the used tiles by crossbar size.
2. Within each group, sort tiles ascending by their number of empty
   crossbars.
3. Walk a head pointer from the start (fewest empties) and a tail pointer
   from the end (most empties).  Whenever
   ``head.empty + tail.empty >= capacity`` the tail tile's occupied
   crossbars all fit into the head tile's free slots: merge them
   (``combMap[head].append(tail)``), set
   ``head.empty <- head.empty + tail.empty - capacity``, mark the tail
   tile released, and retreat the tail pointer.  Otherwise advance the
   head pointer.
4. Stop when the pointers meet.  Time complexity O(N) after the sort.
"""

from __future__ import annotations

from typing import Sequence

from ...analysis.invariants import ALC001, ALC006, InvariantViolation
from ...arch.config import CrossbarShape
from ...obs import metrics as obs_metrics
from ...obs.trace import NULL_TRACER, Tracer
from .tiles import Allocation, Tile


def plan_tile_sharing(
    tiles: Sequence[Tile], capacity: int
) -> dict[int, list[int]]:
    """Run Algorithm 1 over one same-shape tile group.

    Returns the ``combMap``: absorbing tile id -> list of absorbed tile
    ids.  Pure planning — no tile is mutated.
    """
    if capacity <= 0:
        raise ValueError("capacity must be positive")
    comb_map: dict[int, list[int]] = {}
    # Sorted ascending by empty count (Algorithm 1, line 2).  The working
    # list tracks each tile's *current* empty count as merges proceed.
    order = sorted(tiles, key=lambda t: t.empty)
    empties = [t.empty for t in order]
    head = 0
    tail = len(order) - 1
    while head < tail:
        if empties[head] + empties[tail] >= capacity:
            # Tail's occupied crossbars (capacity - empties[tail]) all fit
            # into head's free slots.
            empties[head] = empties[head] + empties[tail] - capacity
            empties[tail] = 0
            comb_map.setdefault(order[head].tile_id, []).append(
                order[tail].tile_id
            )
            tail -= 1
        else:
            head += 1
    return comb_map


def apply_tile_sharing(
    allocation: Allocation, *, tracer: Tracer = NULL_TRACER
) -> Allocation:
    """Plan and execute tile sharing over a tile-based allocation.

    For every same-shape tile group, :func:`plan_tile_sharing` decides
    which tiles merge; this function then performs the remapping — moving
    each absorbed tile's occupants into its absorber and dropping the
    released tiles — and returns a new, validated :class:`Allocation`.
    With an enabled ``tracer``, emits one ``alloc.group`` event per group
    recording the occupancy delta Algorithm 1 achieved.
    """
    by_id: dict[int, Tile] = {
        t.tile_id: t.clone() for t in allocation.tiles if t.occupied > 0
    }
    comb_map: dict[int, tuple[int, ...]] = {}
    groups: dict[CrossbarShape, list[Tile]] = {}
    for tile in by_id.values():
        groups.setdefault(tile.shape, []).append(tile)
    released: set[int] = set()
    for shape, group in groups.items():
        plan = plan_tile_sharing(group, allocation.tile_capacity)
        if tracer.enabled:
            absorbed = sum(len(tails) for tails in plan.values())
            tracer.event(
                obs_metrics.EVENT_ALLOC_GROUP,
                mode="materialized",
                shape=str(shape),
                tiles_before=len(group),
                tiles_after=len(group) - absorbed,
                released=absorbed,
            )
        for head_id, tail_ids in plan.items():
            head = by_id[head_id]
            for tail_id in tail_ids:
                tail = by_id[tail_id]
                if tail_id in released:
                    raise InvariantViolation(
                        [
                            ALC006.diag(
                                f"tile {tail_id}",
                                "planned for absorption twice",
                                hint="the comb plan double-books a released tile",
                            )
                        ],
                        "apply_tile_sharing",
                    )
                # Check the whole merge fits *before* moving anything, so a
                # bad plan raises instead of leaving occupancy counters
                # half-updated (the Diagnostic-backed Tile.add below would
                # otherwise fire mid-move).
                if tail.occupied > head.empty:
                    raise InvariantViolation(
                        [
                            ALC001.diag(
                                f"tile {head.tile_id}",
                                f"cannot absorb tile {tail_id}: "
                                f"{tail.occupied} crossbars vs {head.empty} "
                                "free slots",
                                hint="Algorithm 1 only merges when "
                                "head.empty + tail.empty >= capacity",
                            )
                        ],
                        "apply_tile_sharing",
                    )
                for layer_index, count in tail.occupants.items():
                    head.add(layer_index, count)
                tail.occupants.clear()
                head.absorbed.append(tail_id)
                released.add(tail_id)
            comb_map[head_id] = tuple(tail_ids)
    survivors = tuple(
        by_id[tid] for tid in sorted(by_id) if tid not in released
    )
    shared = Allocation(
        mappings=allocation.mappings,
        tiles=survivors,
        tile_capacity=allocation.tile_capacity,
        comb_map=comb_map,
    )
    shared.validate()
    return shared
