"""Cache-key soundness and purity analysis of memoized call graphs.

The memoization contract of :meth:`repro.sim.simulator.Simulator.evaluate`
(docs/performance.md) is: *every attribute the evaluation reads must be
folded into the cache key, and the evaluation must be pure*.  This module
proves it statically.  An abstract interpreter walks the AST call graph
reachable from the memoized roots, tracking parameter aliases through
calls, attribute chains, properties, containers, and branches, and
records

* the **attribute read-set** per class — every dataclass field the
  evaluation can observe on a ``HardwareConfig``, ``Network``, ``Stage``,
  ``LayerSpec``, ``PoolSpec``, ``CrossbarShape``, or ``Simulator``;
* **impure effects** — mutation of tracked inputs, module-state writes;
* **nondeterministic sinks** — ``random`` / ``time`` / environment / IO.

The read-set is cross-checked against the declared fingerprint coverage
(:data:`repro.sim.cache.FINGERPRINTED_FIELDS`):

========  =============================================================
CAC001    attribute read by the evaluation but not fingerprinted (ERROR)
CAC002    fingerprinted but never read — dead key component (WARNING)
CAC003    reachable nondeterministic / IO sink (ERROR)
PUR001    mutation of a tracked input object (ERROR)
PUR002    module-state write (``global`` declaration) (ERROR)
========  =============================================================

The interpreter is deliberately *optimistic about unknowns*: values it
cannot type produce no findings.  Soundness comes from the places it is
strict — every known class's field reads are recorded, every resolvable
call is traversed — which is exactly the surface the fingerprint must
cover.  The memo machinery itself (``repro.sim.cache``) is a declared
boundary: it is what implements the key, so it is not subject to it.

Entry points: :func:`analyze_memoized` (generic, over any
:class:`~repro.analysis.callgraph.ModuleIndex`) and
:func:`analyze_cache_safety` (the repro tree's simulator contract,
wired into ``repro check --cache-safety``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Mapping, Sequence, Union

from .callgraph import (
    ClassInfo,
    External,
    FunctionInfo,
    ModuleConstant,
    ModuleIndex,
    ModuleInfo,
    TypeAlias,
)
from .invariants import CAC001, CAC002, CAC003, PUR001, PUR002, Diagnostic

# ----------------------------------------------------------------------
# Abstract values
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Instance:
    """An instance of an indexed class.

    ``shared`` is escape provenance used by the concurrency analyzer:
    instances that flow into a worker from outside (parameters, closures,
    module globals, attributes of shared objects) are shared; instances a
    worker constructs itself are fresh (``shared=False``) and cannot race.
    The cache-safety rules ignore the flag.
    """

    cls: ClassInfo
    shared: bool = True


@dataclass(frozen=True)
class ClassVal:
    """The class object itself (constructor / namespace)."""

    cls: ClassInfo


@dataclass(frozen=True)
class IterVal:
    """A homogeneous iterable of ``elem`` values."""

    elem: "Value"


@dataclass(frozen=True)
class TupleVal:
    """A fixed-length heterogeneous tuple (zip / enumerate unpacking)."""

    items: tuple["Value", ...]


@dataclass(frozen=True)
class DictVal:
    """A mapping with known key / value types."""

    key: "Value"
    val: "Value"


@dataclass(frozen=True)
class FuncVal:
    """A function reference, optionally bound to a receiver / closure."""

    func: FunctionInfo
    recv: "Value | None" = None
    closure: tuple[tuple[str, "Value"], ...] = ()


@dataclass(frozen=True)
class ModVal:
    """An indexed module used as a value (``from . import energy``)."""

    module: ModuleInfo


@dataclass(frozen=True)
class ExtVal:
    """A dotted name outside the index (``math``, ``random.random``)."""

    qualname: str


@dataclass(frozen=True)
class BoundBuiltin:
    """A builtin container method awaiting its call (``d.items``)."""

    kind: str
    base: "Value"


Atom = Union[
    Instance, ClassVal, IterVal, TupleVal, DictVal, FuncVal, ModVal, ExtVal,
    BoundBuiltin,
]
#: An abstract value: the set of things a name may hold.  Empty = unknown.
Value = frozenset  # frozenset[Atom]

UNKNOWN: Value = frozenset()
_MAX_ATOMS = 16


def _v(*atoms: Atom) -> Value:
    return frozenset(atoms)


def _union(values: Iterable[Value]) -> Value:
    out: set[Atom] = set()
    for value in values:
        out.update(value)
        if len(out) > _MAX_ATOMS:
            return frozenset(sorted(out, key=repr)[:_MAX_ATOMS])
    return frozenset(out)


# ----------------------------------------------------------------------
# Analysis configuration
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CoverageSpec:
    """Declared cache-key coverage of one class.

    ``fingerprinted`` fields are folded into the key; ``exempt`` fields
    are declared result-invariant (they change *how* a result is
    computed, never *what* it is — e.g. a cache handle) and are excluded
    from both CAC001 and CAC002.
    """

    fingerprinted: frozenset[str]
    exempt: frozenset[str] = frozenset()

    @property
    def covered(self) -> frozenset[str]:
        return self.fingerprinted | self.exempt


#: call/read targets that make a memoized graph unsound (CAC003)
DEFAULT_SINK_PREFIXES: tuple[str, ...] = (
    "random.", "time.", "datetime.", "secrets.", "uuid.",
    "socket.", "subprocess.", "numpy.random",
    "os.environ", "os.urandom", "os.getenv", "os.putenv",
    "sys.stdin",
)
#: builtins that reach IO / interpreter state (CAC003)
DEFAULT_SINK_BUILTINS: frozenset[str] = frozenset(
    {"open", "input", "print", "eval", "exec", "globals", "vars",
     "__import__", "breakpoint", "id"}
)
#: container-mutator method names that count as mutation (PUR001)
MUTATOR_METHODS: frozenset[str] = frozenset(
    {"append", "extend", "insert", "remove", "pop", "clear", "update",
     "setdefault", "popitem", "add", "discard", "sort", "reverse",
     "move_to_end", "appendleft", "popleft", "extendleft", "rotate"}
)


@dataclass(frozen=True)
class MemoContract:
    """What to analyze and what the cache key claims to cover."""

    #: memoized entry points, ``"module:Class.method"`` / ``"module:func"``
    roots: tuple[str, ...]
    #: simple class name -> declared key coverage
    coverage: Mapping[str, CoverageSpec]
    #: module-name prefixes excluded from traversal (the memo machinery)
    boundary_modules: tuple[str, ...] = ()
    #: classes whose instances must not be mutated (default: coverage keys)
    purity_classes: frozenset[str] = frozenset()
    sink_prefixes: tuple[str, ...] = DEFAULT_SINK_PREFIXES
    sink_builtins: frozenset[str] = DEFAULT_SINK_BUILTINS

    @property
    def tracked_mutable(self) -> frozenset[str]:
        return self.purity_classes or frozenset(self.coverage)


# ----------------------------------------------------------------------
# The interpreter
# ----------------------------------------------------------------------

_Env = dict  # dict[str, Value]

_BUILTIN_NAMES = frozenset(
    {"tuple", "list", "set", "frozenset", "sorted", "reversed", "zip",
     "enumerate", "next", "iter", "map", "filter", "sum", "len", "min",
     "max", "abs", "round", "divmod", "range", "any", "all", "float",
     "int", "bool", "str", "repr", "hash", "isinstance", "issubclass",
     "getattr", "setattr", "hasattr", "delattr", "dict", "format",
     "callable", "type", "ord", "chr", "pow"}
)

_ANALYSIS_BUDGET = 40_000


@dataclass(eq=False)
class _Frame:
    func: FunctionInfo
    module: ModuleInfo
    returns: "list[Value]"
    env: _Env


class _Analyzer:
    def __init__(self, index: ModuleIndex, contract: MemoContract) -> None:
        self.index = index
        self.contract = contract
        #: (class simple name, field) -> first witness location
        self.reads: dict[tuple[str, str], str] = {}
        self.effects: list[Diagnostic] = []
        self._memo: dict[object, Value] = {}
        self._active: set[object] = set()
        self._flagged: set[object] = set()
        self._steps = 0

    # -------------------------------------------------- helpers
    def _is_boundary(self, module: ModuleInfo) -> bool:
        return any(
            module.name == p or module.name.startswith(p + ".")
            for p in self.contract.boundary_modules
        )

    def _loc(self, frame: _Frame, node: ast.AST) -> str:
        line = getattr(node, "lineno", frame.func.lineno)
        return f"{frame.module.name}:{line}"

    def _record_read(
        self, cls: ClassInfo, attr: str, frame: _Frame, node: ast.AST
    ) -> None:
        self.reads.setdefault((cls.name, attr), self._loc(frame, node))

    def _flag_sink(self, qualname: str, frame: _Frame, node: ast.AST) -> None:
        key = ("sink", frame.func.qualname, qualname)
        if key in self._flagged:
            return
        self._flagged.add(key)
        self.effects.append(
            CAC003.diag(
                self._loc(frame, node),
                f"memoized call graph reaches {qualname!r} via "
                f"{frame.func.qualname}",
                hint="hoist the nondeterministic input into an explicit, "
                "fingerprinted argument",
            )
        )

    def _flag_mutation(
        self, cls_name: str, detail: str, frame: _Frame, node: ast.AST
    ) -> None:
        key = ("mut", frame.func.qualname, getattr(node, "lineno", 0))
        if key in self._flagged:
            return
        self._flagged.add(key)
        self.effects.append(
            PUR001.diag(
                self._loc(frame, node),
                f"{frame.func.qualname} mutates a {cls_name} input ({detail})",
                hint="memoized code must treat its key inputs as immutable; "
                "build a modified copy instead",
            )
        )

    def _flag_global(self, names: Sequence[str], frame: _Frame, node: ast.AST) -> None:
        key = ("glob", frame.func.qualname, tuple(names))
        if key in self._flagged:
            return
        self._flagged.add(key)
        self.effects.append(
            PUR002.diag(
                self._loc(frame, node),
                f"{frame.func.qualname} declares global {', '.join(names)} — "
                "results would depend on call history",
                hint="pass the state in as an argument and fingerprint it",
            )
        )

    # -------------------------------------------------- entity -> value
    def _entity_value(self, entity: object) -> Value:
        if isinstance(entity, FunctionInfo):
            return _v(FuncVal(entity))
        if isinstance(entity, ClassInfo):
            return _v(ClassVal(entity))
        if isinstance(entity, ModuleInfo):
            return _v(ModVal(entity))
        if isinstance(entity, External):
            return _v(ExtVal(entity.qualname))
        if isinstance(entity, TypeAlias):
            return UNKNOWN
        if isinstance(entity, ModuleConstant):
            return self._constant_value(entity)
        return UNKNOWN

    def _constant_value(self, const: ModuleConstant) -> Value:
        if const.annotation is not None:
            value = self._annotation_value(const.annotation, const.module)
            if value:
                return value
        value_expr = const.value
        if (
            isinstance(value_expr, ast.Call)
            and isinstance(value_expr.func, ast.Name)
        ):
            entity = self.index.resolve(const.module, value_expr.func.id)
            if isinstance(entity, ClassInfo):
                return _v(Instance(entity))
        return UNKNOWN

    # -------------------------------------------------- annotations
    def _annotation_value(
        self, ann: ast.expr | None, module: ModuleInfo, _depth: int = 0
    ) -> Value:
        if ann is None or _depth > 8:
            return UNKNOWN
        if isinstance(ann, ast.Constant):
            if isinstance(ann.value, str):
                try:
                    parsed = ast.parse(ann.value, mode="eval").body
                except SyntaxError:
                    return UNKNOWN
                return self._annotation_value(parsed, module, _depth + 1)
            return UNKNOWN
        if isinstance(ann, ast.BinOp) and isinstance(ann.op, ast.BitOr):
            return _union(
                (
                    self._annotation_value(ann.left, module, _depth + 1),
                    self._annotation_value(ann.right, module, _depth + 1),
                )
            )
        if isinstance(ann, (ast.Name, ast.Attribute)):
            name = ann.id if isinstance(ann, ast.Name) else ann.attr
            entity = self.index.resolve(module, name) if isinstance(
                ann, ast.Name
            ) else self.index.find_class(name)
            if isinstance(entity, ClassInfo):
                return _v(Instance(entity))
            if isinstance(entity, TypeAlias):
                return self._annotation_value(entity.expr, entity.module, _depth + 1)
            return UNKNOWN
        if isinstance(ann, ast.Subscript):
            base = _ann_base_name(ann.value)
            slc = ann.slice
            elements = (
                list(slc.elts) if isinstance(slc, ast.Tuple) else [slc]
            )
            if base in ("tuple", "Tuple"):
                if len(elements) == 2 and _is_ellipsis(elements[1]):
                    return _v(
                        IterVal(self._annotation_value(elements[0], module, _depth + 1))
                    )
                return _v(
                    TupleVal(
                        tuple(
                            self._annotation_value(e, module, _depth + 1)
                            for e in elements
                        )
                    )
                )
            if base in (
                "list", "List", "set", "Set", "frozenset", "FrozenSet",
                "Sequence", "Iterable", "Iterator", "Collection", "MutableSequence",
            ):
                return _v(
                    IterVal(self._annotation_value(elements[0], module, _depth + 1))
                )
            if base in ("dict", "Dict", "Mapping", "MutableMapping", "OrderedDict"):
                if len(elements) == 2:
                    return _v(
                        DictVal(
                            self._annotation_value(elements[0], module, _depth + 1),
                            self._annotation_value(elements[1], module, _depth + 1),
                        )
                    )
                return UNKNOWN
            if base == "Optional":
                return self._annotation_value(elements[0], module, _depth + 1)
            if base == "Union":
                return _union(
                    self._annotation_value(e, module, _depth + 1) for e in elements
                )
            # An aliased generic (``Strategy``): resolve the alias itself.
            if isinstance(ann.value, ast.Name):
                entity = self.index.resolve(module, ann.value.id)
                if isinstance(entity, TypeAlias):
                    return self._annotation_value(
                        entity.expr, entity.module, _depth + 1
                    )
            return UNKNOWN
        return UNKNOWN

    # -------------------------------------------------- function analysis
    def analyze_root(self, func: FunctionInfo) -> None:
        bindings: dict[str, Value] = {}
        if func.cls is not None and not func.is_staticmethod:
            self_name = _first_param_name(func.node)
            if self_name is not None:
                bindings[self_name] = _v(Instance(func.cls))
        self._analyze_function(func, bindings)

    def _analyze_function(
        self, func: FunctionInfo, bindings: Mapping[str, Value]
    ) -> Value:
        if self._is_boundary(func.module):
            return UNKNOWN
        self._steps += 1
        if self._steps > _ANALYSIS_BUDGET:
            return UNKNOWN
        key = self._memo_key(func, bindings)
        if key in self._memo:
            return self._memo[key]
        if key in self._active:
            return UNKNOWN
        self._active.add(key)
        try:
            env: _Env = dict(bindings)
            self._bind_missing_params(func, env)
            frame = _Frame(func=func, module=func.module, returns=[], env=env)
            node = func.node
            if isinstance(node, ast.Lambda):
                frame.returns.append(self._eval(node.body, frame))
            else:
                self._exec_block(node.body, frame)
            ret = _union(frame.returns)
            if not ret and not isinstance(node, ast.Lambda) and node.returns is not None:
                ret = self._annotation_value(node.returns, func.module)
            self._memo[key] = ret
            return ret
        finally:
            self._active.discard(key)

    def _memo_key(self, func: FunctionInfo, bindings: Mapping[str, Value]) -> object:
        """Memo key for one function analysis; subclasses fold extra
        context (held locks, worker kind) in so findings that depend on
        it are not skipped by a stale memo hit."""
        return (func, tuple(sorted((k, v) for k, v in bindings.items())))

    def _bind_missing_params(self, func: FunctionInfo, env: _Env) -> None:
        args = func.node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if arg.arg not in env or not env[arg.arg]:
                ann_value = self._annotation_value(arg.annotation, func.module)
                if ann_value:
                    env[arg.arg] = ann_value
                else:
                    env.setdefault(arg.arg, UNKNOWN)
        if args.vararg is not None:
            env.setdefault(args.vararg.arg, _v(IterVal(UNKNOWN)))
        if args.kwarg is not None:
            env.setdefault(args.kwarg.arg, _v(DictVal(UNKNOWN, UNKNOWN)))

    # -------------------------------------------------- statements
    def _exec_block(self, stmts: Sequence[ast.stmt], frame: _Frame) -> None:
        for stmt in stmts:
            self._exec(stmt, frame)

    def _exec(self, stmt: ast.stmt, frame: _Frame) -> None:
        if isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value, frame)
            for target in stmt.targets:
                self._assign(target, value, frame)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                value = self._eval(stmt.value, frame)
            else:
                value = UNKNOWN
            if not value:
                value = self._annotation_value(stmt.annotation, frame.module)
            self._assign(stmt.target, value, frame)
        elif isinstance(stmt, ast.AugAssign):
            value = self._eval(stmt.value, frame)
            if isinstance(stmt.target, ast.Name):
                prior = frame.env.get(stmt.target.id, UNKNOWN)
                frame.env[stmt.target.id] = _union((prior, value))
            else:
                self._assign(stmt.target, value, frame)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value, frame)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                frame.returns.append(self._eval(stmt.value, frame))
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test, frame)
            self._exec_branches(frame, stmt.body, stmt.orelse)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iterable = self._eval(stmt.iter, frame)
            self._assign(stmt.target, _element_of(iterable), frame)
            # Two passes propagate loop-carried bindings; reads are a set,
            # so a fixpoint is unnecessary for the rules computed here.
            self._exec_block(stmt.body, frame)
            self._exec_block(stmt.body, frame)
            self._exec_block(stmt.orelse, frame)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test, frame)
            self._exec_block(stmt.body, frame)
            self._exec_block(stmt.body, frame)
            self._exec_block(stmt.orelse, frame)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                ctx = self._eval(item.context_expr, frame)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, ctx, frame)
            self._exec_block(stmt.body, frame)
        elif isinstance(stmt, ast.Try):
            self._exec_block(stmt.body, frame)
            for handler in stmt.handlers:
                if handler.type is not None:
                    self._eval(handler.type, frame)
                if handler.name is not None:
                    frame.env[handler.name] = UNKNOWN
                self._exec_block(handler.body, frame)
            self._exec_block(stmt.orelse, frame)
            self._exec_block(stmt.finalbody, frame)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._eval(stmt.exc, frame)
            if stmt.cause is not None:
                self._eval(stmt.cause, frame)
        elif isinstance(stmt, ast.Assert):
            self._eval(stmt.test, frame)
            if stmt.msg is not None:
                self._eval(stmt.msg, frame)
        elif isinstance(stmt, ast.Global):
            self._flag_global(stmt.names, frame, stmt)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            nested = FunctionInfo(
                module=frame.module,
                name=stmt.name,
                qualname=f"{frame.func.qualname}.{stmt.name}",
                node=stmt,
            )
            closure = tuple(sorted(frame.env.items()))
            frame.env[stmt.name] = _v(FuncVal(nested, closure=closure))
        elif isinstance(stmt, ast.Import):
            for alias in stmt.names:
                bound = alias.asname or alias.name.partition(".")[0]
                target = alias.name if alias.asname else alias.name.partition(".")[0]
                module = self.index.modules.get(target)
                frame.env[bound] = (
                    _v(ModVal(module)) if module else _v(ExtVal(target))
                )
        elif isinstance(stmt, ast.ImportFrom):
            # Module-wide import table already covers these (callgraph
            # walks the full tree), so name lookup will resolve them.
            pass
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    self._check_store_target(target, frame)
        # Pass / Break / Continue / Nonlocal: nothing to track.

    def _exec_branches(
        self, frame: _Frame, body: Sequence[ast.stmt], orelse: Sequence[ast.stmt]
    ) -> None:
        base = dict(frame.env)
        frame.env = dict(base)
        self._exec_block(body, frame)
        after_body = frame.env
        frame.env = dict(base)
        self._exec_block(orelse, frame)
        after_else = frame.env
        merged: _Env = {}
        for name in set(after_body) | set(after_else):
            merged[name] = _union(
                (after_body.get(name, UNKNOWN), after_else.get(name, UNKNOWN))
            )
        frame.env = merged

    # -------------------------------------------------- assignment
    def _assign(self, target: ast.expr, value: Value, frame: _Frame) -> None:
        if isinstance(target, ast.Name):
            frame.env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            self._assign_unpack(target.elts, value, frame)
        elif isinstance(target, ast.Starred):
            self._assign(target.value, _v(IterVal(_element_of(value))), frame)
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            self._check_store_target(target, frame)

    def _assign_unpack(
        self, targets: Sequence[ast.expr], value: Value, frame: _Frame
    ) -> None:
        fixed = [a for a in value if isinstance(a, TupleVal)]
        per_target: list[Value] = []
        for position in range(len(targets)):
            parts = [
                a.items[position] for a in fixed if position < len(a.items)
            ]
            element_fallback = _element_of(
                frozenset(a for a in value if not isinstance(a, TupleVal))
            )
            per_target.append(_union([*parts, element_fallback]))
        for target, part in zip(targets, per_target):
            self._assign(target, part, frame)

    def _check_store_target(
        self, target: Union[ast.Attribute, ast.Subscript], frame: _Frame
    ) -> None:
        base = self._eval(target.value, frame)
        if isinstance(target, ast.Subscript):
            self._eval(target.slice, frame)
        for atom in base:
            if (
                isinstance(atom, Instance)
                and atom.cls.name in self.contract.tracked_mutable
            ):
                detail = (
                    f"sets .{target.attr}"
                    if isinstance(target, ast.Attribute)
                    else "assigns into a subscript"
                )
                self._flag_mutation(atom.cls.name, detail, frame, target)

    # -------------------------------------------------- expressions
    def _eval(self, expr: ast.expr, frame: _Frame) -> Value:
        if isinstance(expr, ast.Name):
            return self._eval_name(expr.id, frame)
        if isinstance(expr, ast.Attribute):
            base = self._eval(expr.value, frame)
            return self._attr(base, expr.attr, frame, expr)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, frame)
        if isinstance(expr, ast.Constant):
            return UNKNOWN
        if isinstance(expr, ast.Subscript):
            base = self._eval(expr.value, frame)
            return self._subscript(base, expr.slice, frame)
        if isinstance(expr, ast.BinOp):
            self._eval(expr.left, frame)
            self._eval(expr.right, frame)
            return UNKNOWN
        if isinstance(expr, ast.UnaryOp):
            self._eval(expr.operand, frame)
            return UNKNOWN
        if isinstance(expr, ast.BoolOp):
            return _union(self._eval(v, frame) for v in expr.values)
        if isinstance(expr, ast.Compare):
            self._eval(expr.left, frame)
            for comparator in expr.comparators:
                self._eval(comparator, frame)
            return UNKNOWN
        if isinstance(expr, ast.IfExp):
            self._eval(expr.test, frame)
            return _union(
                (self._eval(expr.body, frame), self._eval(expr.orelse, frame))
            )
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            items = tuple(self._eval(e, frame) for e in expr.elts)
            if isinstance(expr, ast.Tuple) and len(items) <= 8:
                return _v(TupleVal(items))
            return _v(IterVal(_union(items)))
        if isinstance(expr, ast.Dict):
            keys = _union(
                self._eval(k, frame) for k in expr.keys if k is not None
            )
            vals = _union(self._eval(v, frame) for v in expr.values)
            return _v(DictVal(keys, vals))
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            sub = self._comp_frame(expr.generators, frame)
            element = self._eval(expr.elt, sub)
            frame.env = sub.env
            return _v(IterVal(element))
        if isinstance(expr, ast.DictComp):
            sub = self._comp_frame(expr.generators, frame)
            key = self._eval(expr.key, sub)
            val = self._eval(expr.value, sub)
            frame.env = sub.env
            return _v(DictVal(key, val))
        if isinstance(expr, ast.Lambda):
            info = FunctionInfo(
                module=frame.module,
                name="<lambda>",
                qualname=f"{frame.func.qualname}.<lambda>",
                node=expr,
            )
            closure = tuple(sorted(frame.env.items()))
            return _v(FuncVal(info, closure=closure))
        if isinstance(expr, ast.JoinedStr):
            for part in expr.values:
                self._eval(part, frame)
            return UNKNOWN
        if isinstance(expr, ast.FormattedValue):
            self._eval(expr.value, frame)
            if expr.format_spec is not None:
                self._eval(expr.format_spec, frame)
            return UNKNOWN
        if isinstance(expr, ast.NamedExpr):
            value = self._eval(expr.value, frame)
            self._assign(expr.target, value, frame)
            return value
        if isinstance(expr, ast.Starred):
            return self._eval(expr.value, frame)
        if isinstance(expr, ast.Slice):
            for part in (expr.lower, expr.upper, expr.step):
                if part is not None:
                    self._eval(part, frame)
            return UNKNOWN
        if isinstance(expr, (ast.Await, ast.YieldFrom)):
            return self._eval(expr.value, frame) if expr.value is not None else UNKNOWN
        if isinstance(expr, ast.Yield):
            if expr.value is not None:
                self._eval(expr.value, frame)
            return UNKNOWN
        return UNKNOWN

    def _comp_frame(
        self, generators: Sequence[ast.comprehension], frame: _Frame
    ) -> _Frame:
        sub = _Frame(
            func=frame.func,
            module=frame.module,
            returns=frame.returns,
            env=dict(frame.env),
        )
        for gen in generators:
            iterable = self._eval(gen.iter, sub)
            self._assign(gen.target, _element_of(iterable), sub)
            for cond in gen.ifs:
                self._eval(cond, sub)
        return sub

    def _eval_name(self, name: str, frame: _Frame) -> Value:
        if name in frame.env:
            return frame.env[name]
        entity = self.index.resolve(frame.module, name)
        if entity is not None:
            return self._entity_value(entity)
        return UNKNOWN

    # -------------------------------------------------- attribute access
    def _attr(
        self, base: Value, attr: str, frame: _Frame, node: ast.AST
    ) -> Value:
        results: list[Value] = []
        for atom in base:
            results.append(self._attr_atom(atom, attr, frame, node))
        return _union(results)

    def _attr_atom(
        self, atom: Atom, attr: str, frame: _Frame, node: ast.AST
    ) -> Value:
        if isinstance(atom, Instance):
            cls = atom.cls
            if self._is_boundary(cls.module):
                return UNKNOWN
            if attr.startswith("__") and attr.endswith("__"):
                return UNKNOWN
            if attr in cls.fields:
                self._record_read(cls, attr, frame, node)
                return self._annotation_value(cls.fields[attr], cls.module)
            if attr in cls.properties:
                self_name = _first_param_name(cls.properties[attr].node)
                bindings = {self_name: _v(atom)} if self_name else {}
                return self._analyze_function(cls.properties[attr], bindings)
            if attr in cls.methods:
                return _v(FuncVal(cls.methods[attr], recv=_v(atom)))
            if attr in cls.class_attrs:
                return _v(Instance(cls)) if cls.is_enum else UNKNOWN
            if (
                attr in MUTATOR_METHODS
                and cls.name in self.contract.tracked_mutable
            ):
                self._flag_mutation(cls.name, f"calls .{attr}()", frame, node)
                return UNKNOWN
            # Unknown attribute on a known class: record conservatively —
            # if the class is fingerprint-covered, the fingerprint must
            # account for whatever this is.
            self._record_read(cls, attr, frame, node)
            return UNKNOWN
        if isinstance(atom, ClassVal):
            cls = atom.cls
            if self._is_boundary(cls.module):
                return UNKNOWN
            if attr in cls.methods:
                method = cls.methods[attr]
                recv = _v(atom) if method.is_classmethod else None
                return _v(FuncVal(method, recv=recv))
            if attr in cls.class_attrs:
                return _v(Instance(cls)) if cls.is_enum else UNKNOWN
            return UNKNOWN
        if isinstance(atom, ModVal):
            entity = self.index.resolve(atom.module, attr)
            return self._entity_value(entity) if entity is not None else UNKNOWN
        if isinstance(atom, ExtVal):
            qualname = f"{atom.qualname}.{attr}"
            if _matches_sink(qualname, self.contract.sink_prefixes):
                self._flag_sink(qualname, frame, node)
            return _v(ExtVal(qualname))
        if isinstance(atom, DictVal) and attr in (
            "items", "values", "keys", "get", "setdefault", "pop", "copy"
        ):
            return _v(BoundBuiltin(kind=f"dict.{attr}", base=_v(atom)))
        return UNKNOWN

    # -------------------------------------------------- subscripts
    def _subscript(self, base: Value, slc: ast.expr, frame: _Frame) -> Value:
        index_value = self._eval(slc, frame)
        del index_value
        results: list[Value] = []
        for atom in base:
            if isinstance(atom, IterVal):
                results.append(
                    _v(IterVal(atom.elem)) if isinstance(slc, ast.Slice) else atom.elem
                )
            elif isinstance(atom, TupleVal):
                if isinstance(slc, ast.Constant) and isinstance(slc.value, int):
                    position = slc.value
                    if -len(atom.items) <= position < len(atom.items):
                        results.append(atom.items[position])
                else:
                    results.append(_union(atom.items))
            elif isinstance(atom, DictVal):
                results.append(atom.val)
        return _union(results)

    # -------------------------------------------------- calls
    def _eval_call(self, call: ast.Call, frame: _Frame) -> Value:
        args = [self._eval(a, frame) for a in call.args]
        kwargs = {
            kw.arg: self._eval(kw.value, frame)
            for kw in call.keywords
            if kw.arg is not None
        }
        for kw in call.keywords:
            if kw.arg is None:
                self._eval(kw.value, frame)

        func_expr = call.func
        if isinstance(func_expr, ast.Name):
            name = func_expr.id
            if name not in frame.env and self.index.resolve(frame.module, name) is None:
                return self._call_builtin(name, call, args, kwargs, frame)
        callee = self._eval(func_expr, frame)
        if not callee:
            return UNKNOWN
        results: list[Value] = []
        for atom in callee:
            results.append(self._call_atom(atom, call, args, kwargs, frame))
        return _union(results)

    def _call_atom(
        self,
        atom: Atom,
        call: ast.Call,
        args: Sequence[Value],
        kwargs: Mapping[str, Value],
        frame: _Frame,
    ) -> Value:
        if isinstance(atom, FuncVal):
            return self._call_function(atom, call, args, kwargs)
        if isinstance(atom, ClassVal):
            return _v(Instance(atom.cls))
        if isinstance(atom, ExtVal):
            qualname = atom.qualname
            if _matches_sink(qualname, self.contract.sink_prefixes):
                self._flag_sink(qualname, frame, call)
            if qualname in ("dataclasses.replace", "copy.copy", "copy.deepcopy"):
                return args[0] if args else UNKNOWN
            return UNKNOWN
        if isinstance(atom, BoundBuiltin):
            return self._call_bound_builtin(atom, args)
        return UNKNOWN

    def _call_function(
        self,
        fv: FuncVal,
        call: ast.Call,
        args: Sequence[Value],
        kwargs: Mapping[str, Value],
    ) -> Value:
        func = fv.func
        bindings: dict[str, Value] = dict(fv.closure)
        node_args = func.node.args
        params = [*node_args.posonlyargs, *node_args.args]
        positional = list(args)
        if fv.recv is not None and not func.is_staticmethod:
            positional = [fv.recv, *positional]
        has_star = any(isinstance(a, ast.Starred) for a in call.args)
        if not has_star:
            for param, value in zip(params, positional):
                bindings[param.arg] = value
        known = {p.arg for p in [*params, *node_args.kwonlyargs]}
        for name, value in kwargs.items():
            if name in known:
                bindings[name] = value
        return self._analyze_function(func, bindings)

    def _call_bound_builtin(
        self, atom: BoundBuiltin, args: Sequence[Value]
    ) -> Value:
        dicts = [a for a in atom.base if isinstance(a, DictVal)]
        keys = _union(d.key for d in dicts)
        vals = _union(d.val for d in dicts)
        kind = atom.kind
        if kind == "dict.items":
            return _v(IterVal(_v(TupleVal((keys, vals)))))
        if kind == "dict.keys":
            return _v(IterVal(keys))
        if kind == "dict.values":
            return _v(IterVal(vals))
        if kind in ("dict.get", "dict.pop"):
            default = args[1] if len(args) > 1 else UNKNOWN
            return _union((vals, default))
        if kind == "dict.setdefault":
            default = args[1] if len(args) > 1 else UNKNOWN
            return _union((vals, default))
        if kind == "dict.copy":
            return atom.base
        return UNKNOWN

    def _call_builtin(
        self,
        name: str,
        call: ast.Call,
        args: Sequence[Value],
        kwargs: Mapping[str, Value],
        frame: _Frame,
    ) -> Value:
        if name in self.contract.sink_builtins:
            self._flag_sink(f"builtins.{name}", frame, call)
            return UNKNOWN
        if name not in _BUILTIN_NAMES:
            return UNKNOWN
        first = args[0] if args else UNKNOWN
        if name in ("tuple", "list", "set", "frozenset", "iter", "reversed"):
            return first if first else _v(IterVal(UNKNOWN))
        if name == "sorted":
            key_fn = kwargs.get("key", UNKNOWN)
            self._apply_callable(key_fn, [_element_of(first)], frame, call)
            return first
        if name in ("min", "max"):
            key_fn = kwargs.get("key", UNKNOWN)
            self._apply_callable(key_fn, [_element_of(first)], frame, call)
            return _union([_element_of(first), *args[1:]])
        if name == "zip":
            return _v(IterVal(_v(TupleVal(tuple(_element_of(a) for a in args)))))
        if name == "enumerate":
            return _v(IterVal(_v(TupleVal((UNKNOWN, _element_of(first))))))
        if name == "next":
            return _element_of(first)
        if name == "map":
            result = self._apply_callable(
                first, [_element_of(a) for a in args[1:]], frame, call
            )
            return _v(IterVal(result))
        if name == "filter":
            self._apply_callable(first, [_element_of(args[1] if len(args) > 1 else UNKNOWN)], frame, call)
            return args[1] if len(args) > 1 else UNKNOWN
        if name == "getattr":
            return self._dynamic_getattr(call, args, frame)
        if name in ("setattr", "delattr"):
            for atom in first:
                if (
                    isinstance(atom, Instance)
                    and atom.cls.name in self.contract.tracked_mutable
                ):
                    self._flag_mutation(
                        atom.cls.name, f"calls {name}()", frame, call
                    )
            return UNKNOWN
        if name == "str":
            for atom in first:
                if isinstance(atom, Instance) and "__str__" in atom.cls.methods:
                    self._call_function(
                        FuncVal(atom.cls.methods["__str__"], recv=_v(atom)),
                        call,
                        [],
                        {},
                    )
            return UNKNOWN
        if name == "dict":
            return first if first else _v(DictVal(UNKNOWN, UNKNOWN))
        return UNKNOWN

    def _dynamic_getattr(
        self, call: ast.Call, args: Sequence[Value], frame: _Frame
    ) -> Value:
        if len(call.args) >= 2 and isinstance(call.args[1], ast.Constant) and isinstance(
            call.args[1].value, str
        ):
            attr_value = self._attr(args[0], call.args[1].value, frame, call)
            default = args[2] if len(args) > 2 else UNKNOWN
            return _union((attr_value, default))
        return UNKNOWN

    def _apply_callable(
        self,
        func_value: Value,
        args: Sequence[Value],
        frame: _Frame,
        call: ast.Call,
    ) -> Value:
        results: list[Value] = []
        for atom in func_value:
            if isinstance(atom, FuncVal):
                results.append(self._call_function(atom, call, list(args), {}))
            elif isinstance(atom, ClassVal):
                results.append(_v(Instance(atom.cls)))
        return _union(results)


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------


def _first_param_name(
    node: Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda],
) -> str | None:
    params = [*node.args.posonlyargs, *node.args.args]
    return params[0].arg if params else None


def _element_of(value: Value) -> Value:
    parts: list[Value] = []
    for atom in value:
        if isinstance(atom, IterVal):
            parts.append(atom.elem)
        elif isinstance(atom, TupleVal):
            parts.append(_union(atom.items))
        elif isinstance(atom, DictVal):
            parts.append(atom.key)
    return _union(parts)


def _ann_base_name(expr: ast.expr) -> str:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return ""


def _is_ellipsis(expr: ast.expr) -> bool:
    return isinstance(expr, ast.Constant) and expr.value is Ellipsis


def _matches_sink(qualname: str, prefixes: Sequence[str]) -> bool:
    return any(
        qualname == p.rstrip(".") or qualname.startswith(p)
        for p in prefixes
    )


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------


def analyze_memoized(
    index: ModuleIndex, contract: MemoContract
) -> list[Diagnostic]:
    """Run the cache-safety analysis over an indexed tree.

    Returns CAC001/CAC002/CAC003/PUR001/PUR002 diagnostics, ordered by
    rule id then location.  Raises :class:`ValueError` when a declared
    root cannot be resolved — a silent no-op analysis would report a
    clean bill it never earned.
    """
    analyzer = _Analyzer(index, contract)
    for root in contract.roots:
        func = index.resolve_qualname(root)
        if func is None:
            raise ValueError(f"cannot resolve analysis root {root!r}")
        analyzer.analyze_root(func)

    diagnostics = list(analyzer.effects)
    for (cls_name, attr), location in sorted(analyzer.reads.items()):
        spec = contract.coverage.get(cls_name)
        if spec is None or attr in spec.covered:
            continue
        diagnostics.append(
            CAC001.diag(
                location,
                f"{cls_name}.{attr} is read by the memoized evaluation but "
                "missing from the cache-key fingerprint",
                hint=f"fold {attr} into the {cls_name} fingerprint, or declare "
                "it result-invariant if it cannot change the metrics",
            )
        )
    read_classes = {cls_name for cls_name, _ in analyzer.reads}
    for cls_name in sorted(contract.coverage):
        spec = contract.coverage[cls_name]
        if cls_name not in read_classes:
            # The class never materialised in the traversal at all;
            # per-field "never read" noise would just repeat that.
            continue
        for field_name in sorted(spec.fingerprinted):
            if (cls_name, field_name) not in analyzer.reads:
                diagnostics.append(
                    CAC002.diag(
                        f"{cls_name}.{field_name}",
                        "fingerprinted but never read by the memoized "
                        "evaluation — a dead key component",
                        hint="drop it from the fingerprint, or wire it into "
                        "the evaluation",
                    )
                )
    diagnostics.sort(key=lambda d: (d.rule_id, d.location, d.message))
    return diagnostics


def simulator_contract() -> MemoContract:
    """The repro tree's own memoization contract.

    Coverage comes from the declarations in :mod:`repro.sim.cache`
    (:data:`~repro.sim.cache.FINGERPRINTED_FIELDS` /
    :data:`~repro.sim.cache.RESULT_INVARIANT_FIELDS`) — the same tables
    the fingerprint implementations fold over, so the analyzer checks
    what the cache actually does, not a parallel copy of it.
    """
    from ..sim.cache import FINGERPRINTED_FIELDS, RESULT_INVARIANT_FIELDS

    coverage = {
        cls_name: CoverageSpec(
            fingerprinted=frozenset(fields),
            exempt=frozenset(RESULT_INVARIANT_FIELDS.get(cls_name, ())),
        )
        for cls_name, fields in FINGERPRINTED_FIELDS.items()
    }
    return MemoContract(
        roots=(
            "repro.sim.simulator:Simulator.evaluate",
            "repro.sim.simulator:Simulator.try_evaluate",
        ),
        coverage=coverage,
        # ``repro.obs`` is a boundary for the same reason the cache is:
        # its clocks and sinks are deliberate I/O that never feeds back
        # into a metric (the trace-invariance battery is the evidence).
        boundary_modules=("repro.sim.cache", "repro.obs"),
    )


def analyze_cache_safety(root: Path | None = None) -> list[Diagnostic]:
    """Prove (or refute) the simulator's cache-key soundness contract.

    Indexes the installed ``repro`` package (or an explicit source tree
    rooted at ``root``) and runs :func:`analyze_memoized` with the
    contract of :func:`simulator_contract`.  An empty result is the
    theorem: no attribute the evaluation reads escapes the fingerprint,
    and the evaluation is pure.
    """
    base = root if root is not None else Path(__file__).resolve().parent.parent
    index = ModuleIndex.from_package(Path(base), "repro")
    return analyze_memoized(index, simulator_contract())
