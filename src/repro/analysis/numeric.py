"""NumPy-aware numeric-safety analysis of the simulator tree (NUM rules).

The vectorized cost model (``repro.sim.kernels``) holds a bit-exactness
contract with the scalar reference, and ROADMAP item 4 will pile more
floating-point code (noise models, IR drop) onto ``src/repro/sim/``.
This pass walks every module under ``sim/`` with a small abstract
interpreter over NumPy expressions — tracking explicit dtypes, zero /
negative evidence, and nan/inf taint through assignments — and flags the
five numeric hazards that have actually bitten this codebase or its
ancestors:

========  =============================================================
NUM001    implicit dtype promotion/narrowing: mixed int32/int64,
          float32/float64, or int folded into float32 (ERROR)
NUM002    order-sensitive reduction: ``np.sum``/``np.dot``/``np.matmul``
          /``np.einsum`` on known-float operands — the scalar reference
          folds strictly left-to-right; ``np.cumsum``
          (:func:`repro.sim.kernels.left_fold`) is the sanctioned
          idiom (ERROR)
NUM003    unguarded division/log/sqrt on a value with zero or negative
          evidence (``np.zeros``, a literal 0 element, a
          subtraction) (ERROR)
NUM004    float equality comparison (ERROR)
NUM005    nan/inf taint flowing into min/max/argmin/argmax/sort or an
          ordering comparison without an ``np.isfinite`` guard (ERROR)
========  =============================================================

The interpreter is *optimistic about unknowns*: values it cannot type
produce no findings, so ordinary Python arithmetic stays silent and the
real tree stays clean.  Findings come only from positive evidence — an
explicit ``dtype=``, an ``np.zeros``, a float literal.  Deliberate
exceptions are waived in place with ``# numeric-ok: NUMxxx (reason)``
on the offending line, the same escape-hatch idiom as the lint
allowlists.

Entry points: :func:`numeric_findings` (one source text) and
:func:`analyze_numeric` (every module under ``<root>/sim/``, wired into
``repro check --numeric``).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, replace
from pathlib import Path

from .invariants import NUM001, NUM002, NUM003, NUM004, NUM005, Diagnostic

_SUPPRESS_RE = re.compile(r"#\s*numeric-ok:\s*(NUM\d{3})")

#: NumPy reductions whose float rounding is order-sensitive (NUM002).
_ORDER_SENSITIVE = frozenset(
    {"sum", "dot", "prod", "matmul", "einsum", "inner", "vdot", "trace"}
)
#: NumPy / builtin consumers that nan poisons silently (NUM005).
_NAN_SINKS = frozenset(
    {"min", "max", "amin", "amax", "argmin", "argmax", "sort", "argsort",
     "median", "minimum", "maximum", "sorted", "partition", "argpartition"}
)
#: nan-aware variants — using one *is* the guard.
_NAN_AWARE = frozenset(
    {"nanmin", "nanmax", "nanargmin", "nanargmax", "nansum", "nanmean",
     "nanmedian"}
)
_INT_DTYPES = frozenset({"int8", "int16", "int32", "int64", "uint8",
                         "uint16", "uint32", "uint64"})
_FLOAT_DTYPES = frozenset({"float16", "float32", "float64"})


@dataclass(frozen=True)
class _Info:
    """What the interpreter knows about one value.  All-default = unknown."""

    dtype: str | None = None        #: explicit NumPy dtype, if declared
    is_array: bool = False
    maybe_zero: bool = False        #: positive evidence it can be 0
    maybe_negative: bool = False    #: positive evidence it can be < 0
    nonfinite: bool = False         #: positive evidence of nan/inf taint
    float_literal: bool = False     #: a literal float (NUM004 evidence)


_UNKNOWN = _Info()


def _merge(a: _Info, b: _Info) -> _Info:
    return _Info(
        dtype=a.dtype if a.dtype == b.dtype else None,
        is_array=a.is_array or b.is_array,
        maybe_zero=a.maybe_zero or b.maybe_zero,
        maybe_negative=a.maybe_negative or b.maybe_negative,
        nonfinite=a.nonfinite or b.nonfinite,
        float_literal=a.float_literal or b.float_literal,
    )


def _is_float(info: _Info) -> bool:
    return info.float_literal or (
        info.dtype is not None and info.dtype in _FLOAT_DTYPES
    )


def _dtype_conflict(left: str, right: str) -> bool:
    """Do these two explicit dtypes mix unsafely (NUM001)?

    Same dtype never conflicts.  ``int64`` meeting ``float64`` is the
    exact promotion the scalar reference performs, so it is allowed;
    everything else either changes width within a family or narrows an
    int into ``float32``.
    """
    if left == right:
        return False
    if {left, right} == {"int64", "float64"}:
        return False
    return True


class _Checker:
    def __init__(self, source: str, rel_path: str) -> None:
        self.rel_path = rel_path
        self.tree = ast.parse(source, filename=rel_path)
        self.diags: list[Diagnostic] = []
        self.suppressed: dict[int, set[str]] = {}
        for lineno, line in enumerate(source.splitlines(), start=1):
            rules = set(_SUPPRESS_RE.findall(line))
            if rules:
                self.suppressed[lineno] = rules
        #: local names bound to the numpy module (``import numpy as np``)
        self.np_names: set[str] = set()
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numpy":
                        self.np_names.add(alias.asname or "numpy")

    # ------------------------------------------------------------------
    def run(self) -> list[Diagnostic]:
        self._block(self.tree.body, {})
        self.diags.sort(key=lambda d: (d.rule_id, d.location, d.message))
        return self.diags

    def _flag(self, rule, node: ast.AST, message: str, hint: str) -> None:
        lineno = getattr(node, "lineno", 0)
        if rule.rule_id in self.suppressed.get(lineno, ()):
            return
        self.diags.append(
            rule.diag(f"{self.rel_path}:{lineno}", message, hint)
        )

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def _block(self, stmts: list[ast.stmt], env: dict[str, _Info]) -> None:
        for stmt in stmts:
            self._stmt(stmt, env)

    def _stmt(self, stmt: ast.stmt, env: dict[str, _Info]) -> None:
        if isinstance(stmt, ast.Assign):
            info = self._infer(stmt.value, env)
            for target in stmt.targets:
                self._bind(target, info, env)
        elif isinstance(stmt, ast.AnnAssign):
            info = (
                self._infer(stmt.value, env)
                if stmt.value is not None
                else _UNKNOWN
            )
            self._bind(stmt.target, info, env)
        elif isinstance(stmt, ast.AugAssign):
            value = self._infer(stmt.value, env)
            if isinstance(stmt.target, ast.Name):
                prior = env.get(stmt.target.id, _UNKNOWN)
                env[stmt.target.id] = self._binop_result(
                    prior, value, stmt.op, stmt
                )
        elif isinstance(stmt, (ast.Expr, ast.Return)):
            if stmt.value is not None:
                self._infer(stmt.value, env)
        elif isinstance(stmt, ast.If):
            self._infer(stmt.test, env)
            body_env = dict(env)
            self._apply_guards(stmt.test, body_env)
            self._block(stmt.body, body_env)
            else_env = dict(env)
            self._block(stmt.orelse, else_env)
            if stmt.body and isinstance(
                stmt.body[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break)
            ):
                # ``if x == 0: raise/return`` — only the negated condition
                # survives past the statement.
                env.clear()
                env.update(else_env)
                self._apply_negated_guards(stmt.test, env)
            else:
                for name in set(body_env) | set(else_env):
                    env[name] = _merge(
                        body_env.get(name, _UNKNOWN),
                        else_env.get(name, _UNKNOWN),
                    )
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._infer(stmt.iter, env)
            self._bind(stmt.target, _UNKNOWN, env)
            self._block(stmt.body, env)
            self._block(stmt.orelse, env)
        elif isinstance(stmt, ast.While):
            self._infer(stmt.test, env)
            self._block(stmt.body, env)
            self._block(stmt.orelse, env)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._infer(item.context_expr, env)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, _UNKNOWN, env)
            self._block(stmt.body, env)
        elif isinstance(stmt, ast.Try):
            self._block(stmt.body, env)
            for handler in stmt.handlers:
                self._block(handler.body, env)
            self._block(stmt.orelse, env)
            self._block(stmt.finalbody, env)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._block(stmt.body, {})
        elif isinstance(stmt, ast.ClassDef):
            self._block(stmt.body, {})
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for part in (
                getattr(stmt, "exc", None),
                getattr(stmt, "cause", None),
                getattr(stmt, "test", None),
                getattr(stmt, "msg", None),
            ):
                if part is not None:
                    self._infer(part, env)
        # Import / Pass / Break / Continue / Global / Delete: nothing.

    def _bind(self, target: ast.expr, info: _Info, env: dict[str, _Info]) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = info
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, _UNKNOWN, env)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, _UNKNOWN, env)
        # Attribute / Subscript stores: no tracking.

    # ------------------------------------------------------------------
    # guards — branch conditions that discharge taint for the body
    # ------------------------------------------------------------------
    def _apply_guards(self, test: ast.expr, env: dict[str, _Info]) -> None:
        if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
            for value in test.values:
                self._apply_guards(value, env)
            return
        if (
            isinstance(test, ast.Call)
            and self._np_call_name(test) == "all"
            and test.args
        ):
            # ``np.all(cond)`` guards exactly what elementwise ``cond`` does.
            self._apply_guards(test.args[0], env)
            return
        if isinstance(test, ast.Name):
            self._clear(test.id, env, zero=True)
            return
        if isinstance(test, ast.Compare) and len(test.ops) == 1:
            left, op, right = test.left, test.ops[0], test.comparators[0]
            name, bound, flipped = None, None, False
            if isinstance(left, ast.Name) and isinstance(right, ast.Constant):
                name, bound = left.id, right.value
            elif isinstance(right, ast.Name) and isinstance(left, ast.Constant):
                name, bound, flipped = right.id, left.value, True
            if name is None or not isinstance(bound, (int, float)):
                return
            if flipped:  # ``0 < x`` reads as ``x > 0``
                op = {ast.Lt: ast.Gt, ast.LtE: ast.GtE,
                      ast.Gt: ast.Lt, ast.GtE: ast.LtE}.get(type(op), type(op))()
            if isinstance(op, ast.Gt) and bound >= 0:
                self._clear(name, env, zero=True, negative=True)
            elif isinstance(op, ast.GtE) and bound > 0:
                self._clear(name, env, zero=True, negative=True)
            elif isinstance(op, ast.GtE) and bound == 0:
                self._clear(name, env, negative=True)
            elif isinstance(op, ast.NotEq) and bound == 0:
                self._clear(name, env, zero=True)
            return
        # ``np.isfinite(x)`` / ``np.all(np.isfinite(x))`` discharge taint.
        call = test
        if (
            isinstance(call, ast.Call)
            and self._np_call_name(call) == "isfinite"
            and call.args
            and isinstance(call.args[0], ast.Name)
        ):
            self._clear(call.args[0].id, env, finite=True)

    _NEGATED_OPS: dict[type[ast.cmpop], type[ast.cmpop]] = {
        ast.Eq: ast.NotEq, ast.NotEq: ast.Eq,
        ast.Lt: ast.GtE, ast.LtE: ast.Gt,
        ast.Gt: ast.LtE, ast.GtE: ast.Lt,
    }

    def _apply_negated_guards(self, test: ast.expr, env: dict[str, _Info]) -> None:
        """Apply ``not test`` as a guard — for early-exit conditionals."""
        if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.Or):
            # not (a or b) == (not a) and (not b)
            for value in test.values:
                self._apply_negated_guards(value, env)
            return
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            self._apply_guards(test.operand, env)
            return
        if isinstance(test, ast.Compare) and len(test.ops) == 1:
            negated = self._NEGATED_OPS.get(type(test.ops[0]))
            if negated is not None:
                self._apply_guards(
                    ast.Compare(
                        left=test.left, ops=[negated()],
                        comparators=test.comparators,
                    ),
                    env,
                )

    def _clear(
        self,
        name: str,
        env: dict[str, _Info],
        *,
        zero: bool = False,
        negative: bool = False,
        finite: bool = False,
    ) -> None:
        info = env.get(name, _UNKNOWN)
        env[name] = replace(
            info,
            maybe_zero=info.maybe_zero and not zero,
            maybe_negative=info.maybe_negative and not negative,
            nonfinite=info.nonfinite and not finite,
        )

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------
    def _infer(self, expr: ast.expr, env: dict[str, _Info]) -> _Info:
        if isinstance(expr, ast.Constant):
            value = expr.value
            if isinstance(value, bool):
                return _UNKNOWN
            if isinstance(value, int):
                return _Info(maybe_zero=value == 0, maybe_negative=value < 0)
            if isinstance(value, float):
                return _Info(
                    maybe_zero=value == 0.0,
                    maybe_negative=value < 0.0,
                    nonfinite=value != value or value in (
                        float("inf"), float("-inf")
                    ),
                    float_literal=True,
                )
            return _UNKNOWN
        if isinstance(expr, ast.Name):
            return env.get(expr.id, _UNKNOWN)
        if isinstance(expr, ast.Attribute):
            self._infer(expr.value, env)
            if (
                isinstance(expr.value, ast.Name)
                and expr.value.id in self.np_names
            ):
                if expr.attr in ("inf", "nan", "NINF", "NAN", "Inf", "NaN"):
                    return _Info(nonfinite=True, float_literal=True)
                if expr.attr in ("pi", "e", "euler_gamma"):
                    return _Info(float_literal=True)
            return _UNKNOWN
        if isinstance(expr, ast.UnaryOp):
            operand = self._infer(expr.operand, env)
            if isinstance(expr.op, ast.USub):
                return replace(operand, maybe_negative=True)
            return operand if isinstance(expr.op, ast.UAdd) else _UNKNOWN
        if isinstance(expr, ast.BinOp):
            left = self._infer(expr.left, env)
            right = self._infer(expr.right, env)
            return self._binop_result(left, right, expr.op, expr)
        if isinstance(expr, ast.BoolOp):
            infos = [self._infer(v, env) for v in expr.values]
            merged = infos[0]
            for info in infos[1:]:
                merged = _merge(merged, info)
            if isinstance(expr.op, ast.Or):
                last = expr.values[-1]
                if (
                    isinstance(last, ast.Constant)
                    and isinstance(last.value, (int, float))
                    and not isinstance(last.value, bool)
                    and last.value > 0
                ):
                    # ``x or 1.0``: the result is either truthy x or the
                    # positive fallback — zero is impossible.
                    return replace(merged, maybe_zero=False)
            return merged
        if isinstance(expr, ast.Compare):
            self._compare(expr, env)
            return _UNKNOWN
        if isinstance(expr, ast.Call):
            return self._call(expr, env)
        if isinstance(expr, ast.Subscript):
            base = self._infer(expr.value, env)
            self._infer(expr.slice, env)
            return base if base.is_array else _UNKNOWN
        if isinstance(expr, ast.IfExp):
            self._infer(expr.test, env)
            return _merge(
                self._infer(expr.body, env), self._infer(expr.orelse, env)
            )
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            for elt in expr.elts:
                self._infer(elt, env)
            return _UNKNOWN
        if isinstance(expr, ast.Dict):
            for part in [*expr.keys, *expr.values]:
                if part is not None:
                    self._infer(part, env)
            return _UNKNOWN
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            sub = dict(env)
            for gen in expr.generators:
                self._infer(gen.iter, sub)
                self._bind(gen.target, _UNKNOWN, sub)
                for cond in gen.ifs:
                    self._infer(cond, sub)
            self._infer(expr.elt, sub)
            return _UNKNOWN
        if isinstance(expr, ast.DictComp):
            sub = dict(env)
            for gen in expr.generators:
                self._infer(gen.iter, sub)
                self._bind(gen.target, _UNKNOWN, sub)
            self._infer(expr.key, sub)
            self._infer(expr.value, sub)
            return _UNKNOWN
        if isinstance(expr, ast.JoinedStr):
            for part in expr.values:
                if isinstance(part, ast.FormattedValue):
                    self._infer(part.value, env)
            return _UNKNOWN
        if isinstance(expr, ast.Starred):
            return self._infer(expr.value, env)
        if isinstance(expr, ast.Slice):
            for part in (expr.lower, expr.upper, expr.step):
                if part is not None:
                    self._infer(part, env)
            return _UNKNOWN
        if isinstance(expr, ast.NamedExpr):
            value = self._infer(expr.value, env)
            self._bind(expr.target, value, env)
            return value
        if isinstance(expr, ast.Lambda):
            self._block([ast.Return(value=expr.body)], {})
            return _UNKNOWN
        return _UNKNOWN

    # ------------------------------------------------------------------
    def _binop_result(
        self, left: _Info, right: _Info, op: ast.operator, node: ast.AST
    ) -> _Info:
        if (
            left.dtype is not None
            and right.dtype is not None
            and _dtype_conflict(left.dtype, right.dtype)
        ):
            self._flag(
                NUM001,
                node,
                f"arithmetic mixes {left.dtype} and {right.dtype} operands — "
                "NumPy promotes or narrows silently and the result diverges "
                "from the scalar reference",
                hint="convert one operand explicitly (.astype) at the same "
                "point the scalar code converts",
            )
        if isinstance(op, ast.MatMult) and (_is_float(left) or _is_float(right)):
            self._flag(
                NUM002,
                node,
                "matrix product on float operands uses pairwise accumulation "
                "— rounding depends on length and layout",
                hint="use the cumsum left-fold idiom "
                "(repro.sim.kernels.left_fold) for bit-exact folds",
            )
        nonfinite = left.nonfinite or right.nonfinite
        if isinstance(op, (ast.Div, ast.FloorDiv, ast.Mod)):
            if right.maybe_zero:
                self._flag(
                    NUM003,
                    node,
                    "division by a value with zero evidence and no guard — "
                    "the kernel mints inf/nan where the scalar path raises",
                    hint="guard the denominator (if d: / np.maximum(d, eps)) "
                    "or prove it nonzero at construction",
                )
                if isinstance(op, ast.Div):
                    nonfinite = True
        dtype: str | None
        if left.dtype == right.dtype:
            dtype = left.dtype
        elif left.dtype is not None and right.dtype is None:
            dtype = left.dtype
        elif right.dtype is not None and left.dtype is None:
            dtype = right.dtype
        else:
            dtype = None
        if isinstance(op, ast.Div) and dtype in _INT_DTYPES:
            dtype = "float64"
        is_array = left.is_array or right.is_array
        if isinstance(op, ast.Sub):
            return _Info(
                dtype=dtype, is_array=is_array, maybe_zero=True,
                maybe_negative=True, nonfinite=nonfinite,
            )
        if isinstance(op, ast.Pow):
            return _Info(
                dtype=dtype, is_array=is_array,
                maybe_zero=left.maybe_zero,
                maybe_negative=left.maybe_negative
                and not self._even_exponent(node),
                nonfinite=nonfinite,
            )
        if isinstance(op, ast.Mult):
            maybe_zero = left.maybe_zero or right.maybe_zero
        elif isinstance(op, (ast.Add, ast.Div, ast.FloorDiv, ast.Mod)):
            maybe_zero = left.maybe_zero and right.maybe_zero
        else:
            maybe_zero = left.maybe_zero or right.maybe_zero
        return _Info(
            dtype=dtype,
            is_array=is_array,
            maybe_zero=maybe_zero,
            maybe_negative=left.maybe_negative or right.maybe_negative,
            nonfinite=nonfinite,
            float_literal=False,
        )

    @staticmethod
    def _even_exponent(node: ast.AST) -> bool:
        return (
            isinstance(node, ast.BinOp)
            and isinstance(node.op, ast.Pow)
            and isinstance(node.right, ast.Constant)
            and isinstance(node.right.value, int)
            and node.right.value % 2 == 0
        )

    # ------------------------------------------------------------------
    def _compare(self, expr: ast.Compare, env: dict[str, _Info]) -> None:
        infos = [self._infer(expr.left, env)] + [
            self._infer(c, env) for c in expr.comparators
        ]
        for position, op in enumerate(expr.ops):
            left, right = infos[position], infos[position + 1]
            if isinstance(op, (ast.Eq, ast.NotEq)):
                if _is_float(left) or _is_float(right):
                    self._flag(
                        NUM004,
                        expr,
                        "exact float equality — rounding differences between "
                        "the scalar and vectorized paths make == / != on "
                        "floats a latent divergence",
                        hint="compare integers, use a tolerance, or waive a "
                        "deliberate sentinel check with "
                        "`# numeric-ok: NUM004 (reason)`",
                    )
            elif isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE)):
                if left.nonfinite or right.nonfinite:
                    self._flag(
                        NUM005,
                        expr,
                        "ordering comparison on a value that can carry "
                        "nan/inf — every comparison with nan is False and "
                        "the branch outcome is arbitrary",
                        hint="guard with np.isfinite first",
                    )

    # ------------------------------------------------------------------
    # calls
    # ------------------------------------------------------------------
    def _np_call_name(self, call: ast.Call) -> str | None:
        func = call.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in self.np_names
        ):
            return func.attr
        return None

    def _dtype_of(self, expr: ast.expr | None) -> str | None:
        if expr is None:
            return None
        if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
            if expr.value.id in self.np_names and (
                expr.attr in _INT_DTYPES or expr.attr in _FLOAT_DTYPES
            ):
                return expr.attr
            return None
        if isinstance(expr, ast.Name):
            return {"float": "float64", "int": "int64", "bool": None}.get(
                expr.id
            )
        if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
            name = expr.value
            return name if name in _INT_DTYPES | _FLOAT_DTYPES else None
        return None

    def _call(self, call: ast.Call, env: dict[str, _Info]) -> _Info:
        args = [self._infer(a, env) for a in call.args]
        kwargs = {
            kw.arg: self._infer(kw.value, env)
            for kw in call.keywords
            if kw.arg is not None
        }
        del kwargs
        dtype_kw = next(
            (kw.value for kw in call.keywords if kw.arg == "dtype"), None
        )

        np_name = self._np_call_name(call)
        if np_name is not None:
            return self._np_call(np_name, call, args, dtype_kw, env)

        func = call.func
        # method calls: x.astype(...), x.sum(), x.min() ...
        if isinstance(func, ast.Attribute) and np_name is None:
            base = self._infer(func.value, env)
            if func.attr == "astype" and call.args:
                dtype = self._dtype_of(call.args[0])
                return replace(
                    base, dtype=dtype or base.dtype, is_array=True
                )
            if func.attr in _ORDER_SENSITIVE and _is_float(base):
                self._flag(
                    NUM002,
                    call,
                    f".{func.attr}() on a float array uses pairwise "
                    "accumulation — rounding depends on length and layout",
                    hint="use the cumsum left-fold idiom "
                    "(repro.sim.kernels.left_fold) for bit-exact folds",
                )
                return replace(base, is_array=False)
            if func.attr in _NAN_SINKS and base.nonfinite:
                self._flag_nan_sink(func.attr, call)
            if func.attr in ("cumsum", "cumprod", "copy", "ravel", "reshape",
                             "flatten", "squeeze"):
                return base
            return _UNKNOWN
        if isinstance(func, ast.Name):
            name = func.id
            if name in ("min", "max", "sorted") and any(
                a.nonfinite for a in args
            ):
                self._flag_nan_sink(name, call)
            if name == "float" and args:
                return replace(args[0], is_array=False, dtype=None)
            if name == "abs" and args:
                return replace(args[0], maybe_negative=False)
        return _UNKNOWN

    def _np_call(
        self,
        name: str,
        call: ast.Call,
        args: list[_Info],
        dtype_kw: ast.expr | None,
        env: dict[str, _Info],
    ) -> _Info:
        first = args[0] if args else _UNKNOWN
        dtype = self._dtype_of(dtype_kw)

        if name in ("zeros", "zeros_like", "empty", "empty_like"):
            if dtype is None and len(call.args) > 1:
                dtype = self._dtype_of(call.args[1])
            return _Info(
                dtype=dtype or "float64", is_array=True, maybe_zero=True,
                maybe_negative=name.startswith("empty"),
            )
        if name in ("ones", "ones_like"):
            return _Info(dtype=dtype or "float64", is_array=True)
        if name in ("full", "full_like"):
            fill = args[1] if len(args) > 1 else _UNKNOWN
            return replace(fill, dtype=dtype or fill.dtype, is_array=True)
        if name in ("array", "asarray", "ascontiguousarray"):
            info = self._literal_elements(call.args[0]) if call.args else _UNKNOWN
            info = _merge(info, replace(first, float_literal=False))
            return replace(info, dtype=dtype, is_array=True)
        if name == "fromiter":
            if dtype is None and len(call.args) > 1:
                dtype = self._dtype_of(call.args[1])
            return _Info(dtype=dtype, is_array=True)
        if name == "arange":
            starts_at_zero = len(call.args) == 1 or (
                call.args
                and isinstance(call.args[0], ast.Constant)
                and call.args[0].value == 0
            )
            return _Info(dtype=dtype, is_array=True, maybe_zero=starts_at_zero)
        if name == "where":
            a = args[1] if len(args) > 1 else _UNKNOWN
            b = args[2] if len(args) > 2 else _UNKNOWN
            return replace(_merge(a, b), is_array=True)
        if name in ("cumsum", "cumprod", "repeat", "broadcast_to", "atleast_1d",
                    "atleast_2d", "abs", "absolute", "clip"):
            info = replace(first, is_array=True)
            if name in ("abs", "absolute"):
                info = replace(info, maybe_negative=False)
            if name == "clip" and len(call.args) > 1:
                lo = call.args[1]
                if (
                    isinstance(lo, ast.Constant)
                    and isinstance(lo.value, (int, float))
                    and lo.value > 0
                ):
                    info = replace(info, maybe_zero=False, maybe_negative=False)
            return info
        if name == "sqrt":
            if first.maybe_negative:
                self._flag(
                    NUM003,
                    call,
                    "np.sqrt of a value with negative evidence and no guard "
                    "— mints nan",
                    hint="guard the operand (np.maximum(x, 0.0)) or prove it "
                    "nonnegative",
                )
            return replace(
                first, dtype="float64" if first.dtype in _INT_DTYPES else first.dtype,
                maybe_negative=False, nonfinite=first.nonfinite or first.maybe_negative,
            )
        if name in ("log", "log2", "log10"):
            if first.maybe_zero or first.maybe_negative:
                self._flag(
                    NUM003,
                    call,
                    f"np.{name} of a value with zero/negative evidence and "
                    "no guard — mints -inf/nan",
                    hint="guard the operand (np.maximum(x, eps)) or prove it "
                    "positive",
                )
            return _Info(
                dtype="float64", is_array=first.is_array,
                maybe_negative=True,
                nonfinite=first.nonfinite or first.maybe_zero
                or first.maybe_negative,
            )
        if name in _ORDER_SENSITIVE:
            operands = args[1:] if name == "einsum" else args[:2] or [first]
            if any(_is_float(a) for a in operands) or (
                name != "einsum" and _is_float(first)
            ):
                self._flag(
                    NUM002,
                    call,
                    f"np.{name} on float operands uses pairwise accumulation "
                    "— rounding depends on length and layout; the scalar "
                    "reference folds strictly left-to-right",
                    hint="use the cumsum left-fold idiom "
                    "(repro.sim.kernels.left_fold) for bit-exact folds",
                )
            return _Info(
                dtype=first.dtype, is_array=False,
                nonfinite=any(a.nonfinite for a in args),
            )
        if name in _NAN_AWARE:
            return _Info(dtype=first.dtype)
        if name in _NAN_SINKS:
            if any(a.nonfinite for a in args):
                self._flag_nan_sink(f"np.{name}", call)
            info = _Info(
                dtype=first.dtype, is_array=name in ("minimum", "maximum", "sort"),
                maybe_zero=any(a.maybe_zero for a in args),
                maybe_negative=any(a.maybe_negative for a in args),
                nonfinite=any(a.nonfinite for a in args),
            )
            if name == "maximum" and len(call.args) > 1:
                other = call.args[1]
                if (
                    isinstance(other, ast.Constant)
                    and isinstance(other.value, (int, float))
                    and other.value > 0
                ):
                    info = replace(info, maybe_zero=False, maybe_negative=False)
            return info
        if name in ("isfinite", "isnan", "isinf"):
            return _Info(is_array=first.is_array)
        return _UNKNOWN

    def _literal_elements(self, expr: ast.expr) -> _Info:
        """Zero/negative/nonfinite evidence from a literal element list."""
        if not isinstance(expr, (ast.List, ast.Tuple)):
            return _UNKNOWN
        maybe_zero = maybe_negative = nonfinite = False
        for elt in expr.elts:
            value = elt
            negated = False
            if isinstance(value, ast.UnaryOp) and isinstance(value.op, ast.USub):
                value, negated = value.operand, True
            if isinstance(value, ast.Constant) and isinstance(
                value.value, (int, float)
            ) and not isinstance(value.value, bool):
                magnitude = value.value
                maybe_zero |= magnitude == 0
                maybe_negative |= negated and magnitude != 0
                if isinstance(magnitude, float):
                    nonfinite |= magnitude != magnitude or magnitude == float("inf")
        return _Info(
            maybe_zero=maybe_zero, maybe_negative=maybe_negative,
            nonfinite=nonfinite,
        )

    def _flag_nan_sink(self, sink: str, node: ast.AST) -> None:
        self._flag(
            NUM005,
            node,
            f"{sink} consumes a value that can carry nan/inf without an "
            "np.isfinite guard — nan poisons the comparison and the winner "
            "is arbitrary",
            hint="filter with np.isfinite (or use the nan-aware np.nan* "
            "variant) before reducing",
        )


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------


def numeric_findings(source: str, rel_path: str) -> list[Diagnostic]:
    """NUM001-NUM005 findings for one module's source text."""
    return _Checker(source, rel_path).run()


def analyze_numeric(root: Path | None = None) -> list[Diagnostic]:
    """Run the numeric-safety pass over every module under ``<root>/sim/``.

    ``root`` defaults to the installed ``repro`` package directory; pass
    a fixture tree (or ``repro check --numeric --source <dir>``) to scan
    another layout with a ``sim/`` subdirectory.  Raises
    :class:`ValueError` when there is nothing to scan — a silent no-op
    analysis would report a clean bill it never earned.
    """
    base = root if root is not None else Path(__file__).resolve().parent.parent
    sim_dir = Path(base) / "sim"
    files = sorted(sim_dir.rglob("*.py")) if sim_dir.is_dir() else []
    if not files:
        raise ValueError(f"no sim/ modules to analyze under {base}")
    diagnostics: list[Diagnostic] = []
    for path in files:
        rel = path.relative_to(Path(base)).as_posix()
        diagnostics.extend(numeric_findings(path.read_text(), rel))
    diagnostics.sort(key=lambda d: (d.rule_id, d.location, d.message))
    return diagnostics
