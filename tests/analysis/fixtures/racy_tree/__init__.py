"""A deliberately-racy miniature of the repro package layout.

Laid out so :func:`repro.analysis.concurrency.analyze_concurrency` (and
``repro check --concurrency --source <this dir>``) can index it as if it
were the real package: the contract's declared fan-out roots resolve to
``sim/simulator.py``'s ``Simulator.evaluate_many`` and
``core/autohet.py``'s ``autohet_multi_seed``.  Each CON rule has one
seeded positive case and a correct negative twin:

* CON001 — ``EvaluationCache.probes`` bumped by thread workers with no
  declared guard (vs ``hits``, declared and written under the lock);
* CON002 — workers append to the module global ``_BEST_REWARDS``
  (vs the clean variant returning values to the parent);
* CON003 — ``evaluate_many_process`` ships the lock-holding cache into
  a process pool (vs the ``replace(self, cache=None)`` variant);
* CON004 — workers draw from ``random.random`` (vs a per-worker
  ``random.Random(seed)``);
* CON005 — ``EvaluationCache.reset_hits`` / ``RecordSink.drop_all``
  write guarded attributes without the lock (vs the locked writers and
  the ``# holds-lock:`` helper).
"""
