"""Fixture simulator with one seeded race per shared-state CON rule.

``EvaluationCache.probes`` is bumped on every lookup *outside* any lock
and declares no guard — the canonical CON001 finding once thread
workers reach it through ``Simulator.evaluate_many``.  ``reset_hits``
writes a ``# guarded-by:``-declared counter without taking the lock
(CON005), and ``evaluate_many_process`` ships the lock-holding cache
across a process boundary (CON003).  The negative twins — ``hits``
under the lock, ``evaluate_many_process_clean``'s stripped copy — must
stay silent.
"""

import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, replace


class EvaluationCache:
    """Lock-guarded LRU stand-in with one unguarded counter."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries = {}  # guarded-by: _lock
        self.hits = 0       # guarded-by: _lock
        self.probes = 0     # seeded race: shared, mutated, no guard declared

    def get(self, key):
        self.probes += 1    # CON001: written by thread workers, no lock
        with self._lock:
            value = self._entries.get(key)
            if value is not None:
                self.hits += 1
            return value

    def put(self, key, value):
        with self._lock:
            self._entries[key] = value

    def reset_hits(self) -> None:
        self.hits = 0       # CON005: declared guard, lock not held


@dataclass
class Simulator:
    cache: EvaluationCache

    def evaluate(self, item: int) -> int:
        cached = self.cache.get(item)
        if cached is not None:
            return cached
        value = item * item
        self.cache.put(item, value)
        return value

    def evaluate_many(self, items, max_workers: int = 4):
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            return list(pool.map(self.evaluate, items))

    def evaluate_many_process(self, items):
        # CON003: ``self`` carries the lock-holding cache into the pool.
        with ProcessPoolExecutor() as pool:
            return list(pool.map(_evaluate_one_remote, ((self, i) for i in items)))

    def evaluate_many_process_clean(self, items):
        # Negative twin: the non-picklable state is stripped first.
        worker = replace(self, cache=None)
        with ProcessPoolExecutor() as pool:
            return list(
                pool.map(_evaluate_one_remote, ((worker, i) for i in items))
            )


def _evaluate_one_remote(args):
    simulator, item = args
    return simulator.evaluate(item)
