"""Tests for the multi-model tile-sharing extension."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.config import CrossbarShape, DEFAULT_CANDIDATES
from repro.core.allocation import allocate_multi_network
from repro.models import lenet, tiny_cnn


def simple_workloads(shape=CrossbarShape(72, 64)):
    a = lenet()
    b = tiny_cnn()
    return [
        (a, tuple(shape for _ in a.layers)),
        (b, tuple(shape for _ in b.layers)),
    ]


class TestAllocateMultiNetwork:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            allocate_multi_network([], 4)

    def test_rejects_strategy_mismatch(self):
        net = lenet()
        with pytest.raises(ValueError, match="strategy length"):
            allocate_multi_network([(net, (CrossbarShape(32, 32),))], 4)

    def test_slices_cover_all_layers(self):
        result = allocate_multi_network(simple_workloads(), 4)
        assert result.slices[0].name == "LeNet"
        assert result.slices[1].name == "TinyCNN"
        assert result.slices[0].stop == result.slices[1].start
        total = sum(s.stop - s.start for s in result.slices)
        assert total == len(result.allocation.mappings)

    def test_allocation_valid(self):
        result = allocate_multi_network(simple_workloads(), 4)
        result.allocation.validate()

    def test_never_more_tiles_than_separate(self):
        result = allocate_multi_network(simple_workloads(), 4)
        assert result.occupied_tiles <= result.separate_tiles
        assert result.tiles_saved >= 0

    def test_cross_model_sharing_happens(self):
        """Same-shape strategies leave merge opportunities across models."""
        result = allocate_multi_network(simple_workloads(), 8)
        shared = result.shared_tiles()
        # With an 8-slot tile and two small nets, at least one tile should
        # host layers from both models.
        assert len(shared) >= 1

    def test_model_tiles_breakdown(self):
        result = allocate_multi_network(simple_workloads(), 4)
        for sl in result.slices:
            assert 1 <= result.model_tiles(sl.name) <= result.occupied_tiles

    def test_without_sharing_no_savings(self):
        result = allocate_multi_network(
            simple_workloads(), 4, tile_shared=False
        )
        assert result.tiles_saved == 0
        assert result.shared_tiles() == ()

    def test_heterogeneous_strategies_across_models(self):
        a, b = lenet(), tiny_cnn()
        workloads = [
            (a, tuple(CrossbarShape(36, 32) for _ in a.layers)),
            (b, tuple(CrossbarShape(288, 256) for _ in b.layers)),
        ]
        result = allocate_multi_network(workloads, 4)
        result.allocation.validate()
        # Different shapes can never share a tile.
        assert result.shared_tiles() == ()

    def test_utilization_at_least_best_solo(self):
        """Packing two models together never wastes more than separately."""
        result = allocate_multi_network(simple_workloads(), 4)
        assert 0 < result.utilization <= 1

    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 12), st.sampled_from(DEFAULT_CANDIDATES))
    def test_invariants_property(self, capacity, shape):
        result = allocate_multi_network(simple_workloads(shape), capacity)
        result.allocation.validate()
        assert result.occupied_tiles <= result.separate_tiles
