"""Extension: ADC-resolution sensitivity — why the paper sets 10 bits.

§4.1: "We set the ADC revolution to 10-bit to support crossbars of all
heterogeneous sizes."  The tallest candidate (576x512) can sum up to 576
unit currents on one bitline; a b-bit ADC saturates beyond 2^b - 1.  This
bench sweeps the ADC resolution and reports, per setting:

* functional saturation events on a worst-case (all-ones) workload
  through a 576-row crossbar,
* the per-conversion energy and per-ADC area the resolution costs.

Expected shape: resolutions below 10 bits clip on tall crossbars (lossy
MVMs); 10 bits is the cheapest lossless setting; energy/area grow ~2x per
extra bit beyond it.
"""

import numpy as np
from conftest import run_once

from repro.arch.config import CrossbarShape, HardwareConfig
from repro.bench.reporting import print_table
from repro.models.layers import LayerSpec
from repro.sim.functional import FunctionalLayerEngine


def run_adc_sweep(bits_range=(8, 9, 10, 11, 12)):
    # Worst case: a 576-row crossbar fully programmed with the maximum
    # encoded weight, driven by all-max inputs.
    layer = LayerSpec.conv(64, 32, 3, input_size=8)  # 576 rows exactly
    rows = layer.in_channels * layer.kernel_elems
    assert rows == 576
    wq = np.full((rows, 32), 127)
    x = np.full((4, rows), 255)
    out = {}
    for bits in bits_range:
        cfg = HardwareConfig(adc_bits=bits)
        engine = FunctionalLayerEngine(layer, CrossbarShape(576, 512), wq, cfg)
        result = engine.mvm_batch(x)
        exact = x @ wq
        out[bits] = {
            "saturations": engine.counters.adc_saturations,
            "exact": bool(np.array_equal(result, exact)),
            "energy_nj_per_conv": cfg.energy_adc_nj(),
            "area_um2_per_adc": cfg.area_adc_um2(),
        }
    return out


def test_adc_resolution(benchmark):
    data = run_once(benchmark, run_adc_sweep)
    print_table(
        ["ADC bits", "saturations", "bit-exact", "nJ/conversion", "um^2/ADC"],
        [
            (bits, row["saturations"], row["exact"],
             row["energy_nj_per_conv"], row["area_um2_per_adc"])
            for bits, row in data.items()
        ],
        title="Extension — ADC resolution on the tallest candidate (576 rows)",
    )
    # Below 10 bits: saturation on the worst case; 10+ bits: lossless.
    assert data[8]["saturations"] > 0 and not data[8]["exact"]
    assert data[9]["saturations"] > 0
    for bits in (10, 11, 12):
        assert data[bits]["saturations"] == 0 and data[bits]["exact"]
    # Cost doubles per extra bit.
    assert data[11]["energy_nj_per_conv"] == 2 * data[10]["energy_nj_per_conv"]
    assert data[12]["area_um2_per_adc"] == 4 * data[10]["area_um2_per_adc"]
