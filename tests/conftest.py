"""Shared fixtures for the AutoHet reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.config import CrossbarShape, HardwareConfig
from repro.models import alexnet, lenet, resnet152, tiny_cnn, vgg16
from repro.sim import Simulator


@pytest.fixture(scope="session")
def lenet_net():
    return lenet()


@pytest.fixture(scope="session")
def tiny_net():
    return tiny_cnn()


@pytest.fixture(scope="session")
def vgg_net():
    return vgg16()


@pytest.fixture(scope="session")
def alexnet_net():
    return alexnet()


@pytest.fixture(scope="session")
def resnet_net():
    return resnet152()


@pytest.fixture(scope="session")
def simulator():
    return Simulator()


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_config():
    """A light config for functional tests (fewer bit cycles)."""
    return HardwareConfig(weight_bits=4, input_bits=4, adc_bits=10)


SHAPES = {
    "sq32": CrossbarShape(32, 32),
    "sq64": CrossbarShape(64, 64),
    "sq512": CrossbarShape(512, 512),
    "rect36": CrossbarShape(36, 32),
    "rect576": CrossbarShape(576, 512),
}
