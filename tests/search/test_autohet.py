"""Tests for the AutoHet RL search pipeline."""

import pytest

from repro.arch.config import CrossbarShape, DEFAULT_CANDIDATES
from repro.core import AutoHet, autohet_search
from repro.core.search import homogeneous_strategy, random_search
from repro.models import lenet, tiny_cnn
from repro.sim import Simulator


class TestSearchResult:
    def test_structure(self, lenet_net):
        result = autohet_search(lenet_net, rounds=15, seed=0)
        assert result.network_name == "LeNet"
        assert len(result.best_strategy) == lenet_net.num_layers
        # History includes the |C| homogeneous probe episodes.
        assert len(result.reward_history) == 15 + len(DEFAULT_CANDIDATES)
        assert len(result.best_reward_history) == len(result.reward_history)
        assert result.rounds == 15

    def test_best_curve_monotone(self, lenet_net):
        result = autohet_search(lenet_net, rounds=20, seed=1)
        curve = result.best_reward_history
        assert all(a <= b + 1e-18 for a, b in zip(curve, curve[1:]))
        assert curve[-1] == max(result.reward_history)

    def test_best_metrics_match_best_reward(self, lenet_net):
        result = autohet_search(lenet_net, rounds=15, seed=2)
        assert result.best_metrics.reward == pytest.approx(
            max(result.reward_history)
        )

    def test_timing_split_accounted(self, lenet_net):
        result = autohet_search(lenet_net, rounds=10, seed=0)
        assert result.decision_seconds >= 0
        assert result.simulator_seconds > 0
        assert result.total_seconds == pytest.approx(
            result.decision_seconds
            + result.simulator_seconds
            + result.learning_seconds
        )
        assert 0 < result.simulator_fraction < 1

    def test_summary_text(self, lenet_net):
        result = autohet_search(lenet_net, rounds=5, seed=0)
        assert "AutoHet[LeNet]" in result.summary()
        assert "L1:" in result.summary()

    def test_rejects_nonpositive_rounds(self, lenet_net):
        with pytest.raises(ValueError):
            autohet_search(lenet_net, rounds=0)

    def test_deterministic_by_seed(self, tiny_net):
        a = autohet_search(tiny_net, rounds=12, seed=9)
        b = autohet_search(tiny_net, rounds=12, seed=9)
        assert a.best_strategy == b.best_strategy
        assert a.reward_history == b.reward_history

    def test_different_seeds_explore_differently(self, tiny_net):
        a = autohet_search(tiny_net, rounds=12, seed=1)
        b = autohet_search(tiny_net, rounds=12, seed=2)
        assert a.reward_history != b.reward_history


class TestSearchQuality:
    def test_beats_every_homogeneous_on_lenet(self, lenet_net, simulator):
        result = autohet_search(lenet_net, rounds=60, seed=0)
        for cand in DEFAULT_CANDIDATES:
            homo = simulator.evaluate(
                lenet_net, homogeneous_strategy(lenet_net, cand),
                tile_shared=True, detailed=False,
            )
            assert result.best_metrics.reward >= homo.reward

    def test_competitive_with_random_search(self, lenet_net, simulator):
        rl = autohet_search(lenet_net, rounds=40, seed=0)
        _, rnd = random_search(
            lenet_net, DEFAULT_CANDIDATES, simulator, rounds=40, seed=0
        )
        assert rl.best_metrics.reward >= 0.9 * rnd.reward

    def test_exploit_returns_valid_strategy(self, lenet_net):
        engine = AutoHet(lenet_net, DEFAULT_CANDIDATES, seed=0)
        engine.search(20)
        strategy, metrics = engine.exploit()
        assert len(strategy) == lenet_net.num_layers
        assert metrics.reward > 0

    def test_tile_shared_flag_passes_through(self, lenet_net):
        shared = autohet_search(lenet_net, rounds=10, tile_shared=True, seed=0)
        unshared = autohet_search(lenet_net, rounds=10, tile_shared=False, seed=0)
        assert shared.best_metrics.tile_shared
        assert not unshared.best_metrics.tile_shared

    def test_custom_candidates_respected(self, lenet_net):
        cands = (CrossbarShape(64, 64), CrossbarShape(128, 128))
        result = autohet_search(lenet_net, cands, rounds=10, seed=0)
        assert set(result.best_strategy) <= set(cands)
