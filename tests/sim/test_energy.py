"""Energy-model tests: component formulas, dominance, and monotonicity."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.config import (
    CrossbarShape,
    HardwareConfig,
    SQUARE_CANDIDATES,
)
from repro.arch.mapping import map_layer
from repro.models import vgg16
from repro.models.layers import LayerSpec
from repro.sim.energy import (
    adc_conversions_per_cycle,
    layer_adc_conversions,
    layer_dac_conversions,
    layer_dynamic_energy,
    leakage_energy,
    pooling_energy,
)

CFG = HardwareConfig()


class TestConversionCounts:
    def test_adc_conversions_formula(self):
        layer = LayerSpec.conv(12, 128, 3, input_size=8)
        mapping = map_layer(layer, CrossbarShape(64, 64))
        # mvm_ops * used_columns * 8 input cycles * 8 weight slices
        assert layer_adc_conversions(mapping, CFG) == 36 * 256 * 64

    def test_dac_conversions_formula(self):
        layer = LayerSpec.conv(12, 128, 3, input_size=8)
        mapping = map_layer(layer, CrossbarShape(64, 64))
        assert layer_dac_conversions(mapping, CFG) == 36 * (2 * 108) * 64

    def test_fig5_energy_ordering(self):
        """Fewer activated ADCs on 128x128 than 64x64 (Fig. 5)."""
        layer = LayerSpec.conv(12, 128, 3, input_size=8)
        small = layer_adc_conversions(map_layer(layer, CrossbarShape(64, 64)), CFG)
        large = layer_adc_conversions(map_layer(layer, CrossbarShape(128, 128)), CFG)
        assert small == 2 * large

    def test_idle_fraction_adds_idle_columns(self):
        cfg = HardwareConfig(idle_line_energy_fraction=1.0)
        layer = LayerSpec.conv(3, 20, 1, input_size=8)  # 20 of 32 cols used
        mapping = map_layer(layer, CrossbarShape(32, 32))
        assert adc_conversions_per_cycle(mapping, cfg) == 32
        assert adc_conversions_per_cycle(mapping, CFG) == 20

    def test_idle_fraction_interpolates(self):
        cfg = HardwareConfig(idle_line_energy_fraction=0.5)
        layer = LayerSpec.conv(3, 20, 1, input_size=8)
        mapping = map_layer(layer, CrossbarShape(32, 32))
        assert adc_conversions_per_cycle(mapping, cfg) == 20 + 0.5 * 12


class TestDynamicEnergy:
    def test_all_components_nonnegative(self):
        layer = LayerSpec.conv(12, 128, 3, input_size=8)
        e = layer_dynamic_energy(map_layer(layer, CrossbarShape(64, 64)), CFG)
        for field in ("adc", "dac", "crossbar", "shift_add", "adder_tree", "buffer", "bus"):
            assert getattr(e, field) >= 0

    def test_adc_dominates(self):
        """The paper's premise: ADCs are the most energy-consuming PC."""
        layer = LayerSpec.conv(64, 64, 3, input_size=16)
        for shape in SQUARE_CANDIDATES:
            e = layer_dynamic_energy(map_layer(layer, shape), CFG)
            others = e.total - e.adc
            assert e.adc > others

    def test_energy_scales_with_mvm_ops(self):
        small = LayerSpec.conv(16, 16, 3, padding=1, input_size=8)
        big = LayerSpec.conv(16, 16, 3, padding=1, input_size=16)
        shape = CrossbarShape(64, 64)
        e_small = layer_dynamic_energy(map_layer(small, shape), CFG).total
        e_big = layer_dynamic_energy(map_layer(big, shape), CFG).total
        assert e_big == pytest.approx(4 * e_small)

    def test_taller_crossbars_cut_adc_energy(self):
        """Fewer row groups -> fewer conversions (the §2.2.3 trade-off)."""
        layer = LayerSpec.conv(512, 512, 3, input_size=4)
        e288 = layer_dynamic_energy(map_layer(layer, CrossbarShape(288, 256)), CFG)
        e576 = layer_dynamic_energy(map_layer(layer, CrossbarShape(576, 512)), CFG)
        assert e576.adc < e288.adc

    @settings(max_examples=40, deadline=None)
    @given(st.integers(1, 64), st.integers(1, 128), st.sampled_from([1, 3]))
    def test_energy_positive_property(self, cin, cout, k):
        layer = LayerSpec.conv(cin, cout, k, input_size=8)
        for shape in (CrossbarShape(32, 32), CrossbarShape(576, 512)):
            assert layer_dynamic_energy(map_layer(layer, shape), CFG).total > 0


class TestStaticEnergy:
    def test_leakage_scales_with_allocation(self):
        lo = leakage_energy(1, 4, 1000, 1e6, CFG)
        hi = leakage_energy(2, 8, 2000, 1e6, CFG)
        assert hi == pytest.approx(2 * lo)

    def test_leakage_scales_with_latency(self):
        assert leakage_energy(1, 4, 100, 2e6, CFG) == pytest.approx(
            2 * leakage_energy(1, 4, 100, 1e6, CFG)
        )

    def test_cell_leakage_term_present(self):
        base = leakage_energy(1, 4, 0, 1e6, CFG)
        with_cells = leakage_energy(1, 4, 10_000, 1e6, CFG)
        assert with_cells > base

    def test_pooling_energy_counts_pooled_elements(self):
        net = vgg16()
        assert pooling_energy(net, CFG) > 0
        # No pooling stages -> zero.
        from repro.models.transformer import transformer_lm

        assert pooling_energy(transformer_lm(num_blocks=1), CFG) == 0.0


class TestEnergyBreakdown:
    def test_breakdown_addition(self):
        from repro.sim.metrics import EnergyBreakdown

        a = EnergyBreakdown(adc=1.0, dac=2.0)
        b = EnergyBreakdown(adc=3.0, pooling=1.0)
        c = a + b
        assert c.adc == 4.0 and c.dac == 2.0 and c.pooling == 1.0
        assert c.total == pytest.approx(7.0)

    def test_breakdown_scaling(self):
        from repro.sim.metrics import EnergyBreakdown

        e = EnergyBreakdown(adc=2.0, bus=4.0).scaled(0.5)
        assert e.adc == 1.0 and e.bus == 2.0
