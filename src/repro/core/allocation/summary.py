"""Aggregate allocation summaries — the simulator's hot-path shortcut.

:func:`allocate_tile_based` + :func:`apply_tile_sharing` materialise one
:class:`~repro.core.allocation.tiles.Tile` object per allocated tile and
re-validate every structural invariant — the right thing for a deployable
plan, and by far the most expensive step of
:meth:`~repro.sim.simulator.Simulator.evaluate` (a VGG16 strategy can
allocate thousands of tiles).  The system-level cost models, however, only
consume *aggregates*: occupied-tile count, empty-slot count, allocated
cells, and the per-layer surviving-tile counts that drive the area roll-up.

This module computes exactly those aggregates without building tiles.
Algorithm 1's merge decisions depend only on each same-shape group's
multiset of per-tile empty counts, so the group outcome is memoised on
``(capacity, per-layer crossbar counts)`` — shared across every strategy
(and every crossbar shape) that produces the same group composition, which
is how the annealing / coordinate-ascent / RL loops re-pay each other's
work.

Bit-for-bit parity with the materialised path is part of the contract
(``tests/allocation/test_summary.py`` checks it property-style): every
integer aggregate is identical, and the per-layer surviving counts are
ordered so that :func:`~repro.sim.area.area_from_tile_runs` reproduces
:func:`~repro.sim.area.allocation_area_um2`'s float fold exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Sequence

from ...arch.config import CrossbarShape
from ...arch.mapping import LayerMapping
from ...obs import metrics as obs_metrics
from ...obs.trace import NULL_TRACER, Tracer


@dataclass(frozen=True)
class AllocationSummary:
    """The aggregate view of one allocation (materialised or not)."""

    tile_capacity: int
    occupied_tiles: int        #: tiles holding at least one crossbar
    empty_crossbars: int       #: free slots inside occupied tiles
    allocated_cells: int       #: logical cells inside occupied tiles
    weight_cells: int          #: cells actually storing weights
    #: surviving (occupied) tile count per layer, in layer order — the
    #: tile-id-ordered runs the area model folds over.
    tiles_per_layer: tuple[int, ...]
    #: crossbar shape per layer, in layer order (parallel to
    #: :attr:`tiles_per_layer`).
    shapes_per_layer: tuple[CrossbarShape, ...]

    @property
    def total_crossbar_slots(self) -> int:
        """All crossbar slots inside occupied tiles."""
        return self.occupied_tiles * self.tile_capacity

    @property
    def utilization(self) -> float:
        """Weight cells over allocated cells (Fig. 5's combined metric)."""
        return (
            self.weight_cells / self.allocated_cells
            if self.allocated_cells
            else 0.0
        )


@lru_cache(maxsize=65536)
def _shared_group_summary(
    capacity: int, counts: tuple[int, ...]
) -> tuple[tuple[int, ...], int]:
    """Algorithm 1 outcome for one same-shape tile group.

    ``counts`` holds the crossbar count of each layer in the group, in
    layer (= tile-id) order.  Returns ``(surviving tile count per layer,
    total empty slots after sharing)``.  The merge plan only needs each
    tile's empty count, so this reproduces
    :func:`~repro.core.allocation.tile_shared.plan_tile_sharing` —
    including its stable sort and two-pointer walk — on plain integers.

    Full tiles are never touched by the merge: a partial tile's empty
    count is ``capacity - rem`` with ``rem >= 1``, so it is strictly below
    ``capacity``, and the stable ascending sort puts every zero-empty full
    tile at the head, where ``0 + tail_empties >= capacity`` can never
    hold — the head pointer just walks past them.  The walk therefore runs
    on the at-most-one partial tile per layer (``<= len(counts)`` items)
    instead of the full tile expansion, which for a VGG16-sized strategy
    is thousands of tiles.  Bit-identical by construction (stability keeps
    the partial tiles' relative order unchanged when the zero prefix is
    dropped); ``tests/allocation/test_summary.py`` pins the parity against
    the materialised ``plan_tile_sharing`` path.
    """
    surviving = [0] * len(counts)
    partial_pos: list[int] = []
    partial_empty: list[int] = []
    for pos, n in enumerate(counts):
        full, rem = divmod(n, capacity)
        surviving[pos] = full
        if rem:
            partial_pos.append(pos)
            partial_empty.append(capacity - rem)
    # Algorithm 1, lines 2-4: stable-sort ascending by empty count, then
    # merge tail tiles (most empties) into head tiles (fewest).
    order = sorted(range(len(partial_empty)), key=partial_empty.__getitem__)
    work = [partial_empty[i] for i in order]
    released = [False] * len(work)
    head, tail = 0, len(work) - 1
    while head < tail:
        if work[head] + work[tail] >= capacity:
            work[head] += work[tail] - capacity
            work[tail] = 0
            released[tail] = True
            tail -= 1
        else:
            head += 1
    empty_total = 0
    for sorted_pos, orig in enumerate(order):
        if not released[sorted_pos]:
            surviving[partial_pos[orig]] += 1
            empty_total += work[sorted_pos]
    return tuple(surviving), empty_total


def summarize_counts(
    shapes: Sequence[CrossbarShape],
    crossbar_counts: Sequence[int],
    weight_cells: int,
    tile_capacity: int,
    *,
    tile_shared: bool,
    tracer: Tracer = NULL_TRACER,
) -> AllocationSummary:
    """Aggregate allocation outcome from per-layer counts alone.

    The counts-based core of :func:`summarize_allocation`: everything the
    aggregates need is the per-layer crossbar shape, the per-layer logical
    crossbar count, and the total weight-cell count — no
    :class:`~repro.arch.mapping.LayerMapping` objects.  This is the entry
    point the vectorized batch scorer (``repro.sim.kernels``) uses, where
    group counts live in NumPy arrays and mappings are never materialised.
    With an enabled ``tracer``, emits one ``alloc.group`` event per
    same-shape group recording Algorithm 1's occupancy delta.  The tracer
    never reaches the memoised group function — group outcomes stay keyed
    on ``(capacity, counts)`` alone.
    """
    if tile_capacity <= 0:
        raise ValueError("tile_capacity must be positive")
    if len(shapes) != len(crossbar_counts):
        raise ValueError(
            f"{len(shapes)} shapes vs {len(crossbar_counts)} crossbar counts"
        )
    shapes = tuple(shapes)
    tiles_per_layer = [0] * len(shapes)
    occupied = 0
    empty = 0
    cells = 0
    if tile_shared:
        # Group layers by crossbar geometry, preserving layer order — the
        # same grouping apply_tile_sharing derives from the tile list.
        groups: dict[CrossbarShape, list[int]] = {}
        for pos, shape in enumerate(shapes):
            groups.setdefault(shape, []).append(pos)
        for shape, members in groups.items():
            counts = tuple([crossbar_counts[pos] for pos in members])
            surviving, empty_total = _shared_group_summary(
                tile_capacity, counts
            )
            group_tiles = sum(surviving)
            occupied += group_tiles
            empty += empty_total
            cells += group_tiles * tile_capacity * shape.cells
            for pos, count in zip(members, surviving):
                tiles_per_layer[pos] = count
            if tracer.enabled:
                before = sum(
                    -(-count // tile_capacity) for count in counts
                )
                tracer.event(
                    obs_metrics.EVENT_ALLOC_GROUP,
                    mode="summary",
                    shape=str(shape),
                    layers=len(members),
                    tiles_before=before,
                    tiles_after=group_tiles,
                    released=before - group_tiles,
                    empty_slots=empty_total,
                )
        # Note: merged tiles survive under the *head* tile's id.  A head
        # belongs to the layer that created it, so per-layer counts stay
        # attributable even after absorption.
    else:
        for pos, shape in enumerate(shapes):
            full, rem = divmod(crossbar_counts[pos], tile_capacity)
            count = full + (1 if rem else 0)
            tiles_per_layer[pos] = count
            occupied += count
            if rem:
                empty += tile_capacity - rem
            cells += count * tile_capacity * shape.cells
    return AllocationSummary(
        tile_capacity=tile_capacity,
        occupied_tiles=occupied,
        empty_crossbars=empty,
        allocated_cells=cells,
        weight_cells=weight_cells,
        tiles_per_layer=tuple(tiles_per_layer),
        shapes_per_layer=shapes,
    )


def summarize_allocation(
    mappings: Sequence[LayerMapping],
    tile_capacity: int,
    *,
    tile_shared: bool,
    tracer: Tracer = NULL_TRACER,
) -> AllocationSummary:
    """Aggregate allocation outcome for one mapped strategy.

    Produces the same numbers as ``allocate_tile_based`` (optionally
    followed by ``apply_tile_sharing``) without materialising tiles.
    A thin wrapper over :func:`summarize_counts`.
    """
    return summarize_counts(
        tuple(m.shape for m in mappings),
        tuple(m.num_crossbars for m in mappings),
        sum(m.weight_cells for m in mappings),
        tile_capacity,
        tile_shared=tile_shared,
        tracer=tracer,
    )


def summary_cache_info():
    """Memoisation statistics of the shared-group cache (diagnostics)."""
    return _shared_group_summary.cache_info()


def clear_summary_cache() -> None:
    """Drop the shared-group memo (tests / long-lived processes)."""
    _shared_group_summary.cache_clear()
