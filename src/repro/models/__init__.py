"""DNN workload substrate: layer specs, networks, and synthetic datasets."""

from .datasets import CIFAR10, IMAGENET, MNIST, DatasetSpec, get_dataset
from .graph import Network
from .layers import LayerSpec, LayerType, PoolSpec, Stage
from .transformer import transformer_lm
from .zoo import (
    PAPER_WORKLOADS,
    alexnet,
    get_model,
    lenet,
    paper_workloads,
    resnet152,
    tiny_cnn,
    vgg16,
)

__all__ = [
    "CIFAR10",
    "IMAGENET",
    "MNIST",
    "DatasetSpec",
    "get_dataset",
    "Network",
    "LayerSpec",
    "LayerType",
    "PoolSpec",
    "Stage",
    "PAPER_WORKLOADS",
    "alexnet",
    "get_model",
    "lenet",
    "paper_workloads",
    "resnet152",
    "tiny_cnn",
    "transformer_lm",
    "vgg16",
]
