"""Behavioral ReRAM accelerator simulator (the MNSIM-role substrate)."""

from .area import (
    allocation_area_um2,
    area_from_tile_runs,
    crossbar_slot_area_um2,
    tile_area_um2,
)
from .cache import CacheStats, EvaluationCache, config_fingerprint, network_fingerprint
from .kernels import (
    MappingBatch,
    NetworkArrays,
    extract_mapping_batch,
    extract_strategy_batch,
    score_strategy_batch,
)
from .energy import (
    layer_adc_conversions,
    layer_dac_conversions,
    layer_dynamic_energy,
    leakage_energy,
    pooling_energy,
)
from .latency import layer_latency_ns, mvm_latency_ns, pooling_latency_ns
from .metrics import EnergyBreakdown, LayerCost, SystemMetrics
from .simulator import CapacityError, Simulator, Strategy

__all__ = [
    "allocation_area_um2",
    "area_from_tile_runs",
    "crossbar_slot_area_um2",
    "tile_area_um2",
    "CacheStats",
    "EvaluationCache",
    "config_fingerprint",
    "network_fingerprint",
    "MappingBatch",
    "NetworkArrays",
    "extract_mapping_batch",
    "extract_strategy_batch",
    "score_strategy_batch",
    "layer_adc_conversions",
    "layer_dac_conversions",
    "layer_dynamic_energy",
    "leakage_energy",
    "pooling_energy",
    "layer_latency_ns",
    "mvm_latency_ns",
    "pooling_latency_ns",
    "EnergyBreakdown",
    "LayerCost",
    "SystemMetrics",
    "CapacityError",
    "Simulator",
    "Strategy",
]
