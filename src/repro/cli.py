"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``search``     run the AutoHet RL search for a workload and print the
               learned strategy and metrics (``--trace PATH`` streams a
               JSONL trace of the whole search).
``baselines``  score the homogeneous baselines (and Manual-Hetero for
               VGG16) on the behavioral simulator.
``experiment`` regenerate one paper figure/table by name (accepts
               ``--trace PATH`` too).
``trace``      observability utilities: ``trace run`` performs a traced
               search end-to-end; ``trace summarize`` validates a JSONL
               trace against the schema and prints per-span p50/p95 and
               counter-stream rollups (docs/observability.md).
``serve``      run a request-level multi-tenant serving scenario through
               the discrete-event simulator and report p50/p95/p99
               latency + SLO attainment per tenant (docs/serving.md);
               takes a scenario JSON file or a builtin name, writes the
               JSON report with ``--out``, streams a trace with
               ``--trace``.
``models``     list the available workloads.
``check``      statically verify configs, candidate shapes, model
               mappings, allocation plans, and the source tree; exits
               nonzero on ERROR diagnostics (docs/static_analysis.md).
"""

from __future__ import annotations

import argparse
import sys
from contextlib import contextmanager

from .arch.config import DEFAULT_CANDIDATES, SQUARE_CANDIDATES, CrossbarShape
from .obs import (
    JsonlSink,
    Tracer,
    configure_cli_logging,
    use_tracer,
)
from .bench import (
    fig3_motivation,
    fig4_empty_crossbars,
    fig5_tradeoff,
    fig9_overall,
    fig10_ablation,
    fig11a_sxb_rxb_ratio,
    fig11b_candidate_count,
    fig11c_pes_per_tile,
    print_fig3,
    print_fig4,
    print_fig5,
    print_fig9,
    print_fig10,
    print_fig11,
    print_search_cache,
    print_search_time,
    print_table3,
    print_table4,
    print_table5,
    search_cache_profile,
    search_time_profile,
    table3_strategies,
    table4_tiles,
    table5_area_latency,
)
from .core.autohet import autohet_multi_seed, autohet_search
from .core.search import manual_hetero_strategy
from .models.zoo import _MODEL_BUILDERS, get_model
from .sim.simulator import Simulator

EXPERIMENTS = {
    "fig3": lambda a: print_fig3(fig3_motivation()),
    "fig4": lambda a: print_fig4(fig4_empty_crossbars()),
    "fig5": lambda a: print_fig5(fig5_tradeoff()),
    "fig9": lambda a: print_fig9(fig9_overall(rounds=a.rounds, seed=a.seed)),
    "fig10": lambda a: print_fig10(fig10_ablation(rounds=a.rounds, seed=a.seed)),
    "fig11a": lambda a: print_fig11(
        fig11a_sxb_rxb_ratio(rounds=a.rounds, seed=a.seed),
        panel="a", x_label="SXB:RXB ratio",
    ),
    "fig11b": lambda a: print_fig11(
        fig11b_candidate_count(rounds=a.rounds, seed=a.seed),
        panel="b", x_label="candidate count",
    ),
    "fig11c": lambda a: print_fig11(
        fig11c_pes_per_tile(rounds=a.rounds, seed=a.seed),
        panel="c", x_label="PEs per tile",
    ),
    "table3": lambda a: print_table3(
        table3_strategies(rounds=a.rounds, seed=a.seed)
    ),
    "table4": lambda a: print_table4(table4_tiles(rounds=a.rounds, seed=a.seed)),
    "table5": lambda a: print_table5(
        table5_area_latency(rounds=a.rounds, seed=a.seed)
    ),
    "search-time": lambda a: print_search_time(
        search_time_profile(rounds=a.rounds, seed=a.seed)
    ),
    "cache": lambda a: print_search_cache(search_cache_profile(seed=a.seed)),
    "all": lambda a: _run_all(a),
}


def _run_all(args) -> None:
    from .bench.suite import run_full_suite, summarize_suite

    doc = run_full_suite(rounds=args.rounds, seed=args.seed, verbose=True)
    print(summarize_suite(doc))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AutoHet (ICPP 2024) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_search = sub.add_parser("search", help="run the AutoHet RL search")
    p_search.add_argument("model", help="workload name (see `models`)")
    p_search.add_argument("--rounds", type=int, default=300)
    p_search.add_argument("--seed", type=int, default=0)
    p_search.add_argument(
        "--seeds", default=None, metavar="LIST",
        help="comma-separated RL seeds for a multi-seed search sharing one "
             "evaluation cache, e.g. '0,1,2' (overrides --seed)",
    )
    p_search.add_argument(
        "--workers", type=int, default=None,
        help="thread-pool size for the multi-seed fan-out (with --seeds)",
    )
    p_search.add_argument(
        "--no-tile-shared", action="store_true",
        help="disable the tile-shared allocation scheme",
    )
    p_search.add_argument(
        "--candidates", default=None,
        help="comma-separated crossbar shapes, e.g. '32x32,72x64,576x512'",
    )
    p_search.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write a JSONL observability trace of the search to PATH "
             "(inspect with `repro trace summarize PATH`)",
    )
    p_search.add_argument("--verbose", action="store_true")

    p_base = sub.add_parser("baselines", help="score homogeneous baselines")
    p_base.add_argument("model")

    p_exp = sub.add_parser("experiment", help="regenerate a paper figure/table")
    p_exp.add_argument("name", choices=sorted(EXPERIMENTS))
    p_exp.add_argument("--rounds", type=int, default=None)
    p_exp.add_argument("--seed", type=int, default=0)
    p_exp.add_argument(
        "--export", default=None, metavar="PATH",
        help="also write the experiment's records to PATH "
             "(.json or .csv, by extension; flat-record experiments only)",
    )
    p_exp.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write a JSONL observability trace of the experiment to PATH",
    )

    p_trace = sub.add_parser(
        "trace", help="observability traces (docs/observability.md)"
    )
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)
    t_run = trace_sub.add_parser(
        "run", help="run a traced AutoHet search and summarize the trace"
    )
    t_run.add_argument("model", help="workload name (see `models`)")
    t_run.add_argument(
        "--out", required=True, metavar="PATH",
        help="JSONL file the trace records are written to",
    )
    t_run.add_argument("--rounds", type=int, default=60)
    t_run.add_argument("--seed", type=int, default=0)
    t_run.add_argument(
        "--candidates", default=None,
        help="comma-separated crossbar shapes, e.g. '32x32,72x64,576x512'",
    )
    t_run.add_argument(
        "--no-tile-shared", action="store_true",
        help="disable the tile-shared allocation scheme",
    )
    t_sum = trace_sub.add_parser(
        "summarize",
        help="validate a JSONL trace against the schema and roll it up",
    )
    t_sum.add_argument("path", help="JSONL trace file to summarize")

    p_check = sub.add_parser(
        "check",
        help="statically verify configs / mappings / plans / source",
        description=(
            "Run the repro.analysis static verification passes. With no "
            "flags, checks the default platform, the default candidate "
            "set, and the source tree. Exits 1 if any ERROR diagnostic "
            "is found; see docs/static_analysis.md for the rule catalogue."
        ),
    )
    p_check.add_argument(
        "--config", default=None, metavar="PATH",
        help="JSON HardwareConfig (full or partial) to verify",
    )
    p_check.add_argument(
        "--shapes", default=None, metavar="LIST",
        help="comma-separated crossbar candidates to verify, e.g. '35x32,64x64'",
    )
    p_check.add_argument(
        "--model", default=None, metavar="NAME",
        help="workload whose graph (and mapping, with --strategy) to verify",
    )
    p_check.add_argument(
        "--strategy", default=None, metavar="PATH",
        help="JSON strategy file mapped+allocated statically against --model",
    )
    p_check.add_argument(
        "--plan", default=None, metavar="PATH",
        help="JSON allocation-plan document to verify (see repro.serialize)",
    )
    p_check.add_argument(
        "--source", nargs="?", const="", default=None, metavar="DIR",
        help="run the project AST lint rules over a source tree "
        "(default: the installed repro package)",
    )
    p_check.add_argument(
        "--cache-safety", action="store_true",
        help="run the interprocedural cache-key soundness / purity "
        "analysis over the memoized simulator call graph (CAC/PUR rules)",
    )
    p_check.add_argument(
        "--concurrency", action="store_true",
        help="run the static race detector over the worker fan-out call "
        "graph (CON rules: shared writes, globals, pickling, RNG, "
        "lock discipline)",
    )
    p_check.add_argument(
        "--numeric", action="store_true",
        help="run the NumPy-aware numeric-safety pass over sim/ (NUM "
        "rules: dtype mixing, order-sensitive reductions, unguarded "
        "division/log/sqrt, float equality, nan/inf sinks)",
    )
    p_check.add_argument(
        "--kernel-parity", action="store_true",
        help="cross-check the scalar cost path's attribute read-set "
        "against the vectorized kernel coverage tables (PAR rules)",
    )
    p_check.add_argument(
        "--units", action="store_true",
        help="run the dimensional-analysis pass over the cost model "
        "(UNI rules: mixed-unit arithmetic, uncovered fields, bare "
        "conversion literals, declared-vs-inferred drift, tracer streams)",
    )
    p_check.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format: human-readable text (default) or one JSON "
        "document with findings, summary counts, and ratchet violations",
    )
    p_check.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue (id, severity, anchor, title) "
        "and exit without running any pass",
    )
    p_check.add_argument(
        "--ratchet", default=None, metavar="PATH",
        help="JSON file mapping rule id -> grandfathered finding count; "
        "any rule exceeding its baseline fails the check even at WARNING",
    )
    p_check.add_argument(
        "--no-tile-shared", action="store_true",
        help="skip Algorithm 1 when allocating --model/--strategy",
    )

    p_serve = sub.add_parser(
        "serve",
        help="run a multi-tenant serving scenario (docs/serving.md)",
        description=(
            "Drive request-level traffic across co-located tenant models "
            "through the deterministic discrete-event serving simulator "
            "and report per-tenant p50/p95/p99 latency and SLO attainment."
        ),
    )
    p_serve.add_argument(
        "scenario",
        help="scenario JSON file, or a builtin name (e.g. 'two-tenant')",
    )
    p_serve.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the JSON report document to PATH",
    )
    p_serve.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write a JSONL observability trace (serve.* streams) to PATH",
    )
    p_serve.add_argument(
        "--seed", type=int, default=None,
        help="override the scenario's arrival seed",
    )
    p_serve.add_argument(
        "--duration-s", type=float, default=None,
        help="override the scenario horizon, in seconds",
    )
    p_serve.add_argument(
        "--no-realloc", action="store_true",
        help="disable the re-allocation policy for this run",
    )

    sub.add_parser("models", help="list available workloads")
    return parser


def cmd_check(args: argparse.Namespace) -> int:
    """Run the static verification passes and report diagnostics."""
    import json
    from pathlib import Path

    from .analysis.checkers import (
        check_candidate_set,
        check_config,
        check_config_dict,
        check_mappings,
        check_network,
        check_plan_dict,
    )
    from .analysis.invariants import Report, ratchet_violations
    from .analysis.lint import lint_tree
    from .arch.config import DEFAULT_CONFIG
    from .arch.mapping import map_layer
    from .core.allocation import allocate_tile_based, apply_tile_sharing
    from .serialize import load_plan_dict, load_strategy

    def load_input(what, loader):
        try:
            return loader()
        except (OSError, ValueError) as exc:
            raise SystemExit(f"check: cannot load {what}: {exc}") from exc

    if args.list_rules:
        from .analysis.invariants import RULES

        rules = [RULES[rule_id] for rule_id in sorted(RULES)]
        if args.format == "json":
            print(
                json.dumps(
                    [
                        {
                            "rule": r.rule_id,
                            "severity": r.severity.value,
                            "anchor": r.anchor,
                            "title": r.title,
                        }
                        for r in rules
                    ],
                    indent=2,
                )
            )
        else:
            for r in rules:
                print(
                    f"{r.rule_id}  {r.severity.value.upper():<7} "
                    f"{r.anchor:<18} {r.title}"
                )
        return 0

    # Progress narration belongs to the text format only; a JSON consumer
    # gets exactly one document on stdout.
    say = (lambda *a, **k: None) if args.format == "json" else print

    report = Report()
    targeted = (
        args.cache_safety
        or args.concurrency
        or args.numeric
        or args.kernel_parity
        or args.units
        or any(
            v is not None
            for v in (
                args.config, args.shapes, args.model, args.plan, args.source
            )
        )
    )

    shapes = (
        load_input(
            f"--shapes {args.shapes!r}",
            lambda: tuple(CrossbarShape.parse(t) for t in args.shapes.split(",")),
        )
        if args.shapes
        else DEFAULT_CANDIDATES
    )
    if args.shapes or not targeted:
        say(f"checking candidate set: {', '.join(map(str, shapes))}")
        report.extend(check_candidate_set(shapes))

    if args.config:
        say(f"checking config: {args.config}")
        report.extend(
            check_config_dict(
                load_input(
                    args.config, lambda: json.loads(Path(args.config).read_text())
                ),
                shapes,
            )
        )
    elif not targeted:
        say("checking default platform config")
        report.extend(check_config(DEFAULT_CONFIG, shapes))

    if args.model:
        network = get_model(args.model)
        say(f"checking model graph: {network.name}")
        report.extend(check_network(network))
        if args.strategy:
            strategy = load_input(
                args.strategy, lambda: load_strategy(args.strategy)
            )
            if len(strategy) != network.num_layers:
                raise SystemExit(
                    f"strategy length {len(strategy)} != "
                    f"{network.num_layers} layers of {network.name}"
                )
            say(f"checking mapping + allocation plan: {args.strategy}")
            mappings = [
                map_layer(layer, shape)
                for layer, shape in zip(network.layers, strategy)
            ]
            report.extend(check_mappings(mappings))
            allocation = allocate_tile_based(
                mappings, DEFAULT_CONFIG.logical_xbars_per_tile
            )
            if not args.no_tile_shared:
                allocation = apply_tile_sharing(allocation)
            report.extend(allocation.check())
    elif args.strategy:
        raise SystemExit("--strategy requires --model")

    if args.plan:
        say(f"checking allocation plan: {args.plan}")
        report.extend(
            check_plan_dict(load_input(args.plan, lambda: load_plan_dict(args.plan)))
        )

    if args.source is not None or not targeted:
        root = Path(args.source) if args.source else None
        say(f"linting source tree: {root or 'repro package'}")
        report.extend(lint_tree(root))

    if args.cache_safety or not targeted:
        from .analysis.dataflow import analyze_cache_safety

        # An explicit --source DIR points the analysis at that tree (it
        # must be laid out like the repro package); default is the
        # installed package itself.
        analysis_root = Path(args.source) if args.source else None
        say("checking cache-key soundness of the memoized simulator")
        report.extend(analyze_cache_safety(analysis_root))

    if args.concurrency or not targeted:
        from .analysis.concurrency import analyze_concurrency

        analysis_root = Path(args.source) if args.source else None
        say("checking concurrency safety of the worker fan-out paths")
        report.extend(analyze_concurrency(analysis_root))

    if args.numeric or not targeted:
        from .analysis.numeric import analyze_numeric

        analysis_root = Path(args.source) if args.source else None
        say("checking numeric safety of the simulator tree")
        report.extend(analyze_numeric(analysis_root))

    if args.kernel_parity or not targeted:
        from .analysis.kernel_parity import analyze_kernel_parity

        analysis_root = Path(args.source) if args.source else None
        say("checking scalar/vectorized kernel parity")
        report.extend(analyze_kernel_parity(analysis_root))

    if args.units or not targeted:
        from .analysis.units import analyze_units

        analysis_root = Path(args.source) if args.source else None
        say("checking dimensional consistency of the cost model")
        report.extend(analyze_units(analysis_root))

    exit_code = report.exit_code
    violations: list[str] = []
    if args.ratchet:
        baseline = load_input(
            args.ratchet, lambda: json.loads(Path(args.ratchet).read_text())
        )
        violations = ratchet_violations(report, baseline)
        if violations:
            exit_code = 1
    if args.format == "json":
        ordered = sorted(
            report.diagnostics,
            key=lambda d: (-d.severity.rank, d.rule_id, d.location),
        )
        print(
            json.dumps(
                {
                    "findings": [
                        {
                            "rule": d.rule_id,
                            "severity": d.severity.value,
                            "location": d.location,
                            "message": d.message,
                            "hint": d.hint,
                            "data": dict(d.data),
                        }
                        for d in ordered
                    ],
                    "summary": {
                        "errors": len(report.errors),
                        "warnings": len(report.warnings),
                        "total": len(report),
                    },
                    "ratchet_violations": violations,
                    "ok": exit_code == 0,
                },
                indent=2,
            )
        )
        return exit_code
    print(report.format())
    for line in violations:
        print(line)
    if exit_code == 0:
        print("check passed")
    return exit_code


@contextmanager
def _tracing(path: str | None):
    """Scoped ambient JSONL tracing for one CLI command (no-op if ``path``
    is falsy).  Flushes, closes, and reports the record count on exit."""
    if not path:
        yield None
        return
    sink = JsonlSink(path)
    tracer = Tracer([sink])
    try:
        with use_tracer(tracer):
            yield tracer
    finally:
        tracer.flush()
        sink.close()
        print(f"wrote {sink.emitted} trace records to {path}")


def cmd_search(args: argparse.Namespace) -> int:
    if args.verbose:
        configure_cli_logging()
    network = get_model(args.model)
    candidates = (
        tuple(CrossbarShape.parse(t) for t in args.candidates.split(","))
        if args.candidates
        else DEFAULT_CANDIDATES
    )
    trace_path = getattr(args, "trace", None)
    with _tracing(trace_path):
        if args.seeds:
            seeds = tuple(int(s) for s in args.seeds.split(","))
            result, per_seed = autohet_multi_seed(
                network,
                candidates,
                seeds=seeds,
                rounds=args.rounds,
                tile_shared=not args.no_tile_shared,
                max_workers=args.workers,
                verbose=args.verbose,
            )
            print(
                f"multi-seed search over seeds {', '.join(map(str, seeds))}: "
                f"best RUE per seed = "
                f"{', '.join(f'{r.best_metrics.rue:.3e}' for r in per_seed)}"
            )
        else:
            result = autohet_search(
                network,
                candidates,
                rounds=args.rounds,
                tile_shared=not args.no_tile_shared,
                seed=args.seed,
                verbose=args.verbose,
            )
        if trace_path:
            # One detailed evaluation of the winner so the trace carries
            # the per-layer utilization / activated-ADC streams (the
            # search itself evaluates with detailed=False).
            Simulator().evaluate(
                network,
                result.best_strategy,
                tile_shared=not args.no_tile_shared,
                detailed=True,
            )
    print(result.summary())
    m = result.best_metrics
    print(
        f"  energy={m.energy_nj:.3e} nJ  area={m.area_um2:.3e} um^2  "
        f"latency={m.latency_ns:.3e} ns  tiles={m.occupied_tiles}"
    )
    print(
        f"  search: {result.total_seconds:.1f}s "
        f"({result.simulator_fraction:.0%} simulator feedback), "
        f"{result.infeasible_episodes} infeasible episodes"
    )
    if result.cache_stats is not None:
        print(f"  {result.cache_stats.summary()}")
    return 0


def cmd_baselines(args: argparse.Namespace) -> int:
    network = get_model(args.model)
    sim = Simulator()
    for shape in SQUARE_CANDIDATES:
        print(f"{shape!s:>14}: {sim.evaluate_homogeneous(network, shape).summary()}")
    if network.name == "VGG16":
        manual = sim.evaluate(
            network, manual_hetero_strategy(network), tile_shared=False,
            detailed=False,
        )
        print(f" Manual-Hetero: {manual.summary()}")
    return 0


def cmd_trace_run(args: argparse.Namespace) -> int:
    """Traced AutoHet search: search, detailed winner evaluation, rollup."""
    network = get_model(args.model)
    candidates = (
        tuple(CrossbarShape.parse(t) for t in args.candidates.split(","))
        if args.candidates
        else DEFAULT_CANDIDATES
    )
    with _tracing(args.out):
        result = autohet_search(
            network,
            candidates,
            rounds=args.rounds,
            tile_shared=not args.no_tile_shared,
            seed=args.seed,
        )
        Simulator().evaluate(
            network,
            result.best_strategy,
            tile_shared=not args.no_tile_shared,
            detailed=True,
        )
    print(result.summary())
    return _summarize_trace_file(args.out)


def _summarize_trace_file(path: str) -> int:
    """Validate + roll up one JSONL trace; returns the exit code."""
    import json

    from .bench.reporting import print_table
    from .obs import read_jsonl, summarize_records, validate_record

    try:
        records = list(read_jsonl(path))
    except OSError as exc:
        raise SystemExit(f"trace: cannot read {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise SystemExit(f"trace: {path} is not valid JSONL: {exc}") from exc

    problems: list[str] = []
    for index, record in enumerate(records):
        problems.extend(
            f"record {index}: {problem}" for problem in validate_record(record)
        )
    summary = summarize_records(records)
    print(
        f"{summary.records} records in {path}: "
        f"{len(summary.spans)} span names, "
        f"{len(summary.counters)} counter streams, "
        f"{sum(summary.events.values())} events"
    )
    if summary.spans:
        print_table(
            ("span", "count", "total ms", "p50 ms", "p95 ms", "max ms"),
            [
                (
                    s.name,
                    s.count,
                    s.total_ns / 1e6,
                    s.p50_ns / 1e6,
                    s.p95_ns / 1e6,
                    s.max_ns / 1e6,
                )
                for s in summary.spans.values()
            ],
            title="spans",
        )
    if summary.counters:
        print_table(
            ("counter", "count", "mean", "min", "max", "last"),
            [
                (c.name, c.count, c.mean, c.minimum, c.maximum, c.last)
                for c in summary.counters.values()
            ],
            title="counter streams",
        )
    if summary.events:
        print_table(
            ("event", "count"),
            sorted(summary.events.items()),
            title="events",
        )
    if problems:
        shown = problems[:20]
        print(f"\n{len(problems)} schema violations:")
        for line in shown:
            print(f"  {line}")
        if len(problems) > len(shown):
            print(f"  ... and {len(problems) - len(shown)} more")
        return 1
    print("\ntrace validates against schema v1")
    return 0


def cmd_trace_summarize(args: argparse.Namespace) -> int:
    return _summarize_trace_file(args.path)


def cmd_serve(args: argparse.Namespace) -> int:
    """Run one serving scenario end-to-end and print the SLO report."""
    import json
    from dataclasses import replace
    from pathlib import Path

    from .bench.reporting import print_table
    from .serve import (
        BUILTIN_SCENARIOS,
        build_report,
        emit_report,
        load_scenario,
        simulate,
        validate_report,
    )

    if args.scenario in BUILTIN_SCENARIOS:
        scenario = BUILTIN_SCENARIOS[args.scenario]()
    else:
        try:
            scenario = load_scenario(args.scenario)
        except (OSError, ValueError, KeyError) as exc:
            raise SystemExit(
                f"serve: cannot load scenario {args.scenario!r}: {exc} "
                f"(builtins: {sorted(BUILTIN_SCENARIOS)})"
            ) from exc
    if args.seed is not None:
        scenario = replace(scenario, seed=args.seed)
    if args.duration_s is not None:
        scenario = replace(scenario, duration_ns=args.duration_s * 1e9)
    if args.no_realloc:
        scenario = replace(
            scenario, realloc=replace(scenario.realloc, enabled=False)
        )

    with _tracing(args.trace) as tracer:
        result = simulate(scenario)
        report = build_report(result)
        if tracer is not None:
            emit_report(tracer, report)

    problems = validate_report(report)
    if problems:
        raise SystemExit(
            "serve: internal error — report fails its own schema:\n  "
            + "\n  ".join(problems)
        )

    requests = report["requests"]
    print(
        f"scenario '{report['scenario']}' (seed {report['seed']}): "
        f"{requests['arrivals']} arrivals over "
        f"{report['duration_ns'] / 1e9:.3f}s — "
        f"{requests['completed']} completed, "
        f"{requests['rejected']} rejected, "
        f"{requests['in_flight']} in flight"
    )
    alloc = report["allocation"]
    print(
        f"allocation: {alloc['initial_tiles']} tiles initially, "
        f"{alloc['final_tiles']} at the end "
        f"(budget {alloc['tile_budget']}), "
        f"{len(report['realloc_events'])} re-allocation(s)"
    )
    for event in report["realloc_events"]:
        print(
            f"  t={event['t'] / 1e6:.1f}ms re-pack -> replication "
            f"{event['replication']} ({event['tiles']} tiles, "
            f"drift {event['drift']:.2f})"
        )
    print_table(
        ("tenant", "model", "done", "rej", "p50 ms", "p95 ms", "p99 ms",
         "SLO %"),
        [
            (
                name,
                entry["model"],
                entry["completed"],
                entry["rejected"],
                (entry["p50_ns"] or 0.0) / 1e6,
                (entry["p95_ns"] or 0.0) / 1e6,
                (entry["p99_ns"] or 0.0) / 1e6,
                100.0 * entry["slo_attainment"],
            )
            for name, entry in report["tenants"].items()
        ],
        title="per-tenant SLO report",
    )
    if args.out:
        Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote report to {args.out}")
    return 0


def cmd_models(_: argparse.Namespace) -> int:
    for name in sorted(_MODEL_BUILDERS):
        net = get_model(name)
        print(
            f"{name:>12}: {net.name} on {net.dataset.name} "
            f"({net.num_layers} layers, {net.total_weights / 1e6:.2f}M weights)"
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "search":
        return cmd_search(args)
    if args.command == "baselines":
        return cmd_baselines(args)
    if args.command == "models":
        return cmd_models(args)
    if args.command == "check":
        return cmd_check(args)
    if args.command == "serve":
        return cmd_serve(args)
    if args.command == "trace":
        if args.trace_command == "run":
            return cmd_trace_run(args)
        return cmd_trace_summarize(args)
    if args.command == "experiment":
        with _tracing(getattr(args, "trace", None)):
            if getattr(args, "export", None):
                return cmd_experiment_export(args)
            EXPERIMENTS[args.name](args)
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")


#: experiments with a flat-record exporter: name -> (runner, to_records)
def _exporters():
    from .bench import export as ex

    return {
        "fig3": (lambda a: fig3_motivation(), ex.rows_to_records),
        "fig4": (lambda a: fig4_empty_crossbars(), ex.fig4_to_records),
        "fig5": (lambda a: fig5_tradeoff(), ex.fig5_to_records),
        "fig9": (
            lambda a: fig9_overall(rounds=a.rounds, seed=a.seed),
            ex.overall_to_records,
        ),
        "fig10": (
            lambda a: fig10_ablation(rounds=a.rounds, seed=a.seed),
            ex.ablation_to_records,
        ),
        "table3": (
            lambda a: table3_strategies(rounds=a.rounds, seed=a.seed),
            ex.table3_to_records,
        ),
        "table4": (
            lambda a: table4_tiles(rounds=a.rounds, seed=a.seed),
            ex.table4_to_records,
        ),
        "table5": (
            lambda a: table5_area_latency(rounds=a.rounds, seed=a.seed),
            ex.rows_to_records,
        ),
    }


def cmd_experiment_export(args: argparse.Namespace) -> int:
    from .bench.export import to_csv, to_json

    if args.name == "all":
        from .bench.suite import run_full_suite, summarize_suite

        doc = run_full_suite(rounds=args.rounds, seed=args.seed, verbose=True)
        import json as _json
        from pathlib import Path as _Path

        _Path(args.export).write_text(_json.dumps(doc, indent=2))
        print(summarize_suite(doc))
        print(f"wrote full suite document to {args.export}")
        return 0

    exporters = _exporters()
    if args.name not in exporters:
        raise SystemExit(
            f"experiment {args.name!r} has no flat-record exporter; "
            f"exportable: {sorted(exporters)}"
        )
    runner, to_records = exporters[args.name]
    records = to_records(runner(args))
    path = args.export
    writer = to_csv if str(path).endswith(".csv") else to_json
    writer(records, path)
    print(f"wrote {len(records)} records to {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
