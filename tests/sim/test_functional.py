"""Functional engine tests: bit-exactness, saturation, end-to-end error."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.config import CrossbarShape, DEFAULT_CANDIDATES, HardwareConfig
from repro.models import lenet, tiny_cnn
from repro.models.layers import LayerSpec
from repro.sim.functional import (
    FunctionalLayerEngine,
    FunctionalNetworkEngine,
    im2col,
    random_weights,
    unfold_weights,
)
from repro.sim.quantization import quantize


def make_engine(layer, shape, seed=0, config=None):
    rng = np.random.default_rng(seed)
    if layer.layer_type.name == "FC":
        w = rng.normal(size=(layer.out_channels, layer.in_channels))
    else:
        w = rng.normal(
            size=(layer.out_channels, layer.in_channels,
                  layer.kernel_size, layer.kernel_size)
        )
    cfg = config or HardwareConfig()
    wq = quantize(unfold_weights(layer, w), cfg.weight_bits, signed=True)
    return FunctionalLayerEngine(layer, shape, wq.values, cfg), wq.values


class TestUnfoldAndIm2col:
    def test_unfold_conv_shape(self):
        layer = LayerSpec.conv(3, 5, 3)
        w = np.arange(3 * 5 * 9, dtype=float).reshape(5, 3, 3, 3)
        u = unfold_weights(layer, w)
        assert u.shape == (27, 5)
        # Column j is kernel j flattened channel-major.
        assert np.array_equal(u[:, 2], w[2].reshape(-1))

    def test_unfold_fc_is_transpose(self):
        layer = LayerSpec.fc(4, 3)
        w = np.arange(12, dtype=float).reshape(3, 4)
        assert np.array_equal(unfold_weights(layer, w), w.T)

    def test_unfold_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            unfold_weights(LayerSpec.fc(4, 3), np.zeros((4, 3)))
        with pytest.raises(ValueError):
            unfold_weights(LayerSpec.conv(3, 5, 3), np.zeros((5, 3, 2, 2)))

    def test_im2col_matches_direct_convolution(self):
        rng = np.random.default_rng(7)
        layer = LayerSpec.conv(2, 3, 3, stride=1, padding=1, input_size=6)
        fmap = rng.normal(size=(2, 6, 6))
        w = rng.normal(size=(3, 2, 3, 3))
        cols = im2col(fmap, layer)
        out = (cols @ unfold_weights(layer, w)).T.reshape(3, 6, 6)
        # Direct reference convolution.
        padded = np.pad(fmap, ((0, 0), (1, 1), (1, 1)))
        ref = np.zeros((3, 6, 6))
        for o in range(3):
            for i in range(6):
                for j in range(6):
                    ref[o, i, j] = np.sum(padded[:, i : i + 3, j : j + 3] * w[o])
        assert np.allclose(out, ref)

    def test_im2col_stride(self):
        layer = LayerSpec.conv(1, 1, 2, stride=2, input_size=4)
        fmap = np.arange(16, dtype=float).reshape(1, 4, 4)
        cols = im2col(fmap, layer)
        assert cols.shape == (4, 4)
        assert np.array_equal(cols[0], [0, 1, 4, 5])


class TestLayerEngineExactness:
    @pytest.mark.parametrize("shape", DEFAULT_CANDIDATES)
    def test_exact_on_every_candidate(self, shape):
        layer = LayerSpec.conv(12, 40, 3, input_size=8)
        engine, wq = make_engine(layer, shape)
        rng = np.random.default_rng(1)
        x = rng.integers(0, 256, size=(6, 108))
        assert np.array_equal(engine.mvm_batch(x), x @ wq)

    def test_exact_kernel_split(self):
        layer = LayerSpec.conv(3, 10, 7, input_size=28)
        engine, wq = make_engine(layer, CrossbarShape(32, 32))
        assert engine.mapping.kernel_split
        rng = np.random.default_rng(2)
        x = rng.integers(0, 256, size=(4, 147))
        assert np.array_equal(engine.mvm_batch(x), x @ wq)

    def test_exact_fc(self):
        layer = LayerSpec.fc(300, 77)
        engine, wq = make_engine(layer, CrossbarShape(72, 64))
        rng = np.random.default_rng(3)
        x = rng.integers(0, 256, size=(3, 300))
        assert np.array_equal(engine.mvm_batch(x), x @ wq)

    def test_single_vector_wrapper(self):
        layer = LayerSpec.fc(20, 5)
        engine, wq = make_engine(layer, CrossbarShape(32, 32))
        x = np.arange(20) % 256
        assert np.array_equal(engine.mvm(x), x @ wq)

    def test_rejects_wrong_input_width(self):
        layer = LayerSpec.fc(20, 5)
        engine, _ = make_engine(layer, CrossbarShape(32, 32))
        with pytest.raises(ValueError):
            engine.mvm_batch(np.zeros((1, 19), dtype=int))

    def test_rejects_out_of_range_inputs(self):
        layer = LayerSpec.fc(4, 2)
        engine, _ = make_engine(layer, CrossbarShape(32, 32))
        with pytest.raises(ValueError):
            engine.mvm_batch(np.full((1, 4), 256))

    def test_rejects_out_of_range_weights(self):
        layer = LayerSpec.fc(4, 2)
        with pytest.raises(ValueError):
            FunctionalLayerEngine(
                layer, CrossbarShape(32, 32), np.full((4, 2), 200)
            )

    def test_rejects_wrong_weight_shape(self):
        layer = LayerSpec.fc(4, 2)
        with pytest.raises(ValueError):
            FunctionalLayerEngine(layer, CrossbarShape(32, 32), np.zeros((2, 4)))

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2**31 - 1))
    def test_exactness_property(self, seed):
        rng = np.random.default_rng(seed)
        cin = int(rng.integers(1, 40))
        cout = int(rng.integers(1, 80))
        k = int(rng.choice([1, 3, 5]))
        shape = DEFAULT_CANDIDATES[int(rng.integers(0, 5))]
        layer = LayerSpec.conv(cin, cout, k, input_size=8)
        engine, wq = make_engine(layer, shape, seed=seed)
        x = rng.integers(0, 256, size=(2, cin * k * k))
        assert np.array_equal(engine.mvm_batch(x), x @ wq)

    def test_adc_saturation_breaks_exactness(self):
        """With a too-small ADC the engine saturates and under-reports."""
        cfg = HardwareConfig(adc_bits=4)
        layer = LayerSpec.fc(256, 8)
        engine, wq = make_engine(layer, CrossbarShape(288, 256), config=cfg)
        x = np.full((1, 256), 255)
        out = engine.mvm_batch(x)
        assert engine.counters.adc_saturations > 0
        exact = x @ wq
        assert np.all(out <= exact)  # clipping only loses magnitude

    def test_counters_match_analytic_model(self):
        cfg = HardwareConfig()
        layer = LayerSpec.conv(12, 40, 3, input_size=8)
        engine, _ = make_engine(layer, CrossbarShape(64, 64))
        n = 5
        engine.mvm_batch(np.zeros((n, 108), dtype=int))
        m = engine.mapping
        expected_adc = (
            n * m.row_groups * layer.out_channels  # per (cycle, slice) grid
            * cfg.input_cycles * cfg.xbars_per_group
        )
        # Engine converts the full allocated grid per (n, rg); columns are
        # cout wide because the cell tensor is dense over cout.
        assert engine.counters.adc_conversions == expected_adc
        assert engine.counters.crossbar_evaluations == (
            n * m.row_groups * cfg.input_cycles * cfg.xbars_per_group
        )


class TestNetworkEngine:
    def test_close_to_float_reference(self, lenet_net):
        strategy = tuple(CrossbarShape(72, 64) for _ in lenet_net.layers)
        engine = FunctionalNetworkEngine(lenet_net, strategy, seed=3)
        img = lenet_net.dataset.synthetic_batch(1, seed=5)[0]
        q = engine.forward(img)
        ref = engine.reference_forward(img)
        rel = np.abs(q - ref).max() / (np.abs(ref).max() + 1e-12)
        assert rel < 0.05

    def test_no_saturation_with_paper_adc(self, lenet_net):
        strategy = tuple(CrossbarShape(72, 64) for _ in lenet_net.layers)
        engine = FunctionalNetworkEngine(lenet_net, strategy, seed=3)
        engine.forward(lenet_net.dataset.synthetic_batch(1, seed=5)[0])
        assert engine.counters().adc_saturations == 0

    def test_heterogeneous_strategy_equivalent_output(self, lenet_net):
        """The crossbar shape must not change the computed result."""
        img = lenet_net.dataset.synthetic_batch(1, seed=9)[0]
        outs = []
        for shape in (CrossbarShape(36, 32), CrossbarShape(576, 512)):
            strategy = tuple(shape for _ in lenet_net.layers)
            engine = FunctionalNetworkEngine(lenet_net, strategy, seed=4)
            outs.append(engine.forward(img))
        assert np.allclose(outs[0], outs[1])

    def test_logit_count_matches_classes(self, lenet_net):
        strategy = tuple(CrossbarShape(72, 64) for _ in lenet_net.layers)
        engine = FunctionalNetworkEngine(lenet_net, strategy, seed=0)
        out = engine.forward(lenet_net.dataset.synthetic_batch(1)[0])
        assert out.shape == (lenet_net.dataset.num_classes,)

    def test_rejects_strategy_length_mismatch(self, lenet_net):
        with pytest.raises(ValueError):
            FunctionalNetworkEngine(lenet_net, (CrossbarShape(32, 32),))

    def test_rejects_wrong_image_shape(self, lenet_net):
        strategy = tuple(CrossbarShape(72, 64) for _ in lenet_net.layers)
        engine = FunctionalNetworkEngine(lenet_net, strategy)
        with pytest.raises(ValueError):
            engine.forward(np.zeros((3, 28, 28)))

    def test_random_weights_deterministic(self, tiny_net):
        a = random_weights(tiny_net, seed=1)
        b = random_weights(tiny_net, seed=1)
        assert all(np.array_equal(a[k], b[k]) for k in a)
