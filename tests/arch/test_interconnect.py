"""Tests for the interconnect traffic and topology models."""

import pytest

from repro.arch.config import CrossbarShape
from repro.arch.interconnect import (
    InterconnectConfig,
    TrafficReport,
    traffic_report,
)
from repro.sim import Simulator

CFG = InterconnectConfig()


@pytest.fixture(scope="module")
def lenet_traffic():
    from repro.models import lenet

    net = lenet()
    sim = Simulator()
    strategy = tuple(CrossbarShape(72, 64) for _ in net.layers)
    allocation = sim.allocate(sim.map_network(net, strategy), tile_shared=True)
    return net, allocation, traffic_report(net, allocation)


class TestConfig:
    def test_rejects_bad_bandwidth(self):
        with pytest.raises(ValueError):
            InterconnectConfig(bus_bytes_per_ns=0)

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            InterconnectConfig(hop_latency_ns=-1)


class TestTrafficReport:
    def test_one_entry_per_layer(self, lenet_traffic):
        net, _, report = lenet_traffic
        assert len(report.layers) == net.num_layers

    def test_input_bytes_formula(self, lenet_traffic):
        net, allocation, report = lenet_traffic
        layer = net.layers[0]
        entry = report.layers[0]
        tiles = len(allocation.tiles_of_layer(0))
        assert entry.input_bytes == (
            layer.mvm_ops * layer.in_channels * layer.kernel_elems * tiles
        )
        assert entry.output_bytes == layer.mvm_ops * layer.out_channels
        assert entry.tiles_touched == tiles

    def test_weight_load_bytes(self, lenet_traffic):
        net, _, report = lenet_traffic
        assert report.weight_load_bytes == net.total_weights

    def test_totals_consistent(self, lenet_traffic):
        _, _, report = lenet_traffic
        assert report.total_bytes == sum(l.total_bytes for l in report.layers)
        assert report.total_transfers == sum(l.transfers for l in report.layers)

    def test_tile_count_matches_allocation(self, lenet_traffic):
        _, allocation, report = lenet_traffic
        assert report.tile_count == allocation.occupied_tiles


class TestTopologies:
    def test_bus_latency_positive_and_linear(self, lenet_traffic):
        _, _, report = lenet_traffic
        base = report.bus_latency_ns(CFG)
        fast = report.bus_latency_ns(
            InterconnectConfig(bus_bytes_per_ns=64.0, bus_arbitration_ns=0.0)
        )
        assert base > 0
        assert fast < base

    def test_htree_depth_log2(self, lenet_traffic):
        _, allocation, report = lenet_traffic
        import math

        assert report.htree_depth() == max(
            math.ceil(math.log2(allocation.occupied_tiles)), 1
        )

    def test_htree_beats_bus_on_broadcast_heavy_traffic(self, lenet_traffic):
        """Concurrent subtrees make the H-tree faster than a serial bus
        under the default bandwidths."""
        _, _, report = lenet_traffic
        assert report.htree_latency_ns(CFG) < report.bus_latency_ns(CFG)

    def test_htree_energy_scales_with_depth(self, lenet_traffic):
        _, _, report = lenet_traffic
        assert report.htree_energy_nj(CFG) == pytest.approx(
            report.total_bytes * report.htree_depth() * CFG.energy_per_byte_hop_nj
        )

    def test_bus_energy_linear_in_bytes(self, lenet_traffic):
        _, _, report = lenet_traffic
        assert report.bus_energy_nj(CFG) == pytest.approx(
            report.total_bytes * CFG.energy_per_bus_byte_nj
        )


class TestShapes:
    def test_bigger_crossbars_reduce_broadcast_traffic(self):
        """Fewer tiles touched per layer -> less input duplication."""
        from repro.models import vgg16

        net = vgg16()
        sim = Simulator()
        small = sim.allocate(
            sim.map_network(net, tuple(CrossbarShape(32, 32) for _ in net.layers)),
            tile_shared=False,
        )
        big = sim.allocate(
            sim.map_network(net, tuple(CrossbarShape(512, 512) for _ in net.layers)),
            tile_shared=False,
        )
        assert (
            traffic_report(net, big).total_bytes
            < traffic_report(net, small).total_bytes
        )
