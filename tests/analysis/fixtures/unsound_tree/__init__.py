"""A deliberately-unsound miniature of the repro package layout.

Laid out so :func:`repro.analysis.dataflow.analyze_cache_safety` (and
``repro check --cache-safety --source <this dir>``) can index it as if it
were the real package: the analysis roots resolve to
``sim/simulator.py``'s ``Simulator.evaluate`` / ``try_evaluate``, which
read a field the real fingerprint tables do not cover (CAC001), reach a
``random`` sink (CAC003), and mutate their input (PUR001).
"""
