"""Pluggable trace sinks.

A sink is anything with ``emit(record)`` and ``flush()`` (see the
``Sink`` protocol in :mod:`repro.obs.trace`).  Three implementations
cover the project's needs:

* :class:`InMemorySink` — accumulates records in a list; tests and
  benchmarks summarize it directly;
* :class:`JsonlSink` — appends one JSON object per line to a file
  (the format ``repro trace summarize`` reads back);
* :class:`LoggingSink` — mirrors records onto the ``repro.trace``
  logger for environments that already aggregate logs.

Sinks are called synchronously from instrumented code, so they do the
minimum per record; none of them are installed unless tracing was
explicitly enabled.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Any, TextIO

from .log import get_logger
from .summary import TraceSummary, summarize_records


class InMemorySink:
    """Accumulates records in memory; thread-safe.

    ``records`` returns a snapshot list; :meth:`summary` rolls the
    current contents up without clearing them.
    """

    def __init__(self) -> None:
        self._records: list[dict[str, Any]] = []  # guarded-by: _lock
        self._lock = threading.Lock()

    def emit(self, record: dict[str, Any]) -> None:
        with self._lock:
            self._records.append(record)

    def flush(self) -> None:
        return None

    @property
    def records(self) -> list[dict[str, Any]]:
        with self._lock:
            return list(self._records)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def clear(self) -> None:
        with self._lock:
            self._records.clear()

    def summary(self) -> TraceSummary:
        return summarize_records(self.records)


class JsonlSink:
    """Writes one compact JSON object per line to ``path``.

    Opens the file lazily on first emit (so constructing a sink never
    touches the filesystem), truncates by default, and counts emitted
    records.  Use as a context manager or call :meth:`close`.
    """

    def __init__(self, path: Path | str, *, append: bool = False):
        self.path = Path(path)       # guarded-by: init-only
        self._append = append        # guarded-by: init-only
        self._fh: TextIO | None = None  # guarded-by: _lock
        self._lock = threading.Lock()
        self.emitted = 0             # guarded-by: _lock

    def _handle(self) -> TextIO:  # holds-lock: _lock
        if self._fh is None:
            self._fh = open(self.path, "a" if self._append else "w", encoding="utf-8")
        return self._fh

    def emit(self, record: dict[str, Any]) -> None:
        line = json.dumps(record, separators=(",", ":"), sort_keys=False)
        with self._lock:
            self._handle().write(line + "\n")
            self.emitted += 1

    def flush(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class LoggingSink:
    """Mirrors trace records onto the ``repro.trace`` logger.

    Spans and events log at DEBUG, counters at DEBUG too — the bridge
    exists for environments that already collect logs, not for humans
    at a terminal (use ``repro trace summarize`` for that).
    """

    def __init__(self, subsystem: str = "trace"):
        self._log = get_logger(subsystem)

    def emit(self, record: dict[str, Any]) -> None:
        self._log.debug(
            "%s %s %s",
            record.get("type", "?"),
            record.get("name", "?"),
            json.dumps(record, separators=(",", ":"), default=str),
        )

    def flush(self) -> None:
        return None
