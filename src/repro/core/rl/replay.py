"""The experience pool (§3.2).

After each inference, the pool collects the per-layer transitions
``E_k = (S_k, S_{k+1}, a_k, R)`` (Eq. 3) — the whole-model reward is
broadcast to every layer's transition.  The agent samples uniform random
mini-batches to update the actor-critic pair.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Transition:
    """One experience tuple ``(S_k, S_{k+1}, a_k, R)`` plus a terminal flag."""

    state: np.ndarray
    next_state: np.ndarray
    action: float
    reward: float
    done: bool


class ExperiencePool:
    """Fixed-capacity ring buffer with uniform sampling."""

    def __init__(self, capacity: int, *, seed: int = 0) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._buffer: list[Transition] = []
        self._cursor = 0
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        return len(self._buffer)

    @property
    def full(self) -> bool:
        return len(self._buffer) == self.capacity

    def add(self, transition: Transition) -> None:
        if len(self._buffer) < self.capacity:
            self._buffer.append(transition)
        else:
            self._buffer[self._cursor] = transition
        self._cursor = (self._cursor + 1) % self.capacity

    def extend(self, transitions) -> None:
        for t in transitions:
            self.add(t)

    def sample(
        self, batch_size: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Uniform mini-batch as stacked arrays.

        Returns ``(states, next_states, actions, rewards, dones)`` with
        shapes ``(B, D), (B, D), (B, 1), (B, 1), (B, 1)``.
        """
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if not self._buffer:
            raise ValueError("cannot sample from an empty pool")
        idx = self._rng.integers(0, len(self._buffer), size=batch_size)
        batch = [self._buffer[i] for i in idx]
        states = np.stack([t.state for t in batch])
        next_states = np.stack([t.next_state for t in batch])
        actions = np.array([[t.action] for t in batch])
        rewards = np.array([[t.reward] for t in batch])
        dones = np.array([[float(t.done)] for t in batch])
        return states, next_states, actions, rewards, dones
