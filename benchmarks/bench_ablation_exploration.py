"""Ablation (design choice): coherent exploration episodes.

The tile-shared allocator couples layers that pick the same crossbar
shape (they pool their tile waste), creating multiple reward basins.
Per-layer independent noise cannot hop between basins on deep models —
this is the failure mode that made early ResNet152 searches converge to
the wrong (576x512-heavy) basin.  Coherent episodes — every layer
perturbing one shared action — let the critic observe whole basins.

This bench runs the ResNet152 search with coherent episodes disabled vs
the default, same seeds and budget.

Expected shape: the coherent-exploration search finds a strictly better
(or equal) strategy; without it, the search tends to plateau in the
576x512 basin.
"""

from conftest import run_once

from repro.arch.config import DEFAULT_CANDIDATES
from repro.bench import default_rounds
from repro.bench.reporting import print_table
from repro.core.autohet import AutoHet
from repro.core.rl.ddpg import DDPGConfig
from repro.models import resnet152
from repro.sim import Simulator


def run_exploration_ablation(rounds=None, seed=0):
    rounds = rounds if rounds is not None else default_rounds()
    net = resnet152()
    sim = Simulator()
    out = {}
    for label, prob in (("no coherent episodes", 0.0), ("coherent (default)", None)):
        cfg = (
            DDPGConfig(seed=seed)
            if prob is None
            else DDPGConfig(seed=seed, coherent_episode_prob=prob)
        )
        engine = AutoHet(net, DEFAULT_CANDIDATES, sim, agent_config=cfg)
        # Disable the homogeneous-probe warm start so the ablation
        # isolates the exploration scheme itself.
        result = engine.search(rounds, seed_homogeneous=False)
        out[label] = result.best_metrics
    return out


def test_exploration_ablation(benchmark):
    data = run_once(benchmark, run_exploration_ablation)
    print_table(
        ["exploration", "utilization_%", "energy_nJ", "RUE"],
        [
            (label, m.utilization_percent, m.energy_nj, m.rue)
            for label, m in data.items()
        ],
        title="Ablation — coherent exploration (ResNet152)",
    )
    assert data["coherent (default)"].rue >= data["no coherent episodes"].rue
