"""Transformer-block workload (extension; §4.5 "applicability").

The paper closes by arguing the heterogeneous-crossbar idea generalises
to large language models.  A transformer block's weight-bearing matrices
are all dense projections — exactly FC layers in the crossbar-mapping
sense — so the AutoHet search applies unchanged:

* per attention block: Q, K, V projections (``d x d``) and the output
  projection (``d x d``);
* per MLP block: up projection (``d x 4d``) and down projection
  (``4d x d``);
* a final LM head (``d x vocab``).

Attention's dynamic ``QK^T`` products are not weight-stationary and stay
off-crossbar (as in ReRAM LLM-acceleration proposals); only the static
projection matrices map to crossbars, which is what this workload models.
"""

from __future__ import annotations

from .datasets import DatasetSpec
from .graph import Network
from .layers import LayerSpec


def transformer_lm(
    *,
    num_blocks: int = 4,
    d_model: int = 512,
    mlp_ratio: int = 4,
    vocab_size: int = 4096,
    name: str | None = None,
) -> Network:
    """A decoder-style transformer's crossbar-mappable projection stack."""
    if num_blocks <= 0 or d_model <= 0 or mlp_ratio <= 0 or vocab_size <= 0:
        raise ValueError("all transformer dimensions must be positive")
    dataset = DatasetSpec(
        name=f"tokens-d{d_model}", image_size=1, channels=d_model,
        num_classes=vocab_size,
    )
    layers: list[LayerSpec] = []
    for b in range(num_blocks):
        prefix = f"block{b + 1}"
        for proj in ("q", "k", "v", "o"):
            layers.append(
                LayerSpec.fc(d_model, d_model, name=f"{prefix}.attn.{proj}")
            )
        layers.append(
            LayerSpec.fc(d_model, d_model * mlp_ratio, name=f"{prefix}.mlp.up")
        )
        layers.append(
            LayerSpec.fc(d_model * mlp_ratio, d_model, name=f"{prefix}.mlp.down")
        )
    layers.append(LayerSpec.fc(d_model, vocab_size, name="lm_head"))
    indexed = [l.with_index(i) for i, l in enumerate(layers)]
    from .layers import Stage

    return Network(
        name=name or f"TransformerLM-{num_blocks}x{d_model}",
        dataset=dataset,
        stages=tuple(Stage(layer=l) for l in indexed),
    )
