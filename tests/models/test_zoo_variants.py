"""Workloads rebound to non-default datasets, and derived-shape checks.

The zoo builders accept any dataset descriptor; these tests pin the shape
propagation for the cross pairings (AlexNet on CIFAR-10, LeNet on
CIFAR-10, VGG16 on MNIST-like sizes are not meaningful for VGG's 5 pools,
so only valid pairings are tested) and the aggregate statistics the
energy model depends on.
"""

import pytest

from repro.models import CIFAR10, MNIST, alexnet, get_model, lenet, tiny_cnn, vgg16


class TestDatasetRebinding:
    def test_alexnet_on_cifar(self):
        net = alexnet(CIFAR10)
        assert net.layers[0].in_channels == 3
        assert net.layers[0].input_size == 32
        # 32 -> 16 -> 8 -> 4 after three pools; flatten = 256*4*4.
        assert net.fc_layers()[0].in_channels == 256 * 4 * 4

    def test_lenet_on_cifar(self):
        net = lenet(CIFAR10)
        # 32 -> pool 16 -> conv 12 -> pool 6.
        assert net.fc_layers()[0].in_channels == 16 * 6 * 6

    def test_tiny_cnn_on_mnist(self):
        net = tiny_cnn(MNIST)
        assert net.layers[0].in_channels == 1
        assert net.fc_layers()[0].in_channels == 32 * 7 * 7

    def test_rebinding_changes_mvm_counts(self):
        small = lenet(MNIST)
        big = lenet(CIFAR10)
        assert big.layers[0].mvm_ops > small.layers[0].mvm_ops


class TestAggregateStatistics:
    @pytest.mark.parametrize(
        "name,weights_millions",
        [("alexnet", 28.5), ("vgg16", 20.9), ("resnet152", 60.0)],
    )
    def test_total_weights_magnitude(self, name, weights_millions):
        net = get_model(name)
        assert net.total_weights / 1e6 == pytest.approx(
            weights_millions, rel=0.02
        )

    def test_vgg16_macs_dominated_by_convs(self):
        net = vgg16()
        conv_macs = sum(l.macs for l in net.conv_layers())
        assert conv_macs > 0.8 * net.total_macs

    def test_resnet_macs_positive_everywhere(self):
        for layer in get_model("resnet152").layers:
            assert layer.macs > 0
            assert layer.mvm_ops >= 1

    def test_alexnet_fc_heavy(self):
        """AlexNet's parameters concentrate in the FC head."""
        net = alexnet()
        fc_weights = sum(l.weight_count for l in net.fc_layers())
        assert fc_weights > 0.6 * net.total_weights

    def test_transformer_registry_entry(self):
        net = get_model("transformer")
        assert net.num_layers == 25
        assert all(l.layer_type.name == "FC" for l in net.layers)
