"""Deep Deterministic Policy Gradient agent (§3.2).

The paper builds its RL agent on DDPG [20]: a deterministic actor
``mu(s) -> a`` in the continuous action box [0, 1] (discretised to a
crossbar-candidate index by the environment) and a critic ``Q(s, a)``
trained by temporal-difference learning against slow-moving target copies
of both networks.

Implementation notes:

* Rewards ``R = u / e`` are numerically tiny (energy is in nJ), so the
  agent applies an automatic reward scale — the reciprocal of the first
  observed |reward| — before TD learning.  Scaling a reward by a positive
  constant leaves the optimal policy unchanged.
* The critic target is ``r`` at terminal transitions and
  ``r + gamma * Q'(s', mu'(s'))`` otherwise.
* The actor ascends ``Q(s, mu(s))`` by backpropagating ``dQ/da`` through
  the critic's action input into the actor.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...obs import metrics as obs_metrics
from ...obs.trace import Tracer, current_tracer
from .networks import MLP, Adam
from .noise import TruncatedNormalNoise
from .replay import ExperiencePool, Transition


@dataclass(frozen=True)
class DDPGConfig:
    """Hyper-parameters of the search agent."""

    state_dim: int = 10
    hidden: tuple[int, ...] = (64, 64)
    actor_lr: float = 1e-3
    critic_lr: float = 1e-3
    gamma: float = 0.98
    tau: float = 0.01             #: soft target-update rate
    batch_size: int = 64
    pool_capacity: int = 20_000
    updates_per_episode: int = 20
    warmup_episodes: int = 5      #: pure-exploration episodes before learning
    noise_sigma: float = 0.5
    noise_decay: float = 0.99
    seed: int = 0
    #: TD-bootstrap the critic target (classic DDPG) or regress the
    #: broadcast episode reward directly (contextual-bandit form).  The
    #: episode reward is already the *global* outcome of all layers'
    #: actions (Eq. 3 broadcasts it), so the bandit form gives each
    #: (layer-state, action) pair a direct, low-bias learning signal —
    #: it converges noticeably better on deep models like ResNet152.
    bootstrap: bool = False
    #: subtract an exponential moving average of episode rewards from the
    #: critic target (variance reduction, as in HAQ-style searches).
    use_baseline: bool = True
    baseline_decay: float = 0.95
    #: epsilon-greedy exploration on top of the Gaussian actor noise: with
    #: this (decaying) probability a layer's action is drawn uniformly,
    #: guaranteeing late-stage coverage of every candidate and preventing
    #: the saturating sigmoid actor from locking into an edge bin.
    epsilon: float = 0.3
    epsilon_decay: float = 0.99
    epsilon_min: float = 0.02
    #: probability of a *coherent* exploration episode, in which every
    #: layer perturbs around one shared random action.  The tile-shared
    #: allocator couples layers that pick the same crossbar shape (they
    #: pool their tile waste), creating multiple basins that per-layer
    #: independent noise cannot hop between; coherent episodes let the
    #: critic observe whole basins.
    coherent_episode_prob: float = 0.2
    coherent_sigma: float = 0.08


class DDPGAgent:
    """Actor-critic pair with target networks and an experience pool."""

    def __init__(
        self, config: DDPGConfig = DDPGConfig(), *, tracer: Tracer | None = None
    ) -> None:
        self.config = config
        #: explicit tracer; ``None`` resolves the ambient one lazily.
        #: Telemetry is read-only: every traced quantity is either already
        #: computed by the update or derived by an extra stateless forward
        #: pass, so enabling it cannot change the learning trajectory.
        self.tracer = tracer
        self._last_actor_objective: float | None = None
        rng = np.random.default_rng(config.seed)
        sizes_a = (config.state_dim, *config.hidden, 1)
        sizes_c = (config.state_dim + 1, *config.hidden, 1)
        # Linear actor output clipped to [0, 1] in act(), trained with
        # inverting gradients (Hausknecht & Stone) — a sigmoid head
        # saturates at the box edges and cannot walk back once the critic
        # later learns the peak is interior.
        self.actor = MLP.create(sizes_a, output_activation="linear", rng=rng)
        self.critic = MLP.create(sizes_c, rng=rng)
        self.actor_target = self.actor.clone()
        self.critic_target = self.critic.clone()
        self.actor_opt = Adam(self.actor.parameters(), lr=config.actor_lr)
        self.critic_opt = Adam(self.critic.parameters(), lr=config.critic_lr)
        self.pool = ExperiencePool(config.pool_capacity, seed=config.seed)
        self.noise = TruncatedNormalNoise(
            sigma=config.noise_sigma, decay=config.noise_decay, seed=config.seed
        )
        self.epsilon = config.epsilon
        self._eps_rng = np.random.default_rng(config.seed + 1)
        self._coherent_base: float | None = None
        self.reward_scale: float | None = None
        self.reward_baseline: float | None = None
        self.episodes = 0
        self.critic_losses: list[float] = []

    # ------------------------------------------------------------------
    def act(self, state: np.ndarray, *, explore: bool = True) -> float:
        """Continuous action in [0, 1] for one state."""
        if explore and self._coherent_base is not None:
            a = self._coherent_base + self._eps_rng.normal(
                0.0, self.config.coherent_sigma
            )
            return float(np.clip(a, 0.0, 1.0))
        if explore and self._eps_rng.random() < self.epsilon:
            return float(self._eps_rng.random())
        a = float(np.clip(self.actor.forward(np.atleast_2d(state))[0, 0], 0.0, 1.0))
        if explore:
            a = self.noise.perturb(a)
        return a

    def begin_episode(self) -> None:
        """Decide this episode's exploration mode (coherent or per-layer)."""
        if self._eps_rng.random() < self.config.coherent_episode_prob:
            self._coherent_base = float(self._eps_rng.random())
        else:
            self._coherent_base = None

    def observe_episode(self, transitions: list[Transition]) -> None:
        """Store one episode's transitions, fixing the reward scale lazily."""
        if self.reward_scale is None:
            magnitudes = [abs(t.reward) for t in transitions if t.reward != 0.0]
            self.reward_scale = 1.0 / magnitudes[0] if magnitudes else 1.0
        if transitions:
            scaled = transitions[0].reward * self.reward_scale
            if self.reward_baseline is None:
                self.reward_baseline = scaled
            else:
                d = self.config.baseline_decay
                self.reward_baseline = d * self.reward_baseline + (1 - d) * scaled
        self.pool.extend(transitions)
        self.episodes += 1
        self.noise.end_episode()
        self.epsilon = max(
            self.epsilon * self.config.epsilon_decay, self.config.epsilon_min
        )

    # ------------------------------------------------------------------
    def learn(self) -> float | None:
        """Run the configured number of gradient updates; returns last loss."""
        cfg = self.config
        # Sampling is with replacement, so a pool smaller than the batch
        # size is still usable; only an empty pool (or warmup) blocks.
        if self.episodes <= cfg.warmup_episodes or len(self.pool) == 0:
            return None
        loss = None
        for _ in range(cfg.updates_per_episode):
            loss = self._update_once()
        if loss is not None:
            tracer = self._effective_tracer()
            if tracer.enabled:
                tracer.counter(
                    obs_metrics.CRITIC_LOSS, loss, episode=self.episodes
                )
                if self._last_actor_objective is not None:
                    tracer.counter(
                        obs_metrics.ACTOR_LOSS,
                        self._last_actor_objective,
                        episode=self.episodes,
                    )
        return loss

    def _effective_tracer(self) -> Tracer:
        return self.tracer if self.tracer is not None else current_tracer()

    def _update_once(self) -> float:
        cfg = self.config
        scale = self.reward_scale or 1.0
        states, next_states, actions, rewards, dones = self.pool.sample(
            cfg.batch_size
        )
        rewards = rewards * scale
        if cfg.use_baseline and self.reward_baseline is not None:
            rewards = rewards - self.reward_baseline

        if cfg.bootstrap:
            # ---- classic DDPG: TD target from the target networks.
            next_actions = self.actor_target.forward(next_states)
            q_next = self.critic_target.forward(
                np.concatenate([next_states, next_actions], axis=1)
            )
            target = rewards + cfg.gamma * (1.0 - dones) * q_next
        else:
            # ---- bandit form: the broadcast episode reward *is* the
            # value of every (state, action) pair in the episode.
            target = rewards
        sa = np.concatenate([states, actions], axis=1)
        q = self.critic.forward(sa)
        td_error = q - target
        loss = float(np.mean(td_error**2))
        upstream = 2.0 * td_error / td_error.shape[0]
        grad_w, grad_b, _ = self.critic.backward(sa, upstream)
        self.critic_opt.step(grad_w + grad_b)

        # ---- actor update: ascend Q(s, mu(s)) with inverting gradients.
        mu_raw = self.actor.forward(states)
        mu = np.clip(mu_raw, 0.0, 1.0)
        sa_mu = np.concatenate([states, mu], axis=1)
        if self._effective_tracer().enabled:
            # The actor's objective is not a by-product of the inverting-
            # gradient update, so derive it with one extra stateless
            # forward pass — telemetry only, nothing feeds back.
            self._last_actor_objective = -float(
                np.mean(self.critic.forward(sa_mu))
            )
        ones = np.ones((states.shape[0], 1)) / states.shape[0]
        _, _, dq_dsa = self.critic.backward(sa_mu, ones)
        dq_da = dq_dsa[:, -1:]
        # Scale upward pushes by the headroom to 1 and downward pushes by
        # the headroom to 0, computed on the *raw* (unclipped) output:
        # outside the box the headroom turns negative, actively steering
        # the policy back in.
        headroom = np.where(dq_da > 0, 1.0 - mu_raw, mu_raw)
        dq_da = dq_da * np.clip(headroom, -1.0, 1.0)
        a_grad_w, a_grad_b, _ = self.actor.backward(states, -dq_da)
        self.actor_opt.step(a_grad_w + a_grad_b)

        # ---- soft target updates.
        self.actor_target.soft_update_from(self.actor, cfg.tau)
        self.critic_target.soft_update_from(self.critic, cfg.tau)
        self.critic_losses.append(loss)
        return loss
