"""Multi-model tile sharing (extension beyond the paper's evaluation).

§3.4 notes that tiles released by the tile-shared scheme "become available
for other layers in the DNN model *or other models*."  This module takes
that sentence to its conclusion: co-locate several DNNs on one
accelerator, letting Algorithm 1 pack same-shape tiles *across* model
boundaries.

Layer indices are globalised (each model's layers are re-indexed into one
namespace) so the standard :class:`Allocation` machinery and its
invariants apply unchanged; the result records which global index range
belongs to which model, plus the tile savings relative to giving every
model its own accelerator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ...arch.config import CrossbarShape
from ...arch.mapping import LayerMapping, map_layer
from ...models.graph import Network
from .tile_based import allocate_tile_based
from .tile_shared import apply_tile_sharing
from .tiles import Allocation


@dataclass(frozen=True)
class ModelSlice:
    """One co-located model's global layer-index range.

    With weight replication the range spans all copies: ``replication``
    consecutive blocks of ``num_layers`` global indices each.
    """

    name: str
    start: int  #: first global layer index (inclusive)
    stop: int   #: one past the last global layer index
    replication: int = 1  #: weight copies packed for this model

    def owns(self, global_index: int) -> bool:
        return self.start <= global_index < self.stop


@dataclass(frozen=True)
class MultiModelAllocation:
    """Several networks packed onto one accelerator."""

    allocation: Allocation
    slices: tuple[ModelSlice, ...]
    #: occupied tiles if each model were allocated separately (same scheme)
    separate_tiles: int

    @property
    def occupied_tiles(self) -> int:
        return self.allocation.occupied_tiles

    @property
    def tiles_saved(self) -> int:
        """Tiles saved by cross-model sharing vs separate accelerators."""
        return self.separate_tiles - self.occupied_tiles

    @property
    def utilization(self) -> float:
        return self.allocation.utilization

    def shared_tiles(self) -> tuple:
        """Tiles hosting layers from more than one model."""
        out = []
        for tile in self.allocation.tiles:
            owners = {
                s.name for idx in tile.occupants for s in self.slices if s.owns(idx)
            }
            if len(owners) > 1:
                out.append(tile)
        return tuple(out)

    def model_tiles(self, name: str) -> int:
        """Tiles holding at least one crossbar of the named model."""
        sl = next(s for s in self.slices if s.name == name)
        return sum(
            1
            for tile in self.allocation.tiles
            if any(sl.owns(idx) for idx in tile.occupants)
        )


def allocate_multi_network(
    workloads: Sequence[tuple[Network, Sequence[CrossbarShape]]],
    tile_capacity: int,
    *,
    tile_shared: bool = True,
    replication: Sequence[int] | None = None,
) -> MultiModelAllocation:
    """Map several (network, strategy) pairs onto one accelerator.

    Each model keeps its own per-layer crossbar strategy; the allocator
    treats the concatenation as one big layer list, so Algorithm 1 can
    merge sparsely-filled tiles across models (it only ever merges tiles
    of identical crossbar geometry, as always).

    ``replication[m]`` packs that many full weight copies of model ``m``
    (PipeLayer-style duplication, see :mod:`repro.sim.pipeline`); each
    copy gets its own global layer-index block so the plan invariants
    hold unchanged, and the model's :class:`ModelSlice` spans all copies.
    The serving layer's re-allocation policy uses this to re-pack tiles
    when a tenant needs more pipeline bandwidth.
    """
    if not workloads:
        raise ValueError("need at least one workload")
    if replication is None:
        replication = [1] * len(workloads)
    if len(replication) != len(workloads):
        raise ValueError("replication length must equal workload count")
    if any(r < 1 for r in replication):
        raise ValueError("replication factors must be >= 1")
    mappings: list[LayerMapping] = []
    slices: list[ModelSlice] = []
    offset = 0
    separate = 0
    for (network, strategy), reps in zip(workloads, replication):
        strategy = tuple(strategy)
        if len(strategy) != network.num_layers:
            raise ValueError(
                f"{network.name}: strategy length {len(strategy)} != "
                f"{network.num_layers} layers"
            )
        model_mappings = [
            map_layer(
                layer.with_index(offset + copy * network.num_layers + i),
                shape,
            )
            for copy in range(reps)
            for i, (layer, shape) in enumerate(zip(network.layers, strategy))
        ]
        mappings.extend(model_mappings)
        slices.append(
            ModelSlice(
                network.name,
                offset,
                offset + reps * network.num_layers,
                replication=reps,
            )
        )
        offset += reps * network.num_layers
        solo = allocate_tile_based(model_mappings, tile_capacity)
        if tile_shared:
            solo = apply_tile_sharing(solo)
        separate += solo.occupied_tiles

    combined = allocate_tile_based(mappings, tile_capacity)
    if tile_shared:
        combined = apply_tile_sharing(combined)
    return MultiModelAllocation(
        allocation=combined,
        slices=tuple(slices),
        separate_tiles=separate,
    )
