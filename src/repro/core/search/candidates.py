"""Crossbar candidate-set construction (§3.3, §4.3, §4.4).

The ten shapes in play are the five squares (SXB: 32..512, powers of two)
and the five rectangles (RXB: heights are multiples of 9 — 36x32, 72x64,
144x128, 288x256, 576x512).  §3.3's default hybrid set for AutoHet is
``32x32, 36x32, 72x64, 288x256, 576x512`` (one SXB + four RXBs).

The sensitivity study (§4.4) varies (a) the SXB:RXB ratio at a fixed set
size of five, and (b) the total number of candidates (2, 4, 8); helpers
for both live here.
"""

from __future__ import annotations

from ...arch.config import (
    DEFAULT_CANDIDATES,
    RECTANGLE_CANDIDATES,
    SQUARE_CANDIDATES,
    CrossbarShape,
)


def hybrid_candidates() -> tuple[CrossbarShape, ...]:
    """The §3.3 default: 32x32, 36x32, 72x64, 288x256, 576x512."""
    return DEFAULT_CANDIDATES


def square_candidates() -> tuple[CrossbarShape, ...]:
    """The five homogeneous baseline squares."""
    return SQUARE_CANDIDATES


def rectangle_candidates() -> tuple[CrossbarShape, ...]:
    """The five §4.3 rectangles (heights are multiples of 9)."""
    return RECTANGLE_CANDIDATES


def ratio_candidates(num_square: int, num_rect: int) -> tuple[CrossbarShape, ...]:
    """An ``aSbR`` candidate set for the Fig. 11(a) sweep.

    Picks the ``num_square`` *largest* squares and ``num_rect`` largest
    rectangles from the ten §4.3 shapes — large shapes are the energy-
    relevant end of the spectrum, and keeping selection deterministic
    makes the sweep reproducible.
    """
    if num_square < 0 or num_rect < 0 or num_square + num_rect == 0:
        raise ValueError("need a positive total number of candidates")
    if num_square > len(SQUARE_CANDIDATES) or num_rect > len(RECTANGLE_CANDIDATES):
        raise ValueError("not enough shapes of the requested kind")
    squares = SQUARE_CANDIDATES[len(SQUARE_CANDIDATES) - num_square :]
    rects = RECTANGLE_CANDIDATES[len(RECTANGLE_CANDIDATES) - num_rect :]
    return tuple(sorted(squares + rects, key=lambda s: (s.cells, s.rows)))


def sized_candidates(count: int) -> tuple[CrossbarShape, ...]:
    """A candidate set of the requested size for the Fig. 11(b) sweep.

    Alternates rectangles and squares from large to small so every set
    size mixes both families, then sorts ascending by cell count.
    """
    if count <= 0:
        raise ValueError("count must be positive")
    interleaved: list[CrossbarShape] = []
    for rect, square in zip(reversed(RECTANGLE_CANDIDATES), reversed(SQUARE_CANDIDATES)):
        interleaved.extend((rect, square))
    if count > len(interleaved):
        raise ValueError(f"at most {len(interleaved)} candidates available")
    chosen = interleaved[:count]
    return tuple(sorted(chosen, key=lambda s: (s.cells, s.rows)))


def all_shapes() -> tuple[CrossbarShape, ...]:
    """All ten §4.3 shapes, ascending by cell count."""
    return tuple(
        sorted(SQUARE_CANDIDATES + RECTANGLE_CANDIDATES, key=lambda s: (s.cells, s.rows))
    )
