"""The physical crossbar array: binary memristor cells, analog MVM.

A crossbar stores one *bit-slice* of the weights: each cell is a 1-bit
conductance (the §4.1 configuration).  Driving binary wordline voltages
produces per-bitline currents equal to the count of conducting cells on
active rows — an exact integer dot product in the unit-current model,
which is what makes the whole engine bit-exact and property-testable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .config import CrossbarShape


@dataclass  # stateful: holds programmed conductances between MVMs
class Crossbar:
    """One physical ReRAM array of shape ``rows x cols``."""

    shape: CrossbarShape
    _cells: np.ndarray = field(init=False, repr=False)
    _used: np.ndarray = field(init=False, repr=False)
    evaluations: int = 0

    def __post_init__(self) -> None:
        self._cells = np.zeros((self.shape.rows, self.shape.cols), dtype=np.int8)
        self._used = np.zeros((self.shape.rows, self.shape.cols), dtype=bool)

    # ------------------------------------------------------------------
    @property
    def cells(self) -> np.ndarray:
        """Read-only view of the conductance matrix."""
        view = self._cells.view()
        view.flags.writeable = False
        return view

    @property
    def used_mask(self) -> np.ndarray:
        """Boolean mask of cells programmed with weight data."""
        view = self._used.view()
        view.flags.writeable = False
        return view

    @property
    def used_cells(self) -> int:
        return int(self._used.sum())

    @property
    def used_rows(self) -> int:
        return int(self._used.any(axis=1).sum())

    @property
    def used_cols(self) -> int:
        return int(self._used.any(axis=0).sum())

    @property
    def utilization(self) -> float:
        return self.used_cells / self.shape.cells

    # ------------------------------------------------------------------
    def program(self, row0: int, col: int, bits: np.ndarray) -> None:
        """Write a binary column segment starting at ``(row0, col)``."""
        bits = np.asarray(bits, dtype=np.int8)
        if bits.ndim != 1:
            raise ValueError("program() takes a 1-D bit vector")
        if not np.isin(bits, (0, 1)).all():
            raise ValueError("cells store single bits; values must be 0/1")
        r1 = row0 + bits.size
        if row0 < 0 or r1 > self.shape.rows or not (0 <= col < self.shape.cols):
            raise IndexError(
                f"segment rows [{row0}, {r1}) col {col} outside {self.shape}"
            )
        if self._used[row0:r1, col].any():
            raise ValueError(
                f"cells [{row0}, {r1}) x {col} already programmed"
            )
        self._cells[row0:r1, col] = bits
        self._used[row0:r1, col] = True

    def program_block(self, row0: int, col0: int, bits: np.ndarray) -> None:
        """Write a binary 2-D block with its top-left corner at (row0, col0)."""
        bits = np.asarray(bits, dtype=np.int8)
        for j in range(bits.shape[1]):
            self.program(row0, col0 + j, bits[:, j])

    def mvm(self, voltages: np.ndarray) -> np.ndarray:
        """Analog evaluation: bitline currents for one wordline drive.

        ``voltages`` has length <= rows (zero-padded); the return value is
        the exact integer vector ``voltages @ cells``.
        """
        v = np.asarray(voltages, dtype=np.int64)
        if v.ndim != 1 or v.size > self.shape.rows:
            raise ValueError(
                f"voltage vector of {v.size} does not fit {self.shape.rows} rows"
            )
        if v.size < self.shape.rows:
            v = np.pad(v, (0, self.shape.rows - v.size))
        self.evaluations += 1
        return v @ self._cells.astype(np.int64)

    def erase(self) -> None:
        """Reset all cells (weight reload between layers/models)."""
        self._cells[:] = 0
        self._used[:] = False
