"""Smoke tests: every example script runs to completion.

Each example is executed in-process (imported as a module and its
``main()`` called) with reduced workloads where the script supports it.
These are the same entry points a user would run, so they double as
end-to-end API checks.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, argv: list[str] | None = None):
    path = EXAMPLES / name
    assert path.exists(), f"missing example {name}"
    old_argv = sys.argv
    sys.argv = [str(path)] + (argv or [])
    try:
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = old_argv


class TestExamples:
    def test_quickstart(self, capsys):
        run_example("quickstart.py")
        out = capsys.readouterr().out
        assert "AutoHet vs best homogeneous RUE" in out

    def test_cost_model_tour(self, capsys):
        run_example("cost_model_tour.py")
        out = capsys.readouterr().out
        assert "adc" in out and "Tile sharing" in out

    def test_mapping_demo(self, capsys):
        run_example("mapping_demo.py")
        out = capsys.readouterr().out
        assert "10.5%" in out
        assert "100.0%" in out
        assert "tile-shared" in out

    def test_functional_inference(self, capsys):
        run_example("functional_inference.py")
        out = capsys.readouterr().out
        assert "quantization error" in out
        assert "Stuck-at" in out

    def test_vgg16_search_reduced(self, capsys):
        run_example("vgg16_search.py", ["15"])
        out = capsys.readouterr().out
        assert "Ablation" in out
        assert "Per-layer strategy" in out

    def test_resnet_search_reduced(self, capsys):
        run_example("resnet_search.py", ["10"])
        out = capsys.readouterr().out
        assert "RUE speedup" in out
        assert "conv 1x1" in out

    @pytest.mark.slow
    def test_transformer_search(self, capsys):
        run_example("transformer_search.py")
        out = capsys.readouterr().out
        assert "Chosen shapes by projection kind" in out

    def test_multi_tenant_reduced(self, capsys):
        run_example("multi_tenant.py", ["8"])
        out = capsys.readouterr().out
        assert "Co-locating" in out
        assert "Serving the co-located pair online" in out
        # The reference scenario's traffic inversion must trigger the
        # drift re-pack on the way through.
        assert "re-packed to replication" in out
        assert "SLO" in out

    @pytest.mark.slow
    def test_pipeline_throughput(self, capsys):
        run_example("pipeline_throughput.py")
        out = capsys.readouterr().out
        assert "Replication sweep" in out

    def test_serve_cli_smoke(self, capsys, tmp_path):
        """The ``repro serve`` entry point the example points users at:
        runs the builtin scenario, exits 0, writes a valid report."""
        import json

        from repro.cli import main
        from repro.serve import validate_report

        out_path = tmp_path / "report.json"
        assert main(["serve", "two-tenant", "--out", str(out_path)]) == 0
        report = json.loads(out_path.read_text())
        assert validate_report(report) == []
        out = capsys.readouterr().out
        assert "per-tenant SLO report" in out
        assert "re-allocation" in out
