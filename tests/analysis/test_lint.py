"""Tests for the project AST lint rules (LNT001-LNT008)."""

from pathlib import Path

from repro.analysis.lint import lint_source, lint_tree


def rule_ids(diags):
    return sorted({d.rule_id for d in diags})


class TestNoPrint:
    def test_print_in_library_code_flagged(self):
        assert rule_ids(lint_source("print('hi')\n", "sim/energy2.py")) == ["LNT001"]

    def test_print_allowed_in_cli_and_bench(self):
        assert lint_source("print('hi')\n", "cli.py") == []
        assert lint_source("print('hi')\n", "bench/reporting.py") == []
        assert lint_source("print('hi')\n", "__main__.py") == []

    def test_print_in_docstring_not_flagged(self):
        src = '"""Example::\n\n    print(x)\n"""\n'
        assert lint_source(src, "models/zoo.py") == []

    def test_location_carries_line_number(self):
        diags = lint_source("x = 1\nprint(x)\n", "core/foo.py")
        assert diags[0].location == "core/foo.py:2"


class TestMutableDefaults:
    def test_list_default_flagged(self):
        assert rule_ids(lint_source("def f(x=[]):\n    pass\n", "m.py")) == ["LNT002"]

    def test_dict_call_default_flagged(self):
        assert rule_ids(
            lint_source("def f(*, x=dict()):\n    pass\n", "m.py")
        ) == ["LNT002"]

    def test_none_default_ok(self):
        assert lint_source("def f(x=None, y=()):\n    pass\n", "m.py") == []


class TestFrozenDataclassDiscipline:
    def test_unfrozen_dataclass_in_arch_flagged(self):
        src = "from dataclasses import dataclass\n@dataclass\nclass C:\n    x: int\n"
        assert rule_ids(lint_source(src, "arch/widget.py")) == ["LNT003"]

    def test_frozen_dataclass_ok(self):
        src = (
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=True)\nclass C:\n    x: int\n"
        )
        assert lint_source(src, "arch/widget.py") == []

    def test_stateful_marker_ok(self):
        src = (
            "from dataclasses import dataclass\n"
            "@dataclass  # stateful: accumulates activity counters\n"
            "class C:\n    x: int\n"
        )
        assert lint_source(src, "arch/widget.py") == []

    def test_rule_scoped_to_arch(self):
        src = "from dataclasses import dataclass\n@dataclass\nclass C:\n    x: int\n"
        assert lint_source(src, "core/rl/widget.py") == []


class TestFloatEquality:
    def test_float_eq_in_energy_module_flagged(self):
        assert rule_ids(
            lint_source("ok = x == 0.0\n", "sim/energy.py")
        ) == ["LNT004"]

    def test_float_ne_flagged(self):
        assert rule_ids(
            lint_source("ok = 1.5 != y\n", "sim/latency.py")
        ) == ["LNT004"]

    def test_int_eq_ok(self):
        assert lint_source("ok = x == 0\n", "sim/energy.py") == []

    def test_float_eq_outside_cost_modules_ok(self):
        assert lint_source("ok = x == 0.0\n", "sim/variation.py") == []

    def test_inequalities_ok(self):
        assert lint_source("ok = x >= 0.0\n", "sim/energy.py") == []


class TestNoAssertInAllocation:
    def test_assert_in_allocation_flagged(self):
        assert rule_ids(
            lint_source("assert x > 0\n", "core/allocation/tiles.py")
        ) == ["LNT005"]

    def test_assert_elsewhere_ok(self):
        assert lint_source("assert x > 0\n", "core/rl/ddpg.py") == []


class TestNoCachedInstanceMethods:
    def test_lru_cache_on_instance_method_flagged(self):
        src = (
            "from functools import lru_cache\n"
            "class C:\n"
            "    @lru_cache(maxsize=8)\n"
            "    def m(self, x):\n"
            "        return x\n"
        )
        diags = lint_source(src, "sim/thing.py")
        assert rule_ids(diags) == ["LNT006"]
        assert "C.m" in diags[0].message

    def test_functools_qualified_cache_flagged(self):
        src = (
            "import functools\n"
            "class C:\n"
            "    @functools.cache\n"
            "    def m(self, x):\n"
            "        return x\n"
        )
        assert rule_ids(lint_source(src, "m.py")) == ["LNT006"]

    def test_bare_lru_cache_decorator_flagged(self):
        src = (
            "from functools import lru_cache\n"
            "class C:\n"
            "    @lru_cache\n"
            "    def m(self, x):\n"
            "        return x\n"
        )
        assert rule_ids(lint_source(src, "m.py")) == ["LNT006"]

    def test_staticmethod_and_free_function_ok(self):
        src = (
            "from functools import lru_cache\n"
            "@lru_cache\n"
            "def free(x):\n"
            "    return x\n"
            "class C:\n"
            "    @staticmethod\n"
            "    @lru_cache\n"
            "    def s(x):\n"
            "        return x\n"
        )
        assert lint_source(src, "m.py") == []

    def test_cached_property_not_flagged(self):
        src = (
            "from functools import cached_property\n"
            "class C:\n"
            "    @cached_property\n"
            "    def p(self):\n"
            "        return 1\n"
        )
        assert lint_source(src, "m.py") == []

    def test_allowlist_suppresses(self, monkeypatch):
        from repro.analysis import lint as lint_mod

        src = (
            "from functools import lru_cache\n"
            "class C:\n"
            "    @lru_cache\n"
            "    def m(self, x):\n"
            "        return x\n"
        )
        monkeypatch.setattr(
            lint_mod, "CACHED_METHOD_ALLOWLIST", frozenset({"m.py::C.m"})
        )
        assert lint_source(src, "m.py") == []


class TestLoggingBridge:
    def test_qualified_getlogger_flagged(self):
        src = "import logging\nlog = logging.getLogger(__name__)\n"
        diags = lint_source(src, "core/autohet2.py")
        assert rule_ids(diags) == ["LNT007"]
        assert "getLogger" in diags[0].message

    def test_qualified_basicconfig_flagged(self):
        src = "import logging\nlogging.basicConfig(level=10)\n"
        assert rule_ids(lint_source(src, "cli2.py")) == ["LNT007"]

    def test_from_import_call_flagged(self):
        src = "from logging import getLogger\nlog = getLogger('x')\n"
        assert rule_ids(lint_source(src, "sim/thing.py")) == ["LNT007"]

    def test_aliased_from_import_call_flagged(self):
        src = "from logging import getLogger as gl\nlog = gl('x')\n"
        assert rule_ids(lint_source(src, "sim/thing.py")) == ["LNT007"]

    def test_obs_bridge_itself_allowed(self):
        src = "import logging\nlog = logging.getLogger('repro')\n"
        assert lint_source(src, "obs/log.py") == []

    def test_logger_method_calls_ok(self):
        """Using a logger is fine everywhere — only *acquiring* one is fenced."""
        src = (
            "from repro.obs.log import get_logger\n"
            "log = get_logger('sim')\n"
            "log.info('hello %s', 'world')\n"
        )
        assert lint_source(src, "sim/thing.py") == []

    def test_unrelated_getlogger_name_ok(self):
        """A same-named call on a non-logging object is not flagged."""
        src = "factory.getLogger('x')\n"
        assert lint_source(src, "sim/thing.py") == []


class TestNoLiteralCastsInKernelLoops:
    LOOP_CAST = (
        "import numpy as np\n"
        "def score(rows):\n"
        "    out = []\n"
        "    for r in rows:\n"
        "        out.append(float(r))\n"
        "    return out\n"
    )

    def test_float_cast_in_kernel_loop_flagged(self):
        diags = lint_source(self.LOOP_CAST, "sim/kernels.py")
        assert rule_ids(diags) == ["LNT008"]
        assert "score()" in diags[0].message

    def test_np_dtype_cast_in_comprehension_flagged(self):
        src = (
            "import numpy as np\n"
            "def score(rows):\n"
            "    return [np.float32(r) for r in rows]\n"
        )
        assert rule_ids(lint_source(src, "sim/kernels.py")) == ["LNT008"]

    def test_cast_outside_loop_ok(self):
        src = (
            "import numpy as np\n"
            "def score(rows):\n"
            "    arr = np.asarray(rows).astype(np.float64)\n"
            "    return arr * float(arr[0])\n"
        )
        assert lint_source(src, "sim/kernels.py") == []

    def test_rule_is_scoped_to_the_kernel_module(self):
        assert lint_source(self.LOOP_CAST, "sim/energy.py") == []

    def test_allowlist_is_the_escape_hatch(self, monkeypatch):
        from repro.analysis import lint as lint_mod

        monkeypatch.setattr(
            lint_mod,
            "KERNEL_CAST_ALLOWLIST",
            frozenset({"sim/kernels.py::score"}),
        )
        assert lint_source(self.LOOP_CAST, "sim/kernels.py") == []


class TestTree:
    def test_repo_source_tree_is_clean(self):
        """The shipped package passes its own linter — CI enforces this."""
        assert lint_tree() == []

    def test_syntax_error_reported_not_raised(self):
        diags = lint_source("def broken(:\n", "m.py")
        assert len(diags) == 1 and "parse" in diags[0].message

    def test_lint_tree_accepts_explicit_root(self, tmp_path: Path):
        (tmp_path / "mod.py").write_text("print('x')\n")
        assert rule_ids(lint_tree(tmp_path)) == ["LNT001"]
