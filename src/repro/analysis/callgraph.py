"""AST module index and name resolution for interprocedural analysis.

The cache-safety pass (:mod:`repro.analysis.dataflow`) needs to follow a
call from ``Simulator.evaluate`` into ``repro.sim.energy`` and back: that
requires knowing, for every module, which names are functions, classes,
imports, module constants, or aliases — and being able to resolve a
dotted reference (``EvaluationCache.make_key``, ``math.ceil``) to its
definition *without importing anything*.  This module builds that index
from source text alone:

* :class:`ModuleIndex` — parse a package tree (or an in-memory mapping of
  sources, for tests) into :class:`ModuleInfo` records.
* :class:`ModuleInfo` / :class:`ClassInfo` / :class:`FunctionInfo` — the
  per-module symbol tables: functions, classes (with their dataclass
  fields, properties, and methods), imports (absolute and relative),
  ``cached_f = lru_cache(...)(f)``-style aliases, type aliases, and
  module constants.
* :meth:`ModuleIndex.resolve` — chase a dotted name through import
  chains and re-exports to its defining entity, or to an
  :class:`External` marker for names outside the index (``math``,
  ``random.random``) — the hook the sink rules (CAC003) key on.

Everything here is pure bookkeeping; the actual abstract interpretation
lives in :mod:`repro.analysis.dataflow`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Union


@dataclass(eq=False)
class FunctionInfo:
    """One function, method, or lambda definition."""

    module: "ModuleInfo"
    name: str       #: simple name, e.g. ``"evaluate"`` (``"<lambda>"`` for lambdas)
    qualname: str   #: e.g. ``"repro.sim.simulator:Simulator.evaluate"``
    node: Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda]
    cls: "ClassInfo | None" = None
    is_property: bool = False
    is_staticmethod: bool = False
    is_classmethod: bool = False

    @property
    def lineno(self) -> int:
        return self.node.lineno


@dataclass(eq=False)
class ClassInfo:
    """One class definition and its member tables."""

    module: "ModuleInfo"
    name: str
    qualname: str
    node: ast.ClassDef
    #: annotated fields (``name: ann [= default]`` in the class body)
    fields: dict[str, ast.expr] = field(default_factory=dict)
    #: plain class-level assignments (enum members, class constants)
    class_attrs: set[str] = field(default_factory=set)
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    properties: dict[str, FunctionInfo] = field(default_factory=dict)
    base_names: tuple[str, ...] = ()

    @property
    def is_enum(self) -> bool:
        return any("Enum" in b or "Flag" in b for b in self.base_names)


@dataclass(frozen=True)
class ImportedName:
    """``from <module> import <name> as <alias>`` (name may be a submodule)."""

    module: str
    name: str


@dataclass(frozen=True)
class ImportedModule:
    """``import <module> [as <alias>]``."""

    module: str


@dataclass(frozen=True)
class External:
    """A dotted name defined outside the indexed package (stdlib, deps)."""

    qualname: str


@dataclass(eq=False)
class TypeAlias:
    """``Name = tuple[X, ...]``-style module-level type alias."""

    module: "ModuleInfo"
    name: str
    expr: ast.expr


@dataclass(eq=False)
class ModuleConstant:
    """A module-level value binding that is neither def, class, nor alias."""

    module: "ModuleInfo"
    name: str
    value: ast.expr | None
    annotation: ast.expr | None


#: What a name can resolve to.
Entity = Union[
    FunctionInfo, ClassInfo, "ModuleInfo", External, TypeAlias, ModuleConstant
]


@dataclass(eq=False)
class ModuleInfo:
    """The symbol table of one parsed module."""

    name: str
    is_package: bool
    node: ast.Module
    #: the raw source text — kept so comment-borne contracts (the
    #: ``# guarded-by:`` / ``# holds-lock:`` markers the concurrency
    #: analyzer reads) can be recovered; comments never reach the AST
    source: str = ""
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    imports: dict[str, Union[ImportedName, ImportedModule]] = field(
        default_factory=dict
    )
    #: ``cached_f = lru_cache(...)(f)`` / ``g = f`` aliases (local names)
    aliases: dict[str, str] = field(default_factory=dict)
    type_aliases: dict[str, TypeAlias] = field(default_factory=dict)
    constants: dict[str, ModuleConstant] = field(default_factory=dict)

    @property
    def package(self) -> str:
        """The package this module's relative imports resolve against."""
        if self.is_package:
            return self.name
        return self.name.rpartition(".")[0]


def _base_name(expr: ast.expr) -> str:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Subscript):
        return _base_name(expr.value)
    return ""


def _decorator_name(dec: ast.expr) -> str:
    if isinstance(dec, ast.Call):
        return _decorator_name(dec.func)
    if isinstance(dec, ast.Attribute):
        return dec.attr
    if isinstance(dec, ast.Name):
        return dec.id
    return ""


def _index_class(module: ModuleInfo, node: ast.ClassDef) -> ClassInfo:
    info = ClassInfo(
        module=module,
        name=node.name,
        qualname=f"{module.name}:{node.name}",
        node=node,
        base_names=tuple(_base_name(b) for b in node.bases),
    )
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            info.fields[stmt.target.id] = stmt.annotation
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    info.class_attrs.add(target.id)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            decorators = {_decorator_name(d) for d in stmt.decorator_list}
            finfo = FunctionInfo(
                module=module,
                name=stmt.name,
                qualname=f"{module.name}:{node.name}.{stmt.name}",
                node=stmt,
                cls=info,
                is_property="property" in decorators
                or "cached_property" in decorators,
                is_staticmethod="staticmethod" in decorators,
                is_classmethod="classmethod" in decorators,
            )
            if finfo.is_property:
                info.properties[stmt.name] = finfo
            else:
                info.methods[stmt.name] = finfo
    return info


def _resolve_relative(module: ModuleInfo, node: ast.ImportFrom) -> str:
    """Absolute module path an ``ImportFrom`` refers to."""
    if node.level == 0:
        return node.module or ""
    parts = module.package.split(".") if module.package else []
    # level=1 is the current package; each extra level strips one parent.
    keep = len(parts) - (node.level - 1)
    base = parts[: max(keep, 0)]
    if node.module:
        base.append(node.module)
    return ".".join(base)


def _index_module(name: str, source: str, is_package: bool) -> ModuleInfo:
    tree = ast.parse(source, filename=name)
    module = ModuleInfo(name=name, is_package=is_package, node=tree, source=source)

    # Imports anywhere in the module (incl. inside function bodies — lazy
    # imports are common in this tree) feed the module-wide alias table.
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.partition(".")[0]
                target = alias.name if alias.asname else alias.name.partition(".")[0]
                module.imports.setdefault(bound, ImportedModule(target))
        elif isinstance(node, ast.ImportFrom):
            target_mod = _resolve_relative(module, node)
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                module.imports.setdefault(
                    bound, ImportedName(target_mod, alias.name)
                )

    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            module.functions[stmt.name] = FunctionInfo(
                module=module,
                name=stmt.name,
                qualname=f"{name}:{stmt.name}",
                node=stmt,
            )
        elif isinstance(stmt, ast.ClassDef):
            module.classes[stmt.name] = _index_class(module, stmt)
        elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if not isinstance(target, ast.Name):
                continue
            value = stmt.value
            if isinstance(value, ast.Name):
                # plain re-binding: ``g = f``
                module.aliases[target.id] = value.id
            elif (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Call)
                and len(value.args) == 1
                and isinstance(value.args[0], ast.Name)
            ):
                # decorator-as-call: ``cached_f = lru_cache(maxsize=N)(f)``
                module.aliases[target.id] = value.args[0].id
            elif isinstance(value, ast.Subscript):
                # ``Strategy = tuple[CrossbarShape, ...]``
                module.type_aliases[target.id] = TypeAlias(
                    module=module, name=target.id, expr=value
                )
            else:
                module.constants[target.id] = ModuleConstant(
                    module=module, name=target.id, value=value, annotation=None
                )
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            module.constants[stmt.target.id] = ModuleConstant(
                module=module,
                name=stmt.target.id,
                value=stmt.value,
                annotation=stmt.annotation,
            )
    return module


class ModuleIndex:
    """All parsed modules of one package, with cross-module resolution."""

    def __init__(self, modules: Mapping[str, ModuleInfo]) -> None:
        self.modules: dict[str, ModuleInfo] = dict(modules)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_package(cls, root: Path, package: str) -> "ModuleIndex":
        """Index every ``*.py`` under ``root`` as package ``package``."""
        modules: dict[str, ModuleInfo] = {}
        for path in sorted(root.rglob("*.py")):
            rel = path.relative_to(root)
            parts = list(rel.parts)
            is_package = parts[-1] == "__init__.py"
            if is_package:
                parts = parts[:-1]
            else:
                parts[-1] = parts[-1][:-3]
            name = ".".join([package, *parts]) if parts else package
            modules[name] = _index_module(
                name, path.read_text(), is_package or name == package
            )
        return cls(modules)

    @classmethod
    def from_sources(cls, sources: Mapping[str, str]) -> "ModuleIndex":
        """Index an in-memory ``{dotted_name: source}`` mapping (tests).

        A name is treated as a package when any other indexed name nests
        under it (``pkg`` is a package if ``pkg.mod`` exists).
        """
        modules: dict[str, ModuleInfo] = {}
        names = set(sources)
        for name, source in sources.items():
            is_package = any(other.startswith(name + ".") for other in names)
            modules[name] = _index_module(name, source, is_package)
        return cls(modules)

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def resolve(
        self, module: ModuleInfo, name: str, _seen: frozenset[str] = frozenset()
    ) -> Entity | None:
        """Resolve a simple name in a module's top-level scope.

        Chases imports and local aliases across modules; names that leave
        the index become :class:`External`.  Returns ``None`` for names
        with no module-level binding (builtins, true locals).
        """
        guard = f"{module.name}:{name}"
        if guard in _seen:
            return None
        seen = _seen | {guard}

        if name in module.functions:
            return module.functions[name]
        if name in module.classes:
            return module.classes[name]
        if name in module.aliases:
            return self.resolve(module, module.aliases[name], seen)
        if name in module.type_aliases:
            return module.type_aliases[name]
        if name in module.constants:
            return module.constants[name]
        if name in module.imports:
            return self._resolve_import(module.imports[name], seen)
        # ``repro.sim`` package implicitly exposes its submodules.
        child = f"{module.name}.{name}"
        if module.is_package and child in self.modules:
            return self.modules[child]
        return None

    def _resolve_import(
        self, imp: Union[ImportedName, ImportedModule], seen: frozenset[str]
    ) -> Entity:
        if isinstance(imp, ImportedModule):
            return self.modules.get(imp.module) or External(imp.module)
        submodule = f"{imp.module}.{imp.name}"
        if submodule in self.modules:
            return self.modules[submodule]
        target = self.modules.get(imp.module)
        if target is None:
            return External(submodule)
        resolved = self.resolve(target, imp.name, seen)
        return resolved if resolved is not None else External(submodule)

    def resolve_qualname(self, qualname: str) -> FunctionInfo | None:
        """Resolve ``"module:func"`` / ``"module:Class.method"`` to a function."""
        module_name, _, rest = qualname.partition(":")
        module = self.modules.get(module_name)
        if module is None or not rest:
            return None
        cls_name, _, method = rest.partition(".")
        if method:
            cls = module.classes.get(cls_name)
            if cls is None:
                return None
            return cls.methods.get(method) or cls.properties.get(method)
        return module.functions.get(rest)

    def find_class(self, simple_name: str) -> ClassInfo | None:
        """First class with this simple name anywhere in the index."""
        for name in sorted(self.modules):
            cls = self.modules[name].classes.get(simple_name)
            if cls is not None:
                return cls
        return None
