"""Extension: pipelined batch throughput under a crossbar budget.

The paper reports single-image latency (Table 5); this extension asks the
deployment question: with a fixed logical-crossbar budget, how many
images per second does each configuration sustain in a layer pipeline
with greedy weight replication (PipeLayer-style)?

Expected shape: AutoHet's higher utilization leaves more crossbars free
for replication under the same budget, so it matches or beats the
homogeneous baselines on steady-state throughput as well.
"""

from conftest import run_once

from repro.arch.config import DEFAULT_CANDIDATES, SQUARE_CANDIDATES
from repro.bench import default_rounds
from repro.bench.reporting import print_table
from repro.core.autohet import autohet_search
from repro.core.search import best_homogeneous, homogeneous_strategy
from repro.models import vgg16
from repro.sim import Simulator
from repro.sim.pipeline import pipeline_report, replication_crossbar_cost
from repro.sim.replication import balance_replication


def run_throughput_comparison(rounds=None, seed=0, budget=2048):
    rounds = rounds if rounds is not None else default_rounds()
    net = vgg16()
    sim = Simulator()
    shape, _ = best_homogeneous(net, SQUARE_CANDIDATES, sim)
    homo = homogeneous_strategy(net, shape)
    auto = autohet_search(
        net, DEFAULT_CANDIDATES, rounds=rounds, simulator=sim, seed=seed
    ).best_strategy

    out = {}
    for label, strategy in ((f"Best-Homo ({shape})", homo), ("AutoHet", auto)):
        base_cost = replication_crossbar_cost(
            net, strategy, [1] * net.num_layers
        )
        unreplicated = pipeline_report(net, strategy)
        reps, balanced = balance_replication(
            net, strategy, crossbar_budget=max(budget, base_cost)
        )
        out[label] = {
            "base_crossbars": base_cost,
            "unreplicated_img_s": unreplicated.throughput_img_per_s,
            "balanced_img_s": balanced.throughput_img_per_s,
            "max_replica": max(reps),
        }
    return out


def test_pipeline_throughput(benchmark):
    data = run_once(benchmark, run_throughput_comparison)
    print_table(
        ["configuration", "base XBs", "img/s (no repl.)",
         "img/s (budget 2048)", "max replicas"],
        [
            (label, row["base_crossbars"], row["unreplicated_img_s"],
             row["balanced_img_s"], row["max_replica"])
            for label, row in data.items()
        ],
        title="Extension — pipelined throughput under a 2048-crossbar budget (VGG16)",
    )
    labels = list(data)
    homo, auto = data[labels[0]], data[labels[1]]
    # AutoHet's leaner base mapping leaves headroom for replication.
    assert auto["base_crossbars"] <= homo["base_crossbars"] * 1.5
    assert auto["balanced_img_s"] >= 0.9 * homo["balanced_img_s"]
    # Replication always helps under a generous budget.
    for row in data.values():
        assert row["balanced_img_s"] >= row["unreplicated_img_s"]
