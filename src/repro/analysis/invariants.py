"""Declarative invariant rules and structured diagnostics.

AutoHet's correctness rests on structural invariants the paper states but
a simulator only discovers at runtime: Eq. 4 utilization must stay in
(0, 1], RXB heights must be multiples of 9 to match ``Cin * k^2`` row
footprints (§3.3), and Algorithm 1's tile-shared remapping must never
double-book a crossbar or overfill a tile (§3.4).  This module is the
*vocabulary* for enforcing them statically:

* :class:`Rule` — one named invariant with a stable id, a severity, and
  the paper anchor (section / equation / algorithm) it reproduces.  Every
  rule lives in the :data:`RULES` registry; `docs/static_analysis.md` is
  the human-readable catalogue.
* :class:`Diagnostic` — one concrete violation (or advisory finding):
  rule id, location, message, fix hint.
* :class:`Report` — an ordered collection of diagnostics with severity
  roll-ups, used by the ``repro check`` CLI.
* :class:`InvariantViolation` — the Diagnostic-backed exception runtime
  validation raises.  It subclasses :class:`ValueError` so existing
  call sites that guard construction keep working.

This module is intentionally dependency-free (no imports from the rest
of :mod:`repro`), so construction-time validation in ``arch/config.py``
and the static checkers in :mod:`repro.analysis.checkers` share the same
rule implementations and cannot drift.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping


class Severity(enum.Enum):
    """How bad a finding is.  Only ERROR diagnostics fail ``repro check``."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 2, "warning": 1, "info": 0}[self.value]


@dataclass(frozen=True)
class Diagnostic:
    """One concrete finding produced by a rule check."""

    rule_id: str
    severity: Severity
    location: str  #: what was checked, e.g. ``"shape 35x32"`` or ``"tile 3"``
    message: str   #: what is wrong
    hint: str = "" #: how to fix it
    #: optional machine-readable key/value payload (e.g. the units
    #: analyzer's ``inferred`` / ``declared`` pair); rendered only by the
    #: CLI's ``--format json`` emitter, never by :meth:`format`
    data: tuple[tuple[str, str], ...] = ()

    def format(self) -> str:
        head = f"{self.severity.value.upper():>7} {self.rule_id} [{self.location}] {self.message}"
        return f"{head}  (hint: {self.hint})" if self.hint else head


@dataclass(frozen=True)
class Rule:
    """One registered invariant."""

    rule_id: str
    title: str
    severity: Severity
    anchor: str       #: paper anchor, e.g. ``"Eq. 4"`` or ``"Algorithm 1"``
    description: str

    def diag(
        self,
        location: str,
        message: str,
        hint: str = "",
        data: tuple[tuple[str, str], ...] = (),
    ) -> Diagnostic:
        """Instantiate a finding of this rule."""
        return Diagnostic(
            rule_id=self.rule_id,
            severity=self.severity,
            location=location,
            message=message,
            hint=hint,
            data=data,
        )


#: Registry of every known rule, keyed by rule id.
RULES: dict[str, Rule] = {}


def register(rule: Rule) -> Rule:
    if rule.rule_id in RULES:
        raise ValueError(f"duplicate rule id {rule.rule_id}")
    RULES[rule.rule_id] = rule
    return rule


def rule(rule_id: str) -> Rule:
    """Look up a registered rule by id."""
    return RULES[rule_id]


def _r(rule_id: str, title: str, severity: Severity, anchor: str, description: str) -> Rule:
    return register(Rule(rule_id, title, severity, anchor, description))


# ----------------------------------------------------------------------
# Rule catalogue (docs/static_analysis.md mirrors this table)
# ----------------------------------------------------------------------
CFG001 = _r(
    "CFG001", "positive config counts", Severity.ERROR, "§4.1",
    "Every precision / hierarchy count of a HardwareConfig must be positive.",
)
CFG002 = _r(
    "CFG002", "weight bits divisible by cell bits", Severity.ERROR, "§4.1",
    "weight_bits must be a positive multiple of cell_bits so a whole "
    "bit-slice crossbar group represents one weight.",
)
CFG003 = _r(
    "CFG003", "input bits divisible by DAC bits", Severity.ERROR, "§4.1",
    "input_bits must be a positive multiple of dac_bits so bit-serial "
    "input cycles tile the activation exactly.",
)
CFG004 = _r(
    "CFG004", "ADC resolution covers crossbar rows", Severity.ERROR, "§4.1",
    "The ADC must resolve the largest bitline partial sum of the tallest "
    "candidate crossbar (the paper picks 10 bits 'to support all "
    "heterogeneous sizes').",
)
SHP001 = _r(
    "SHP001", "positive crossbar dimensions", Severity.ERROR, "Fig. 7",
    "Crossbar rows and columns must both be positive.",
)
SHP002 = _r(
    "SHP002", "RXB height multiple of 9", Severity.ERROR, "§3.3",
    "Rectangle candidates must have heights that are multiples of 9, "
    "matching the Cin*k^2 row footprint of 3x3 kernels.",
)
SHP003 = _r(
    "SHP003", "SXB dimension power of two", Severity.ERROR, "§3.3",
    "Square candidates must be power-of-two sized, like the homogeneous "
    "baselines they generalise.",
)
MAP001 = _r(
    "MAP001", "utilization within (0, 1]", Severity.ERROR, "Eq. 4",
    "Intra-array utilization must stay in (0, 1]; anything else means the "
    "mapping arithmetic is corrupt.",
)
MAP002 = _r(
    "MAP002", "kernel-split flag consistency", Severity.ERROR, "§3.3",
    "The kernel-split fallback must engage exactly when a single kernel "
    "slice is taller than the crossbar (k^2 > rows).",
)
MAP003 = _r(
    "MAP003", "row/col group arithmetic", Severity.ERROR, "Eq. 4 / Fig. 7",
    "row_groups and col_groups must match Eq. 4's formulas and provide "
    "enough cells for the unfolded weight matrix.",
)
NET001 = _r(
    "NET001", "layer index contiguity", Severity.ERROR, "Table 1",
    "Weight layers must carry indices 0..n-1 in execution order; the RL "
    "state vector's 'k' feature depends on it.",
)
NET002 = _r(
    "NET002", "dangling layer input width", Severity.ERROR, "§3.2",
    "Every layer's input width must be producible by the dataset or an "
    "earlier layer; otherwise the layer is dangling.",
)
NET003 = _r(
    "NET003", "kernel fits padded input", Severity.ERROR, "Fig. 7",
    "A convolution kernel must fit inside its padded input feature map.",
)
ALC001 = _r(
    "ALC001", "tile occupancy within capacity", Severity.ERROR, "Algorithm 1",
    "A tile can never hold more crossbars than it has slots "
    "(emptyXBNum must stay non-negative).",
)
ALC002 = _r(
    "ALC002", "crossbar double-booking", Severity.ERROR, "§3.4",
    "A layer must not be placed on more crossbar slots than its mapping "
    "occupies — extra placements double-book hardware.",
)
ALC003 = _r(
    "ALC003", "incomplete placement", Severity.ERROR, "§3.4",
    "Every crossbar of every layer's mapping must be placed on some tile.",
)
ALC004 = _r(
    "ALC004", "tile/occupant geometry mismatch", Severity.ERROR, "§3.1",
    "All crossbars inside one tile share a single geometry; a tile may "
    "only host layers mapped to its own shape.",
)
ALC005 = _r(
    "ALC005", "non-positive occupant count", Severity.ERROR, "§3.4",
    "Occupancy bookkeeping must never record zero or negative slot counts.",
)
ALC006 = _r(
    "ALC006", "released-tile accounting", Severity.ERROR, "Algorithm 1",
    "Tiles absorbed by the tile-shared remapping must be released: they "
    "may not survive in the plan, and the absorber must record them.",
)
ALC007 = _r(
    "ALC007", "uniform tile capacity", Severity.ERROR, "§4.1",
    "Every tile's slot count must equal the plan's tile capacity "
    "(pes_per_tile).",
)
LNT001 = _r(
    "LNT001", "no print outside cli/bench", Severity.ERROR, "repo rule",
    "Library code must not print; user-facing output belongs to the CLI "
    "and the bench reporting layer.",
)
LNT002 = _r(
    "LNT002", "no mutable default arguments", Severity.ERROR, "repo rule",
    "Mutable default arguments alias state across calls.",
)
LNT003 = _r(
    "LNT003", "frozen-dataclass discipline in arch/", Severity.ERROR, "repo rule",
    "Dataclasses under arch/ must be frozen unless explicitly marked "
    "'# stateful:' with a reason on the decorator line.",
)
LNT004 = _r(
    "LNT004", "no float equality in energy/latency math", Severity.ERROR, "repo rule",
    "Cost-model code must not compare floats with == / != against float "
    "literals; use tolerances.",
)
LNT005 = _r(
    "LNT005", "no bare assert in allocation invariants", Severity.ERROR, "repo rule",
    "Allocation invariants must raise Diagnostic-backed InvariantViolation "
    "(asserts vanish under python -O and carry no rule id).",
)
LNT006 = _r(
    "LNT006", "no lru_cache on instance methods", Severity.ERROR, "repo rule",
    "functools.lru_cache / functools.cache on an instance method keeps "
    "every self alive in the memo (per-instance leak) and folds object "
    "identity into the key; memoise a module-level function instead.",
)
LNT007 = _r(
    "LNT007", "log through the repro.obs bridge", Severity.ERROR, "repo rule",
    "Library code must not call logging.getLogger / logging.basicConfig "
    "directly; every subsystem logs through repro.obs.log (get_logger / "
    "configure_cli_logging) so the namespace stays uniform and handlers, "
    "levels, and trace sinks are configured in exactly one place.",
)
CAC001 = _r(
    "CAC001", "attribute read but not fingerprinted", Severity.ERROR, "§4.5",
    "The memoized evaluation reads an attribute that the cache-key "
    "fingerprint does not cover — two inputs differing only in that field "
    "collide and one silently receives the other's metrics.",
)
CAC002 = _r(
    "CAC002", "fingerprinted but never read", Severity.WARNING, "§4.5",
    "A field folded into the cache-key fingerprint is never read by the "
    "memoized evaluation: a dead key component that splits entries (and "
    "lowers the hit rate) without affecting results.",
)
CAC003 = _r(
    "CAC003", "nondeterministic or I/O sink in memoized call graph", Severity.ERROR,
    "§4.5",
    "The memoized evaluation reaches random / time / environment / I/O "
    "state that no cache key can cover, so cached results can go stale.",
)
CAC004 = _r(
    "CAC004", "cache audit mismatch", Severity.ERROR, "§4.5",
    "A sampled cache hit re-evaluated to different metrics than the "
    "stored entry — the cache served stale or corrupted results.",
)
PUR001 = _r(
    "PUR001", "input mutation in memoized call graph", Severity.ERROR, "§4.5",
    "The memoized evaluation mutates one of its key inputs (config, "
    "network, layer, shape); memoized callables must be pure in their "
    "arguments.",
)
PUR002 = _r(
    "PUR002", "module-state mutation in memoized call graph", Severity.ERROR, "§4.5",
    "The memoized evaluation writes module-level state, so results depend "
    "on call history that the cache key cannot express.",
)
CON001 = _r(
    "CON001", "unguarded shared write in a thread worker", Severity.ERROR,
    "threading contract",
    "Code reachable from a thread-pool worker writes a shared mutable "
    "attribute that declares no `# guarded-by:` lock — concurrent workers "
    "can interleave the write and lose updates.",
)
CON002 = _r(
    "CON002", "module-global mutation reachable from a worker", Severity.ERROR,
    "threading contract",
    "A worker mutates module-level state (a `global` rebinding or a "
    "module-level container); thread workers race on it, and process "
    "workers silently mutate a copy that is thrown away.",
)
CON003 = _r(
    "CON003", "non-picklable state shipped across a process boundary", Severity.ERROR,
    "threading contract",
    "A process-pool worker captures a tracer, lock, open file, or other "
    "non-picklable object (or the callable itself is a closure/lambda) — "
    "the fan-out either crashes at pickle time or duplicates live I/O "
    "state into children.",
)
CON004 = _r(
    "CON004", "shared RNG used in a thread worker", Severity.ERROR,
    "threading contract",
    "A thread worker draws from the shared module-level RNG "
    "(`random.random`, `numpy.random.rand`, ...), so results depend on "
    "thread scheduling; construct a per-worker `random.Random(seed)` / "
    "`numpy.random.default_rng(seed)` instead.",
)
CON005 = _r(
    "CON005", "guarded attribute written outside its lock", Severity.ERROR,
    "threading contract",
    "An attribute declared `# guarded-by: <lock>` is written at a site "
    "not dominated by `with self.<lock>:` (and the enclosing method does "
    "not declare `# holds-lock: <lock>`), so the declared discipline is "
    "broken.",
)
LNT008 = _r(
    "LNT008", "no literal dtype casts in kernel hot loops", Severity.ERROR,
    "repo rule",
    "Inside a loop in sim/kernels.py, bare float()/np.float32()/"
    "np.float64()/np.int32()/np.int64() casts silently coerce per-element "
    "values and mask the dtype drift NUM001 exists to catch; hoist the "
    "cast out of the loop (or build the array with an explicit dtype= "
    "argument) or allowlist the function in KERNEL_CAST_ALLOWLIST with a "
    "reason.",
)
NUM001 = _r(
    "NUM001", "implicit dtype promotion or narrowing", Severity.ERROR,
    "parity contract",
    "An arithmetic expression mixes arrays of different explicit dtypes "
    "(int32 with int64, float32 with float64, or an int array folded "
    "into float32) — NumPy promotes or narrows silently, and the result "
    "no longer matches the scalar reference bit-for-bit.",
)
NUM002 = _r(
    "NUM002", "order-sensitive float reduction", Severity.ERROR,
    "parity contract",
    "np.sum / np.dot / np.matmul / np.einsum on float operands use "
    "pairwise or blocked summation whose rounding depends on length and "
    "layout; the scalar reference folds strictly left-to-right.  Use the "
    "cumsum idiom (repro.sim.kernels.left_fold) for bit-identical "
    "reductions, or mark the site `# numeric-ok: NUM002 (<reason>)` if "
    "exactness is not required there.",
)
NUM003 = _r(
    "NUM003", "unguarded division, log, or sqrt", Severity.ERROR,
    "parity contract",
    "A division, np.log, or np.sqrt consumes a value that dataflow says "
    "can be zero or negative (np.zeros, a literal zero element, a "
    "subtraction) with no guard in sight — the kernel mints inf/nan that "
    "the scalar reference would have raised on.",
)
NUM004 = _r(
    "NUM004", "float equality comparison", Severity.ERROR,
    "parity contract",
    "== / != against a float value inside the numeric kernels: rounding "
    "differences between the scalar and vectorized paths make exact "
    "float equality a latent divergence.  Compare against integers, use "
    "tolerances, or mark a deliberate exact-sentinel check "
    "`# numeric-ok: NUM004 (<reason>)`.",
)
NUM005 = _r(
    "NUM005", "nan/inf-propagating sink", Severity.ERROR,
    "parity contract",
    "A value that can carry nan or inf (an explicit np.nan/np.inf fill, "
    "or the result of an unguarded division) flows into min/max/argmin/"
    "argmax/sort or an ordering comparison without an np.isfinite guard "
    "— nan poisons the comparison and the winner is arbitrary (the "
    "shape of the PR 7 quantize-subnormal bug).",
)
PAR001 = _r(
    "PAR001", "scalar read not vectorized", Severity.ERROR,
    "parity contract",
    "The scalar cost path (Simulator.evaluate through energy/latency/"
    "area/summary) reads an attribute that KERNEL_COVERAGE does not map "
    "to a kernel column — or maps to a column that no longer exists — "
    "so the vectorized path cannot see that input and the two "
    "implementations silently desynchronize.",
)
PAR002 = _r(
    "PAR002", "dead kernel column", Severity.WARNING,
    "parity contract",
    "A kernel array column (NetworkArrays/MappingBatch field, ShapeTable "
    "row) is neither the target of a KERNEL_COVERAGE entry nor declared "
    "derived in KERNEL_DERIVED_COLUMNS — or a declared entry points at a "
    "column/read that no longer exists — dead weight that drifts from "
    "the scalar source of truth without any test noticing.",
)
PAR003 = _r(
    "PAR003", "kernel constant diverging from scalar source of truth",
    Severity.ERROR, "parity contract",
    "A replicated kernel constant is out of sync with its scalar source "
    "of truth: a row-registry tuple-unpack disagrees with the declared "
    "row names, a derived MappingBatch column has no same-named "
    "LayerMapping counterpart, or the kernels' replica of a scalar "
    "error-message format string has drifted from the reference site.",
)
UNI001 = _r(
    "UNI001", "mixed-unit add/sub/compare", Severity.ERROR,
    "units contract",
    "An addition, subtraction, comparison, or min/max mixes operands of "
    "different physical units (e.g. energy_nj + latency_ns) — the result "
    "is a number with no meaning, and nothing downstream can detect it.",
)
UNI002 = _r(
    "UNI002", "unit-bearing field not covered by UNIT_TABLE", Severity.ERROR,
    "units contract",
    "A numeric config/result field carries no unit suffix and no "
    "UNIT_TABLE entry — or a UNIT_TABLE entry names a field that no "
    "longer exists — so the dimensional interpreter (and the reader) "
    "cannot know what the number measures.",
)
UNI003 = _r(
    "UNI003", "bare literal acting as a unit conversion", Severity.ERROR,
    "units contract",
    "A bare power-of-ten literal multiplies or divides a unit-bearing "
    "value (the `* 1e-9` idiom) — an undeclared unit conversion.  Name "
    "the factor in repro.sim.units_constants and declare its unit in "
    "CONVERSION_UNITS so the conversion is checkable.",
)
UNI004 = _r(
    "UNI004", "inferred unit diverges from declared unit", Severity.ERROR,
    "units contract",
    "A value flowing into a declared slot — a result/config field, a "
    "suffix-named variable or function return — has an inferred unit "
    "different from the declared one (e.g. a nanojoule expression "
    "returned by a *_ns function).",
)
UNI005 = _r(
    "UNI005", "wrong unit emitted to a tracer stream", Severity.ERROR,
    "units contract",
    "A value is emitted to a repro.obs counter stream whose schema "
    "(UNIT_TABLE['obs.streams']) declares a different unit — dashboards "
    "and SLO checks downstream would silently read the wrong dimension.",
)


class InvariantViolation(ValueError):
    """A structural invariant was violated; carries the diagnostics.

    Subclasses :class:`ValueError` so pre-existing ``pytest.raises(ValueError)``
    guards and defensive ``except ValueError`` blocks keep working.
    """

    def __init__(self, diagnostics: Iterable[Diagnostic], context: str = "") -> None:
        diags = tuple(diagnostics)
        if not diags:
            raise ValueError("InvariantViolation needs at least one diagnostic")
        self.diagnostics: tuple[Diagnostic, ...] = diags
        lines = [d.format() for d in diags]
        prefix = f"{context}: " if context else ""
        super().__init__(prefix + "; ".join(lines))

    @property
    def rule_ids(self) -> tuple[str, ...]:
        return tuple(d.rule_id for d in self.diagnostics)


@dataclass
class Report:
    """An ordered collection of diagnostics from one or more passes."""

    diagnostics: list[Diagnostic] = field(default_factory=lambda: [])

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity is Severity.ERROR)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity is Severity.WARNING)

    @property
    def ok(self) -> bool:
        """True when no ERROR diagnostics were recorded."""
        return not self.errors

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def rule_ids(self) -> tuple[str, ...]:
        return tuple(d.rule_id for d in self.diagnostics)

    def counts_by_rule(self) -> dict[str, int]:
        """Finding count per rule id (any severity)."""
        counts: dict[str, int] = {}
        for d in self.diagnostics:
            counts[d.rule_id] = counts.get(d.rule_id, 0) + 1
        return counts

    def format(self) -> str:
        if not self.diagnostics:
            return "no findings"
        ordered = sorted(
            self.diagnostics, key=lambda d: (-d.severity.rank, d.rule_id, d.location)
        )
        lines = [d.format() for d in ordered]
        lines.append(
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s), "
            f"{len(self.diagnostics)} finding(s) total"
        )
        return "\n".join(lines)

    def raise_if_errors(self, context: str = "") -> None:
        if self.errors:
            raise InvariantViolation(self.errors, context)


def ratchet_violations(
    report: Report, baseline: Mapping[str, int]
) -> list[str]:
    """Findings that exceed a grandfathered per-rule baseline.

    The *ratchet* makes non-ERROR findings fail a gate only when their
    count grows: a baseline file maps rule id -> allowed count (unlisted
    rules default to 0; keys starting with ``_`` are comments).  Shrinking
    counts pass — tighten the baseline in the same change that fixes them.
    """
    allowed = {
        key: int(value)
        for key, value in baseline.items()
        if not key.startswith("_")
    }
    lines = []
    for rule_id, count in sorted(report.counts_by_rule().items()):
        cap = allowed.get(rule_id, 0)
        if count > cap:
            lines.append(
                f"ratchet: {rule_id} has {count} finding(s), "
                f"baseline allows {cap}"
            )
    return lines


# ----------------------------------------------------------------------
# Shared scalar rule implementations.
#
# These are the single source of truth for the checks that exist both at
# construction time (HardwareConfig / CrossbarShape __post_init__) and in
# the static checkers — sharing the implementation keeps runtime and
# static validation from drifting.
# ----------------------------------------------------------------------
def is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


def required_adc_bits(rows: int, cell_bits: int = 1) -> int:
    """ADC bits needed to resolve the worst-case bitline sum of ``rows``
    1-bit-DAC inputs against ``cell_bits``-bit cells (§4.1's sizing rule:
    10 bits covers 576 rows of 1-bit cells)."""
    max_sum = rows * (2**cell_bits - 1)
    return max(1, math.ceil(math.log2(max_sum + 1)))


def positive_count_diagnostics(
    counts: Mapping[str, int], location: str
) -> list[Diagnostic]:
    """CFG001: every named count must be a positive integer."""
    return [
        CFG001.diag(
            location,
            f"{name} must be positive, got {value}",
            hint=f"set {name} >= 1",
        )
        for name, value in counts.items()
        if value <= 0
    ]


def bit_divisibility_diagnostics(
    weight_bits: int, cell_bits: int, input_bits: int, dac_bits: int, location: str
) -> list[Diagnostic]:
    """CFG002 / CFG003: the bit-slice group and bit-serial cycle counts
    must be whole numbers."""
    out: list[Diagnostic] = []
    if cell_bits > 0 and weight_bits > 0 and weight_bits % cell_bits != 0:
        out.append(
            CFG002.diag(
                location,
                f"weight_bits={weight_bits} is not a multiple of "
                f"cell_bits={cell_bits}",
                hint="pick weight_bits divisible by cell_bits so the "
                "bit-slice group is whole",
            )
        )
    if dac_bits > 0 and input_bits > 0 and input_bits % dac_bits != 0:
        out.append(
            CFG003.diag(
                location,
                f"input_bits={input_bits} is not a multiple of "
                f"dac_bits={dac_bits}",
                hint="pick input_bits divisible by dac_bits so bit-serial "
                "cycles tile the activation",
            )
        )
    return out


def adc_resolution_diagnostics(
    adc_bits: int, rows: int, cell_bits: int, location: str
) -> list[Diagnostic]:
    """CFG004: the ADC must cover the tallest crossbar's partial sums."""
    if rows <= 0 or adc_bits <= 0 or cell_bits <= 0:
        return []  # positivity is CFG001 / SHP001 territory
    needed = required_adc_bits(rows, cell_bits)
    if adc_bits < needed:
        return [
            CFG004.diag(
                location,
                f"adc_bits={adc_bits} cannot resolve {rows}-row partial sums "
                f"({needed} bits needed)",
                hint=f"raise adc_bits to {needed} or drop crossbars taller "
                f"than {2**adc_bits - 1} rows",
            )
        ]
    return []


def shape_dim_diagnostics(rows: int, cols: int, location: str) -> list[Diagnostic]:
    """SHP001: crossbar dimensions must be positive."""
    if rows <= 0 or cols <= 0:
        return [
            SHP001.diag(
                location,
                f"crossbar dimensions must be positive, got {rows}x{cols}",
                hint="use positive rows and cols",
            )
        ]
    return []


def shape_discipline_diagnostics(
    rows: int, cols: int, location: str
) -> list[Diagnostic]:
    """SHP002 / SHP003: the paper's candidate-shape discipline (§3.3).

    Square candidates must be power-of-two; rectangle candidates must have
    heights that are multiples of 9 (matching ``Cin * 3^2`` footprints).
    Only *candidate sets* are held to this — ad-hoc shapes in unit tests
    or sweeps are legal hardware, just outside the search discipline.
    """
    out: list[Diagnostic] = []
    if rows <= 0 or cols <= 0:
        return out
    if rows == cols:
        if not is_power_of_two(rows):
            out.append(
                SHP003.diag(
                    location,
                    f"square candidate {rows}x{cols} is not power-of-two sized",
                    hint="use 32/64/128/256/512-class SXB shapes",
                )
            )
    else:
        if rows % 9 != 0:
            out.append(
                SHP002.diag(
                    location,
                    f"rectangle candidate height {rows} is not a multiple of 9",
                    hint="RXB heights must be 9*2^n-style multiples "
                    "(36, 72, 144, 288, 576) to match Cin*k^2 rows",
                )
            )
        if not is_power_of_two(cols):
            out.append(
                SHP003.diag(
                    location,
                    f"rectangle candidate width {cols} is not a power of two",
                    hint="pair each RXB height with a power-of-two width",
                )
            )
    return out


def config_value_diagnostics(
    *,
    weight_bits: int,
    input_bits: int,
    cell_bits: int,
    dac_bits: int,
    adc_bits: int,
    pes_per_tile: int,
    tiles_per_bank: int,
    adc_sharing: int,
    location: str = "HardwareConfig",
) -> list[Diagnostic]:
    """All scalar HardwareConfig invariants (CFG001-CFG003).

    This is exactly what ``HardwareConfig.__post_init__`` enforces; the
    static checker calls the same function on serialized config dicts.
    """
    out = positive_count_diagnostics(
        {
            "weight_bits": weight_bits,
            "input_bits": input_bits,
            "cell_bits": cell_bits,
            "dac_bits": dac_bits,
            "adc_bits": adc_bits,
            "pes_per_tile": pes_per_tile,
            "tiles_per_bank": tiles_per_bank,
            "adc_sharing": adc_sharing,
        },
        location,
    )
    out.extend(
        bit_divisibility_diagnostics(
            weight_bits, cell_bits, input_bits, dac_bits, location
        )
    )
    return out
