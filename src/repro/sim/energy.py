"""Dynamic + static energy model of one inference pass.

Per MVM (one input vector through one layer), the analog pipeline runs
``input_cycles`` bit-serial phases (8 with 8-bit activations and 1-bit
DACs), and every event replicates across the ``xbars_per_group`` weight
bit-slice crossbars (8 with 8-bit weights and 1-bit cells).  Per phase:

* **DAC**: one conversion per used wordline of every physical crossbar.
* **Crossbar**: every weight-holding cell conducts.
* **ADC**: one conversion per *used* bitline — the paper's "activated
  ADCs" (Fig. 5: 256 on 64x64 vs 128 on 128x128 for the same layer).
  Counting only active bitlines matches Fig. 5 exactly.
* **Shift-and-add**: each ADC sample is shifted into the accumulating
  digital partial sum.
* **Adder tree**: partial sums from different crossbar row-groups merge.

Plus per layer: buffer and bus traffic for input/output feature maps,
pooling-module energy, and leakage of the allocated hardware integrated
over the inference latency.  ADC energy dominates by construction — the
premise of the paper's size/energy trade-off (§2.2.3).
"""

from __future__ import annotations

from functools import lru_cache

from ..arch.config import HardwareConfig
from ..arch.mapping import LayerMapping
from ..models.graph import Network
from ..models.layers import LayerSpec
from .units_constants import NW_NS_TO_NJ
from .metrics import EnergyBreakdown


def adc_conversions_per_cycle(mapping: LayerMapping, config: HardwareConfig) -> float:
    """Effective ADC conversions per analog cycle (per bit-slice set).

    Active (weight-holding) bitlines count in full; idle bitlines of
    occupied crossbars count at ``idle_line_energy_fraction``.
    """
    used = mapping.used_columns_total
    idle = mapping.allocated_columns_total - used
    return used + config.idle_line_energy_fraction * idle


def dac_conversions_per_cycle(mapping: LayerMapping, config: HardwareConfig) -> float:
    """Effective DAC conversions per analog cycle (per bit-slice set)."""
    used = mapping.used_rows_total
    idle = mapping.allocated_rows_total - used
    return used + config.idle_line_energy_fraction * idle


def layer_adc_conversions(mapping: LayerMapping, config: HardwareConfig) -> int:
    """ADC conversions on *active* bitlines for one full inference pass."""
    return (
        mapping.layer.mvm_ops
        * mapping.used_columns_total
        * config.input_cycles
        * config.xbars_per_group
    )


def layer_dac_conversions(mapping: LayerMapping, config: HardwareConfig) -> int:
    """DAC conversions on *active* wordlines for one full inference pass."""
    return (
        mapping.layer.mvm_ops
        * mapping.used_rows_total
        * config.input_cycles
        * config.xbars_per_group
    )


def layer_dynamic_energy(
    mapping: LayerMapping, config: HardwareConfig
) -> EnergyBreakdown:
    """Dynamic energy of one layer's full inference pass (nJ)."""
    layer = mapping.layer
    cycles = config.input_cycles
    slices = config.xbars_per_group
    mvm = layer.mvm_ops
    phase_factor = mvm * cycles * slices

    adc_cols = adc_conversions_per_cycle(mapping, config)
    dac_rows = dac_conversions_per_cycle(mapping, config)
    adc = phase_factor * adc_cols * config.energy_adc_nj()
    dac = phase_factor * dac_rows * config.energy_dac_nj
    crossbar = (
        phase_factor * mapping.active_cells_per_cycle * config.energy_cell_read_nj
    )
    shift_add = phase_factor * adc_cols * config.energy_shift_add_nj
    # Row-group partial sums merge once per MVM at full digital precision.
    adder = mvm * mapping.partial_sum_adds * config.energy_adder_nj

    # Feature-map movement: the input vector is read from the input buffer
    # once per MVM and broadcast over the bus to every crossbar column
    # group; outputs return to the output buffer.
    in_bytes = layer.in_channels * layer.kernel_elems
    out_bytes = layer.out_channels
    buffer = mvm * (in_bytes + out_bytes) * config.energy_buffer_nj_per_byte
    bus = (
        mvm
        * (in_bytes * mapping.col_groups + out_bytes)
        * config.energy_bus_nj_per_byte
    )
    return EnergyBreakdown(
        adc=adc,
        dac=dac,
        crossbar=crossbar,
        shift_add=shift_add,
        adder_tree=adder,
        buffer=buffer,
        bus=bus,
    )


# ----------------------------------------------------------------------
# Memoised variants — the simulator's hot path.
#
# A layer's energy depends only on its (mapping, config) pair, never on
# how tiles were allocated, so the cost is shared across every strategy
# that gives the layer the same crossbar shape.  The annealing and
# coordinate-ascent loops re-evaluate strategies differing in one layer;
# without memoisation they re-pay N-1 identical layer costs per proposal.
# Both arguments are frozen dataclasses, and the returned values are
# immutable, so lru_cache sharing is safe (and thread-safe).
# ----------------------------------------------------------------------
cached_layer_dynamic_energy = lru_cache(maxsize=65536)(layer_dynamic_energy)
cached_layer_adc_conversions = lru_cache(maxsize=65536)(layer_adc_conversions)
cached_layer_dac_conversions = lru_cache(maxsize=65536)(layer_dac_conversions)


def pooling_energy(network: Network, config: HardwareConfig) -> float:
    """Energy of all pooling stages for one inference pass (nJ)."""
    total = 0.0
    for i, layer in enumerate(network.layers):
        pool = network.pool_after_or_none(i)
        if pool is None:
            continue
        pooled = pool.output_size(layer.output_size) ** 2 * layer.out_channels
        total += pooled * config.energy_pool_nj
    return total


#: Memoised variant (pooling depends only on the network topology).
cached_pooling_energy = lru_cache(maxsize=1024)(pooling_energy)


def leakage_energy(
    occupied_tiles: int,
    occupied_slots: int,
    allocated_cells: int,
    latency_ns: float,
    config: HardwareConfig,
) -> float:
    """Static energy of the allocated hardware over the inference (nJ).

    ``occupied_slots`` counts logical crossbar slots inside occupied tiles
    and ``allocated_cells`` the logical cells they contain (used or empty
    — an allocated tile leaks in full, which is why the tile-shared
    scheme's released tiles also save energy, Fig. 10).
    """
    group = config.xbars_per_group
    power_nw = (
        occupied_slots * group * config.leak_xbar_nw
        + occupied_tiles * config.leak_tile_nw
        + allocated_cells * group * config.leak_cell_nw
    )
    return power_nw * latency_ns * NW_NS_TO_NJ
