"""TD3-style stabilisers for the DDPG agent (extension).

DDPG's critic famously overestimates Q-values; Fujimoto et al.'s TD3
counters that with three mechanisms, all optional here on top of
:class:`~repro.core.rl.ddpg.DDPGAgent`:

* **twin critics** — two independently initialised critics; targets use
  the minimum of their target copies;
* **delayed policy updates** — the actor (and targets) update once every
  ``policy_delay`` critic updates;
* **target policy smoothing** — clipped Gaussian noise on the target
  action before bootstrapping.

With the default bandit-mode critic target the bootstrapping pieces are
inert (there is no bootstrap), but twin critics still help: the actor
ascends the *minimum* of two value surfaces, damping spurious peaks a
single regressor hallucinate.  Exposed as :class:`TD3Agent`, a drop-in
replacement accepted by :class:`~repro.core.autohet.AutoHet` via
``agent_config=TD3Config(...)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...obs.trace import Tracer
from .ddpg import DDPGAgent, DDPGConfig
from .networks import MLP, Adam


@dataclass(frozen=True)
class TD3Config(DDPGConfig):
    """DDPG hyper-parameters plus the TD3 stabiliser knobs."""

    policy_delay: int = 2
    target_noise_sigma: float = 0.1
    target_noise_clip: float = 0.3


class TD3Agent(DDPGAgent):
    """DDPG agent with twin critics and delayed policy updates."""

    def __init__(
        self, config: TD3Config = TD3Config(), *, tracer: Tracer | None = None
    ) -> None:
        super().__init__(config, tracer=tracer)
        rng = np.random.default_rng(config.seed + 7919)
        sizes_c = (config.state_dim + 1, *config.hidden, 1)
        self.critic2 = MLP.create(sizes_c, rng=rng)
        self.critic2_target = self.critic2.clone()
        self.critic2_opt = Adam(self.critic2.parameters(), lr=config.critic_lr)
        self._update_count = 0
        self._smooth_rng = np.random.default_rng(config.seed + 104729)

    # ------------------------------------------------------------------
    def _target_q(self, next_states: np.ndarray) -> np.ndarray:
        cfg: TD3Config = self.config  # type: ignore[assignment]
        next_actions = self.actor_target.forward(next_states)
        if cfg.target_noise_sigma > 0:
            noise = np.clip(
                self._smooth_rng.normal(
                    0.0, cfg.target_noise_sigma, size=next_actions.shape
                ),
                -cfg.target_noise_clip,
                cfg.target_noise_clip,
            )
            next_actions = np.clip(next_actions + noise, 0.0, 1.0)
        sa = np.concatenate([next_states, next_actions], axis=1)
        q1 = self.critic_target.forward(sa)
        q2 = self.critic2_target.forward(sa)
        return np.minimum(q1, q2)

    def _update_once(self) -> float:
        cfg: TD3Config = self.config  # type: ignore[assignment]
        scale = self.reward_scale or 1.0
        states, next_states, actions, rewards, dones = self.pool.sample(
            cfg.batch_size
        )
        rewards = rewards * scale
        if cfg.use_baseline and self.reward_baseline is not None:
            rewards = rewards - self.reward_baseline

        if cfg.bootstrap:
            target = rewards + cfg.gamma * (1.0 - dones) * self._target_q(
                next_states
            )
        else:
            target = rewards

        sa = np.concatenate([states, actions], axis=1)
        losses = []
        for critic, opt in (
            (self.critic, self.critic_opt),
            (self.critic2, self.critic2_opt),
        ):
            q = critic.forward(sa)
            td = q - target
            losses.append(float(np.mean(td**2)))
            gw, gb, _ = critic.backward(sa, 2.0 * td / td.shape[0])
            opt.step(gw + gb)

        self._update_count += 1
        if self._update_count % cfg.policy_delay == 0:
            # Actor ascends min(Q1, Q2)(s, mu(s)) with inverting gradients.
            mu_raw = self.actor.forward(states)
            mu = np.clip(mu_raw, 0.0, 1.0)
            sa_mu = np.concatenate([states, mu], axis=1)
            q1 = self.critic.forward(sa_mu)
            q2 = self.critic2.forward(sa_mu)
            # min(Q1, Q2) is already in hand — record the actor objective
            # for the rl.actor_loss stream at no extra compute.
            self._last_actor_objective = -float(np.mean(np.minimum(q1, q2)))
            use_first = q1 <= q2
            ones = np.ones((states.shape[0], 1)) / states.shape[0]
            _, _, d1 = self.critic.backward(sa_mu, ones)
            _, _, d2 = self.critic2.backward(sa_mu, ones)
            dq_da = np.where(use_first, d1[:, -1:], d2[:, -1:])
            headroom = np.where(dq_da > 0, 1.0 - mu_raw, mu_raw)
            dq_da = dq_da * np.clip(headroom, -1.0, 1.0)
            gw, gb, _ = self.actor.backward(states, -dq_da)
            self.actor_opt.step(gw + gb)

            self.actor_target.soft_update_from(self.actor, cfg.tau)
            self.critic_target.soft_update_from(self.critic, cfg.tau)
            self.critic2_target.soft_update_from(self.critic2, cfg.tau)

        loss = float(np.mean(losses))
        self.critic_losses.append(loss)
        return loss
