"""§4.5 — RL search time and its decision/simulator split.

Regenerates the search-time discussion: total wall-clock for the VGG16
search and the share spent waiting for simulator feedback versus making
decisions and learning.

Expected shape (paper §4.5): the simulator dominates the search time (the
paper reports 97% on MNSIM; our analytic simulator is far cheaper than
MNSIM, so the measured share is lower — see EXPERIMENTS.md).
"""

from conftest import run_once

from repro.bench import print_search_time, search_time_profile


def test_search_time_profile(benchmark):
    result = run_once(benchmark, search_time_profile)
    print_search_time(result)
    assert result.total_seconds > 0
    # The simulator remains the single largest phase of the search loop.
    assert result.simulator_seconds > result.decision_seconds
