"""Stateful (model-based) property tests for the mutable hardware objects.

Hypothesis drives random operation sequences against the crossbar and the
tile, checking that bookkeeping invariants hold after every step — the
kind of bug ordinary example-based tests miss (double-programming windows,
erase/reprogram interleavings, capacity accounting drift).
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.arch.config import CrossbarShape
from repro.arch.crossbar import Crossbar
from repro.core.allocation.tiles import Tile

ROWS, COLS = 12, 6


class CrossbarMachine(RuleBasedStateMachine):
    """Program / evaluate / erase against a shadow NumPy model."""

    def __init__(self):
        super().__init__()
        self.xbar = Crossbar(CrossbarShape(ROWS, COLS))
        self.shadow = np.zeros((ROWS, COLS), dtype=np.int64)
        self.used = np.zeros((ROWS, COLS), dtype=bool)

    @rule(
        row=st.integers(0, ROWS - 1),
        col=st.integers(0, COLS - 1),
        length=st.integers(1, ROWS),
        seed=st.integers(0, 2**16),
    )
    def program_segment(self, row, col, length, seed):
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, size=length)
        end = row + length
        if end > ROWS or self.used[row:end, col].any():
            try:
                self.xbar.program(row, col, bits)
                raise AssertionError("expected rejection")
            except (ValueError, IndexError):
                return
        else:
            self.xbar.program(row, col, bits)
            self.shadow[row:end, col] = bits
            self.used[row:end, col] = True

    @rule(seed=st.integers(0, 2**16))
    def evaluate(self, seed):
        rng = np.random.default_rng(seed)
        v = rng.integers(0, 2, size=ROWS)
        assert np.array_equal(self.xbar.mvm(v), v @ self.shadow)

    @rule()
    def erase(self):
        self.xbar.erase()
        self.shadow[:] = 0
        self.used[:] = False

    @invariant()
    def cells_match_shadow(self):
        assert np.array_equal(np.asarray(self.xbar.cells), self.shadow)

    @invariant()
    def used_mask_matches(self):
        assert np.array_equal(np.asarray(self.xbar.used_mask), self.used)

    @invariant()
    def counts_consistent(self):
        assert self.xbar.used_cells == int(self.used.sum())
        assert self.xbar.used_rows == int(self.used.any(axis=1).sum())
        assert self.xbar.used_cols == int(self.used.any(axis=0).sum())


class TileMachine(RuleBasedStateMachine):
    """Add / release occupants against shadow accounting."""

    CAPACITY = 6

    def __init__(self):
        super().__init__()
        self.tile = Tile(0, CrossbarShape(8, 8), self.CAPACITY)
        self.shadow: dict[int, int] = {}

    @rule(layer=st.integers(0, 4), count=st.integers(1, 6))
    def add(self, layer, count):
        free = self.CAPACITY - sum(self.shadow.values())
        if count > free:
            try:
                self.tile.add(layer, count)
                raise AssertionError("expected capacity rejection")
            except ValueError:
                return
        else:
            self.tile.add(layer, count)
            self.shadow[layer] = self.shadow.get(layer, 0) + count

    @rule(layer=st.integers(0, 4))
    def remove_layer(self, layer):
        # Simulate the tile-shared remap taking a layer's blocks away.
        if layer in self.shadow:
            del self.tile.occupants[layer]
            del self.shadow[layer]

    @invariant()
    def occupancy_consistent(self):
        assert self.tile.occupants == self.shadow
        assert self.tile.occupied == sum(self.shadow.values())
        assert self.tile.empty == self.CAPACITY - self.tile.occupied
        assert self.tile.occupied <= self.CAPACITY

    @invariant()
    def layers_sorted_unique(self):
        layers = self.tile.layers
        assert list(layers) == sorted(set(self.shadow))


TestCrossbarStateMachine = CrossbarMachine.TestCase
TestCrossbarStateMachine.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
TestTileStateMachine = TileMachine.TestCase
TestTileStateMachine.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
