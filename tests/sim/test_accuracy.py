"""Tests for the crossbar-vs-float agreement utilities."""

import pytest

from repro.arch.config import CrossbarShape
from repro.models import lenet
from repro.sim.accuracy import AgreementReport, evaluate_agreement, fault_sweep
from repro.sim.variation import VariationModel


@pytest.fixture(scope="module")
def net():
    return lenet()


@pytest.fixture(scope="module")
def strategy(net):
    return tuple(CrossbarShape(72, 64) for _ in net.layers)


class TestIdealPipeline:
    def test_full_agreement_when_ideal(self, net, strategy):
        report = evaluate_agreement(net, strategy, batch=6, seed=0)
        assert report.agreement_rate == 1.0
        assert report.adc_saturations == 0
        assert report.mean_logit_rel_error < 0.1

    def test_report_counts(self, net, strategy):
        report = evaluate_agreement(net, strategy, batch=4, seed=1)
        assert report.samples == 4
        assert 0 <= report.agreements <= 4

    def test_rejects_nonpositive_batch(self, net, strategy):
        with pytest.raises(ValueError):
            evaluate_agreement(net, strategy, batch=0)


class TestFaultyPipeline:
    def test_strong_variation_breaks_agreement(self, net, strategy):
        faulty = evaluate_agreement(
            net, strategy, batch=6, seed=0,
            variation=VariationModel(conductance_sigma=1.0, seed=2),
        )
        assert faulty.mean_logit_rel_error > 0.2

    def test_sweep_monotone_in_error(self, net, strategy):
        sweep = fault_sweep(
            net, strategy, sigmas=(0.0, 0.6, 1.2), batch=4, seed=0
        )
        errors = [sweep[s].mean_logit_rel_error for s in (0.0, 0.6, 1.2)]
        assert errors[0] == pytest.approx(
            min(errors)
        )
        assert errors[-1] > errors[0]

    def test_sweep_keys(self, net, strategy):
        sweep = fault_sweep(net, strategy, sigmas=(0.0, 0.5), batch=2)
        assert set(sweep) == {0.0, 0.5}
        assert all(isinstance(v, AgreementReport) for v in sweep.values())
