"""Layer-pipelined inference throughput (PipeLayer-style extension).

The paper's latency model (§4.5, Table 5) is single-image and
layer-sequential.  Deployed ReRAM accelerators (PipeLayer [21], ISAAC
[19]) instead stream a batch through a layer pipeline: every layer's
tiles work on a different image simultaneously, so steady-state
throughput is set by the *slowest stage*, not the sum.

Because all weights are resident (weight-stationary PIM), a stage's
service time is its per-layer latency from :mod:`repro.sim.latency`.
Early CONV layers, with thousands of sliding-window MVMs per image,
dominate; §repro.sim.replication rebalances them by duplicating weights.

This module computes, for a (network, strategy, replication) triple:

* per-stage service times,
* the pipeline bottleneck and steady-state throughput,
* batch latency ``fill + (N - 1) * bottleneck``,
* per-stage utilisation of the pipeline (idle fraction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..arch.config import CrossbarShape, DEFAULT_CONFIG, HardwareConfig
from ..arch.mapping import map_layer
from ..models.graph import Network
from .latency import layer_latency_ns, pooling_latency_ns
from .units_constants import NS_PER_S


@dataclass(frozen=True)
class StageTiming:
    """One pipeline stage (a layer plus its trailing pooling, if any)."""

    layer_index: int
    shape_str: str
    replication: int
    service_ns: float   #: time this stage needs per image

    @property
    def is_bottleneck_candidate(self) -> bool:
        return self.service_ns > 0


@dataclass(frozen=True)
class PipelineReport:
    """Steady-state pipeline behaviour for one configuration."""

    stages: tuple[StageTiming, ...]
    network_name: str

    @property
    def bottleneck_ns(self) -> float:
        """Slowest stage's per-image service time."""
        return max(s.service_ns for s in self.stages)

    @property
    def bottleneck_stage(self) -> StageTiming:
        return max(self.stages, key=lambda s: s.service_ns)

    @property
    def fill_ns(self) -> float:
        """Time for the first image to traverse the whole pipeline."""
        return sum(s.service_ns for s in self.stages)

    def batch_latency_ns(self, batch: int) -> float:
        """Total latency to push ``batch`` images through the pipeline."""
        if batch <= 0:
            raise ValueError("batch must be positive")
        return self.fill_ns + (batch - 1) * self.bottleneck_ns

    @property
    def throughput_img_per_s(self) -> float:
        """Steady-state images per second."""
        return NS_PER_S / self.bottleneck_ns if self.bottleneck_ns else 0.0

    def stage_utilisation(self) -> tuple[float, ...]:
        """Busy fraction of each stage at steady state."""
        b = self.bottleneck_ns
        return tuple(s.service_ns / b if b else 0.0 for s in self.stages)

    @property
    def balance(self) -> float:
        """Mean stage utilisation — 1.0 means a perfectly balanced pipeline."""
        u = self.stage_utilisation()
        return sum(u) / len(u) if u else 0.0


def pipeline_report(
    network: Network,
    strategy: Sequence[CrossbarShape],
    *,
    replication: Sequence[int] | None = None,
    config: HardwareConfig = DEFAULT_CONFIG,
) -> PipelineReport:
    """Build the pipeline timing report for a strategy.

    ``replication[i]`` duplicates layer ``i``'s weight array that many
    times; the copies serve different sliding-window positions in
    parallel, dividing the stage's MVM count (service time scales with
    ``ceil(mvm_ops / replication)`` — the last partially-filled wave
    still costs a full round).
    """
    layers = network.layers
    if len(strategy) != len(layers):
        raise ValueError("strategy length must equal layer count")
    if replication is None:
        replication = [1] * len(layers)
    if len(replication) != len(layers):
        raise ValueError("replication length must equal layer count")
    if any(r < 1 for r in replication):
        raise ValueError("replication factors must be >= 1")

    stages = []
    for layer, shape, reps in zip(layers, strategy, replication):
        mapping = map_layer(layer, shape)
        base = layer_latency_ns(mapping, config)
        per_mvm = base / layer.mvm_ops
        import math

        waves = math.ceil(layer.mvm_ops / reps)
        service = per_mvm * waves
        try:
            pool = network.pool_after(layer.index)
        except IndexError:
            pool = None
        if pool is not None:
            pooled = pool.output_size(layer.output_size) ** 2 * layer.out_channels
            service += pooled * config.latency_pool_ns / reps
        stages.append(
            StageTiming(
                layer_index=layer.index,
                shape_str=str(shape),
                replication=reps,
                service_ns=service,
            )
        )
    return PipelineReport(stages=tuple(stages), network_name=network.name)


def replication_crossbar_cost(
    network: Network,
    strategy: Sequence[CrossbarShape],
    replication: Sequence[int],
) -> int:
    """Total logical crossbars consumed, including all replicas."""
    total = 0
    for layer, shape, reps in zip(network.layers, strategy, replication):
        total += map_layer(layer, shape).num_crossbars * reps
    return total
