"""Environment behaviour on FC-only networks (the transformer workload).

The Table-1 state vector was designed around CONV features; FC-only
networks exercise its edge cases — unit strides everywhere, type code 0,
input size 1 — and the normalisation must stay well-defined.
"""

import numpy as np
import pytest

from repro.arch.config import DEFAULT_CANDIDATES
from repro.core.rl.environment import CrossbarSearchEnv
from repro.models.transformer import transformer_lm
from repro.sim import Simulator


@pytest.fixture(scope="module")
def env():
    net = transformer_lm(num_blocks=1, d_model=128, vocab_size=512)
    return CrossbarSearchEnv(net, DEFAULT_CANDIDATES, Simulator())


class TestFCOnlyStates:
    def test_all_type_codes_zero(self, env):
        for i in range(env.num_layers):
            assert env.observe(i, 0, 0)[1] == 0.0

    def test_stride_dim_degenerate_but_finite(self, env):
        """All strides are 1 -> the normalised stride is exactly 1."""
        for i in range(env.num_layers):
            s = env.observe(i, 0, 0)
            assert s[5] == 1.0
            assert np.isfinite(s).all()

    def test_kernel_dim_unit(self, env):
        for i in range(env.num_layers):
            assert env.observe(i, 0, 0)[4] == 1.0  # ks = 1 for every FC

    def test_channel_features_discriminate_layers(self, env):
        """The up and down projections must look different to the agent."""
        up = env.observe(4, 0, 0)     # 128 -> 512 (mlp.up)
        down = env.observe(5, 0, 0)   # 512 -> 128 (mlp.down)
        assert up[2] != down[2] or up[3] != down[3]

    def test_states_in_unit_box(self, env):
        for i in range(env.num_layers):
            s = env.observe(i, 1.0, 1.0)
            assert (s >= 0).all() and (s <= 1.0 + 1e-12).all()

    def test_episode_runs(self, env):
        result = env.rollout(lambda s: 3)
        assert result.metrics.utilization > 0
        assert len(result.transitions) == env.num_layers
