"""Kernel-to-crossbar mapping math (paper §3.3, Fig. 7, Eq. 4).

A CONV layer with kernel ``k x k``, ``Cin`` input channels and ``Cout``
output channels unfolds into a weight matrix of ``Cin * k^2`` rows by
``Cout`` columns — one column per kernel.  Mapped onto an array of
``r x c`` crossbars under the paper's parallelism rule ("map the data from
one single kernel onto a single crossbar"):

* each crossbar stores ``floor(r / k^2)`` input-channel *slices* of
  ``k^2`` rows apiece, and up to ``c`` kernels in its columns;
* the array therefore needs ``ceil(Cin / floor(r / k^2))`` crossbar rows
  and ``ceil(Cout / c)`` crossbar columns;
* utilization follows Eq. 4:

  .. math::
     u = \\frac{C_{in} k^2 C_{out}}
              {r \\lceil C_{in} / \\lfloor r/k^2 \\rfloor \\rceil
               \\cdot c \\lceil C_{out} / c \\rceil}

FC layers use the same formula with ``k = 1`` (§3.3).

**Kernel-splitting fallback.**  Eq. 4 is undefined when a single kernel
slice is taller than the crossbar (``k^2 > r``; e.g. ResNet's 7x7 stem on a
32x32 crossbar gives ``floor(32/49) = 0``).  The paper never maps such a
pair, but a robust simulator must: we fall back to splitting one kernel
column across consecutive crossbar rows with dense packing, i.e.
``rows_groups = ceil(Cin * k^2 / r)``.  This strictly generalises Eq. 4's
packing (it wastes no intra-group rows) and is flagged by
``LayerMapping.kernel_split``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from ..analysis.invariants import MAP003, InvariantViolation
from ..models.layers import LayerSpec
from .config import CrossbarShape


@dataclass(frozen=True)
class LayerMapping:
    """The result of mapping one layer onto one crossbar type.

    All counts are *logical* (one logical crossbar = the bit-slice group of
    ``weight_bits / cell_bits`` physical arrays; see
    :attr:`HardwareConfig.xbars_per_group`).  The simulator multiplies by
    the physical factors.
    """

    layer: LayerSpec
    shape: CrossbarShape
    row_groups: int        #: crossbar rows in the array (Fig. 7 vertical tiling)
    col_groups: int        #: crossbar columns in the array
    kernel_split: bool     #: True when the k^2 > r fallback engaged

    def __post_init__(self) -> None:
        # A mapping describes at least one occupied crossbar; group counts
        # below 1 would zero the per-MVM activity counts (ADC chain length,
        # partial sums, conversions) instead of failing loudly.  Together
        # with LayerSpec's positive-channel and CrossbarShape's SHP001
        # positive-dimension validation this makes degenerate mappings
        # (e.g. ``used_columns_per_crossbar_max == 0``) unconstructible.
        diags = [
            MAP003.diag(
                f"LayerMapping(layer={self.layer.index}, shape={self.shape})",
                f"{name} must be >= 1, got {value}",
                hint="use map_layer(); it derives group counts from Eq. 4",
            )
            for name, value in (
                ("row_groups", self.row_groups),
                ("col_groups", self.col_groups),
            )
            if value < 1
        ]
        if diags:
            raise InvariantViolation(diags, "LayerMapping")

    # ------------------------------------------------------------------
    @property
    def num_crossbars(self) -> int:
        """Logical crossbars the layer occupies."""
        return self.row_groups * self.col_groups

    @property
    def weight_cells(self) -> int:
        """Cells that actually hold weights (= the layer's weight count)."""
        return self.layer.weight_count

    @property
    def total_cells(self) -> int:
        """All cells in the occupied crossbars, used or not."""
        return self.num_crossbars * self.shape.cells

    @property
    def utilization(self) -> float:
        """Intra-array utilization — Eq. 4 (or its fallback generalisation)."""
        return self.weight_cells / self.total_cells

    # ------------------------------------------------------------------
    # Per-MVM activity counts (one input vector through the layer).
    # These are per *logical* crossbar group and per analog cycle; the
    # simulator scales by input-bit cycles and weight-bit slices.
    # ------------------------------------------------------------------
    @property
    def used_columns_total(self) -> int:
        """Bitlines holding at least one weight, across the whole array.

        Every row group repeats the same ``Cout`` kernel columns, so this is
        ``row_groups * Cout``.  It is the number of ADC conversions needed
        per analog cycle when only active bitlines are read out — e.g. the
        Fig. 5 example: 256 for XB64, 128 for XB128.
        """
        return self.row_groups * self.layer.out_channels

    @property
    def allocated_columns_total(self) -> int:
        """All bitlines in occupied crossbars (incl. empty ones).

        The paper adjusts "the number of relevant modules (e.g., DACs,
        ADCs) in each tile" (§4.1) — peripheral circuits exist per
        crossbar, not per used column — so by default the energy model
        charges every bitline of an occupied crossbar
        (:attr:`HardwareConfig.charge_idle_columns`).  Fig. 5's counts
        (256 vs 128) are reproduced by either convention because that
        layer fills all its columns.
        """
        return self.num_crossbars * self.shape.cols

    @property
    def allocated_rows_total(self) -> int:
        """All wordlines in occupied crossbars (incl. unused ones)."""
        return self.num_crossbars * self.shape.rows

    @property
    def used_rows_total(self) -> int:
        """Wordlines holding at least one weight, across the whole array.

        Each column group repeats the full set of input rows, so this is
        ``col_groups * Cin * k^2`` (the input vector is re-driven once per
        crossbar column) — the DAC activation count per analog cycle.
        """
        return self.col_groups * self.layer.in_channels * self.layer.kernel_elems

    @property
    def active_cells_per_cycle(self) -> int:
        """Cells conducting during one analog evaluation (= weight cells)."""
        return self.weight_cells

    @property
    def partial_sum_adds(self) -> int:
        """Adder-tree additions merging row-group partial sums per MVM."""
        return (self.row_groups - 1) * self.layer.out_channels

    @property
    def adder_tree_depth(self) -> int:
        """Adder-tree levels needed to merge the row groups (latency)."""
        return math.ceil(math.log2(self.row_groups)) if self.row_groups > 1 else 0

    @property
    def used_columns_per_crossbar_max(self) -> int:
        """Active bitlines in the busiest crossbar (ADC mux chain length)."""
        return min(self.layer.out_channels, self.shape.cols)

    def describe(self) -> str:
        split = " [kernel-split]" if self.kernel_split else ""
        return (
            f"L{self.layer.index + 1} {self.layer.describe()} -> {self.shape}: "
            f"{self.row_groups}x{self.col_groups} crossbars, "
            f"u={self.utilization:.1%}{split}"
        )


@lru_cache(maxsize=65536)
def _map_shapes(
    in_channels: int, out_channels: int, kernel_elems: int, rows: int, cols: int
) -> tuple[int, int, bool]:
    """Row/column group counts for a (layer-shape, crossbar-shape) pair."""
    slices_per_xbar = rows // kernel_elems
    if slices_per_xbar >= 1:
        row_groups = math.ceil(in_channels / slices_per_xbar)
        kernel_split = False
    else:
        row_groups = math.ceil(in_channels * kernel_elems / rows)
        kernel_split = True
    col_groups = math.ceil(out_channels / cols)
    return row_groups, col_groups, kernel_split


def map_layer(layer: LayerSpec, shape: CrossbarShape) -> LayerMapping:
    """Map one layer onto one crossbar type (Fig. 7)."""
    row_groups, col_groups, kernel_split = _map_shapes(
        layer.in_channels,
        layer.out_channels,
        layer.kernel_elems,
        shape.rows,
        shape.cols,
    )
    return LayerMapping(
        layer=layer,
        shape=shape,
        row_groups=row_groups,
        col_groups=col_groups,
        kernel_split=kernel_split,
    )


def eq4_utilization(
    in_channels: int, out_channels: int, kernel_size: int, rows: int, cols: int
) -> float:
    """Eq. 4 verbatim, for direct comparison against the paper's examples.

    Raises :class:`ZeroDivisionError` (as the raw formula would) when
    ``kernel_size^2 > rows``; use :func:`map_layer` for the robust version.
    """
    k2 = kernel_size * kernel_size
    numer = in_channels * k2 * out_channels
    denom = (
        rows
        * math.ceil(in_channels / (rows // k2))
        * cols
        * math.ceil(out_channels / cols)
    )
    return numer / denom


def occupancy_grid(layer: LayerSpec, shape: CrossbarShape):
    """Materialise the boolean cell-occupancy grids of every crossbar.

    Returns a ``row_groups x col_groups`` nested list of 2-D NumPy boolean
    arrays marking which cells hold weights.  This is the brute-force
    ground truth the property tests compare Eq. 4 against, and what the
    functional engine uses to place weight slices.
    """
    import numpy as np

    mapping = map_layer(layer, shape)
    r, c = shape.rows, shape.cols
    cin, cout, k2 = layer.in_channels, layer.out_channels, layer.kernel_elems
    grids = [
        [np.zeros((r, c), dtype=bool) for _ in range(mapping.col_groups)]
        for _ in range(mapping.row_groups)
    ]
    if not mapping.kernel_split:
        slices_per_xbar = r // k2
        for ch in range(cin):
            rg, slot = divmod(ch, slices_per_xbar)
            r0 = slot * k2
            for kern in range(cout):
                cg, col = divmod(kern, c)
                grids[rg][cg][r0 : r0 + k2, col] = True
    else:
        # Dense vertical packing: global row index ch*k2 + i maps to
        # (row_group, local_row) by simple division.
        total_rows = cin * k2
        for kern in range(cout):
            cg, col = divmod(kern, c)
            for g0 in range(0, total_rows, r):
                rg = g0 // r
                height = min(r, total_rows - g0)
                grids[rg][cg][0:height, col] = True
    return grids
