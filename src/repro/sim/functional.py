"""Bit-exact functional inference through the mapped crossbars.

This module executes the *computation* the analytic simulator only costs
out: weights are offset-encoded, bit-sliced across the 8-crossbar group,
laid out on the crossbar array exactly per :func:`repro.arch.mapping
.map_layer` (including the same per-row-group slice placement
:func:`~repro.arch.mapping.occupancy_grid` describes), and inputs stream
through bit-serially.  Every bitline sample passes a saturating ADC model
before shift-and-add reconstruction and the adder-tree merge of row-group
partial sums.

Because the paper's 10-bit ADC covers every candidate height (576 < 1024),
the default pipeline is *integer-exact*: the engine's output equals
``Wq @ xq`` — the property the test suite pins down.  Lowering
``adc_bits`` makes saturation observable, which the variation example
exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..arch.config import CrossbarShape, DEFAULT_CONFIG, HardwareConfig
from ..arch.mapping import LayerMapping, map_layer
from ..models.graph import Network
from ..models.layers import LayerSpec, LayerType
from .quantization import bit_slices, offset_encode, quantize


@dataclass
class EngineCounters:
    """Activity counters accumulated by a functional engine."""

    adc_conversions: int = 0
    adc_saturations: int = 0
    dac_conversions: int = 0
    crossbar_evaluations: int = 0
    shift_add_ops: int = 0
    adder_tree_adds: int = 0

    def merged(self, other: "EngineCounters") -> "EngineCounters":
        return EngineCounters(
            adc_conversions=self.adc_conversions + other.adc_conversions,
            adc_saturations=self.adc_saturations + other.adc_saturations,
            dac_conversions=self.dac_conversions + other.dac_conversions,
            crossbar_evaluations=self.crossbar_evaluations + other.crossbar_evaluations,
            shift_add_ops=self.shift_add_ops + other.shift_add_ops,
            adder_tree_adds=self.adder_tree_adds + other.adder_tree_adds,
        )


class FunctionalLayerEngine:
    """One layer's weight matrix programmed onto one crossbar type."""

    def __init__(
        self,
        layer: LayerSpec,
        shape: CrossbarShape,
        weight_matrix_q: np.ndarray,
        config: HardwareConfig = DEFAULT_CONFIG,
    ) -> None:
        """Program quantized signed weights onto the crossbar array.

        ``weight_matrix_q`` is the unfolded integer weight matrix of shape
        ``(Cin * k^2, Cout)`` with values in the signed ``weight_bits``
        range.
        """
        rows_total, cout = layer.weight_matrix_shape
        wq = np.asarray(weight_matrix_q, dtype=np.int64)
        if wq.shape != (rows_total, cout):
            raise ValueError(
                f"weight matrix shape {wq.shape} != expected {(rows_total, cout)}"
            )
        limit = 2 ** (config.weight_bits - 1)
        if wq.min(initial=0) < -limit or wq.max(initial=0) >= limit:
            raise ValueError(f"weights exceed {config.weight_bits}-bit signed range")

        self.layer = layer
        self.shape = shape
        self.config = config
        self.mapping: LayerMapping = map_layer(layer, shape)
        self.counters = EngineCounters()

        encoded = offset_encode(wq, config.weight_bits)
        planes = bit_slices(encoded, config.weight_bits)  # (wb, rows, cout)

        # Padded per-row-group cell tensors, laid out exactly like
        # occupancy_grid(): slice `ch` of kernel rows sits at local row
        # (ch % slices_per_xbar) * k^2 inside row group ch // slices.
        rg = self.mapping.row_groups
        r = shape.rows
        self._row_of = self._global_row_placement()  # (rows_total,) -> (rg, local)
        cells = np.zeros((config.weight_bits, rg, r, cout), dtype=np.int64)
        groups, locals_ = self._row_of
        cells[:, groups, locals_, :] = planes
        self._cells = cells
        self._x_groups = groups
        self._x_locals = locals_

    # ------------------------------------------------------------------
    def _global_row_placement(self) -> tuple[np.ndarray, np.ndarray]:
        """Map each global weight-matrix row to (row_group, local_row)."""
        layer, shape, mapping = self.layer, self.shape, self.mapping
        rows_total = layer.in_channels * layer.kernel_elems
        idx = np.arange(rows_total)
        if not mapping.kernel_split:
            k2 = layer.kernel_elems
            slices = shape.rows // k2
            ch = idx // k2
            within = idx % k2
            groups = ch // slices
            locals_ = (ch % slices) * k2 + within
        else:
            groups = idx // shape.rows
            locals_ = idx % shape.rows
        return groups, locals_

    # ------------------------------------------------------------------
    def mvm_batch(self, x_q: np.ndarray) -> np.ndarray:
        """Exact integer MVM for a batch of unsigned input vectors.

        Parameters
        ----------
        x_q:
            ``(N, Cin * k^2)`` unsigned integers in the ``input_bits``
            range.

        Returns
        -------
        ``(N, Cout)`` int64 — ``x_q @ Wq`` when the ADC never saturates.
        """
        cfg = self.config
        x = np.atleast_2d(np.asarray(x_q, dtype=np.int64))
        n, width = x.shape
        rows_total = self.layer.in_channels * self.layer.kernel_elems
        if width != rows_total:
            raise ValueError(f"input width {width} != {rows_total}")
        if x.min(initial=0) < 0 or x.max(initial=0) > 2**cfg.input_bits - 1:
            raise ValueError(f"inputs exceed unsigned {cfg.input_bits}-bit range")

        rg, r = self.mapping.row_groups, self.shape.rows
        # Scatter inputs into the padded per-row-group layout.
        x_pad = np.zeros((n, rg, r), dtype=np.int64)
        x_pad[:, self._x_groups, self._x_locals] = x

        max_code = 2**cfg.adc_bits - 1
        acc = np.zeros((n, self.layer.out_channels), dtype=np.int64)
        cycles = cfg.input_cycles
        wbits = cfg.weight_bits
        for ib in range(cycles):
            plane = (x_pad >> ib) & 1  # (n, rg, r)
            for wb in range(wbits):
                # (n, rg, r) x (rg, r, cout) -> (n, rg, cout)
                partial = np.einsum(
                    "ngr,grc->ngc", plane, self._cells[wb], optimize=True
                )
                sat = partial > max_code
                if sat.any():
                    self.counters.adc_saturations += int(sat.sum())
                    partial = np.minimum(partial, max_code)
                merged = partial.sum(axis=1)  # adder tree over row groups
                acc += merged << (ib + wb)
                self.counters.adc_conversions += int(partial.size)
                self.counters.shift_add_ops += int(merged.size)
                self.counters.adder_tree_adds += int(
                    (rg - 1) * merged.size
                )
                self.counters.crossbar_evaluations += n * rg
            self.counters.dac_conversions += n * rg * r * wbits
        # Undo the offset encoding: subtract 2^(wbits-1) * sum(x).
        offset = 1 << (wbits - 1)
        return acc - offset * x.sum(axis=1, keepdims=True)

    def mvm(self, x_q: np.ndarray) -> np.ndarray:
        """Single-vector convenience wrapper around :meth:`mvm_batch`."""
        return self.mvm_batch(np.asarray(x_q)[None, :])[0]


# ----------------------------------------------------------------------
# Whole-network functional inference
# ----------------------------------------------------------------------
def unfold_weights(layer: LayerSpec, weights: np.ndarray) -> np.ndarray:
    """Unfold (Cout, Cin, k, k) CONV weights — or (Cout, Cin) FC weights —
    into the Fig. 7 ``(Cin * k^2, Cout)`` matrix (row order: channel-major,
    then kernel row, then kernel column)."""
    w = np.asarray(weights)
    if layer.layer_type is LayerType.FC:
        if w.shape != (layer.out_channels, layer.in_channels):
            raise ValueError(f"FC weights {w.shape} != "
                             f"{(layer.out_channels, layer.in_channels)}")
        return w.T.copy()
    k = layer.kernel_size
    expect = (layer.out_channels, layer.in_channels, k, k)
    if w.shape != expect:
        raise ValueError(f"CONV weights {w.shape} != {expect}")
    return w.reshape(layer.out_channels, -1).T.copy()


def im2col(fmap: np.ndarray, layer: LayerSpec) -> np.ndarray:
    """Extract convolution patches matching the unfolded weight row order.

    ``fmap`` is (Cin, H, W); the result is (positions, Cin * k^2) with
    positions scanning row-major over the output map.
    """
    c, h, w = fmap.shape
    k, s, p = layer.kernel_size, layer.stride, layer.padding
    if p:
        fmap = np.pad(fmap, ((0, 0), (p, p), (p, p)))
        h, w = h + 2 * p, w + 2 * p
    oh = (h - k) // s + 1
    ow = (w - k) // s + 1
    cols = np.empty((oh * ow, c * k * k), dtype=fmap.dtype)
    pos = 0
    for i in range(oh):
        for j in range(ow):
            patch = fmap[:, i * s : i * s + k, j * s : j * s + k]
            cols[pos] = patch.reshape(-1)
            pos += 1
    return cols


def random_weights(
    network: Network, *, seed: int = 0
) -> dict[int, np.ndarray]:
    """He-scaled random float weights for every layer, keyed by index."""
    rng = np.random.default_rng(seed)
    out: dict[int, np.ndarray] = {}
    for layer in network.layers:
        fan_in = layer.in_channels * layer.kernel_elems
        std = np.sqrt(2.0 / fan_in)
        if layer.layer_type is LayerType.FC:
            shape = (layer.out_channels, layer.in_channels)
        else:
            shape = (
                layer.out_channels,
                layer.in_channels,
                layer.kernel_size,
                layer.kernel_size,
            )
        out[layer.index] = rng.normal(0.0, std, size=shape)
    return out


class FunctionalNetworkEngine:
    """Run quantized inference for a whole network through crossbars.

    Only sequential-topology networks are supported (the residual adds of
    ResNet are outside the crossbars' concern; see DESIGN.md).  Layers
    execute in order: quantize activations (unsigned), MVM through the
    mapped crossbars, dequantize, ReLU, pool.
    """

    def __init__(
        self,
        network: Network,
        strategy: tuple[CrossbarShape, ...],
        weights: dict[int, np.ndarray] | None = None,
        config: HardwareConfig = DEFAULT_CONFIG,
        *,
        seed: int = 0,
    ) -> None:
        if len(strategy) != network.num_layers:
            raise ValueError("strategy length must equal layer count")
        self.network = network
        self.config = config
        self.weights = weights if weights is not None else random_weights(network, seed=seed)
        self.engines: list[FunctionalLayerEngine] = []
        self.weight_scales: list[float] = []
        for layer, shape in zip(network.layers, strategy):
            unfolded = unfold_weights(layer, self.weights[layer.index])
            wq = quantize(unfolded, config.weight_bits, signed=True)
            self.engines.append(
                FunctionalLayerEngine(layer, shape, wq.values, config)
            )
            self.weight_scales.append(wq.scale)

    # ------------------------------------------------------------------
    def forward(self, image: np.ndarray) -> np.ndarray:
        """Inference for one (C, H, W) image; returns the logits vector."""
        x = np.asarray(image, dtype=np.float64)
        if x.shape != self.network.dataset.input_shape:
            raise ValueError(
                f"image shape {x.shape} != {self.network.dataset.input_shape}"
            )
        fmap = x
        for i, (layer, engine) in enumerate(
            zip(self.network.layers, self.engines)
        ):
            if layer.layer_type is LayerType.CONV:
                cols = im2col(fmap, layer)
            else:
                cols = fmap.reshape(1, -1)
            act = np.maximum(cols, 0.0)
            act_q = quantize(act, self.config.input_bits, signed=False)
            out_q = engine.mvm_batch(act_q.values)
            out = out_q.astype(np.float64) * (
                act_q.scale * self.weight_scales[i]
            )
            if layer.layer_type is LayerType.CONV:
                side = layer.output_size
                fmap = out.T.reshape(layer.out_channels, side, side)
            else:
                fmap = out.reshape(-1)
            if i < len(self.engines) - 1:
                fmap = np.maximum(fmap, 0.0)
            pool = self.network.pool_after(i)
            if pool is not None and layer.layer_type is LayerType.CONV:
                fmap = _pool(fmap, pool.kind, pool.window, pool.stride)
        return np.asarray(fmap, dtype=np.float64).reshape(-1)

    def counters(self) -> EngineCounters:
        total = EngineCounters()
        for engine in self.engines:
            total = total.merged(engine.counters)
        return total

    # ------------------------------------------------------------------
    def reference_forward(self, image: np.ndarray) -> np.ndarray:
        """Float reference using the same weights, no quantization."""
        fmap = np.asarray(image, dtype=np.float64)
        for i, layer in enumerate(self.network.layers):
            if layer.layer_type is LayerType.CONV:
                cols = im2col(fmap, layer)
            else:
                cols = fmap.reshape(1, -1)
            act = np.maximum(cols, 0.0)
            out = act @ unfold_weights(layer, self.weights[layer.index])
            if layer.layer_type is LayerType.CONV:
                side = layer.output_size
                fmap = out.T.reshape(layer.out_channels, side, side)
            else:
                fmap = out.reshape(-1)
            if i < self.network.num_layers - 1:
                fmap = np.maximum(fmap, 0.0)
            pool = self.network.pool_after(i)
            if pool is not None and layer.layer_type is LayerType.CONV:
                fmap = _pool(fmap, pool.kind, pool.window, pool.stride)
        return np.asarray(fmap, dtype=np.float64).reshape(-1)


def _pool(fmap: np.ndarray, kind: str, window: int, stride: int) -> np.ndarray:
    c, h, w = fmap.shape
    oh = max((h - window) // stride + 1, 1)
    ow = max((w - window) // stride + 1, 1)
    out = np.empty((c, oh, ow), dtype=np.float64)
    for i in range(oh):
        for j in range(ow):
            patch = fmap[:, i * stride : i * stride + window, j * stride : j * stride + window]
            out[:, i, j] = patch.max(axis=(1, 2)) if kind == "max" else patch.mean(axis=(1, 2))
    return out
