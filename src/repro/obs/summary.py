"""Schema validation and rollups over trace record streams.

A trace is a sequence of schema-v1 dicts (see
:mod:`repro.obs.trace` and ``docs/observability.md``).  This module
validates individual records (:func:`validate_record`), reads JSONL
trace files back (:func:`read_jsonl`) and rolls a record stream up
into per-name statistics (:func:`summarize_records`): p50/p95/total
per span name, count/total/min/max per counter stream, and counts per
event name.  The rollup is what ``repro trace summarize`` prints and
what ``benchmarks/`` consume.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator

from .trace import RECORD_TYPES, SCHEMA_VERSION

#: fields every record must carry, by record type
_REQUIRED: dict[str, tuple[str, ...]] = {
    "span": ("v", "type", "name", "seq", "start_ns", "dur_ns", "depth"),
    "event": ("v", "type", "name", "seq"),
    "counter": ("v", "type", "name", "seq", "value"),
}

#: fields a record may carry beyond the required set, by record type
_OPTIONAL: dict[str, tuple[str, ...]] = {
    "span": ("attrs", "error"),
    "event": ("attrs",),
    "counter": ("attrs",),
}

_ATTR_SCALARS = (str, int, float, bool, type(None))


def validate_record(record: Any) -> list[str]:
    """Problems with ``record`` under trace schema v1 (empty = valid).

    Checks structure only — field presence, field types, no unknown
    fields, JSON-scalar attribute values — never semantics, so any
    conforming producer round-trips.
    """
    if not isinstance(record, dict):
        return [f"record is {type(record).__name__}, not an object"]
    problems: list[str] = []
    rtype = record.get("type")
    if rtype not in RECORD_TYPES:
        return [f"unknown record type {rtype!r} (expected one of {RECORD_TYPES})"]
    if record.get("v") != SCHEMA_VERSION:
        problems.append(f"schema version {record.get('v')!r} != {SCHEMA_VERSION}")
    for key in _REQUIRED[rtype]:
        if key not in record:
            problems.append(f"{rtype} record missing required field {key!r}")
    allowed = set(_REQUIRED[rtype]) | set(_OPTIONAL[rtype])
    for key in record:
        if key not in allowed:
            problems.append(f"{rtype} record has unknown field {key!r}")
    if not isinstance(record.get("name", ""), str):
        problems.append("'name' must be a string")
    for key in ("seq", "start_ns", "dur_ns", "depth"):
        if key in record and key in _REQUIRED[rtype]:
            value = record[key]
            if not isinstance(value, int) or isinstance(value, bool):
                problems.append(f"{key!r} must be an integer")
            elif value < 0:
                problems.append(f"{key!r} must be non-negative")
    if rtype == "counter" and "value" in record:
        value = record["value"]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            problems.append("'value' must be numeric")
        elif isinstance(value, float) and not math.isfinite(value):
            problems.append("'value' must be finite")
    if "error" in record and record["error"] is not True:
        problems.append("'error', when present, must be true")
    attrs = record.get("attrs")
    if attrs is not None:
        if not isinstance(attrs, dict):
            problems.append("'attrs' must be an object")
        else:
            for akey, avalue in attrs.items():
                if not isinstance(akey, str):
                    problems.append(f"attribute key {akey!r} is not a string")
                if not isinstance(avalue, _ATTR_SCALARS):
                    problems.append(
                        f"attribute {akey!r} has non-scalar value of type "
                        f"{type(avalue).__name__}"
                    )
    return problems


def read_jsonl(path: Path | str) -> Iterator[dict[str, Any]]:
    """Yield records from a JSONL trace file (skipping blank lines)."""
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                yield json.loads(line)


def percentile(sorted_values: list[int] | list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted non-empty list."""
    if not sorted_values:
        raise ValueError("percentile of empty list")
    rank = max(1, math.ceil(q * len(sorted_values)))
    return float(sorted_values[min(rank, len(sorted_values)) - 1])


@dataclass(frozen=True)
class SpanStats:
    """Duration rollup for one span name."""

    name: str
    count: int
    total_ns: int
    p50_ns: float
    p95_ns: float
    max_ns: int
    errors: int = 0


@dataclass(frozen=True)
class CounterStats:
    """Sample rollup for one counter stream."""

    name: str
    count: int
    total: float
    minimum: float
    maximum: float
    last: float

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


@dataclass(frozen=True)
class TraceSummary:
    """Per-name rollup of a whole trace."""

    spans: dict[str, SpanStats] = field(default_factory=dict)
    counters: dict[str, CounterStats] = field(default_factory=dict)
    events: dict[str, int] = field(default_factory=dict)
    records: int = 0
    invalid: int = 0

    def span_total_ns(self) -> int:
        return sum(s.total_ns for s in self.spans.values())


def summarize_records(records: Iterable[dict[str, Any]]) -> TraceSummary:
    """Roll a record stream up into :class:`TraceSummary`.

    Records that fail :func:`validate_record` are counted in
    ``invalid`` and excluded from the rollup rather than poisoning it.
    """
    durations: dict[str, list[int]] = {}
    span_errors: dict[str, int] = {}
    samples: dict[str, list[float]] = {}
    events: dict[str, int] = {}
    total = 0
    invalid = 0
    for record in records:
        total += 1
        if validate_record(record):
            invalid += 1
            continue
        name = record["name"]
        rtype = record["type"]
        if rtype == "span":
            durations.setdefault(name, []).append(record["dur_ns"])
            if record.get("error"):
                span_errors[name] = span_errors.get(name, 0) + 1
        elif rtype == "counter":
            samples.setdefault(name, []).append(float(record["value"]))
        else:
            events[name] = events.get(name, 0) + 1
    spans: dict[str, SpanStats] = {}
    for name, durs in sorted(durations.items()):
        durs.sort()
        spans[name] = SpanStats(
            name=name,
            count=len(durs),
            total_ns=sum(durs),
            p50_ns=percentile(durs, 0.50),
            p95_ns=percentile(durs, 0.95),
            max_ns=durs[-1],
            errors=span_errors.get(name, 0),
        )
    counters: dict[str, CounterStats] = {}
    for name, values in sorted(samples.items()):
        counters[name] = CounterStats(
            name=name,
            count=len(values),
            total=sum(values),
            minimum=min(values),
            maximum=max(values),
            last=values[-1],
        )
    return TraceSummary(
        spans=spans,
        counters=counters,
        events=dict(sorted(events.items())),
        records=total,
        invalid=invalid,
    )


def summarize_jsonl(path: Path | str) -> TraceSummary:
    """Convenience: :func:`read_jsonl` piped into :func:`summarize_records`."""
    return summarize_records(read_jsonl(path))
