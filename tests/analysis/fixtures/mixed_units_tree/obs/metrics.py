"""Toy metric emission with one wrong-stream bug (UNI005)."""

from __future__ import annotations

#: Stream names resolve through module-level string constants, exactly
#: like the real ``repro.obs.metrics`` emitters.
ENERGY_STREAM = "sim.energy_nj"


def bad_emit(tracer, latency_ns: float) -> None:
    """UNI005: emits a nanosecond value to the nanojoule stream."""
    tracer.counter(ENERGY_STREAM, latency_ns)


def ok_emit(tracer, energy_nj: float) -> None:
    """Negative twin: the emitted dimension matches the stream schema."""
    tracer.counter(ENERGY_STREAM, energy_nj)
