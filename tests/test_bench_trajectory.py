"""Tests for the benchmark trajectory appender (repro.bench.trajectory)."""

from __future__ import annotations

import json

import pytest

from repro.bench.trajectory import append_record, compact_record, main

REPORT = {
    "datetime": "2026-08-08T12:00:00",
    "commit_info": {"id": "abc123"},
    "benchmarks": [
        {
            "name": "test_batched_scoring",
            "stats": {"mean": 0.012, "stddev": 0.001, "rounds": 7},
            "extra_info": {"batch_speedup": 14.2, "model": "vgg16"},
        },
        {
            "name": "test_cold_single",
            "stats": {"mean": 0.00004, "stddev": 0.0, "rounds": 50},
            "extra_info": {},
        },
    ],
}


class TestCompactRecord:
    def test_keeps_mean_and_extra_info(self):
        record = compact_record(REPORT, commit="deadbeef")
        assert record["commit"] == "deadbeef"
        assert record["datetime"] == "2026-08-08T12:00:00"
        names = [b["name"] for b in record["benchmarks"]]
        assert names == ["test_batched_scoring", "test_cold_single"]
        assert record["benchmarks"][0]["mean_s"] == 0.012
        assert record["benchmarks"][0]["extra_info"]["batch_speedup"] == 14.2

    def test_commit_falls_back_to_env_then_report(self, monkeypatch):
        monkeypatch.setenv("GITHUB_SHA", "env-sha")
        assert compact_record(REPORT)["commit"] == "env-sha"
        monkeypatch.delenv("GITHUB_SHA")
        assert compact_record(REPORT)["commit"] == "abc123"


class TestAppendRecord:
    def write_report(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(REPORT))
        return path

    def test_creates_and_appends(self, tmp_path):
        bench = self.write_report(tmp_path)
        trajectory = tmp_path / "BENCH_x.json"
        append_record(bench, trajectory, commit="one")
        append_record(bench, trajectory, commit="two")
        history = json.loads(trajectory.read_text())
        assert [r["commit"] for r in history] == ["one", "two"]

    def test_bounded_history_drops_oldest(self, tmp_path):
        bench = self.write_report(tmp_path)
        trajectory = tmp_path / "BENCH_x.json"
        for i in range(5):
            append_record(bench, trajectory, commit=str(i), max_entries=3)
        history = json.loads(trajectory.read_text())
        assert [r["commit"] for r in history] == ["2", "3", "4"]

    def test_refuses_non_array_trajectory(self, tmp_path):
        bench = self.write_report(tmp_path)
        trajectory = tmp_path / "BENCH_x.json"
        trajectory.write_text("{}")
        with pytest.raises(ValueError, match="JSON array"):
            append_record(bench, trajectory)

    def test_refuses_non_object_report(self, tmp_path):
        bench = tmp_path / "bench.json"
        bench.write_text("[]")
        with pytest.raises(ValueError, match="report object"):
            append_record(bench, tmp_path / "BENCH_x.json")


class TestMain:
    def test_cli_round_trip(self, tmp_path, capsys):
        bench = tmp_path / "bench.json"
        bench.write_text(json.dumps(REPORT))
        trajectory = tmp_path / "BENCH_x.json"
        code = main([str(bench), str(trajectory), "--commit", "cli-sha"])
        assert code == 0
        assert "appended 2 benchmark(s)" in capsys.readouterr().out
        history = json.loads(trajectory.read_text())
        assert history[-1]["commit"] == "cli-sha"

    def test_repo_trajectory_files_are_valid_arrays(self):
        from pathlib import Path

        root = Path(__file__).resolve().parents[1]
        for name in (
            "BENCH_vectorized.json",
            "BENCH_search_time.json",
            "BENCH_serve.json",
        ):
            history = json.loads((root / name).read_text())
            assert isinstance(history, list) and history, name
            for record in history:
                assert "commit" in record and "benchmarks" in record, name
