"""DDPG agent tests: action bounds, learning dynamics, convergence on a
synthetic contextual-bandit task."""

import numpy as np
import pytest

from repro.core.rl.ddpg import DDPGAgent, DDPGConfig
from repro.core.rl.replay import Transition


def make_agent(**overrides):
    defaults = dict(
        state_dim=4, hidden=(16, 16), seed=0, warmup_episodes=1,
        batch_size=16, updates_per_episode=10,
        coherent_episode_prob=0.0, epsilon=0.0,
    )
    defaults.update(overrides)
    return DDPGAgent(DDPGConfig(**defaults))


def synthetic_episode(agent, rng, optimal_fn, explore=True):
    """A 4-step episode whose reward is high when actions track optimal_fn."""
    agent.begin_episode()
    transitions = []
    states = [rng.uniform(0, 1, size=4) for _ in range(5)]
    total = 0.0
    actions = []
    for k in range(4):
        a = agent.act(states[k], explore=explore)
        actions.append(a)
        total += 1.0 - abs(a - optimal_fn(states[k]))
    reward = total / 4
    for k in range(4):
        transitions.append(
            Transition(states[k], states[k + 1], actions[k], reward, k == 3)
        )
    return transitions, reward


class TestActionInterface:
    def test_actions_bounded(self):
        agent = make_agent()
        rng = np.random.default_rng(0)
        for _ in range(50):
            a = agent.act(rng.normal(size=4), explore=True)
            assert 0.0 <= a <= 1.0

    def test_deterministic_without_exploration(self):
        agent = make_agent()
        s = np.ones(4) * 0.3
        assert agent.act(s, explore=False) == agent.act(s, explore=False)

    def test_epsilon_decays_after_episode(self):
        agent = make_agent(epsilon=0.4, epsilon_decay=0.5, epsilon_min=0.01)
        agent.observe_episode(
            [Transition(np.zeros(4), np.zeros(4), 0.5, 1.0, True)]
        )
        assert agent.epsilon == pytest.approx(0.2)

    def test_epsilon_floor(self):
        agent = make_agent(epsilon=0.1, epsilon_decay=0.0001, epsilon_min=0.05)
        agent.observe_episode(
            [Transition(np.zeros(4), np.zeros(4), 0.5, 1.0, True)]
        )
        assert agent.epsilon == 0.05

    def test_coherent_episode_clusters_actions(self):
        agent = make_agent(coherent_episode_prob=1.0, coherent_sigma=0.01)
        agent.begin_episode()
        rng = np.random.default_rng(1)
        acts = [agent.act(rng.normal(size=4)) for _ in range(10)]
        assert np.std(acts) < 0.05

    def test_noise_decays(self):
        agent = make_agent(noise_sigma=1.0, noise_decay=0.5)
        agent.observe_episode(
            [Transition(np.zeros(4), np.zeros(4), 0.5, 1.0, True)]
        )
        assert agent.noise.sigma == pytest.approx(0.5)


class TestLearningMachinery:
    def test_reward_scale_fixed_on_first_episode(self):
        agent = make_agent()
        agent.observe_episode(
            [Transition(np.zeros(4), np.zeros(4), 0.5, 1e-6, True)]
        )
        assert agent.reward_scale == pytest.approx(1e6)

    def test_no_learning_before_warmup(self):
        agent = make_agent(warmup_episodes=5)
        agent.observe_episode(
            [Transition(np.zeros(4), np.zeros(4), 0.5, 1.0, True)] * 20
        )
        assert agent.learn() is None

    def test_baseline_tracks_rewards(self):
        agent = make_agent(baseline_decay=0.5)
        for r in (1.0, 2.0):
            agent.observe_episode(
                [Transition(np.zeros(4), np.zeros(4), 0.5, r, True)]
            )
        assert agent.reward_baseline is not None
        assert 1.0 <= agent.reward_baseline <= 2.0

    def test_learn_returns_loss_after_warmup(self):
        agent = make_agent(warmup_episodes=0)
        rng = np.random.default_rng(0)
        for _ in range(3):
            transitions, _ = synthetic_episode(agent, rng, lambda s: 0.5)
            agent.observe_episode(transitions)
        loss = agent.learn()
        assert loss is not None and loss >= 0.0

    def test_target_networks_track_online(self):
        agent = make_agent(warmup_episodes=0, tau=1.0)
        rng = np.random.default_rng(0)
        for _ in range(3):
            transitions, _ = synthetic_episode(agent, rng, lambda s: 0.5)
            agent.observe_episode(transitions)
        agent.learn()
        for online, target in zip(
            agent.actor.parameters(), agent.actor_target.parameters()
        ):
            assert np.allclose(online, target)


class TestConvergence:
    def test_learns_constant_optimal_action(self):
        """Reward peaks at action 0.7 regardless of state.

        Uses the default bandit-mode critic.  Coherent exploration
        episodes are essential here: per-step noise alone produces episode
        rewards dominated by the policy mean, which the critic misreads as
        "larger is better" (the same basin-hopping pathology the AutoHet
        search hits on ResNet152).  The TD-bootstrap variant is *expected*
        to drift on this task (Q-overestimation with broadcast rewards),
        which is exactly why bandit mode is the default.
        """
        agent = make_agent(
            bootstrap=False, noise_sigma=0.4, seed=1,
            coherent_episode_prob=0.3, epsilon=0.1,
        )
        rng = np.random.default_rng(1)
        for _ in range(200):
            transitions, _ = synthetic_episode(agent, rng, lambda s: 0.7)
            agent.observe_episode(transitions)
            agent.learn()
        final = np.mean(
            [agent.act(rng.uniform(0, 1, 4), explore=False) for _ in range(20)]
        )
        assert abs(final - 0.7) < 0.2

    def test_learns_state_dependent_policy(self):
        """Optimal action = first state coordinate (bandit form)."""
        agent = make_agent(noise_sigma=0.4, seed=2, updates_per_episode=20)
        rng = np.random.default_rng(2)
        for _ in range(250):
            transitions, _ = synthetic_episode(
                agent, rng, lambda s: float(s[0] > 0.5)
            )
            agent.observe_episode(transitions)
            agent.learn()
        lo = agent.act(np.array([0.1, 0.5, 0.5, 0.5]), explore=False)
        hi = agent.act(np.array([0.9, 0.5, 0.5, 0.5]), explore=False)
        assert hi - lo > 0.3

    def test_average_reward_improves(self):
        agent = make_agent(noise_sigma=0.5, seed=3)
        rng = np.random.default_rng(3)
        rewards = []
        for _ in range(150):
            transitions, reward = synthetic_episode(agent, rng, lambda s: 0.2)
            agent.observe_episode(transitions)
            agent.learn()
            rewards.append(reward)
        assert np.mean(rewards[-30:]) > np.mean(rewards[:30])
