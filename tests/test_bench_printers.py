"""Tests for the harness's table/series printers (output contracts)."""

import pytest

from repro.bench import (
    fig3_motivation,
    fig4_empty_crossbars,
    fig5_tradeoff,
    fig9_overall,
    fig10_ablation,
    fig11b_candidate_count,
    print_fig3,
    print_fig4,
    print_fig5,
    print_fig9,
    print_fig10,
    print_fig11,
    print_search_time,
    print_table3,
    print_table4,
    print_table5,
    search_time_profile,
    table3_strategies,
    table4_tiles,
    table5_area_latency,
)
from repro.models import lenet

FAST = dict(rounds=10, seed=0)


class TestStaticPrinters:
    def test_fig3_printer(self, capsys):
        print_fig3(fig3_motivation())
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert "Manual-Hetero" in out
        assert "RUE" in out

    def test_fig4_printer(self, capsys):
        print_fig4(fig4_empty_crossbars())
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "32 XBs/tile" in out
        assert "%" in out

    def test_fig5_printer(self, capsys):
        print_fig5(fig5_tradeoff())
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "256" in out and "128" in out


class TestSearchPrinters:
    @pytest.fixture(scope="class")
    def small_net(self):
        return lenet()

    def test_fig9_printer(self, capsys, small_net):
        print_fig9(fig9_overall([small_net], **FAST))
        out = capsys.readouterr().out
        assert "Figure 9" in out
        assert "AutoHet vs best homogeneous" in out
        assert "energy_norm" in out

    def test_fig10_printer(self, capsys, small_net):
        print_fig10(fig10_ablation([small_net], **FAST))
        out = capsys.readouterr().out
        assert "Figure 10" in out
        for variant in ("Base", "+He", "+Hy", "All"):
            assert variant in out

    def test_fig11_printer(self, capsys):
        points = fig11b_candidate_count(counts=(2,), **FAST)
        print_fig11(points, panel="b", x_label="candidate count")
        out = capsys.readouterr().out
        assert "Figure 11(b)" in out
        assert "speedup" in out and "x" in out

    def test_table3_printer(self, capsys):
        print_table3(table3_strategies(**FAST))
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "L16" in out

    def test_table4_printer(self, capsys, small_net):
        print_table4(table4_tiles([small_net], **FAST))
        out = capsys.readouterr().out
        assert "Table 4" in out
        assert "+Hy" in out and "All" in out

    def test_table5_printer(self, capsys):
        print_table5(table5_area_latency(**FAST))
        out = capsys.readouterr().out
        assert "Table 5" in out
        assert "area_um2" in out and "latency_ns" in out

    def test_search_time_printer(self, capsys):
        print_search_time(search_time_profile(rounds=5, seed=0))
        out = capsys.readouterr().out
        assert "search time" in out
        assert "simulator feedback" in out
        assert "%" in out
