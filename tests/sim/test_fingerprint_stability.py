"""Process-stable fingerprints and the input-size collision regression.

The original fingerprints were built on :func:`hash`, which (a) varies
with ``PYTHONHASHSEED`` — so process-pool workers and serialized cache
stats were not comparable across runs — and (b) omitted feature-map
geometry (``input_size`` / ``stride`` / ``padding``) and pooling stages,
so two workloads with identical channel structure silently shared cached
metrics.  These tests pin both fixes.
"""

import subprocess
import sys
from pathlib import Path

import repro
from repro.arch.config import DEFAULT_CONFIG, CrossbarShape
from repro.models.datasets import DatasetSpec
from repro.models.graph import Network
from repro.models.layers import LayerSpec, PoolSpec
from repro.sim.cache import EvaluationCache, network_fingerprint
from repro.sim.simulator import Simulator

_FINGERPRINT_SNIPPET = """
from repro.arch.config import DEFAULT_CONFIG
from repro.models.zoo import lenet
from repro.sim.cache import config_fingerprint, network_fingerprint
print(config_fingerprint(DEFAULT_CONFIG))
print(network_fingerprint(lenet()))
"""


def _fingerprints_under_seed(seed: str) -> list[str]:
    result = subprocess.run(
        [sys.executable, "-c", _FINGERPRINT_SNIPPET],
        capture_output=True,
        text=True,
        env={
            "PYTHONHASHSEED": seed,
            "PYTHONPATH": str(Path(repro.__file__).resolve().parents[1]),
        },
        check=True,
    )
    return result.stdout.split()


def sized_network(image_size: int, name: str = "probe") -> Network:
    """A tiny conv/pool/fc pipeline whose only variable is the input size."""
    dataset = DatasetSpec(
        name="synthetic", image_size=image_size, channels=1, num_classes=10
    )
    fc_in = ((image_size - 4) // 2) ** 2 * 4
    return Network.build(
        name,
        dataset,
        [
            LayerSpec.conv(1, 4, 5),
            PoolSpec(),
            LayerSpec.fc(fc_in, 10),
        ],
    )


class TestProcessStability:
    def test_fingerprints_survive_hash_randomization(self):
        # Same content, different PYTHONHASHSEED, different processes:
        # the blake2b digests must agree where hash() would not.
        a = _fingerprints_under_seed("0")
        b = _fingerprints_under_seed("12345")
        assert a == b


class TestCollisionRegression:
    def test_networks_differing_only_in_input_size_have_distinct_keys(self):
        small, large = sized_network(12), sized_network(20)
        assert network_fingerprint(small) != network_fingerprint(large)

    def test_shared_cache_keeps_their_metrics_apart(self):
        # The latent bug this PR's analyzer flagged: with the old
        # channel-structure-only fingerprint these two collide, and the
        # second evaluation silently returns the first one's energy.
        small, large = sized_network(12), sized_network(20)
        sim = Simulator(cache=EvaluationCache())
        shape = CrossbarShape(64, 64)
        m_small = sim.evaluate(small, tuple(shape for _ in small.layers))
        m_large = sim.evaluate(large, tuple(shape for _ in large.layers))
        assert m_small.energy_nj != m_large.energy_nj
        # Both land in the cache as separate entries, and re-evaluation
        # returns each network its own metrics.
        assert len(sim.cache) == 2
        assert sim.evaluate(small, tuple(shape for _ in small.layers)) == m_small

    def test_pooling_stages_are_fingerprinted(self):
        # Second latent collision: pooling energy/latency read the pool
        # stages, so a pooled and an unpooled build must not share keys.
        dataset = DatasetSpec(
            name="synthetic", image_size=12, channels=1, num_classes=10
        )
        pooled = sized_network(12)
        unpooled = Network.build(
            "probe",
            dataset,
            [LayerSpec.conv(1, 4, 5), LayerSpec.fc(8 * 8 * 4, 10)],
        )
        assert network_fingerprint(pooled) != network_fingerprint(unpooled)

    def test_equal_content_shares_fingerprint(self):
        assert network_fingerprint(sized_network(12)) == network_fingerprint(
            sized_network(12)
        )

    def test_config_fingerprint_tracks_every_field(self):
        fp = EvaluationCache.make_key(
            DEFAULT_CONFIG, sized_network(12), (), tile_shared=True,
            detailed=True, enforce_capacity=True,
        )[0]
        tweaked = DEFAULT_CONFIG.with_(latency_pool_ns=DEFAULT_CONFIG.latency_pool_ns + 1)
        fp2 = EvaluationCache.make_key(
            tweaked, sized_network(12), (), tile_shared=True,
            detailed=True, enforce_capacity=True,
        )[0]
        assert fp != fp2
