"""Regression: a bank too small for part of the search space must not
crash any search front-end.

With ``tiles_per_bank=9`` on TinyCNN the three largest candidate shapes
fit (2-9 tiles uniform) while the two smallest overflow (31-35 tiles), so
every search below meets infeasible strategies mid-run.  Each one must
skip/penalise them, count them, and still return a feasible best —
``CapacityError`` may only propagate when *nothing* fits.
"""

import pytest

from repro.arch.config import DEFAULT_CANDIDATES, HardwareConfig
from repro.core.autohet import autohet_search
from repro.core.rl.environment import CrossbarSearchEnv
from repro.core.search import (
    SearchOutcome,
    exhaustive_search,
    greedy_reward_strategy,
    random_search,
    simulated_annealing,
)
from repro.sim.simulator import CapacityError, Simulator

TINY_BANK = HardwareConfig(tiles_per_bank=9)
#: a bank no candidate strategy fits (TinyCNN needs >= 2 tiles)
HOPELESS_BANK = HardwareConfig(tiles_per_bank=1)


@pytest.fixture()
def tiny_sim():
    return Simulator(TINY_BANK)


def assert_feasible_best(outcome, tiny_net):
    assert isinstance(outcome, SearchOutcome)
    strategy, metrics = outcome  # 2-tuple unpacking still works
    assert strategy is outcome.strategy and metrics is outcome.metrics
    assert metrics.occupied_tiles <= TINY_BANK.tiles_per_bank
    assert outcome.infeasible > 0
    assert outcome.evaluations >= outcome.infeasible


def test_random_search_skips_infeasible(tiny_net, tiny_sim):
    outcome = random_search(
        tiny_net, DEFAULT_CANDIDATES, tiny_sim, rounds=40, seed=0
    )
    assert_feasible_best(outcome, tiny_net)
    assert outcome.evaluations == 40


def test_exhaustive_search_skips_infeasible(tiny_net, tiny_sim):
    outcome = exhaustive_search(tiny_net, DEFAULT_CANDIDATES, tiny_sim)
    assert_feasible_best(outcome, tiny_net)
    assert outcome.evaluations == len(DEFAULT_CANDIDATES) ** tiny_net.num_layers


def test_annealing_skips_infeasible(tiny_net, tiny_sim):
    outcome = simulated_annealing(
        tiny_net, DEFAULT_CANDIDATES, tiny_sim, rounds=60, seed=0
    )
    assert_feasible_best(outcome, tiny_net)


def test_annealing_matches_unconstrained_trajectory(tiny_net):
    # When every proposal is feasible, the infeasible-handling path must
    # be inert: same rng consumption, same best strategy as before.
    roomy = simulated_annealing(
        tiny_net, DEFAULT_CANDIDATES, Simulator(), rounds=60, seed=0
    )
    assert roomy.infeasible == 0
    assert roomy.metrics.reward > 0


def test_greedy_reward_skips_infeasible(tiny_net, tiny_sim):
    stats: dict[str, int] = {}
    strategy = greedy_reward_strategy(
        tiny_net, DEFAULT_CANDIDATES, tiny_sim, stats=stats
    )
    assert stats["infeasible"] > 0
    assert stats["evaluations"] == tiny_net.num_layers * len(DEFAULT_CANDIDATES)
    metrics = tiny_sim.try_evaluate(tiny_net, strategy)
    assert metrics is not None
    assert metrics.occupied_tiles <= TINY_BANK.tiles_per_bank


def test_env_finish_emits_penalty_episode(tiny_net, tiny_sim):
    env = CrossbarSearchEnv(tiny_net, DEFAULT_CANDIDATES, tiny_sim)
    env.reset()
    for _ in range(env.num_layers):  # uniform 32x32 -> 35 tiles, overflow
        env.step(0)
    result = env.finish()
    assert not result.feasible
    assert result.metrics is None
    assert result.reward == env.infeasible_reward == 0.0
    assert len(result.transitions) == env.num_layers
    assert env.infeasible_episodes == 1
    # A feasible episode afterwards works and keeps the counter.
    env.reset()
    for _ in range(env.num_layers):
        env.step(len(DEFAULT_CANDIDATES) - 1)
    result = env.finish()
    assert result.feasible and result.reward > 0.0
    assert env.infeasible_episodes == 1


def test_autohet_search_survives_small_bank(tiny_net):
    result = autohet_search(
        tiny_net, rounds=10, simulator=Simulator(TINY_BANK), seed=0
    )
    # The homogeneous seeding probes all five uniforms; two overflow.
    assert result.infeasible_episodes >= 2
    assert result.best_metrics.occupied_tiles <= TINY_BANK.tiles_per_bank
    assert len(result.reward_history) == result.rounds + result.seed_episodes


def test_all_infeasible_raises_capacity_error(tiny_net):
    sim = Simulator(HOPELESS_BANK)
    with pytest.raises(CapacityError):
        random_search(tiny_net, DEFAULT_CANDIDATES, sim, rounds=5)
    with pytest.raises(CapacityError):
        exhaustive_search(tiny_net, DEFAULT_CANDIDATES, sim)
    with pytest.raises(CapacityError):
        simulated_annealing(tiny_net, DEFAULT_CANDIDATES, sim, rounds=5)
    with pytest.raises(CapacityError):
        autohet_search(tiny_net, rounds=2, simulator=sim)
