"""Simulated-annealing search baseline (extension).

A classic single-solution metaheuristic for the same C^N space the RL
agent explores: start from a uniform strategy, propose single-layer
mutations, accept improvements always and regressions with probability
``exp(delta / T)`` under a geometric cooling schedule.

Included as a comparison point between random search (no structure) and
the RL agent (learned structure): annealing exploits local structure but,
like coordinate ascent, must random-walk between the tile-sharing basins
that coherent RL exploration jumps directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ...arch.config import CrossbarShape
from ...models.graph import Network
from ...obs import metrics as obs_metrics
from ...obs.trace import Tracer
from ...sim.metrics import SystemMetrics
from ...sim.simulator import CapacityError, Simulator, Strategy
from .strategies import SearchOutcome, _search_tracer


@dataclass(frozen=True)
class AnnealingSchedule:
    """Geometric cooling parameters."""

    initial_temperature: float = 1.0
    cooling: float = 0.995
    min_temperature: float = 1e-4

    def __post_init__(self) -> None:
        if self.initial_temperature <= 0:
            raise ValueError("initial_temperature must be positive")
        if not 0.0 < self.cooling < 1.0:
            raise ValueError("cooling must be in (0, 1)")
        if self.min_temperature <= 0:
            raise ValueError("min_temperature must be positive")


def simulated_annealing(
    network: Network,
    candidates: Sequence[CrossbarShape],
    simulator: Simulator | None = None,
    *,
    rounds: int = 300,
    tile_shared: bool = True,
    schedule: AnnealingSchedule = AnnealingSchedule(),
    seed: int = 0,
    tracer: Tracer | None = None,
) -> SearchOutcome:
    """Anneal over per-layer crossbar choices; returns the best found.

    Rewards are normalised by the starting strategy's reward so one
    temperature schedule works across models (reward magnitudes span
    orders of magnitude between AlexNet and ResNet152).

    Infeasible proposals (bank overflow) are rejected like any bad move
    and counted; :class:`~repro.sim.simulator.CapacityError` only
    propagates when no uniform starting strategy fits the bank.
    """
    if rounds <= 0:
        raise ValueError("rounds must be positive")
    if not candidates:
        raise ValueError("need at least one candidate")
    sim = simulator if simulator is not None else Simulator()
    tr = _search_tracer(tracer, sim)
    rng = np.random.default_rng(seed)
    n = network.num_layers
    evaluations = infeasible = 0

    def evaluate(indices: list[int]) -> SystemMetrics | None:
        nonlocal evaluations, infeasible
        strategy = tuple(candidates[i] for i in indices)
        evaluations += 1
        metrics = sim.try_evaluate(
            network, strategy, tile_shared=tile_shared, detailed=False
        )
        if metrics is None:
            infeasible += 1
        return metrics

    # Start from the best *feasible* uniform strategy (cheap,
    # deterministic), reusing the probe's metrics rather than paying a
    # second evaluation of the chosen start.  The probes are mutually
    # independent, so they run as one kernel batch; no search events are
    # emitted per probe, so this is safe under a live tracer too (the
    # batched path falls back to the serial loop itself in that case).
    uniform_probes = sim.evaluate_many(
        network,
        [tuple(candidates[i] for _ in range(n)) for i in range(len(candidates))],
        tile_shared=tile_shared,
        detailed=False,
    )
    evaluations += len(uniform_probes)
    infeasible += sum(1 for m in uniform_probes if m is None)
    feasible_starts = [
        (i, m) for i, m in enumerate(uniform_probes) if m is not None
    ]
    if not feasible_starts:
        raise CapacityError(
            f"no uniform starting strategy fits the bank "
            f"({sim.config.tiles_per_bank} tiles)"
        )
    start, current_metrics = max(
        feasible_starts, key=lambda pair: pair[1].reward
    )
    current = [start] * n
    scale = abs(current_metrics.reward) or 1.0

    best = (tuple(current), current_metrics)
    temperature = schedule.initial_temperature
    with tr.span(
        obs_metrics.SPAN_SEARCH, search="annealing", network=network.name
    ):
        for round_index in range(rounds):
            proposal = list(current)
            layer = int(rng.integers(0, n))
            choice = int(rng.integers(0, len(candidates)))
            proposal[layer] = choice
            metrics = evaluate(proposal)
            accepted = False
            if metrics is not None:
                delta = (metrics.reward - current_metrics.reward) / scale
                if delta >= 0 or rng.random() < math.exp(delta / temperature):
                    accepted = True
                    current = proposal
                    current_metrics = metrics
                    if metrics.reward > best[1].reward:
                        best = (tuple(current), metrics)
            if tr.enabled:
                tr.event(
                    obs_metrics.EVENT_CANDIDATE,
                    search="annealing",
                    round=round_index,
                    layer=layer,
                    shape=str(candidates[choice]),
                    temperature=temperature,
                    feasible=metrics is not None,
                    accepted=accepted,
                    reward=None if metrics is None else metrics.reward,
                )
            temperature = max(
                temperature * schedule.cooling, schedule.min_temperature
            )
    if tr.enabled:
        tr.event(
            obs_metrics.EVENT_SEARCH_RESULT,
            search="annealing",
            network=network.name,
            evaluations=evaluations,
            infeasible=infeasible,
            best_reward=best[1].reward,
        )
    strategy = tuple(candidates[i] for i in best[0])
    return SearchOutcome(
        strategy, best[1], evaluations=evaluations, infeasible=infeasible
    )
