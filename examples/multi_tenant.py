#!/usr/bin/env python3
"""Extension: multi-model co-residency on one accelerator.

§3.4 notes that tiles released by the tile-shared scheme "become available
for other layers in the DNN model or other models."  This example takes
the hint: it searches per-model heterogeneous strategies for AlexNet and
VGG16, then co-locates both on one accelerator, letting Algorithm 1 merge
sparsely-filled tiles *across* model boundaries.

Run:  python examples/multi_tenant.py
"""

from repro import DEFAULT_CANDIDATES, Simulator, autohet_search, alexnet, vgg16
from repro.core.allocation import allocate_multi_network


def main() -> None:
    simulator = Simulator()
    capacity = simulator.config.logical_xbars_per_tile

    workloads = []
    for network in (alexnet(), vgg16()):
        print(f"Searching a strategy for {network.name}...")
        result = autohet_search(
            network, DEFAULT_CANDIDATES, rounds=120, simulator=simulator,
            seed=0,
        )
        m = result.best_metrics
        print(
            f"  {network.name}: U={m.utilization_percent:.1f}%  "
            f"RUE={m.rue:.3e}  tiles={m.occupied_tiles}"
        )
        workloads.append((network, result.best_strategy))

    print("\nCo-locating both models on one accelerator...")
    combined = allocate_multi_network(workloads, capacity, tile_shared=True)
    print(f"  separate accelerators: {combined.separate_tiles} tiles")
    print(f"  co-located:            {combined.occupied_tiles} tiles "
          f"({combined.tiles_saved} saved, "
          f"{combined.tiles_saved / combined.separate_tiles:.1%})")
    print(f"  combined utilization:  {combined.utilization:.1%}")

    shared = combined.shared_tiles()
    print(f"  tiles hosting layers from BOTH models: {len(shared)}")
    for tile in shared[:5]:
        owners = {}
        for idx, n in tile.occupants.items():
            name = next(s.name for s in combined.slices if s.owns(idx))
            owners[name] = owners.get(name, 0) + n
        mix = ", ".join(f"{k}: {v} XBs" for k, v in owners.items())
        print(f"    tile {tile.tile_id} ({tile.shape}): {mix}")


if __name__ == "__main__":
    main()
