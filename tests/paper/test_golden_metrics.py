"""Golden-snapshot regression test for the VGG16 baseline aggregates.

``golden_vgg16.json`` pins the simulator's headline numbers for a fixed
set of VGG16 baseline strategies (the §4.1 homogeneous accelerators,
the Fig. 3 hand-tuned heterogeneous split, and a candidate-cycling
mixed strategy).  The cost model is pure closed-form float math, so
the snapshot is compared at near-machine precision: any drift means a
cost-model change, intended or not, and intended changes must
regenerate the snapshot *in the same commit*.

Regenerate with::

    PYTHONPATH=src python tests/paper/test_golden_metrics.py --regen

and review the JSON diff — every changed number is a claimed change to
the reproduction's output.
"""

import json
import math
from pathlib import Path

import pytest

from repro.arch.config import CrossbarShape, DEFAULT_CANDIDATES
from repro.core.search.strategies import (
    homogeneous_strategy,
    manual_hetero_strategy,
)
from repro.models import vgg16
from repro.sim import Simulator

GOLDEN_PATH = Path(__file__).with_name("golden_vgg16.json")

#: aggregates worth pinning; properties (rue, reward) included so the
#: snapshot also locks the derived-metric definitions
SCALAR_FIELDS = (
    "utilization",
    "energy_nj",
    "latency_ns",
    "area_um2",
    "occupied_tiles",
    "occupied_crossbars",
    "empty_crossbars",
    "rue",
    "reward",
)

RELATIVE_TOLERANCE = 1e-9


def baseline_strategies(network):
    """The named baseline configurations the snapshot covers."""
    return {
        "homogeneous_512x512": (
            homogeneous_strategy(network, CrossbarShape(512, 512)),
            True,
        ),
        "homogeneous_512x512_unshared": (
            homogeneous_strategy(network, CrossbarShape(512, 512)),
            False,
        ),
        "homogeneous_256x256": (
            homogeneous_strategy(network, CrossbarShape(256, 256)),
            True,
        ),
        "manual_hetero_fig3": (manual_hetero_strategy(network), True),
        "mixed_candidate_cycle": (
            tuple(
                DEFAULT_CANDIDATES[i % len(DEFAULT_CANDIDATES)]
                for i in range(network.num_layers)
            ),
            True,
        ),
    }


def compute_aggregates():
    network = vgg16()
    sim = Simulator()
    out = {}
    for name, (strategy, tile_shared) in baseline_strategies(network).items():
        metrics = sim.evaluate(
            network, strategy, tile_shared=tile_shared, detailed=True
        )
        entry = {field: getattr(metrics, field) for field in SCALAR_FIELDS}
        entry["adc_conversions"] = sum(
            c.adc_conversions for c in metrics.layer_costs
        )
        entry["dac_conversions"] = sum(
            c.dac_conversions for c in metrics.layer_costs
        )
        out[name] = entry
    return out


class TestGoldenMetrics:
    def test_snapshot_exists(self):
        assert GOLDEN_PATH.exists(), (
            "golden snapshot missing — regenerate with "
            "PYTHONPATH=src python tests/paper/test_golden_metrics.py --regen"
        )

    def test_vgg16_aggregates_match_snapshot(self):
        golden = json.loads(GOLDEN_PATH.read_text())
        current = compute_aggregates()
        assert sorted(current) == sorted(golden), (
            "baseline set changed — regenerate the snapshot"
        )
        mismatches = []
        for name, expected in golden.items():
            actual = current[name]
            assert sorted(actual) == sorted(expected)
            for field, want in expected.items():
                got = actual[field]
                if isinstance(want, int):
                    ok = got == want
                else:
                    ok = math.isclose(got, want, rel_tol=RELATIVE_TOLERANCE)
                if not ok:
                    mismatches.append(f"{name}.{field}: {got!r} != {want!r}")
        assert not mismatches, (
            "cost-model output drifted from the golden snapshot:\n  "
            + "\n  ".join(mismatches)
            + "\nIf the change is intended, regenerate with "
            "PYTHONPATH=src python tests/paper/test_golden_metrics.py --regen"
        )

    def test_snapshot_sanity(self):
        """The snapshot itself stays physically plausible."""
        golden = json.loads(GOLDEN_PATH.read_text())
        for name, entry in golden.items():
            assert 0.0 < entry["utilization"] <= 1.0, name
            assert entry["energy_nj"] > 0.0, name
            assert entry["occupied_tiles"] > 0, name
        # Tile sharing must strictly help the 512x512 baseline (Alg. 1).
        assert (
            golden["homogeneous_512x512"]["occupied_tiles"]
            < golden["homogeneous_512x512_unshared"]["occupied_tiles"]
        )


if __name__ == "__main__":
    import sys

    if "--regen" not in sys.argv:
        sys.exit("usage: python tests/paper/test_golden_metrics.py --regen")
    GOLDEN_PATH.write_text(
        json.dumps(compute_aggregates(), indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {GOLDEN_PATH}")
